//! Adders, subtractors and related bit-exact datapath pieces.
//!
//! All operations are *exact*: output widths come from [`Range`] analysis, so
//! results never wrap. Ripple-carry structures are used throughout — with
//! millisecond-scale printed gates there is no wire/logic-delay imbalance to
//! justify carry-lookahead, and the papers' bespoke flows do the same.

use crate::range::Range;
use pe_netlist::{Builder, NetId, Word};

/// One full adder; returns `(sum, carry_out)`.
pub fn full_adder(b: &mut Builder, a: NetId, x: NetId, cin: NetId) -> (NetId, NetId) {
    let s1 = b.xor2(a, x);
    let sum = b.xor2(s1, cin);
    let cout = b.maj3(a, x, cin);
    (sum, cout)
}

/// Ripple-carry addition of two equal-length bit vectors with carry-in.
/// Returns the sum bits (same length; the final carry is discarded, which is
/// correct whenever the caller sized the vectors from a value range).
///
/// # Panics
///
/// Panics if the vectors differ in length.
pub fn ripple_add_bits(b: &mut Builder, a: &[NetId], x: &[NetId], cin: NetId) -> Vec<NetId> {
    assert_eq!(a.len(), x.len(), "ripple operands must match in width");
    let mut carry = cin;
    let mut out = Vec::with_capacity(a.len());
    for (&ai, &xi) in a.iter().zip(x) {
        let (s, c) = full_adder(b, ai, xi, carry);
        out.push(s);
        carry = c;
    }
    out
}

/// Exact sum `a + c`. The result width/signedness are derived from the value
/// ranges of the operands, so the addition can never overflow.
pub fn add_exact(b: &mut Builder, a: &Word, c: &Word) -> Word {
    let rng = Range::of_word(a).add(&Range::of_word(c));
    let w = (rng.width() as usize).max(a.width()).max(c.width());
    let ae = a.extend_to(b, w);
    let ce = c.extend_to(b, w);
    let zero = b.constant(false);
    let bits = ripple_add_bits(b, ae.bits(), ce.bits(), zero);
    Word::new(bits, rng.is_signed())
}

/// Exact sum of a word and an integer constant (the constant bits fold into
/// half-adder logic).
///
/// # Panics
///
/// Panics if `k` plus the word's range would exceed `i64` (practically
/// impossible for datapath widths).
pub fn add_const(b: &mut Builder, a: &Word, k: i64) -> Word {
    let ra = Range::of_word(a);
    let rng = ra.add(&Range::new(k, k));
    let w = (rng.width() as usize).max(a.width());
    let ae = a.extend_to(b, w);
    let kw = Word::constant(b, k, w as u32, k < 0).with_signedness(rng.is_signed());
    let zero = b.constant(false);
    let bits = ripple_add_bits(b, ae.bits(), kw.bits(), zero);
    Word::new(bits, rng.is_signed())
}

/// Exact difference `a - c` (two's-complement: `a + !c + 1`).
pub fn sub_exact(b: &mut Builder, a: &Word, c: &Word) -> Word {
    let rng = Range::of_word(a).sub(&Range::of_word(c));
    let w = (rng.width() as usize).max(a.width()).max(c.width());
    let ae = a.extend_to(b, w);
    let ce = c.extend_to(b, w);
    let inv_c: Vec<NetId> = ce.bits().iter().map(|&n| b.inv(n)).collect();
    let one = b.constant(true);
    let bits = ripple_add_bits(b, ae.bits(), &inv_c, one);
    Word::new(bits, rng.is_signed())
}

/// Exact negation `-a`.
pub fn negate(b: &mut Builder, a: &Word) -> Word {
    let ra = Range::of_word(a);
    let rng = Range::new(-ra.hi, -ra.lo);
    let w = (rng.width() as usize).max(a.width());
    let ae = a.extend_to(b, w);
    let inv_a: Vec<NetId> = ae.bits().iter().map(|&n| b.inv(n)).collect();
    let zeros = vec![b.constant(false); w];
    let one = b.constant(true);
    let bits = ripple_add_bits(b, &inv_a, &zeros, one);
    Word::new(bits, rng.is_signed())
}

/// Rectified linear unit over a signed word: negative values clamp to zero.
/// The result is unsigned and one bit narrower (the sign position is gone).
///
/// # Panics
///
/// Panics if `a` is unsigned (ReLU would be the identity) or 1 bit wide.
pub fn relu(b: &mut Builder, a: &Word) -> Word {
    assert!(a.is_signed(), "relu expects a signed word");
    assert!(a.width() >= 2, "relu needs at least a sign and one magnitude bit");
    let not_negative = b.inv(a.msb());
    let bits: Vec<NetId> =
        a.bits()[..a.width() - 1].iter().map(|&n| b.and2(n, not_negative)).collect();
    Word::new(bits, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Netlist;
    use pe_sim::Simulator;

    /// Builds a 2-input datapath test harness and exhaustively checks it
    /// against a reference function.
    fn check2(
        wa: usize,
        sa: bool,
        wc: usize,
        sc: bool,
        gen: impl Fn(&mut Builder, &Word, &Word) -> Word,
        reference: impl Fn(i64, i64) -> i64,
    ) {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", wa), sa);
        let c = Word::new(b.input_bus("c", wc), sc);
        let y = gen(&mut b, &a, &c);
        let signed_out = y.is_signed();
        b.output_bus("y", y.bits());
        let nl: Netlist = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let ra = if sa { -(1i64 << (wa - 1))..(1i64 << (wa - 1)) } else { 0..(1i64 << wa) };
        for va in ra.clone() {
            let rc = if sc { -(1i64 << (wc - 1))..(1i64 << (wc - 1)) } else { 0..(1i64 << wc) };
            for vc in rc {
                sim.set_input("a", va);
                sim.set_input("c", vc);
                sim.eval_comb();
                let got =
                    if signed_out { sim.output_signed("y") } else { sim.output_unsigned("y") };
                assert_eq!(got, reference(va, vc), "a={va} c={vc}");
            }
        }
    }

    #[test]
    fn add_unsigned_unsigned() {
        check2(4, false, 3, false, add_exact, |x, y| x + y);
    }

    #[test]
    fn add_signed_signed() {
        check2(4, true, 4, true, add_exact, |x, y| x + y);
    }

    #[test]
    fn add_mixed_signedness() {
        check2(4, false, 4, true, add_exact, |x, y| x + y);
        check2(3, true, 5, false, add_exact, |x, y| x + y);
    }

    #[test]
    fn sub_all_signedness_combos() {
        check2(4, false, 4, false, sub_exact, |x, y| x - y);
        check2(4, true, 4, true, sub_exact, |x, y| x - y);
        check2(4, false, 4, true, sub_exact, |x, y| x - y);
        check2(4, true, 4, false, sub_exact, |x, y| x - y);
    }

    #[test]
    fn add_const_folds_and_computes() {
        for k in [-7i64, -1, 0, 1, 5, 19] {
            let mut b = Builder::new("dut");
            let a = Word::new(b.input_bus("a", 4), true);
            let y = add_const(&mut b, &a, k);
            let signed_out = y.is_signed();
            b.output_bus("y", y.bits());
            let nl = b.finish();
            let mut sim = Simulator::new(&nl).unwrap();
            for va in -8i64..8 {
                sim.set_input("a", va);
                sim.eval_comb();
                let got =
                    if signed_out { sim.output_signed("y") } else { sim.output_unsigned("y") };
                assert_eq!(got, va + k, "a={va} k={k}");
            }
        }
    }

    #[test]
    fn add_const_zero_is_free() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 4), true);
        let _ = add_const(&mut b, &a, 0);
        assert_eq!(b.finish().num_cells(), 0, "adding zero must cost no gates");
    }

    #[test]
    fn negate_is_exact() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 4), true);
        let y = negate(&mut b, &a);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for va in -8i64..8 {
            sim.set_input("a", va);
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), -va);
        }
    }

    #[test]
    fn negate_unsigned_becomes_signed() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 3), false);
        let y = negate(&mut b, &a);
        assert!(y.is_signed());
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for va in 0i64..8 {
            sim.set_input("a", va);
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), -va);
        }
    }

    #[test]
    fn relu_clamps_negatives() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 5), true);
        let y = relu(&mut b, &a);
        assert!(!y.is_signed());
        assert_eq!(y.width(), 4);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for va in -16i64..16 {
            sim.set_input("a", va);
            sim.eval_comb();
            assert_eq!(sim.output_unsigned("y"), va.max(0));
        }
    }

    #[test]
    #[should_panic(expected = "signed")]
    fn relu_rejects_unsigned() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 4), false);
        let _ = relu(&mut b, &a);
    }

    #[test]
    fn exact_widths_are_minimal() {
        let mut b = Builder::new("dut");
        let a = Word::new(b.input_bus("a", 4), false); // [0, 15]
        let c = Word::new(b.input_bus("c", 4), false); // [0, 15]
        let y = add_exact(&mut b, &a, &c); // [0, 30] -> 5 bits unsigned
        assert_eq!(y.width(), 5);
        assert!(!y.is_signed());
        let s = Word::new(b.input_bus("s", 4), true); // [-8, 7]
        let d = sub_exact(&mut b, &a, &s); // [-7, 23] -> 6 bits signed
        assert_eq!(d.width(), 6);
        assert!(d.is_signed());
    }
}
