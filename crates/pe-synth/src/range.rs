//! Value-range bookkeeping for exact datapath sizing.
//!
//! Every generator in this crate sizes its output so the exact result always
//! fits. The rules live here: a [`Word`]'s representable range follows from
//! its width and signedness, and the range of a result dictates the minimal
//! output format.

use pe_fixed::bits;
use pe_netlist::Word;

/// Inclusive value range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Smallest representable/possible value.
    pub lo: i64,
    /// Largest representable/possible value.
    pub hi: i64,
}

impl Range {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[must_use]
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "invalid range [{lo}, {hi}]");
        Range { lo, hi }
    }

    /// The representable range of a word given its width and signedness.
    #[must_use]
    pub fn of_word(w: &Word) -> Self {
        let width = w.width() as u32;
        if w.is_signed() {
            Range::new(bits::min_signed(width), bits::max_signed(width))
        } else {
            Range::new(0, bits::max_unsigned(width))
        }
    }

    /// Range of the sum of values from `self` and `other`.
    #[must_use]
    pub fn add(&self, other: &Range) -> Range {
        Range::new(self.lo + other.lo, self.hi + other.hi)
    }

    /// Range of the difference `self - other`.
    #[must_use]
    pub fn sub(&self, other: &Range) -> Range {
        Range::new(self.lo - other.hi, self.hi - other.lo)
    }

    /// Range of the product of values from `self` and `other`.
    #[must_use]
    pub fn mul(&self, other: &Range) -> Range {
        let cands =
            [self.lo * other.lo, self.lo * other.hi, self.hi * other.lo, self.hi * other.hi];
        Range::new(*cands.iter().min().expect("non-empty"), *cands.iter().max().expect("non-empty"))
    }

    /// Range scaled by an integer constant.
    #[must_use]
    pub fn mul_const(&self, c: i64) -> Range {
        let a = self.lo * c;
        let b = self.hi * c;
        Range::new(a.min(b), a.max(b))
    }

    /// Whether any value in the range is negative (the result must then be a
    /// signed word).
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.lo < 0
    }

    /// Minimal word width holding every value of the range, under the
    /// signedness implied by [`Range::is_signed`].
    #[must_use]
    pub fn width(&self) -> u32 {
        if self.is_signed() {
            bits::signed_width(self.lo).max(bits::signed_width(self.hi))
        } else {
            bits::unsigned_width(self.hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    #[test]
    fn word_ranges() {
        let mut b = Builder::new("t");
        let u = Word::new(b.input_bus("u", 4), false);
        let s = Word::new(b.input_bus("s", 4), true);
        assert_eq!(Range::of_word(&u), Range::new(0, 15));
        assert_eq!(Range::of_word(&s), Range::new(-8, 7));
    }

    #[test]
    fn arithmetic_ranges() {
        let a = Range::new(0, 15);
        let b = Range::new(-8, 7);
        assert_eq!(a.add(&b), Range::new(-8, 22));
        assert_eq!(a.sub(&b), Range::new(-7, 23));
        assert_eq!(a.mul(&b), Range::new(-120, 105));
        assert_eq!(b.mul_const(-3), Range::new(-21, 24));
    }

    #[test]
    fn widths_are_minimal() {
        assert_eq!(Range::new(0, 15).width(), 4);
        assert_eq!(Range::new(0, 16).width(), 5);
        assert_eq!(Range::new(-8, 7).width(), 4);
        assert_eq!(Range::new(-9, 7).width(), 5);
        assert_eq!(Range::new(-8, 22).width(), 6);
        assert_eq!(Range::new(0, 0).width(), 1);
    }

    #[test]
    fn signedness_from_lo() {
        assert!(Range::new(-1, 5).is_signed());
        assert!(!Range::new(0, 5).is_signed());
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_range_panics() {
        let _ = Range::new(3, 2);
    }
}
