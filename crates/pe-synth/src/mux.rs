//! Word-level multiplexing and bespoke MUX-ROM storage.
//!
//! [`rom_mux`] is the paper's storage component: a coefficient table whose
//! entries are *hardwired* into the data inputs of a MUX tree addressed by
//! the control counter. Because every data input is a constant, the builder's
//! folding collapses each output bit into a small function of the select
//! lines — exactly the "bespoke MUX-based storage" §II describes as cheaper
//! than a crossbar ROM (which would need ADCs).

use crate::range::Range;
use pe_netlist::{Builder, Word};

/// Word-level 2:1 mux `sel ? b1 : a`. Operands are extended to a common
/// format first.
pub fn mux_word(b: &mut Builder, a: &Word, b1: &Word, sel: pe_netlist::NetId) -> Word {
    let ra = Range::of_word(a);
    let rb = Range::of_word(b1);
    let signed = ra.is_signed() || rb.is_signed();
    let w = {
        // Common width: widen so both ranges fit under the common signedness.
        let lo = ra.lo.min(rb.lo);
        let hi = ra.hi.max(rb.hi);
        (Range::new(lo, hi).width() as usize).max(a.width()).max(b1.width())
    };
    let ae = a.extend_to(b, w);
    let be = b1.extend_to(b, w);
    let bits = ae.bits().iter().zip(be.bits()).map(|(&x, &y)| b.mux2(x, y, sel)).collect();
    Word::new(bits, signed)
}

/// Selects among any number of words with a binary select bus
/// (`sel = 0` picks `words[0]`). Entries beyond the table repeat the last
/// entry (those select codes are unreachable when the caller drives `sel`
/// from a modulo counter).
///
/// # Panics
///
/// Panics if `words` is empty or `sel` is too narrow to address it.
pub fn select_word(b: &mut Builder, sel: &Word, words: &[Word]) -> Word {
    assert!(!words.is_empty(), "empty selection table");
    let need = usize::BITS - (words.len() - 1).leading_zeros();
    assert!(
        words.len() == 1 || sel.width() >= need as usize,
        "select bus of {} bits cannot address {} entries",
        sel.width(),
        words.len()
    );
    let mut level: Vec<Word> = words.to_vec();
    let mut bit = 0;
    while level.len() > 1 {
        let s = sel.bit(bit);
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                let m = mux_word(b, &level[i], &level[i + 1], s);
                next.push(m);
                i += 2;
            } else {
                // Odd tail: selecting the high half beyond the table keeps
                // the last entry.
                next.push(level[i].clone());
                i += 1;
            }
        }
        level = next;
        bit += 1;
    }
    level.pop().expect("non-empty level")
}

/// Bespoke MUX-ROM: a table of integer constants addressed by `sel`.
/// The entry width/signedness covers every table value exactly.
///
/// # Panics
///
/// Panics if `table` is empty or `sel` cannot address it.
pub fn rom_mux(b: &mut Builder, sel: &Word, table: &[i64]) -> Word {
    assert!(!table.is_empty(), "empty ROM table");
    let lo = *table.iter().min().expect("non-empty");
    let hi = *table.iter().max().expect("non-empty");
    let rng = Range::new(lo, hi);
    let w = rng.width();
    let words: Vec<Word> =
        table.iter().map(|&v| Word::constant(b, v, w, rng.is_signed())).collect();
    select_word(b, sel, &words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    #[test]
    fn mux_word_selects_and_extends() {
        let mut b = Builder::new("m");
        let a = Word::new(b.input_bus("a", 3), false); // [0,7]
        let c = Word::new(b.input_bus("c", 3), true); // [-4,3]
        let s = b.input("s");
        let y = mux_word(&mut b, &a, &c, s);
        assert!(y.is_signed());
        assert_eq!(y.width(), 4); // [-4, 7]
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for va in 0i64..8 {
            for vc in -4i64..4 {
                for vs in 0i64..2 {
                    sim.set_input("a", va);
                    sim.set_input("c", vc);
                    sim.set_input("s", vs);
                    sim.eval_comb();
                    let want = if vs == 1 { vc } else { va };
                    assert_eq!(sim.output_signed("y"), want);
                }
            }
        }
    }

    #[test]
    fn rom_returns_table_entries() {
        let table = [5i64, -3, 0, 7, -8, 2, 2, 1, -1, 4];
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 4), false);
        let y = rom_mux(&mut b, &sel, &table);
        assert!(y.is_signed());
        b.output_bus("y", y.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, &want) in table.iter().enumerate() {
            sim.set_input("sel", i as i64);
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), want, "entry {i}");
        }
    }

    #[test]
    fn rom_of_identical_entries_is_free() {
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 2), false);
        let y = rom_mux(&mut b, &sel, &[6, 6, 6, 6]);
        b.output_bus("y", y.bits());
        assert_eq!(b.finish().num_cells(), 0, "constant table needs no gates");
        let _ = y;
    }

    #[test]
    fn rom_bit_sharing_keeps_it_small() {
        // 8 entries of 6 bits: at most ~6 gates per bit after folding; the
        // bespoke structure must be far below a naive 7-mux-per-bit tree.
        let table = [17i64, -9, 23, 4, -30, 8, 15, -2];
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 3), false);
        let y = rom_mux(&mut b, &sel, &table);
        b.output_bus("y", y.bits());
        let cells = b.finish().num_cells();
        let naive = 7 * y.width();
        assert!(cells < naive, "bespoke ROM {cells} cells vs naive {naive}");
    }

    #[test]
    fn unsigned_table_yields_unsigned_word() {
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 2), false);
        let y = rom_mux(&mut b, &sel, &[1, 2, 3, 4]);
        assert!(!y.is_signed());
        assert_eq!(y.width(), 3);
    }

    #[test]
    fn non_power_of_two_table() {
        let table = [9i64, -1, 3];
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 2), false);
        let y = rom_mux(&mut b, &sel, &table);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, &want) in table.iter().enumerate() {
            sim.set_input("sel", i as i64);
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), want);
        }
    }

    #[test]
    #[should_panic(expected = "cannot address")]
    fn narrow_select_panics() {
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 1), false);
        let _ = rom_mux(&mut b, &sel, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "empty ROM")]
    fn empty_table_panics() {
        let mut b = Builder::new("rom");
        let sel = Word::new(b.input_bus("sel", 1), false);
        let _ = rom_mux(&mut b, &sel, &[]);
    }
}
