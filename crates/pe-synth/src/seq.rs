//! Sequential building blocks: word registers and modulo counters.
//!
//! These implement the paper's control and voter state: the ⌈log2(n)⌉-bit
//! control counter that sequences support vectors, and the score/index
//! registers of the sequential argmax voter.

use crate::adder::add_const;
use crate::cmp::eq_const;
use pe_netlist::{Builder, NetId, Word};

/// A word-wide register created before its data is known (so feedback
/// structures can be described). Connect exactly once with
/// [`WordReg::connect`].
#[derive(Debug)]
pub struct WordReg {
    q: Word,
    handles: Vec<pe_netlist::build::DeferredDff>,
}

impl WordReg {
    /// Creates a `width`-bit register with optional clock enable and a
    /// power-on value `init` (encoded in two's complement).
    ///
    /// # Panics
    ///
    /// Panics if `init` does not fit the register format.
    #[must_use]
    pub fn new(
        b: &mut Builder,
        width: usize,
        signed: bool,
        enable: Option<NetId>,
        init: i64,
    ) -> Self {
        assert!(width >= 1, "register needs at least one bit");
        if signed {
            assert!(
                init >= -(1i64 << (width - 1)) && init < (1i64 << (width - 1)),
                "init {init} does not fit signed {width} bits"
            );
        } else {
            assert!(
                init >= 0 && (width >= 63 || init < (1i64 << width)),
                "init {init} does not fit unsigned {width} bits"
            );
        }
        let mut bits = Vec::with_capacity(width);
        let mut handles = Vec::with_capacity(width);
        for i in 0..width {
            let bit_init = (init >> i) & 1 == 1;
            let (q, h) = match enable {
                Some(en) => b.dffe_deferred(en, bit_init),
                None => b.dff_deferred(bit_init),
            };
            bits.push(q);
            handles.push(h);
        }
        WordReg { q: Word::new(bits, signed), handles }
    }

    /// The register's output word.
    #[must_use]
    pub fn q(&self) -> &Word {
        &self.q
    }

    /// Connects the register's next-state data. `d` is extended to the
    /// register width if narrower.
    ///
    /// # Panics
    ///
    /// Panics if `d` is wider than the register.
    pub fn connect(self, b: &mut Builder, d: &Word) {
        assert!(
            d.width() <= self.q.width(),
            "data of {} bits does not fit a {}-bit register",
            d.width(),
            self.q.width()
        );
        let de = d.extend_to(b, self.q.width());
        for (h, &bit) in self.handles.into_iter().zip(de.bits()) {
            b.connect_dff(h, bit);
        }
    }
}

/// Output bundle of [`counter_mod`].
#[derive(Debug, Clone)]
pub struct Counter {
    /// The current count (unsigned, `⌈log2(modulus)⌉` bits).
    pub count: Word,
    /// High during the last count of the sequence (`count == modulus - 1`);
    /// the paper's "terminate the multi-cycle process" signal.
    pub last: NetId,
}

/// A modulo-`modulus` up-counter starting at 0: `0, 1, …, modulus-1, 0, …`.
/// When `enable` is given, the counter only advances on enabled cycles.
///
/// # Panics
///
/// Panics if `modulus < 2`.
pub fn counter_mod(b: &mut Builder, modulus: usize, enable: Option<NetId>) -> Counter {
    assert!(modulus >= 2, "counter modulus must be at least 2");
    let width = (usize::BITS - (modulus - 1).leading_zeros()) as usize;
    let reg = WordReg::new(b, width, false, enable, 0);
    let count = reg.q().clone();
    let last = eq_const(b, &count, (modulus - 1) as i64);
    // next = last ? 0 : count + 1, truncated to the register width.
    let inc = add_const(b, &count, 1);
    let not_last = b.inv(last);
    let next_bits: Vec<NetId> = inc.bits()[..width].iter().map(|&n| b.and2(n, not_last)).collect();
    let next = Word::new(next_bits, false);
    reg.connect(b, &next);
    Counter { count, last }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    #[test]
    fn register_holds_and_loads() {
        let mut b = Builder::new("reg");
        let d = Word::new(b.input_bus("d", 4), true);
        let en = b.input("en");
        let reg = WordReg::new(&mut b, 4, true, Some(en), -3);
        b.output_bus("q", reg.q().bits());
        reg.connect(&mut b, &d);
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.output_signed("q"), -3, "power-on value");
        sim.set_input("d", 5);
        sim.set_input("en", 0);
        sim.tick();
        assert_eq!(sim.output_signed("q"), -3, "hold without enable");
        sim.set_input("en", 1);
        sim.tick();
        assert_eq!(sim.output_signed("q"), 5, "load with enable");
    }

    #[test]
    fn register_extends_narrow_data() {
        let mut b = Builder::new("reg");
        let d = Word::new(b.input_bus("d", 2), true);
        let reg = WordReg::new(&mut b, 5, true, None, 0);
        b.output_bus("q", reg.q().bits());
        reg.connect(&mut b, &d);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", -2);
        sim.tick();
        assert_eq!(sim.output_signed("q"), -2, "sign-extended load");
    }

    #[test]
    fn counter_wraps_at_modulus() {
        for modulus in [2usize, 3, 5, 6, 8, 10] {
            let mut b = Builder::new("cnt");
            let c = counter_mod(&mut b, modulus, None);
            b.output_bus("count", c.count.bits());
            b.output("last", c.last);
            let nl = b.finish();
            nl.validate().unwrap();
            let mut sim = Simulator::new(&nl).unwrap();
            for step in 0..(3 * modulus) {
                let want = (step % modulus) as i64;
                assert_eq!(sim.output_unsigned("count"), want, "modulus {modulus} step {step}");
                assert_eq!(
                    sim.output_unsigned("last") == 1,
                    want == (modulus - 1) as i64,
                    "last flag at step {step}"
                );
                sim.tick();
            }
        }
    }

    #[test]
    fn counter_with_enable_freezes() {
        let mut b = Builder::new("cnt");
        let en = b.input("en");
        let c = counter_mod(&mut b, 4, Some(en));
        b.output_bus("count", c.count.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("en", 1);
        sim.tick();
        assert_eq!(sim.output_unsigned("count"), 1);
        sim.set_input("en", 0);
        sim.tick();
        sim.tick();
        assert_eq!(sim.output_unsigned("count"), 1, "frozen while disabled");
        sim.set_input("en", 1);
        sim.tick();
        assert_eq!(sim.output_unsigned("count"), 2);
    }

    #[test]
    fn counter_width_is_log2() {
        let mut b = Builder::new("cnt");
        let c = counter_mod(&mut b, 10, None);
        assert_eq!(c.count.width(), 4);
        b.output_bus("count", c.count.bits());
        let c3 = counter_mod(&mut b, 3, None);
        assert_eq!(c3.count.width(), 2);
        b.output_bus("count3", c3.count.bits());
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "modulus")]
    fn tiny_modulus_panics() {
        let mut b = Builder::new("cnt");
        let _ = counter_mod(&mut b, 1, None);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn bad_init_panics() {
        let mut b = Builder::new("reg");
        let _ = WordReg::new(&mut b, 3, false, None, 9);
    }
}
