//! Multi-operand adder trees and population counts.
//!
//! The compute engine of every classifier in this repository ends in a
//! multi-operand sum `Σ w_i·x_i + b`; [`sum_tree`] reduces the product terms
//! with a balanced binary tree of exact adders. [`popcount`] counts vote bits
//! in One-vs-One voters (baseline \[2\]).

use crate::adder::add_exact;
use pe_netlist::{Builder, NetId, Word};

/// Balanced-tree exact sum of any number of words.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn sum_tree(b: &mut Builder, words: &[Word]) -> Word {
    assert!(!words.is_empty(), "sum of zero operands");
    let mut level: Vec<Word> = words.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for chunk in &mut it {
            match chunk {
                [a, c] => next.push(add_exact(b, a, c)),
                [a] => next.push(a.clone()),
                _ => unreachable!("chunks(2) yields 1 or 2 items"),
            }
        }
        level = next;
    }
    level.pop().expect("non-empty level")
}

/// Serial (left-fold) exact sum of any number of words.
///
/// This is the accumulation structure of the fully-parallel baselines: their
/// flows emit one dedicated adder per coefficient in HDL (`acc = acc + p_i`),
/// and area-driven synthesis keeps the serial chain — which is why the
/// published parallel classifiers clock several times slower than the
/// sequential design, whose compute engine is explicitly architected around
/// a balanced multi-operand adder ([`sum_tree`]).
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn sum_chain(b: &mut Builder, words: &[Word]) -> Word {
    assert!(!words.is_empty(), "sum of zero operands");
    let mut acc = words[0].clone();
    for w in &words[1..] {
        acc = add_exact(b, &acc, w);
    }
    acc
}

/// Population count: an unsigned word holding the number of set bits.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn popcount(b: &mut Builder, bits: &[NetId]) -> Word {
    assert!(!bits.is_empty(), "popcount of zero bits");
    let words: Vec<Word> = bits.iter().map(|&n| Word::new(vec![n], false)).collect();
    sum_tree(b, &words)
}

/// Carry-save (Wallace-style) multi-operand reduction: 3:2 compressors
/// reduce the operand count to two, then a single carry-propagate adder
/// finishes. Shallower than [`sum_tree`] for many operands — the classic
/// "what a timing-driven synthesis would build" structure, provided here for
/// the pipelined/optimized engine variants and ablations.
///
/// # Panics
///
/// Panics if `words` is empty.
pub fn sum_tree_csa(b: &mut Builder, words: &[Word]) -> Word {
    assert!(!words.is_empty(), "sum of zero operands");
    use crate::range::Range;
    // Common exact format for all partial results.
    let total: Range =
        words.iter().map(Range::of_word).fold(Range::new(0, 0), |acc, r| acc.add(&r));
    let w = (total.width() as usize).max(words.iter().map(Word::width).max().unwrap_or(1));
    let signed = total.is_signed() || words.iter().any(Word::is_signed);
    // Extend every row under its *own* signedness (zero- vs sign-extension);
    // after extension the rows are plain two's-complement bit vectors that
    // sum correctly modulo 2^w.
    let mut layer: Vec<Vec<pe_netlist::NetId>> =
        words.iter().map(|word| word.extend_to(b, w).bits().to_vec()).collect();
    // 3:2 compression until two rows remain. All arithmetic is modulo 2^w,
    // which is exact because the true sum fits in w bits.
    while layer.len() > 2 {
        let mut next = Vec::with_capacity(layer.len() * 2 / 3 + 1);
        let mut it = layer.chunks(3);
        for chunk in &mut it {
            match chunk {
                [x, y, z] => {
                    let mut sums = Vec::with_capacity(w);
                    let mut carries = Vec::with_capacity(w);
                    carries.push(b.constant(false));
                    for i in 0..w {
                        let s1 = b.xor2(x[i], y[i]);
                        sums.push(b.xor2(s1, z[i]));
                        if i + 1 < w {
                            carries.push(b.maj3(x[i], y[i], z[i]));
                        }
                    }
                    next.push(sums);
                    next.push(carries);
                }
                rest => next.extend(rest.iter().cloned()),
            }
        }
        layer = next;
    }
    if layer.len() == 1 {
        return Word::new(layer.pop().expect("one row"), signed);
    }
    let a = layer[0].clone();
    let c = layer[1].clone();
    let zero = b.constant(false);
    let bits = crate::adder::ripple_add_bits(b, &a, &c, zero);
    Word::new(bits, signed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    #[test]
    fn sums_mixed_sign_operands_exhaustively() {
        let mut b = Builder::new("tree");
        let a = Word::new(b.input_bus("a", 3), true);
        let c = Word::new(b.input_bus("c", 3), false);
        let d = Word::new(b.input_bus("d", 2), true);
        let y = sum_tree(&mut b, &[a, c, d]);
        assert!(y.is_signed());
        b.output_bus("y", y.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for va in -4i64..4 {
            for vc in 0i64..8 {
                for vd in -2i64..2 {
                    sim.set_input("a", va);
                    sim.set_input("c", vc);
                    sim.set_input("d", vd);
                    sim.eval_comb();
                    assert_eq!(sim.output_signed("y"), va + vc + vd);
                }
            }
        }
    }

    #[test]
    fn single_operand_is_identity() {
        let mut b = Builder::new("tree");
        let a = Word::new(b.input_bus("a", 4), true);
        let y = sum_tree(&mut b, std::slice::from_ref(&a));
        assert_eq!(y, a);
        assert_eq!(b.finish().num_cells(), 0);
    }

    #[test]
    fn many_operands_stay_exact() {
        // 9 unsigned 2-bit operands: max sum 27, needs 5 bits.
        let mut b = Builder::new("tree");
        let words: Vec<Word> =
            (0..9).map(|i| Word::new(b.input_bus(format!("i{i}"), 2), false)).collect();
        let y = sum_tree(&mut b, &words);
        // Widths derive from operand *formats* (not value knowledge), so the
        // result may carry one spare bit over the value-exact minimum of 5.
        assert!(y.width() <= 6);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        // Spot-check with a pseudo-pattern.
        for seed in 0u64..64 {
            let mut total = 0i64;
            for i in 0..9 {
                let v = ((seed.wrapping_mul(2654435761).wrapping_add(i)) >> (i % 3)) as i64 & 3;
                sim.set_input(&format!("i{i}"), v);
                total += v;
            }
            sim.eval_comb();
            assert_eq!(sim.output_unsigned("y"), total);
        }
    }

    #[test]
    fn popcount_counts() {
        let mut b = Builder::new("pc");
        let bits = b.input_bus("x", 6);
        let y = popcount(&mut b, &bits);
        assert!(y.width() <= 4); // value-exact minimum is 3; format-derived may add 1
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0i64..64 {
            sim.set_input("x", v);
            sim.eval_comb();
            assert_eq!(sim.output_unsigned("y"), v.count_ones() as i64);
        }
    }

    #[test]
    fn chain_and_tree_agree_on_values() {
        let mut b = Builder::new("both");
        let words: Vec<Word> =
            (0..5).map(|i| Word::new(b.input_bus(format!("i{i}"), 3), i % 2 == 0)).collect();
        let t = sum_tree(&mut b, &words);
        let c = sum_chain(&mut b, &words);
        b.output_bus("t", t.bits());
        b.output_bus("c", c.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for seed in 0i64..40 {
            let mut total = 0i64;
            for i in 0..5 {
                let v = (seed * 7 + i * 3) % if i % 2 == 0 { 4 } else { 8 }
                    - if i % 2 == 0 { 4 } else { 0 };
                sim.set_input(&format!("i{i}"), v);
                total += v;
            }
            sim.eval_comb();
            assert_eq!(sim.output_signed("t"), total);
            assert_eq!(sim.output_signed("c"), total);
        }
    }

    #[test]
    fn chain_is_deeper_than_tree() {
        // The structural fact behind the baselines' slow clocks.
        let build = |chain: bool| {
            let mut b = Builder::new("d");
            let words: Vec<Word> =
                (0..16).map(|i| Word::new(b.input_bus(format!("i{i}"), 6), true)).collect();
            let s = if chain { sum_chain(&mut b, &words) } else { sum_tree(&mut b, &words) };
            b.output_bus("s", s.bits());
            b.finish()
        };
        let chain_depth = pe_netlist::graph::max_depth(&build(true)).unwrap();
        let tree_depth = pe_netlist::graph::max_depth(&build(false)).unwrap();
        assert!(
            chain_depth > tree_depth + tree_depth / 2,
            "chain {chain_depth} vs tree {tree_depth}"
        );
    }

    #[test]
    fn csa_tree_is_exact() {
        let mut b = Builder::new("csa");
        let words: Vec<Word> =
            (0..7).map(|i| Word::new(b.input_bus(format!("i{i}"), 4), i % 2 == 0)).collect();
        let y = sum_tree_csa(&mut b, &words);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for seed in 0i64..60 {
            let mut total = 0i64;
            for i in 0..7 {
                let v =
                    if i % 2 == 0 { (seed * 5 + i * 3) % 16 - 8 } else { (seed * 3 + i * 7) % 16 };
                sim.set_input(&format!("i{i}"), v);
                total += v;
            }
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), total, "seed {seed}");
        }
    }

    #[test]
    fn csa_is_shallower_than_chain_for_many_operands() {
        let build = |csa: bool| {
            let mut b = Builder::new("d");
            let words: Vec<Word> =
                (0..21).map(|i| Word::new(b.input_bus(format!("i{i}"), 8), true)).collect();
            let s = if csa { sum_tree_csa(&mut b, &words) } else { sum_chain(&mut b, &words) };
            b.output_bus("s", s.bits());
            b.finish()
        };
        let csa_depth = pe_netlist::graph::max_depth(&build(true)).unwrap();
        let chain_depth = pe_netlist::graph::max_depth(&build(false)).unwrap();
        assert!(csa_depth < chain_depth, "csa {csa_depth} vs chain {chain_depth}");
    }

    #[test]
    fn csa_single_operand_is_identity() {
        let mut b = Builder::new("csa1");
        let w = Word::new(b.input_bus("a", 4), true);
        let y = sum_tree_csa(&mut b, std::slice::from_ref(&w));
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for v in -8i64..8 {
            sim.set_input("a", v);
            sim.eval_comb();
            assert_eq!(sim.output_signed("y"), v);
        }
    }

    #[test]
    #[should_panic(expected = "zero operands")]
    fn empty_sum_panics() {
        let mut b = Builder::new("tree");
        let _ = sum_tree(&mut b, &[]);
    }
}
