//! Comparators and argmax blocks.
//!
//! The paper's voter is "essentially a sequential argmax — two registers and
//! a single comparator" (§II); [`gt`] is that comparator. The fully-parallel
//! baselines need a combinational argmax over all classifier scores at once
//! ([`max_argmax`]), which is part of why their critical paths are so long.

use crate::adder::sub_exact;
use crate::mux::mux_word;
use crate::range::Range;
use pe_netlist::{Builder, NetId, Word};

/// `a < b`, exact for any signedness combination (computed as the sign of
/// the exact difference).
pub fn lt(b: &mut Builder, x: &Word, y: &Word) -> NetId {
    let diff = sub_exact(b, x, y);
    if diff.is_signed() {
        diff.msb()
    } else {
        // Difference can never be negative: x >= y always.
        b.constant(false)
    }
}

/// `a > b`.
pub fn gt(b: &mut Builder, x: &Word, y: &Word) -> NetId {
    lt(b, y, x)
}

/// `a >= b`.
pub fn ge(b: &mut Builder, x: &Word, y: &Word) -> NetId {
    let l = lt(b, x, y);
    b.inv(l)
}

/// Bitwise equality after extension to a common format.
pub fn eq(b: &mut Builder, x: &Word, y: &Word) -> NetId {
    let ra = Range::of_word(x);
    let rb = Range::of_word(y);
    let w = (Range::new(ra.lo.min(rb.lo), ra.hi.max(rb.hi)).width() as usize)
        .max(x.width())
        .max(y.width());
    let xe = x.extend_to(b, w);
    let ye = y.extend_to(b, w);
    let diffs: Vec<NetId> = xe.bits().iter().zip(ye.bits()).map(|(&p, &q)| b.xor2(p, q)).collect();
    let any = or_reduce(b, &diffs);
    b.inv(any)
}

/// Equality against an integer constant (folds to AND/INV network).
pub fn eq_const(b: &mut Builder, x: &Word, k: i64) -> NetId {
    let kw = Word::constant(b, k, x.width() as u32, x.is_signed());
    eq(b, x, &kw)
}

/// OR-reduction of a bit list (constant-0 for an empty list).
pub fn or_reduce(b: &mut Builder, bits: &[NetId]) -> NetId {
    match bits {
        [] => b.constant(false),
        [single] => *single,
        _ => {
            let mid = bits.len() / 2;
            let l = or_reduce(b, &bits[..mid]);
            let r = or_reduce(b, &bits[mid..]);
            b.or2(l, r)
        }
    }
}

/// Combinational argmax over `scores`: returns `(best_score, best_index)`.
/// Ties resolve to the lower index (a challenger must be strictly greater to
/// win), matching the sequential voter's `A > B` semantics.
///
/// # Panics
///
/// Panics if `scores` is empty.
pub fn max_argmax(b: &mut Builder, scores: &[Word]) -> (Word, Word) {
    assert!(!scores.is_empty(), "argmax of zero scores");
    let idx_w = (usize::BITS - (scores.len() - 1).leading_zeros()).max(1);
    let mut level: Vec<(Word, Word)> = scores
        .iter()
        .enumerate()
        .map(|(i, s)| (s.clone(), Word::constant(b, i as i64, idx_w, false)))
        .collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut i = 0;
        while i < level.len() {
            if i + 1 < level.len() {
                let (ls, li) = level[i].clone();
                let (rs, ri) = level[i + 1].clone();
                // The right contender has the higher index: it must be
                // strictly greater to displace the left one.
                let challenger_wins = gt(b, &rs, &ls);
                let s = mux_word(b, &ls, &rs, challenger_wins);
                let ix = mux_word(b, &li, &ri, challenger_wins);
                next.push((s, ix));
                i += 2;
            } else {
                next.push(level[i].clone());
                i += 1;
            }
        }
        level = next;
    }
    level.pop().expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    fn check_cmp(
        sa: bool,
        sb: bool,
        gen: impl Fn(&mut Builder, &Word, &Word) -> NetId,
        reference: impl Fn(i64, i64) -> bool,
    ) {
        let mut b = Builder::new("cmp");
        let x = Word::new(b.input_bus("x", 4), sa);
        let y = Word::new(b.input_bus("y", 4), sb);
        let r = gen(&mut b, &x, &y);
        b.output("r", r);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        let rx = if sa { -8i64..8 } else { 0i64..16 };
        for vx in rx.clone() {
            let ry = if sb { -8i64..8 } else { 0i64..16 };
            for vy in ry {
                sim.set_input("x", vx);
                sim.set_input("y", vy);
                sim.eval_comb();
                assert_eq!(sim.output_unsigned("r") == 1, reference(vx, vy), "x={vx} y={vy}");
            }
        }
    }

    #[test]
    fn lt_gt_ge_signed() {
        check_cmp(true, true, lt, |a, b| a < b);
        check_cmp(true, true, gt, |a, b| a > b);
        check_cmp(true, true, ge, |a, b| a >= b);
    }

    #[test]
    fn comparisons_mixed_signedness() {
        check_cmp(false, true, lt, |a, b| a < b);
        check_cmp(true, false, gt, |a, b| a > b);
        check_cmp(false, false, ge, |a, b| a >= b);
    }

    #[test]
    fn eq_matches() {
        check_cmp(true, true, eq, |a, b| a == b);
        check_cmp(false, true, eq, |a, b| a == b);
    }

    #[test]
    fn eq_const_is_cheap_decode() {
        let mut b = Builder::new("eqc");
        let x = Word::new(b.input_bus("x", 3), false);
        let r = eq_const(&mut b, &x, 5);
        b.output("r", r);
        let nl = b.finish();
        // A 3-bit constant decode costs a handful of gates, not an adder.
        assert!(nl.num_cells() <= 6, "decode used {} cells", nl.num_cells());
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0i64..8 {
            sim.set_input("x", v);
            sim.eval_comb();
            assert_eq!(sim.output_unsigned("r") == 1, v == 5);
        }
    }

    #[test]
    fn or_reduce_handles_sizes() {
        let mut b = Builder::new("or");
        let bits = b.input_bus("x", 5);
        let r = or_reduce(&mut b, &bits);
        b.output("r", r);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0i64..32 {
            sim.set_input("x", v);
            sim.eval_comb();
            assert_eq!(sim.output_unsigned("r") == 1, v != 0);
        }
    }

    #[test]
    fn argmax_finds_max_with_tie_to_lowest() {
        let mut b = Builder::new("am");
        let scores: Vec<Word> =
            (0..5).map(|i| Word::new(b.input_bus(format!("s{i}"), 4), true)).collect();
        let (best, idx) = max_argmax(&mut b, &scores);
        b.output_bus("best", best.bits());
        b.output_bus("idx", idx.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let cases: Vec<Vec<i64>> = vec![
            vec![0, 0, 0, 0, 0],
            vec![-8, -1, 3, 3, 2],
            vec![7, -8, 7, 0, 1],
            vec![-1, -2, -3, -4, -5],
            vec![1, 2, 3, 4, 5],
            vec![5, 4, 3, 2, 1],
        ];
        for case in cases {
            for (i, &v) in case.iter().enumerate() {
                sim.set_input(&format!("s{i}"), v);
            }
            sim.eval_comb();
            let max = *case.iter().max().unwrap();
            let want_idx = case.iter().position(|&v| v == max).unwrap() as i64;
            assert_eq!(sim.output_signed("best"), max, "{case:?}");
            assert_eq!(sim.output_unsigned("idx"), want_idx, "{case:?}");
        }
    }

    #[test]
    fn argmax_single_score() {
        let mut b = Builder::new("am1");
        let s = Word::new(b.input_bus("s", 4), true);
        let (best, idx) = max_argmax(&mut b, std::slice::from_ref(&s));
        assert_eq!(best, s);
        assert_eq!(idx.width(), 1);
    }
}
