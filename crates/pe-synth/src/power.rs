//! Power analysis: static + activity-based dynamic power with a
//! depth-dependent glitch model.
//!
//! `P = Σ_cells P_static(cell)
//!    + Σ_cells E_sw(cell) · wire(cell) · glitch(cell) · α(out) · f_clk`
//!
//! where `α(out)` is the simulation-measured toggle rate of the cell's output
//! net (toggles per clock cycle, from [`pe_sim::ActivityReport`]), `wire`
//! charges extra switched capacitance per fanout pin, and `glitch` amplifies
//! functional toggles by combinational depth — deep unregistered arithmetic
//! (the fully-parallel baselines) produces spurious transitions that a
//! zero-delay functional simulation cannot see, and this factor restores
//! them. Registers do not glitch (`depth = 0` at their outputs).

use pe_cells::{EgfetLibrary, TechParams};
use pe_netlist::{Netlist, NetlistError};
use pe_sim::ActivityReport;

/// Power report with per-group breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Static (resistive-load) power, mW.
    pub static_mw: f64,
    /// Activity-dependent dynamic power, mW.
    pub dynamic_mw: f64,
    /// Total power, mW.
    pub total_mw: f64,
    /// `(group name, total mW)` in group-declaration order.
    pub by_group: Vec<(String, f64)>,
}

impl PowerBreakdown {
    /// Power of one named group (0 if the group does not exist).
    #[must_use]
    pub fn group_mw(&self, name: &str) -> f64 {
        self.by_group.iter().find(|(g, _)| g == name).map(|(_, p)| *p).unwrap_or(0.0)
    }
}

/// Runs power analysis at clock frequency `freq_hz` with the given measured
/// activity.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic designs (depths
/// are needed for the glitch model).
///
/// # Panics
///
/// Panics if the activity report does not cover the netlist's nets.
pub fn analyze_power(
    nl: &Netlist,
    lib: &EgfetLibrary,
    tech: &TechParams,
    activity: &ActivityReport,
    freq_hz: f64,
) -> Result<PowerBreakdown, NetlistError> {
    assert!(
        activity.num_nets() >= nl.num_nets(),
        "activity report covers {} nets, netlist has {}",
        activity.num_nets(),
        nl.num_nets()
    );
    let depth = pe_netlist::graph::levelize(nl)?;
    let fanout = pe_netlist::graph::fanout_counts(nl);
    let mut static_uw = 0.0f64;
    let mut dynamic_nw = 0.0f64;
    let mut group_uw = vec![0.0f64; nl.group_names().len()];
    for (id, cell) in nl.cells() {
        let p = lib.params(cell.kind());
        static_uw += p.static_power_uw;
        let alpha = activity.factor(cell.output());
        let extra_fanout = fanout[cell.output().index()].saturating_sub(1) as f64;
        let wire = 1.0 + tech.wire_energy_factor_per_fanout * extra_fanout;
        let glitch = if cell.kind().is_sequential() {
            1.0
        } else {
            1.0 + tech.glitch_per_level * f64::from(depth[id.index()])
        };
        let dyn_cell_nw = p.switch_energy_nj * wire * glitch * alpha * freq_hz;
        dynamic_nw += dyn_cell_nw;
        group_uw[cell.group().index()] += p.static_power_uw + dyn_cell_nw / 1000.0;
    }
    let static_mw = static_uw / 1000.0;
    let dynamic_mw = dynamic_nw / 1e6;
    Ok(PowerBreakdown {
        static_mw,
        dynamic_mw,
        total_mw: static_mw + dynamic_mw,
        by_group: nl
            .group_names()
            .iter()
            .zip(&group_uw)
            .map(|(n, &p)| (n.clone(), p / 1000.0))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;
    use pe_sim::Simulator;

    fn xor_chain(len: usize) -> Netlist {
        let mut b = Builder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let mut n = x;
        for i in 0..len {
            n = b.xor2(n, if i % 2 == 0 { y } else { x });
            n = b.inv(n);
        }
        b.output("o", n);
        b.finish()
    }

    fn measure(nl: &Netlist, vectors: &[(i64, i64)]) -> ActivityReport {
        let mut sim = Simulator::new(nl).unwrap();
        sim.enable_activity();
        for &(a, b) in vectors {
            sim.set_input("x", a);
            sim.set_input("y", b);
            sim.sample_comb();
        }
        sim.activity()
    }

    #[test]
    fn static_power_scales_with_cells() {
        let small = xor_chain(3);
        let big = xor_chain(12);
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        let quiet = |nl: &Netlist| ActivityReport::uniform(nl.num_nets(), 100, 0.0);
        let ps = analyze_power(&small, &lib, &tech, &quiet(&small), 10.0).unwrap();
        let pb = analyze_power(&big, &lib, &tech, &quiet(&big), 10.0).unwrap();
        assert_eq!(ps.dynamic_mw, 0.0);
        assert!(pb.static_mw > ps.static_mw * 3.0);
        assert_eq!(ps.total_mw, ps.static_mw);
    }

    #[test]
    fn dynamic_power_scales_with_frequency_and_activity() {
        let nl = xor_chain(6);
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        // Toggling input every cycle produces activity on every net.
        let act = measure(&nl, &[(0, 0), (1, 0), (0, 0), (1, 0), (0, 1), (1, 1)]);
        let p10 = analyze_power(&nl, &lib, &tech, &act, 10.0).unwrap();
        let p40 = analyze_power(&nl, &lib, &tech, &act, 40.0).unwrap();
        assert!(p10.dynamic_mw > 0.0);
        assert!((p40.dynamic_mw / p10.dynamic_mw - 4.0).abs() < 1e-9);
        assert_eq!(p10.static_mw, p40.static_mw);
    }

    #[test]
    fn idle_inputs_mean_no_dynamic_power() {
        let nl = xor_chain(6);
        let act = measure(&nl, &[(1, 1), (1, 1), (1, 1), (1, 1)]);
        let p = analyze_power(&nl, &EgfetLibrary::standard(), &TechParams::standard(), &act, 25.0)
            .unwrap();
        // First sample may toggle from the reset state; afterwards nothing
        // switches, so dynamic power is a small fraction of static.
        assert!(p.dynamic_mw < p.static_mw);
    }

    #[test]
    fn glitch_model_penalizes_depth() {
        // Same cell count, different depth: a chain vs a balanced tree.
        let chain = {
            let mut b = Builder::new("chain");
            let xs = b.input_bus("x", 8);
            let mut n = xs[0];
            for &x in &xs[1..] {
                n = b.xor2(n, x);
            }
            b.output("o", n);
            b.finish()
        };
        let tree = {
            let mut b = Builder::new("tree");
            let xs = b.input_bus("x", 8);
            let mut level = xs;
            while level.len() > 1 {
                let mut next = Vec::new();
                for pair in level.chunks(2) {
                    next.push(if pair.len() == 2 { b.xor2(pair[0], pair[1]) } else { pair[0] });
                }
                level = next;
            }
            b.output("o", level[0]);
            b.finish()
        };
        assert_eq!(chain.num_cells(), tree.num_cells());
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        // Equal uniform activity isolates the glitch factor.
        let act_c = ActivityReport::uniform(chain.num_nets(), 10, 0.5);
        let act_t = ActivityReport::uniform(tree.num_nets(), 10, 0.5);
        let pc = analyze_power(&chain, &lib, &tech, &act_c, 20.0).unwrap();
        let pt = analyze_power(&tree, &lib, &tech, &act_t, 20.0).unwrap();
        assert!(
            pc.dynamic_mw > pt.dynamic_mw,
            "deep chain must burn more glitch power than balanced tree"
        );
    }

    #[test]
    fn group_breakdown_sums_to_total() {
        let mut b = Builder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.group("a");
        let g1 = b.xor2(x, y);
        b.group("b");
        let g2 = b.and2(g1, x);
        b.output("o", g2);
        let nl = b.finish();
        let act = ActivityReport::uniform(nl.num_nets(), 10, 0.3);
        let p = analyze_power(&nl, &EgfetLibrary::standard(), &TechParams::standard(), &act, 30.0)
            .unwrap();
        let sum: f64 = p.by_group.iter().map(|(_, v)| v).sum();
        assert!((sum - p.total_mw).abs() < 1e-9);
        assert!(p.group_mw("a") > 0.0);
        assert!(p.group_mw("b") > 0.0);
        assert_eq!(p.group_mw("zzz"), 0.0);
    }

    #[test]
    fn registers_do_not_glitch() {
        let mut b = Builder::new("r");
        let d = b.input("d");
        // Bury a register deep in logic; its glitch factor must stay 1.
        let mut n = d;
        for _ in 0..5 {
            let nn = b.xor2(n, d);
            n = b.inv(nn);
        }
        let q = b.dff(n, false);
        b.output("q", q);
        let nl = b.finish();
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard().with_glitch(10.0); // exaggerate
        let act = ActivityReport::uniform(nl.num_nets(), 10, 0.5);
        let p = analyze_power(&nl, &lib, &tech, &act, 10.0).unwrap();
        // With glitch=10 and depth ~10, comb dynamic dominates; just verify
        // the run completes and is finite — the register contributed only
        // its un-amplified share.
        assert!(p.total_mw.is_finite());
        assert!(p.dynamic_mw > 0.0);
    }
}
