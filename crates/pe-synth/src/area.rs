//! Area accounting.

use pe_cells::EgfetLibrary;
use pe_netlist::{CellKind, Netlist};
use std::collections::BTreeMap;

/// Area report with per-group and per-kind breakdowns.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaBreakdown {
    /// Total printed area in cm².
    pub total_cm2: f64,
    /// Cell-instance count.
    pub num_cells: usize,
    /// `(group name, area cm²)` in group-declaration order.
    pub by_group: Vec<(String, f64)>,
    /// `(cell kind, instances, area cm²)` sorted by kind.
    pub by_kind: Vec<(CellKind, usize, f64)>,
}

/// Sums cell areas over the library. 1 cm² = 100 mm².
#[must_use]
pub fn analyze_area(nl: &Netlist, lib: &EgfetLibrary) -> AreaBreakdown {
    let mut total_mm2 = 0.0;
    let mut group_mm2 = vec![0.0f64; nl.group_names().len()];
    let mut kind_stats: BTreeMap<CellKind, (usize, f64)> = BTreeMap::new();
    for (_, cell) in nl.cells() {
        let a = lib.params(cell.kind()).area_mm2;
        total_mm2 += a;
        group_mm2[cell.group().index()] += a;
        let e = kind_stats.entry(cell.kind()).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += a;
    }
    AreaBreakdown {
        total_cm2: total_mm2 / 100.0,
        num_cells: nl.num_cells(),
        by_group: nl
            .group_names()
            .iter()
            .zip(&group_mm2)
            .map(|(n, &a)| (n.clone(), a / 100.0))
            .collect(),
        by_kind: kind_stats.into_iter().map(|(k, (n, a))| (k, n, a / 100.0)).collect(),
    }
}

impl AreaBreakdown {
    /// Area of one named group (0 if the group does not exist).
    #[must_use]
    pub fn group_cm2(&self, name: &str) -> f64 {
        self.by_group.iter().find(|(g, _)| g == name).map(|(_, a)| *a).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    #[test]
    fn sums_match_library() {
        let mut b = Builder::new("a");
        let x = b.input("x");
        let y = b.input("y");
        b.group("engine");
        let g1 = b.xor2(x, y);
        b.group("voter");
        let g2 = b.and2(x, y);
        b.output("g1", g1);
        b.output("g2", g2);
        let nl = b.finish();
        let lib = EgfetLibrary::standard();
        let area = analyze_area(&nl, &lib);
        let expect =
            (lib.params(CellKind::Xor2).area_mm2 + lib.params(CellKind::And2).area_mm2) / 100.0;
        assert!((area.total_cm2 - expect).abs() < 1e-12);
        assert_eq!(area.num_cells, 2);
        assert!(
            (area.group_cm2("engine") - lib.params(CellKind::Xor2).area_mm2 / 100.0).abs() < 1e-12
        );
        assert!(
            (area.group_cm2("voter") - lib.params(CellKind::And2).area_mm2 / 100.0).abs() < 1e-12
        );
        assert_eq!(area.group_cm2("nonexistent"), 0.0);
        assert_eq!(area.by_kind.len(), 2);
    }

    #[test]
    fn group_areas_sum_to_total() {
        let mut b = Builder::new("a");
        let xs = b.input_bus("x", 8);
        b.group("g1");
        let mut acc = xs[0];
        for &x in &xs[1..4] {
            acc = b.xor2(acc, x);
        }
        b.group("g2");
        for &x in &xs[4..] {
            acc = b.and2(acc, x);
        }
        b.output("o", acc);
        let nl = b.finish();
        let area = analyze_area(&nl, &EgfetLibrary::standard());
        let group_sum: f64 = area.by_group.iter().map(|(_, a)| a).sum();
        assert!((group_sum - area.total_cm2).abs() < 1e-12);
        let kind_sum: f64 = area.by_kind.iter().map(|(_, _, a)| a).sum();
        assert!((kind_sum - area.total_cm2).abs() < 1e-12);
    }

    #[test]
    fn empty_design_zero_area() {
        let nl = Builder::new("e").finish();
        let area = analyze_area(&nl, &EgfetLibrary::standard());
        assert_eq!(area.total_cm2, 0.0);
        assert_eq!(area.num_cells, 0);
    }
}
