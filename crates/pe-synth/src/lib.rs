//! Datapath generators and a miniature synthesis/analysis flow for printed
//! bespoke circuits.
//!
//! This crate stands in for Synopsys Design Compiler and PrimeTime in the
//! paper's methodology:
//!
//! * **Generators** ([`adder`], [`mult`], [`tree`], [`mux`], [`cmp`], [`seq`])
//!   elaborate arithmetic RTL directly into optimized gate-level netlists.
//!   Every generator produces *exact* integer arithmetic — output widths are
//!   derived from value ranges, so no silent overflow exists anywhere in a
//!   generated datapath. Bespoke tricks used by the printed-classifier papers
//!   are first-class: constant-coefficient multipliers are CSD shift-add
//!   networks, and MUX-ROM tables collapse through the builder's constant
//!   folding.
//! * **Analyses** ([`sta`], [`area`], [`power`]) compute clock frequency
//!   (static timing with a wire-load model), printed area, and power
//!   (simulation-measured switching activity + depth-dependent glitch model,
//!   over the [`pe_cells::EgfetLibrary`]).
//!
//! # Example: a bespoke constant multiplier
//!
//! ```
//! use pe_netlist::{Builder, Word};
//! use pe_synth::mult;
//!
//! let mut b = Builder::new("x23");
//! let x = Word::new(b.input_bus("x", 4), false);
//! let p = mult::mul_const(&mut b, &x, 23); // 23 = 16 + 8 - 1 in CSD
//! b.output_bus("p", p.bits());
//! let nl = b.finish();
//! assert!(nl.num_cells() > 0);
//! ```

pub mod adder;
pub mod area;
pub mod cmp;
pub mod mult;
pub mod mux;
pub mod power;
pub mod range;
pub mod seq;
pub mod sta;
pub mod tree;

pub use area::{analyze_area, AreaBreakdown};
pub use power::{analyze_power, PowerBreakdown};
pub use sta::{analyze_timing, TimingReport};
