//! Multipliers: generic array multipliers and bespoke constant-coefficient
//! (CSD shift-add) multipliers.
//!
//! The distinction between these two is the crux of the paper:
//!
//! * Fully-parallel bespoke classifiers (baselines \[2\], \[3\]) hardwire
//!   every trained coefficient, so each product needs only a
//!   [`mul_const`] — a few shift-adds, very cheap per instance, but one
//!   instance per coefficient.
//! * The paper's sequential SVM fetches a *different* coefficient each cycle
//!   from MUX storage, so its folded compute engine must instantiate
//!   [`mul_generic`] — costlier per instance, but only `m` instances total
//!   instead of `m · #classifiers`.

use crate::adder::{add_exact, negate, ripple_add_bits, sub_exact};
use crate::range::Range;
use pe_fixed::bits as fxbits;
use pe_netlist::{Builder, NetId, Word};

/// Exact generic multiplier `x * y` (array of AND partial products reduced by
/// ripple adders). Both operands may be signed or unsigned; the result range
/// and signedness are exact.
pub fn mul_generic(b: &mut Builder, x: &Word, y: &Word) -> Word {
    let rng = Range::of_word(x).mul(&Range::of_word(y));
    let w = rng.width() as usize;
    // Accumulate into `w` bits; every intermediate value fits because the
    // final range does and partial sums of a shift-add never exceed the
    // extremes of the full product for these operand ranges... except they
    // can transiently (e.g. positive partial sums before subtracting the
    // signed MSB row). Accumulate with one guard bit and truncate: values
    // are computed mod 2^(w+1) and the final result fits w bits, so
    // truncation of the exact two's-complement accumulator is correct.
    let acc_w = w + 1;
    let ye = y.extend_to(b, acc_w);
    let zero = b.constant(false);
    let mut acc: Vec<NetId> = vec![zero; acc_w];
    for i in 0..x.width() {
        let xi = x.bit(i);
        // Partial product: (y << i) gated by x_i, at accumulator width.
        let mut pp: Vec<NetId> = Vec::with_capacity(acc_w);
        for j in 0..acc_w {
            if j < i {
                pp.push(zero);
            } else {
                let yb = ye.bits()[j - i];
                pp.push(b.and2(xi, yb));
            }
        }
        let top_signed_row = x.is_signed() && i == x.width() - 1;
        if top_signed_row {
            // The MSB of a signed multiplicand has weight -2^i: subtract.
            let inv_pp: Vec<NetId> = pp.iter().map(|&n| b.inv(n)).collect();
            let one = b.constant(true);
            acc = ripple_add_bits(b, &acc, &inv_pp, one);
        } else {
            acc = ripple_add_bits(b, &acc, &pp, zero);
        }
    }
    acc.truncate(w);
    Word::new(acc, rng.is_signed())
}

/// Exact bespoke constant-coefficient multiplier `x * c` as a canonical
/// signed digit (CSD) shift-add network. `c == 0` yields a 1-bit constant
/// zero.
pub fn mul_const(b: &mut Builder, x: &Word, c: i64) -> Word {
    let rng = Range::of_word(x).mul_const(c);
    if c == 0 {
        return Word::new(vec![b.constant(false)], false);
    }
    let terms = fxbits::csd(c);
    let mut acc: Option<Word> = None;
    for (shift, positive) in terms {
        let term = x.shl(b, shift as usize);
        acc = Some(match acc {
            None => {
                if positive {
                    term
                } else {
                    negate(b, &term)
                }
            }
            Some(a) => {
                if positive {
                    add_exact(b, &a, &term)
                } else {
                    sub_exact(b, &a, &term)
                }
            }
        });
    }
    let acc = acc.expect("c != 0 has at least one CSD term");
    // The CSD chain may be a bit wider than the exact range requires
    // (intermediate terms overshoot); truncate to the minimal width.
    let w = rng.width() as usize;
    debug_assert!(acc.width() >= w);
    acc.truncate(w).with_signedness(rng.is_signed())
}

/// Gate-cost heuristic of a bespoke constant multiplier: number of CSD
/// add/subtract terms. Used by approximation passes (baseline \[3\]) to pick
/// which coefficients to prune.
#[must_use]
pub fn const_mult_cost(c: i64) -> usize {
    fxbits::csd_cost(c)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_sim::Simulator;

    fn check_generic(wx: usize, sx: bool, wy: usize, sy: bool) {
        let mut b = Builder::new("mul");
        let x = Word::new(b.input_bus("x", wx), sx);
        let y = Word::new(b.input_bus("y", wy), sy);
        let p = mul_generic(&mut b, &x, &y);
        let signed_out = p.is_signed();
        b.output_bus("p", p.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let rx = if sx { -(1i64 << (wx - 1))..(1i64 << (wx - 1)) } else { 0..(1i64 << wx) };
        for vx in rx.clone() {
            let ry = if sy { -(1i64 << (wy - 1))..(1i64 << (wy - 1)) } else { 0..(1i64 << wy) };
            for vy in ry {
                sim.set_input("x", vx);
                sim.set_input("y", vy);
                sim.eval_comb();
                let got =
                    if signed_out { sim.output_signed("p") } else { sim.output_unsigned("p") };
                assert_eq!(got, vx * vy, "x={vx} y={vy}");
            }
        }
    }

    #[test]
    fn generic_unsigned_x_signed() {
        // The paper's compute-engine configuration: unsigned activations
        // times signed weights.
        check_generic(4, false, 5, true);
    }

    #[test]
    fn generic_unsigned_unsigned() {
        check_generic(4, false, 4, false);
    }

    #[test]
    fn generic_signed_signed() {
        check_generic(4, true, 4, true);
    }

    #[test]
    fn generic_signed_x_unsigned() {
        check_generic(4, true, 3, false);
    }

    #[test]
    fn generic_degenerate_widths() {
        check_generic(1, false, 4, true);
        check_generic(4, true, 1, false);
    }

    fn check_const(wx: usize, sx: bool, c: i64) {
        let mut b = Builder::new("mulc");
        let x = Word::new(b.input_bus("x", wx), sx);
        let p = mul_const(&mut b, &x, c);
        let signed_out = p.is_signed();
        b.output_bus("p", p.bits());
        let nl = b.finish();
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let rx = if sx { -(1i64 << (wx - 1))..(1i64 << (wx - 1)) } else { 0..(1i64 << wx) };
        for vx in rx {
            sim.set_input("x", vx);
            sim.eval_comb();
            let got = if signed_out { sim.output_signed("p") } else { sim.output_unsigned("p") };
            assert_eq!(got, vx * c, "x={vx} c={c}");
        }
    }

    #[test]
    fn const_zero_one_minus_one() {
        check_const(4, false, 0);
        check_const(4, false, 1);
        check_const(4, false, -1);
        check_const(4, true, 0);
        check_const(4, true, -1);
    }

    #[test]
    fn const_powers_of_two_cost_nothing() {
        let mut b = Builder::new("mulc");
        let x = Word::new(b.input_bus("x", 4), false);
        let p = mul_const(&mut b, &x, 8);
        b.output_bus("p", p.bits());
        assert_eq!(b.finish().num_cells(), 0, "x*8 is wiring only");
        check_const(4, false, 8);
        check_const(4, true, -16);
    }

    #[test]
    fn const_general_coefficients() {
        for c in [3i64, 7, -7, 23, -23, 45, 100, -127] {
            check_const(4, false, c);
            check_const(3, true, c);
        }
    }

    #[test]
    fn const_mult_cheaper_than_generic() {
        // The bespoke premise: a hardwired coefficient costs far fewer gates
        // than a generic multiplier of the same width.
        let mut b1 = Builder::new("c");
        let x1 = Word::new(b1.input_bus("x", 8), false);
        let _ = mul_const(&mut b1, &x1, 93);
        let const_cells = b1.finish().num_cells();

        let mut b2 = Builder::new("g");
        let x2 = Word::new(b2.input_bus("x", 8), false);
        let y2 = Word::new(b2.input_bus("y", 8), true);
        let _ = mul_generic(&mut b2, &x2, &y2);
        let generic_cells = b2.finish().num_cells();

        assert!(
            const_cells * 2 < generic_cells,
            "const mult ({const_cells}) should be well under half of generic ({generic_cells})"
        );
    }

    #[test]
    fn cost_heuristic_matches_csd() {
        assert_eq!(const_mult_cost(0), 0);
        assert_eq!(const_mult_cost(8), 1);
        assert_eq!(const_mult_cost(7), 2);
        assert_eq!(const_mult_cost(45), 4); // 45 = 32+16-4+1 -> digits at 0,2,4,6? verify: 45=101101b, CSD has 4 terms
    }
}
