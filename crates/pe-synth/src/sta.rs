//! Static timing analysis: the PrimeTime stand-in.
//!
//! Arrival times propagate through the combinational core in topological
//! order; cell delays come from the [`EgfetLibrary`], wires add a per-fanout
//! penalty. The clock period is the worst endpoint arrival (register data
//! pins plus setup, and primary outputs) divided by the timing guard band,
//! and the reported frequency is its reciprocal — in the printed regime this
//! lands in the tens of hertz the paper reports.

use pe_cells::{EgfetLibrary, TechParams};
use pe_netlist::{CellKind, Driver, Netlist, NetlistError};

/// Result of static timing analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingReport {
    /// Worst data arrival time (ms) over all timing endpoints.
    pub critical_path_ms: f64,
    /// Clock period after the guard band (ms).
    pub clock_period_ms: f64,
    /// Achievable clock frequency (Hz).
    pub freq_hz: f64,
    /// Maximum combinational logic depth in cells.
    pub max_depth: u32,
}

/// Fraction of a flip-flop's propagation delay charged as setup time.
const SETUP_FRACTION: f64 = 0.5;

/// Runs static timing analysis.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic designs.
pub fn analyze_timing(
    nl: &Netlist,
    lib: &EgfetLibrary,
    tech: &TechParams,
) -> Result<TimingReport, NetlistError> {
    let order = pe_netlist::graph::topo_order(nl)?;
    let fanout = pe_netlist::graph::fanout_counts(nl);
    let mut arrival = vec![0.0f64; nl.num_nets()];
    // Register outputs launch at clk->q.
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            arrival[cell.output().index()] = lib.params(cell.kind()).delay_ms;
        }
    }
    for c in &order {
        let cell = nl.cell(*c);
        let mut t = 0.0f64;
        for &inp in cell.inputs() {
            t = t.max(arrival[inp.index()]);
        }
        let out = cell.output().index();
        let extra_fanout = fanout[out].saturating_sub(1) as f64;
        arrival[out] =
            t + lib.params(cell.kind()).delay_ms + tech.wire_delay_ms_per_fanout * extra_fanout;
    }
    // Endpoints: register data/enable pins (+ setup) and primary outputs.
    let mut worst = 0.0f64;
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            let setup = lib.params(cell.kind()).delay_ms * SETUP_FRACTION;
            for &inp in cell.inputs() {
                worst = worst.max(arrival[inp.index()] + setup);
            }
        }
    }
    for p in nl.output_ports() {
        for &b in p.bits() {
            worst = worst.max(arrival[b.index()]);
        }
    }
    let depth = pe_netlist::graph::max_depth(nl)?;
    // Degenerate (empty) designs: report a nominal fast clock.
    let critical = if worst > 0.0 { worst } else { lib.params(CellKind::Inv).delay_ms };
    let period = critical / (1.0 - tech.timing_margin);
    Ok(TimingReport {
        critical_path_ms: critical,
        clock_period_ms: period,
        freq_hz: 1000.0 / period,
        max_depth: depth,
    })
}

/// Arrival time of every net (ms), exposed for path debugging and for the
/// power model's glitch weighting.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] for cyclic designs.
pub fn arrival_times(
    nl: &Netlist,
    lib: &EgfetLibrary,
    tech: &TechParams,
) -> Result<Vec<f64>, NetlistError> {
    let order = pe_netlist::graph::topo_order(nl)?;
    let fanout = pe_netlist::graph::fanout_counts(nl);
    let mut arrival = vec![0.0f64; nl.num_nets()];
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            arrival[cell.output().index()] = lib.params(cell.kind()).delay_ms;
        }
    }
    for c in &order {
        let cell = nl.cell(*c);
        let mut t = 0.0f64;
        for &inp in cell.inputs() {
            t = t.max(arrival[inp.index()]);
        }
        let out = cell.output().index();
        let extra_fanout = fanout[out].saturating_sub(1) as f64;
        arrival[out] =
            t + lib.params(cell.kind()).delay_ms + tech.wire_delay_ms_per_fanout * extra_fanout;
    }
    let _ = Driver::Input; // (documents that input nets launch at t=0)
    Ok(arrival)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    fn lib() -> EgfetLibrary {
        EgfetLibrary::standard()
    }

    fn tech() -> TechParams {
        TechParams::standard()
    }

    #[test]
    fn chain_delay_accumulates() {
        let mut b = Builder::new("chain");
        let x = b.input("x");
        let y = b.input("y");
        let mut n = x;
        for i in 0..10 {
            let other = b.xor2(n, y);
            n = b.and2(other, if i % 2 == 0 { x } else { y });
        }
        b.output("o", n);
        let nl = b.finish();
        let t = analyze_timing(&nl, &lib(), &tech()).unwrap();
        // 10 xor + ~9 inv (first inv may fold), depth ≈ 19-20.
        assert!(t.max_depth >= 15);
        let lower_bound = 10.0 * lib().params(CellKind::Xor2).delay_ms;
        assert!(t.critical_path_ms > lower_bound);
        assert!(t.freq_hz > 0.0);
        assert!((t.clock_period_ms - t.critical_path_ms / 0.9).abs() < 1e-9);
    }

    #[test]
    fn deeper_logic_is_slower() {
        let build_chain = |len: usize| {
            let mut b = Builder::new("chain");
            let x = b.input("x");
            let y = b.input("y");
            let mut n = x;
            for _ in 0..len {
                n = b.xor2(n, y);
                n = b.and2(n, x);
            }
            b.output("o", n);
            b.finish()
        };
        let short = analyze_timing(&build_chain(3), &lib(), &tech()).unwrap();
        let long = analyze_timing(&build_chain(12), &lib(), &tech()).unwrap();
        assert!(long.critical_path_ms > short.critical_path_ms * 2.0);
        assert!(long.freq_hz < short.freq_hz);
    }

    #[test]
    fn registers_cut_the_path() {
        // comb chain of 8 xors vs the same chain with a register in the middle.
        let build = |registered: bool| {
            let mut b = Builder::new("p");
            let x = b.input("x");
            let y = b.input("y");
            let mut n = x;
            for i in 0..8 {
                n = b.xor2(n, y);
                n = b.and2(n, if i % 2 == 0 { x } else { y });
                if registered && i == 3 {
                    n = b.dff(n, false);
                }
            }
            b.output("o", n);
            b.finish()
        };
        let comb = analyze_timing(&build(false), &lib(), &tech()).unwrap();
        let piped = analyze_timing(&build(true), &lib(), &tech()).unwrap();
        assert!(piped.critical_path_ms < comb.critical_path_ms);
    }

    #[test]
    fn register_endpoint_includes_setup() {
        let mut b = Builder::new("seq");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.xor2(x, y);
        let q = b.dff(g, false);
        b.output("q", q);
        let nl = b.finish();
        let t = analyze_timing(&nl, &lib(), &tech()).unwrap();
        let expect = lib().params(CellKind::Xor2).delay_ms
            + SETUP_FRACTION * lib().params(CellKind::Dff).delay_ms;
        assert!((t.critical_path_ms - expect).abs() < 1e-9);
    }

    #[test]
    fn fanout_costs_wire_delay() {
        // One driver with fanout 4 vs fanout 1.
        let build = |fanout: usize| {
            let mut b = Builder::new("f");
            let x = b.input("x");
            let y = b.input("y");
            let g = b.xor2(x, y);
            let mut outs = Vec::new();
            for i in 0..fanout {
                let o = b.and2(g, if i % 2 == 0 { x } else { y });
                // Make each sink unique so CSE does not merge them.
                let o = b.xor2(o, if i < 2 { x } else { y });
                outs.push(o);
            }
            for (i, o) in outs.iter().enumerate() {
                b.output(format!("o{i}"), *o);
            }
            b.finish()
        };
        let narrow = analyze_timing(&build(1), &lib(), &tech()).unwrap();
        let wide = analyze_timing(&build(4), &lib(), &tech()).unwrap();
        assert!(wide.critical_path_ms > narrow.critical_path_ms);
    }

    #[test]
    fn empty_design_reports_nominal_clock() {
        let nl = Builder::new("empty").finish();
        let t = analyze_timing(&nl, &lib(), &tech()).unwrap();
        assert!(t.freq_hz > 0.0);
        assert_eq!(t.max_depth, 0);
    }

    #[test]
    fn printed_frequencies_are_hz_scale() {
        // A 16-bit ripple adder chain: the classic printed datapath depth.
        let mut b = Builder::new("rip");
        let x = Word16::make(&mut b, "x");
        let y = Word16::make(&mut b, "y");
        let s = crate::adder::add_exact(&mut b, &x, &y);
        b.output_bus("s", s.bits());
        let nl = b.finish();
        let t = analyze_timing(&nl, &lib(), &tech()).unwrap();
        assert!(
            t.freq_hz > 20.0 && t.freq_hz < 2000.0,
            "16-bit adder should clock in printed Hz range, got {}",
            t.freq_hz
        );
    }

    struct Word16;
    impl Word16 {
        fn make(b: &mut Builder, name: &str) -> pe_netlist::Word {
            pe_netlist::Word::new(b.input_bus(name, 16), true)
        }
    }

    #[test]
    fn critical_path_walks_from_launch_to_endpoint() {
        let mut b = Builder::new("p");
        let x = b.input("x");
        let y = b.input("y");
        b.group("engine");
        let g1 = b.xor2(x, y);
        let g2 = b.and2(g1, x);
        b.group("voter");
        let g3 = b.or2(g2, y);
        b.output("o", g3);
        let nl = b.finish();
        let path = report_critical_path(&nl, &lib(), &tech()).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].cell, "xor2");
        assert_eq!(path[2].cell, "or2");
        assert_eq!(path[2].group, "voter");
        // Arrivals are monotonically increasing along the path.
        for w in path.windows(2) {
            assert!(w[1].arrival_ms > w[0].arrival_ms);
        }
        // The last arrival equals the critical path reported by STA.
        let t = analyze_timing(&nl, &lib(), &tech()).unwrap();
        assert!((path[2].arrival_ms - t.critical_path_ms).abs() < 1e-9);
    }

    #[test]
    fn critical_path_of_empty_design_is_empty() {
        let nl = Builder::new("e").finish();
        assert!(report_critical_path(&nl, &lib(), &tech()).unwrap().is_empty());
    }
}

/// One step of a reported critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct PathStep {
    /// Name of the cell kind at this step.
    pub cell: &'static str,
    /// Architectural group of the cell.
    pub group: String,
    /// Arrival time at the cell output, ms.
    pub arrival_ms: f64,
}

/// Traces the worst path through the design: the sequence of cells from a
/// launch point to the worst endpoint, with arrival times. This is the
/// `report_timing` of the mini-flow — used to understand *where* the clock
/// period of each design style comes from.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn report_critical_path(
    nl: &Netlist,
    lib: &EgfetLibrary,
    tech: &TechParams,
) -> Result<Vec<PathStep>, NetlistError> {
    let arrival = arrival_times(nl, lib, tech)?;
    // Find the endpoint: the net with the worst arrival among register data
    // pins and primary outputs.
    let mut end: Option<pe_netlist::NetId> = None;
    let mut worst = f64::NEG_INFINITY;
    let mut consider = |net: pe_netlist::NetId, t: f64| {
        if t > worst {
            worst = t;
            end = Some(net);
        }
    };
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            for &inp in cell.inputs() {
                consider(inp, arrival[inp.index()]);
            }
        }
    }
    for p in nl.output_ports() {
        for &b in p.bits() {
            consider(b, arrival[b.index()]);
        }
    }
    let mut path = Vec::new();
    let mut cursor = end;
    while let Some(net) = cursor {
        match nl.net(net).driver() {
            Driver::Cell(cid) => {
                let cell = nl.cell(cid);
                path.push(PathStep {
                    cell: cell.kind().name(),
                    group: nl.group_name(cell.group()).to_owned(),
                    arrival_ms: arrival[net.index()],
                });
                if cell.kind().is_sequential() {
                    break; // launched from a register
                }
                // Walk to the latest-arriving input.
                cursor = cell
                    .inputs()
                    .iter()
                    .copied()
                    .max_by(|a, b| arrival[a.index()].total_cmp(&arrival[b.index()]));
            }
            _ => break, // launched from an input or constant
        }
    }
    path.reverse();
    Ok(path)
}
