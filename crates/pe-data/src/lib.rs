//! Dataset substrate for printed-classifier experiments.
//!
//! The paper evaluates on five UCI datasets (Cardiotocography, Dermatology,
//! PenDigits, RedWine, WhiteWine). The UCI files are not redistributable
//! inside this repository, so [`synth`] provides seeded *synthetic
//! generators* shaped like each dataset — same feature count, class count,
//! sample count, class imbalance, and a separability profile tuned so that
//! linear classifiers land in the accuracy regime the paper reports (high
//! 90s for Dermatology, mid 50s–60s for the wine quality tasks, and a
//! PenDigits geometry where One-vs-One beats One-vs-Rest). Users with the
//! real UCI files can load them through [`csv`] and run the identical
//! pipeline.
//!
//! The crate also implements the paper's data protocol: min-max
//! normalization of inputs to `[0, 1]` fitted on the training split
//! ([`Normalizer`]), a seeded random 80/20 train/test split
//! ([`split::train_test_split`]), input quantization to a low-precision grid,
//! and accuracy metrics ([`metrics`]).

pub mod csv;
pub mod dataset;
pub mod metrics;
pub mod split;
pub mod stats;
pub mod synth;

pub use dataset::{Dataset, DatasetError, Normalizer};
pub use split::train_test_split;
pub use synth::{SyntheticSpec, UciProfile};
