//! Minimal CSV loading for users who have the real UCI files.
//!
//! Format: one sample per line, comma-separated numeric features with the
//! class label in the last column (integer, 0-based or arbitrary integers —
//! labels are re-indexed densely). Lines starting with `#` and a single
//! optional non-numeric header line are skipped.

use crate::dataset::{Dataset, DatasetError};
use std::collections::BTreeMap;
use std::path::Path;

/// Parses CSV text into a dataset. See the [module docs](self) for the
/// expected format.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] with a line number on malformed input and
/// [`DatasetError`] shape errors on inconsistent rows.
pub fn parse_csv(name: &str, text: &str) -> Result<Dataset, DatasetError> {
    let mut features: Vec<Vec<f64>> = Vec::new();
    let mut raw_labels: Vec<i64> = Vec::new();
    let mut header_skipped = false;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(DatasetError::Parse(
                lineno + 1,
                "need at least one feature and a label".into(),
            ));
        }
        let parsed: Result<Vec<f64>, _> = fields.iter().map(|f| f.parse::<f64>()).collect();
        match parsed {
            Err(_) if !header_skipped && features.is_empty() => {
                // Tolerate one header line.
                header_skipped = true;
                continue;
            }
            Err(e) => {
                return Err(DatasetError::Parse(lineno + 1, e.to_string()));
            }
            Ok(nums) => {
                let (label, feats) = nums.split_last().expect("len >= 2");
                if label.fract() != 0.0 {
                    return Err(DatasetError::Parse(
                        lineno + 1,
                        format!("label {label} is not an integer"),
                    ));
                }
                features.push(feats.to_vec());
                raw_labels.push(*label as i64);
            }
        }
    }
    if features.is_empty() {
        return Err(DatasetError::Empty);
    }
    // Re-index labels densely in sorted order (wine quality scores 3..9
    // become 0..6, etc.).
    let unique: std::collections::BTreeSet<i64> = raw_labels.iter().copied().collect();
    let index: BTreeMap<i64, usize> = unique.into_iter().enumerate().map(|(i, l)| (l, i)).collect();
    let n_classes = index.len();
    let labels: Vec<usize> = raw_labels.iter().map(|l| index[l]).collect();
    Dataset::new(name, features, labels, n_classes)
}

/// Loads a CSV file from disk.
///
/// # Errors
///
/// Returns [`DatasetError::Parse`] (line 0) if the file cannot be read, or
/// any [`parse_csv`] error.
pub fn load_csv(name: &str, path: &Path) -> Result<Dataset, DatasetError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| DatasetError::Parse(0, format!("cannot read {}: {e}", path.display())))?;
    parse_csv(name, &text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_csv() {
        let d = parse_csv("t", "1.0,2.0,0\n3.0,4.0,1\n5.5,0.5,0\n").unwrap();
        assert_eq!(d.len(), 3);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.labels(), &[0, 1, 0]);
    }

    #[test]
    fn skips_header_comments_and_blanks() {
        let text = "# wine quality\nfixed_acidity,ph,quality\n\n7.4,3.51,5\n7.8,3.2,6\n";
        let d = parse_csv("wine", text).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.num_classes(), 2);
    }

    #[test]
    fn reindexes_sparse_labels_in_order() {
        // Quality scores 3..8 map to 0..5 by sorted value.
        let d = parse_csv("t", "1,8\n2,3\n3,5\n4,3\n").unwrap();
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.labels(), &[2, 0, 1, 0]);
    }

    #[test]
    fn rejects_garbage_mid_file() {
        let e = parse_csv("t", "1,2,0\nfoo,bar,baz\n");
        assert!(matches!(e, Err(DatasetError::Parse(2, _))));
    }

    #[test]
    fn rejects_fractional_labels() {
        let e = parse_csv("t", "1,0.5\n");
        assert!(matches!(e, Err(DatasetError::Parse(1, _))));
    }

    #[test]
    fn rejects_empty_input() {
        assert_eq!(parse_csv("t", "# nothing\n"), Err(DatasetError::Empty));
    }

    #[test]
    fn missing_file_is_reported() {
        let e = load_csv("t", Path::new("/definitely/not/here.csv"));
        assert!(matches!(e, Err(DatasetError::Parse(0, _))));
    }
}
