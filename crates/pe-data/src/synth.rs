//! Seeded synthetic generators shaped like the paper's five UCI datasets.
//!
//! Each generator controls the *relative difficulty structure* that the
//! paper's accuracy comparisons rest on:
//!
//! * [`Geometry::Blobs`] — Gaussian class clusters with random mean
//!   directions; linear classifiers reach high accuracy when `class_sep`
//!   is large relative to `noise` (Cardiotocography, Dermatology).
//! * [`Geometry::Ring`] — class means on a circle in a 2-D informative
//!   subspace. Every pair of classes is easy to separate (large pairwise
//!   margins, so One-vs-One excels) but each one-vs-rest problem has a thin
//!   margin (the rest surrounds the class), reproducing the PenDigits
//!   situation where the OvO baselines out-score the OvR sequential SVM.
//! * [`Geometry::Ordinal`] — class means along a single line with heavy
//!   overlap plus label noise: the wine-quality regime where every model
//!   sits in the 50–65 % band.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Class-mean geometry of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geometry {
    /// Independent Gaussian blobs.
    Blobs,
    /// Means on a circle (pairwise-easy, one-vs-rest-hard).
    Ring,
    /// Means on a line (ordinal labels, heavy overlap).
    Ordinal,
}

/// Full description of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Dataset name for reports.
    pub name: String,
    /// Number of samples to draw.
    pub n_samples: usize,
    /// Feature dimensionality (the paper's `m`).
    pub n_features: usize,
    /// Number of classes (the paper's `n`).
    pub n_classes: usize,
    /// Number of informative dimensions (the rest carry pure noise).
    pub informative: usize,
    /// Distance scale between class means.
    pub class_sep: f64,
    /// Within-class standard deviation.
    pub noise: f64,
    /// Fraction of labels flipped to a random other class.
    pub label_noise: f64,
    /// Per-class sampling weights (empty = balanced).
    pub class_weights: Vec<f64>,
    /// Mean geometry.
    pub geometry: Geometry,
}

impl SyntheticSpec {
    /// Draws the dataset with the given seed.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent (zero sizes, `informative` larger
    /// than `n_features`, weights of the wrong length).
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        assert!(self.n_samples > 0 && self.n_features > 0 && self.n_classes > 0);
        assert!(
            self.informative >= 1 && self.informative <= self.n_features,
            "informative dims out of range"
        );
        assert!(
            self.class_weights.is_empty() || self.class_weights.len() == self.n_classes,
            "class weights must match class count"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let means = self.class_means(&mut rng);
        let cumulative = self.cumulative_weights();
        let mut features = Vec::with_capacity(self.n_samples);
        let mut labels = Vec::with_capacity(self.n_samples);
        for _ in 0..self.n_samples {
            let label = Self::pick_class(&cumulative, rng.gen::<f64>());
            let mut row = Vec::with_capacity(self.n_features);
            for j in 0..self.n_features {
                let base = if j < self.informative { means[label][j] } else { 0.5 };
                row.push(base + self.noise * gaussian(&mut rng));
            }
            let final_label = if self.label_noise > 0.0 && rng.gen::<f64>() < self.label_noise {
                // Flip to a uniformly random *other* class.
                let offset = rng.gen_range(1..self.n_classes.max(2));
                (label + offset) % self.n_classes
            } else {
                label
            };
            features.push(row);
            labels.push(final_label);
        }
        Dataset::new(self.name.clone(), features, labels, self.n_classes)
            .expect("spec invariants guarantee a valid dataset")
    }

    fn class_means(&self, rng: &mut StdRng) -> Vec<Vec<f64>> {
        let d = self.informative;
        (0..self.n_classes)
            .map(|c| match self.geometry {
                Geometry::Blobs => {
                    // Random direction scaled to class_sep, centered at 0.5.
                    let mut v: Vec<f64> = (0..d).map(|_| gaussian(rng)).collect();
                    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-9);
                    v.iter_mut().for_each(|x| *x = 0.5 + *x / norm * self.class_sep);
                    v
                }
                Geometry::Ring => {
                    let angle = 2.0 * std::f64::consts::PI * (c as f64) / (self.n_classes as f64);
                    let mut v = vec![0.5; d];
                    v[0] = 0.5 + self.class_sep * angle.cos();
                    if d >= 2 {
                        v[1] = 0.5 + self.class_sep * angle.sin();
                    }
                    // Small per-class offsets in the remaining informative
                    // dims so they carry a little signal too.
                    for item in v.iter_mut().take(d).skip(2) {
                        *item += 0.15 * self.class_sep * gaussian(rng);
                    }
                    v
                }
                Geometry::Ordinal => {
                    // All means along one diagonal line, ordered by class.
                    let t = (c as f64) * self.class_sep;
                    (0..d).map(|j| 0.5 + t * if j % 2 == 0 { 1.0 } else { 0.6 }).collect()
                }
            })
            .collect()
    }

    fn cumulative_weights(&self) -> Vec<f64> {
        let w: Vec<f64> = if self.class_weights.is_empty() {
            vec![1.0; self.n_classes]
        } else {
            self.class_weights.clone()
        };
        let total: f64 = w.iter().sum();
        assert!(total > 0.0, "class weights must sum to a positive value");
        let mut acc = 0.0;
        w.iter()
            .map(|x| {
                acc += x / total;
                acc
            })
            .collect()
    }

    fn pick_class(cumulative: &[f64], u: f64) -> usize {
        cumulative.iter().position(|&c| u < c).unwrap_or(cumulative.len() - 1)
    }
}

/// Standard normal sample via Box-Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// The five UCI datasets of the paper's Table I, as synthetic profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UciProfile {
    /// Cardiotocography: 2126 samples, 21 features, 3 imbalanced classes.
    Cardio,
    /// Dermatology: 366 samples, 34 features, 6 well-separated classes.
    Dermatology,
    /// PenDigits: 10992 samples, 16 features, 10 classes on a ring.
    PenDigits,
    /// RedWine quality: 1599 samples, 11 features, 6 ordinal classes.
    RedWine,
    /// WhiteWine quality: 4898 samples, 11 features, 7 ordinal classes.
    WhiteWine,
}

impl UciProfile {
    /// All five profiles in the paper's Table I order.
    #[must_use]
    pub fn all() -> [UciProfile; 5] {
        [
            UciProfile::Cardio,
            UciProfile::Dermatology,
            UciProfile::PenDigits,
            UciProfile::RedWine,
            UciProfile::WhiteWine,
        ]
    }

    /// The short dataset name used by the paper's table.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            UciProfile::Cardio => "Cardio",
            UciProfile::Dermatology => "Dermatology",
            UciProfile::PenDigits => "PenDigits",
            UciProfile::RedWine => "RedWine",
            UciProfile::WhiteWine => "WhiteWine",
        }
    }

    /// The generator specification for this dataset.
    #[must_use]
    pub fn spec(&self) -> SyntheticSpec {
        match self {
            UciProfile::Cardio => SyntheticSpec {
                name: "Cardio".into(),
                n_samples: 2126,
                n_features: 21,
                n_classes: 3,
                informative: 12,
                class_sep: 0.68,
                noise: 0.20,
                label_noise: 0.035,
                class_weights: vec![0.78, 0.14, 0.08],
                geometry: Geometry::Blobs,
            },
            UciProfile::Dermatology => SyntheticSpec {
                name: "Dermatology".into(),
                n_samples: 366,
                n_features: 34,
                n_classes: 6,
                informative: 20,
                class_sep: 1.0,
                noise: 0.19,
                label_noise: 0.0,
                class_weights: vec![0.31, 0.17, 0.20, 0.13, 0.14, 0.05],
                geometry: Geometry::Blobs,
            },
            UciProfile::PenDigits => SyntheticSpec {
                name: "PenDigits".into(),
                n_samples: 10992,
                n_features: 16,
                n_classes: 10,
                informative: 16,
                class_sep: 0.80,
                noise: 0.16,
                label_noise: 0.0,
                class_weights: vec![],
                geometry: Geometry::Ring,
            },
            UciProfile::RedWine => SyntheticSpec {
                name: "RedWine".into(),
                n_samples: 1599,
                n_features: 11,
                n_classes: 6,
                informative: 7,
                class_sep: 0.22,
                noise: 0.24,
                label_noise: 0.10,
                class_weights: vec![0.007, 0.033, 0.426, 0.399, 0.124, 0.011],
                geometry: Geometry::Ordinal,
            },
            UciProfile::WhiteWine => SyntheticSpec {
                name: "WhiteWine".into(),
                n_samples: 4898,
                n_features: 11,
                n_classes: 7,
                informative: 7,
                class_sep: 0.18,
                noise: 0.25,
                label_noise: 0.12,
                class_weights: vec![0.004, 0.033, 0.297, 0.449, 0.180, 0.036, 0.001],
                geometry: Geometry::Ordinal,
            },
        }
    }

    /// Generates the dataset with a per-profile default seed.
    #[must_use]
    pub fn generate(&self, seed: u64) -> Dataset {
        self.spec().generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_uci() {
        let cases = [
            (UciProfile::Cardio, 2126, 21, 3),
            (UciProfile::Dermatology, 366, 34, 6),
            (UciProfile::PenDigits, 10992, 16, 10),
            (UciProfile::RedWine, 1599, 11, 6),
            (UciProfile::WhiteWine, 4898, 11, 7),
        ];
        for (p, n, m, k) in cases {
            let d = p.generate(1);
            assert_eq!(d.len(), n, "{p:?} samples");
            assert_eq!(d.num_features(), m, "{p:?} features");
            assert_eq!(d.num_classes(), k, "{p:?} classes");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = UciProfile::Cardio.generate(9);
        let b = UciProfile::Cardio.generate(9);
        assert_eq!(a, b);
        let c = UciProfile::Cardio.generate(10);
        assert_ne!(a, c);
    }

    #[test]
    fn imbalance_is_respected() {
        let d = UciProfile::Cardio.generate(2);
        let counts = d.class_counts();
        // Class 0 carries ~78 % of the mass (label noise moves a few).
        let frac0 = counts[0] as f64 / d.len() as f64;
        assert!(frac0 > 0.68 && frac0 < 0.85, "class 0 fraction {frac0}");
        assert!(counts[2] < counts[1], "class 2 should be rarest");
    }

    #[test]
    fn every_class_appears() {
        for p in UciProfile::all() {
            let d = p.generate(3);
            for (c, &count) in d.class_counts().iter().enumerate() {
                assert!(count > 0, "{p:?} class {c} has no samples");
            }
        }
    }

    #[test]
    fn blobs_are_roughly_centered() {
        let d = UciProfile::Dermatology.generate(4);
        let m = d.num_features();
        let mut mean = vec![0.0f64; m];
        for row in d.features() {
            for (j, &v) in row.iter().enumerate() {
                mean[j] += v;
            }
        }
        for v in &mut mean {
            *v /= d.len() as f64;
        }
        // Noise dims center at 0.5; informative dims at 0.5 plus offsets.
        for &v in &mean {
            assert!(v > -1.5 && v < 2.5, "feature mean {v} looks unbounded");
        }
    }

    #[test]
    fn label_noise_flips_to_other_classes() {
        let mut spec = UciProfile::RedWine.spec();
        spec.label_noise = 1.0; // every label flipped
        spec.class_weights = vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0]; // all drawn as class 0
        let d = spec.generate(5);
        assert!(
            d.labels().iter().all(|&l| l != 0),
            "with full label noise no sample may keep class 0"
        );
    }

    #[test]
    #[should_panic(expected = "informative")]
    fn bad_informative_panics() {
        let mut spec = UciProfile::Cardio.spec();
        spec.informative = 99;
        let _ = spec.generate(0);
    }

    #[test]
    fn ring_geometry_separates_pairs() {
        // Sanity: on a ring, the two informative dims of different classes
        // have distinct means.
        let spec = UciProfile::PenDigits.spec();
        let d = spec.generate(6);
        // Average the first feature per class; the ring spreads them apart.
        let mut sums = vec![0.0f64; spec.n_classes];
        let mut counts = vec![0usize; spec.n_classes];
        for (row, &l) in d.features().iter().zip(d.labels()) {
            sums[l] += row[0];
            counts[l] += 1;
        }
        let means: Vec<f64> = sums.iter().zip(&counts).map(|(s, &c)| s / c.max(1) as f64).collect();
        let spread = means.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - means.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > spec.class_sep, "ring means should spread, got {spread}");
    }
}
