//! The in-memory dataset representation and normalization.

use std::error::Error;
use std::fmt;

/// Errors raised by dataset construction and loading.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// Rows have inconsistent feature counts.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Its feature count.
        got: usize,
        /// The expected feature count.
        expected: usize,
    },
    /// The number of labels differs from the number of rows.
    LabelCountMismatch {
        /// Number of feature rows.
        rows: usize,
        /// Number of labels.
        labels: usize,
    },
    /// A label is outside `0..n_classes`.
    LabelOutOfRange {
        /// The offending label.
        label: usize,
        /// The declared class count.
        n_classes: usize,
    },
    /// The dataset has no samples or no features.
    Empty,
    /// A CSV parse problem (line number and message).
    Parse(usize, String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::RaggedRows { row, got, expected } => {
                write!(f, "row {row} has {got} features, expected {expected}")
            }
            DatasetError::LabelCountMismatch { rows, labels } => {
                write!(f, "{rows} rows but {labels} labels")
            }
            DatasetError::LabelOutOfRange { label, n_classes } => {
                write!(f, "label {label} outside 0..{n_classes}")
            }
            DatasetError::Empty => write!(f, "dataset has no samples or no features"),
            DatasetError::Parse(line, msg) => write!(f, "parse error on line {line}: {msg}"),
        }
    }
}

impl Error for DatasetError {}

/// A labeled classification dataset (row-major features).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    name: String,
    features: Vec<Vec<f64>>,
    labels: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Creates a dataset, validating shape and label ranges.
    ///
    /// # Errors
    ///
    /// Returns a [`DatasetError`] describing the first violated invariant.
    pub fn new(
        name: impl Into<String>,
        features: Vec<Vec<f64>>,
        labels: Vec<usize>,
        n_classes: usize,
    ) -> Result<Self, DatasetError> {
        if features.is_empty() || features[0].is_empty() || n_classes == 0 {
            return Err(DatasetError::Empty);
        }
        let expected = features[0].len();
        for (i, row) in features.iter().enumerate() {
            if row.len() != expected {
                return Err(DatasetError::RaggedRows { row: i, got: row.len(), expected });
            }
        }
        if labels.len() != features.len() {
            return Err(DatasetError::LabelCountMismatch {
                rows: features.len(),
                labels: labels.len(),
            });
        }
        for &l in &labels {
            if l >= n_classes {
                return Err(DatasetError::LabelOutOfRange { label: l, n_classes });
            }
        }
        Ok(Dataset { name: name.into(), features, labels, n_classes })
    }

    /// Dataset name (used in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the dataset is empty (never true for a validated dataset).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of features per sample (the paper's `m`).
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.features[0].len()
    }

    /// Number of classes (the paper's `n`).
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Feature rows.
    #[must_use]
    pub fn features(&self) -> &[Vec<f64>] {
        &self.features
    }

    /// Labels, parallel to [`Dataset::features`].
    #[must_use]
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// One sample.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn sample(&self, i: usize) -> (&[f64], usize) {
        (&self.features[i], self.labels[i])
    }

    /// Per-class sample counts.
    #[must_use]
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_classes];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset keeping only the rows at `indices` (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range or `indices` is empty.
    #[must_use]
    pub fn subset(&self, indices: &[usize], name_suffix: &str) -> Dataset {
        assert!(!indices.is_empty(), "subset of zero rows");
        Dataset {
            name: format!("{}{name_suffix}", self.name),
            features: indices.iter().map(|&i| self.features[i].clone()).collect(),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            n_classes: self.n_classes,
        }
    }

    /// Returns a copy with every feature snapped to an unsigned `bits`-bit
    /// grid over `[0, 1]` (the paper trains on low-precision inputs). Values
    /// are clamped to `[0, 1]` first.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    #[must_use]
    pub fn quantize_inputs(&self, bits: u32) -> Dataset {
        assert!((1..=16).contains(&bits), "input precision out of range");
        let levels = (1u32 << bits) - 1;
        let q = |v: f64| {
            let c = v.clamp(0.0, 1.0);
            (c * f64::from(levels)).round() / f64::from(levels)
        };
        Dataset {
            name: self.name.clone(),
            features: self.features.iter().map(|row| row.iter().map(|&v| q(v)).collect()).collect(),
            labels: self.labels.clone(),
            n_classes: self.n_classes,
        }
    }
}

/// Min-max normalizer fitted on a training set, mapping each feature to
/// `[0, 1]` (the paper's input protocol).
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Fits per-feature min/max on `train`.
    #[must_use]
    pub fn fit(train: &Dataset) -> Self {
        let d = train.num_features();
        let mut mins = vec![f64::INFINITY; d];
        let mut maxs = vec![f64::NEG_INFINITY; d];
        for row in train.features() {
            for (j, &v) in row.iter().enumerate() {
                mins[j] = mins[j].min(v);
                maxs[j] = maxs[j].max(v);
            }
        }
        Normalizer { mins, maxs }
    }

    /// Applies the fitted transform; outputs are clamped to `[0, 1]` so test
    /// samples outside the training range stay representable in unsigned
    /// hardware inputs. Constant features map to 0.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the fitted one.
    #[must_use]
    pub fn apply(&self, data: &Dataset) -> Dataset {
        assert_eq!(data.num_features(), self.mins.len(), "feature count mismatch");
        let features = data
            .features()
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(j, &v)| {
                        let span = self.maxs[j] - self.mins[j];
                        if span <= 0.0 {
                            0.0
                        } else {
                            ((v - self.mins[j]) / span).clamp(0.0, 1.0)
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset {
            name: data.name().to_owned(),
            features,
            labels: data.labels().to_vec(),
            n_classes: data.num_classes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(
            "toy",
            vec![vec![0.0, 10.0], vec![1.0, 20.0], vec![2.0, 30.0], vec![3.0, 40.0]],
            vec![0, 1, 0, 1],
            2,
        )
        .unwrap()
    }

    #[test]
    fn accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.num_classes(), 2);
        assert_eq!(d.sample(1), (&[1.0, 20.0][..], 1));
        assert_eq!(d.class_counts(), vec![2, 2]);
        assert_eq!(d.name(), "toy");
    }

    #[test]
    fn validation_catches_ragged_rows() {
        let e = Dataset::new("x", vec![vec![1.0], vec![1.0, 2.0]], vec![0, 0], 1);
        assert!(matches!(e, Err(DatasetError::RaggedRows { row: 1, .. })));
    }

    #[test]
    fn validation_catches_label_problems() {
        let e = Dataset::new("x", vec![vec![1.0]], vec![], 1);
        assert!(matches!(e, Err(DatasetError::LabelCountMismatch { .. })));
        let e = Dataset::new("x", vec![vec![1.0]], vec![3], 2);
        assert!(matches!(e, Err(DatasetError::LabelOutOfRange { label: 3, .. })));
        let e = Dataset::new("x", vec![], vec![], 1);
        assert_eq!(e, Err(DatasetError::Empty));
    }

    #[test]
    fn subset_keeps_order() {
        let d = toy();
        let s = d.subset(&[2, 0], "-sub");
        assert_eq!(s.len(), 2);
        assert_eq!(s.sample(0).0, &[2.0, 30.0]);
        assert_eq!(s.sample(1).0, &[0.0, 10.0]);
        assert_eq!(s.name(), "toy-sub");
        assert_eq!(s.num_classes(), 2);
    }

    #[test]
    fn normalizer_maps_to_unit_interval() {
        let d = toy();
        let norm = Normalizer::fit(&d);
        let n = norm.apply(&d);
        for row in n.features() {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
        assert_eq!(n.sample(0).0, &[0.0, 0.0]);
        assert_eq!(n.sample(3).0, &[1.0, 1.0]);
    }

    #[test]
    fn normalizer_clamps_out_of_range_test_data() {
        let train = toy();
        let norm = Normalizer::fit(&train);
        let test = Dataset::new("t", vec![vec![-5.0, 100.0]], vec![0], 2).unwrap();
        let n = norm.apply(&test);
        assert_eq!(n.sample(0).0, &[0.0, 1.0]);
    }

    #[test]
    fn constant_features_normalize_to_zero() {
        let d = Dataset::new("c", vec![vec![7.0], vec![7.0]], vec![0, 1], 2).unwrap();
        let n = Normalizer::fit(&d).apply(&d);
        assert_eq!(n.sample(0).0, &[0.0]);
    }

    #[test]
    fn input_quantization_snaps_to_grid() {
        let d = Dataset::new("q", vec![vec![0.5, 0.24, 1.7, -0.3]], vec![0], 1).unwrap();
        let q = d.quantize_inputs(2); // levels: 0, 1/3, 2/3, 1
        let row = q.sample(0).0;
        assert!((row[0] - 2.0 / 3.0).abs() < 1e-12); // 0.5 -> 1.5/3 rounds to 2/3
        assert!((row[1] - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(row[2], 1.0); // clamped
        assert_eq!(row[3], 0.0); // clamped
    }

    #[test]
    fn error_display() {
        assert!(DatasetError::Empty.to_string().contains("no samples"));
        assert!(DatasetError::Parse(3, "bad".into()).to_string().contains("line 3"));
    }
}
