//! Train/test splitting.

use crate::dataset::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Seeded random split, `test_fraction` of samples held out (the paper uses
/// a random 80 %/20 % split).
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` and both resulting sides are
/// non-empty.
#[must_use]
pub fn train_test_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let n_test = ((data.len() as f64) * test_fraction).round() as usize;
    assert!(
        n_test >= 1 && n_test < data.len(),
        "split leaves an empty side ({n_test} test of {})",
        data.len()
    );
    let (test_idx, train_idx) = idx.split_at(n_test);
    let mut train_sorted = train_idx.to_vec();
    let mut test_sorted = test_idx.to_vec();
    train_sorted.sort_unstable();
    test_sorted.sort_unstable();
    (data.subset(&train_sorted, "-train"), data.subset(&test_sorted, "-test"))
}

/// Stratified split: preserves per-class proportions on both sides. Used for
/// very small datasets (Dermatology has 366 samples over 6 classes) where a
/// plain random split can starve a class.
///
/// # Panics
///
/// Panics unless `0 < test_fraction < 1` and every class has at least one
/// sample on each side.
#[must_use]
pub fn stratified_split(data: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(test_fraction > 0.0 && test_fraction < 1.0, "test fraction must be in (0, 1)");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut train_idx = Vec::new();
    let mut test_idx = Vec::new();
    for class in 0..data.num_classes() {
        let mut members: Vec<usize> =
            (0..data.len()).filter(|&i| data.labels()[i] == class).collect();
        if members.is_empty() {
            continue;
        }
        members.shuffle(&mut rng);
        let n_test = (((members.len() as f64) * test_fraction).round() as usize)
            .clamp(1, members.len().saturating_sub(1).max(1));
        assert!(members.len() >= 2, "class {class} has fewer than 2 samples; cannot split");
        test_idx.extend_from_slice(&members[..n_test]);
        train_idx.extend_from_slice(&members[n_test..]);
    }
    train_idx.sort_unstable();
    test_idx.sort_unstable();
    (data.subset(&train_idx, "-train"), data.subset(&test_idx, "-test"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Dataset {
        Dataset::new(
            "d",
            (0..n).map(|i| vec![i as f64]).collect(),
            (0..n).map(|i| i % 4).collect(),
            4,
        )
        .unwrap()
    }

    #[test]
    fn split_sizes_are_80_20() {
        let d = data(100);
        let (train, test) = train_test_split(&d, 0.2, 7);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
    }

    #[test]
    fn split_is_a_partition() {
        let d = data(50);
        let (train, test) = train_test_split(&d, 0.2, 1);
        let mut seen: Vec<f64> =
            train.features().iter().chain(test.features()).map(|r| r[0]).collect();
        seen.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..50).map(|i| i as f64).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = data(40);
        let (a1, _) = train_test_split(&d, 0.25, 42);
        let (a2, _) = train_test_split(&d, 0.25, 42);
        assert_eq!(a1, a2);
        let (b1, _) = train_test_split(&d, 0.25, 43);
        assert_ne!(a1, b1, "different seeds should shuffle differently");
    }

    #[test]
    fn stratified_preserves_class_balance() {
        let d = data(100); // 25 per class
        let (train, test) = stratified_split(&d, 0.2, 3);
        assert_eq!(test.class_counts(), vec![5, 5, 5, 5]);
        assert_eq!(train.class_counts(), vec![20, 20, 20, 20]);
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        let d = data(10);
        let _ = train_test_split(&d, 1.5, 0);
    }
}
