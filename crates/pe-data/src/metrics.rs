//! Classification metrics.

/// Fraction of predictions equal to the labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    assert!(!labels.is_empty(), "accuracy of zero samples");
    let correct = predictions.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f64 / labels.len() as f64
}

/// Confusion matrix `m[actual][predicted]`.
///
/// # Panics
///
/// Panics if the slices differ in length or any value is `>= n_classes`.
#[must_use]
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    n_classes: usize,
) -> Vec<Vec<usize>> {
    assert_eq!(predictions.len(), labels.len(), "length mismatch");
    let mut m = vec![vec![0usize; n_classes]; n_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        assert!(p < n_classes && l < n_classes, "class index out of range");
        m[l][p] += 1;
    }
    m
}

/// Per-class recall (diagonal over row sums); classes with no samples get
/// recall 0.
#[must_use]
pub fn per_class_recall(confusion: &[Vec<usize>]) -> Vec<f64> {
    confusion
        .iter()
        .enumerate()
        .map(|(i, row)| {
            let total: usize = row.iter().sum();
            if total == 0 {
                0.0
            } else {
                row[i] as f64 / total as f64
            }
        })
        .collect()
}

/// Macro-averaged recall (the balanced-accuracy analog used when classes are
/// imbalanced, as in Cardio).
///
/// # Panics
///
/// Panics if the confusion matrix is empty.
#[must_use]
pub fn macro_recall(confusion: &[Vec<usize>]) -> f64 {
    assert!(!confusion.is_empty(), "empty confusion matrix");
    let recalls = per_class_recall(confusion);
    recalls.iter().sum::<f64>() / recalls.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]), 0.75);
        assert_eq!(accuracy(&[1], &[1]), 1.0);
        assert_eq!(accuracy(&[0], &[1]), 0.0);
    }

    #[test]
    fn confusion_layout_is_actual_by_predicted() {
        let m = confusion_matrix(&[1, 1, 0], &[0, 1, 0], 2);
        assert_eq!(m, vec![vec![1, 1], vec![0, 1]]);
    }

    #[test]
    fn recall_per_class() {
        let m = vec![vec![8, 2], vec![1, 9]];
        let r = per_class_recall(&m);
        assert!((r[0] - 0.8).abs() < 1e-12);
        assert!((r[1] - 0.9).abs() < 1e-12);
        assert!((macro_recall(&m) - 0.85).abs() < 1e-12);
    }

    #[test]
    fn empty_class_has_zero_recall() {
        let m = vec![vec![0, 0], vec![0, 5]];
        assert_eq!(per_class_recall(&m)[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[0, 1], &[0]);
    }
}
