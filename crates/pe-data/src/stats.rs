//! Dataset statistics: separability and balance diagnostics used to sanity-
//! check the synthetic generators against their UCI targets.

use crate::dataset::Dataset;

/// Per-feature mean and standard deviation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureStats {
    /// Per-feature means.
    pub means: Vec<f64>,
    /// Per-feature standard deviations.
    pub std_devs: Vec<f64>,
}

/// Computes per-feature statistics.
///
/// # Panics
///
/// Panics on an empty dataset.
#[must_use]
pub fn feature_stats(data: &Dataset) -> FeatureStats {
    assert!(!data.is_empty(), "empty dataset");
    let d = data.num_features();
    let n = data.len() as f64;
    let mut means = vec![0.0f64; d];
    for row in data.features() {
        for (j, &v) in row.iter().enumerate() {
            means[j] += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0f64; d];
    for row in data.features() {
        for (j, &v) in row.iter().enumerate() {
            vars[j] += (v - means[j]).powi(2);
        }
    }
    let std_devs = vars.iter().map(|v| (v / n).sqrt()).collect();
    FeatureStats { means, std_devs }
}

/// Fisher-style class separability: mean between-class distance of class
/// centroids divided by mean within-class spread. Higher = easier for a
/// linear classifier. Used to verify that e.g. the Dermatology profile is
/// far more separable than the wine profiles.
///
/// # Panics
///
/// Panics if some class has no samples.
#[must_use]
pub fn separability(data: &Dataset) -> f64 {
    let k = data.num_classes();
    let d = data.num_features();
    let counts = data.class_counts();
    assert!(counts.iter().all(|&c| c > 0), "every class needs samples");
    // Class centroids.
    let mut centroids = vec![vec![0.0f64; d]; k];
    for (row, &l) in data.features().iter().zip(data.labels()) {
        for (j, &v) in row.iter().enumerate() {
            centroids[l][j] += v;
        }
    }
    for (c, &n) in centroids.iter_mut().zip(&counts) {
        for v in c.iter_mut() {
            *v /= n as f64;
        }
    }
    // Within-class spread.
    let mut within = 0.0f64;
    for (row, &l) in data.features().iter().zip(data.labels()) {
        let dist: f64 =
            row.iter().zip(&centroids[l]).map(|(v, c)| (v - c).powi(2)).sum::<f64>().sqrt();
        within += dist;
    }
    within /= data.len() as f64;
    // Between-class centroid distances.
    let mut between = 0.0f64;
    let mut pairs = 0usize;
    for a in 0..k {
        for b in (a + 1)..k {
            let dist: f64 = centroids[a]
                .iter()
                .zip(&centroids[b])
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt();
            between += dist;
            pairs += 1;
        }
    }
    if pairs == 0 || within <= 0.0 {
        return f64::INFINITY;
    }
    (between / pairs as f64) / within
}

/// Normalized class imbalance: ratio of the largest class share to the
/// uniform share (1.0 = perfectly balanced; 3.0 on Cardio-like data where
/// one class holds ~78 % of three classes).
#[must_use]
pub fn imbalance(data: &Dataset) -> f64 {
    let counts = data.class_counts();
    let max = counts.iter().copied().max().unwrap_or(0) as f64;
    let uniform = data.len() as f64 / data.num_classes() as f64;
    if uniform <= 0.0 {
        return 1.0;
    }
    max / uniform
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::UciProfile;
    use crate::Dataset;

    #[test]
    fn feature_stats_match_hand_computation() {
        let d = Dataset::new("t", vec![vec![1.0, 10.0], vec![3.0, 10.0]], vec![0, 1], 2).unwrap();
        let s = feature_stats(&d);
        assert_eq!(s.means, vec![2.0, 10.0]);
        assert!((s.std_devs[0] - 1.0).abs() < 1e-12);
        assert_eq!(s.std_devs[1], 0.0);
    }

    #[test]
    fn separability_orders_profiles_as_designed() {
        let derm = separability(&UciProfile::Dermatology.generate(5));
        let ww = separability(&UciProfile::WhiteWine.generate(5));
        assert!(
            derm > 2.0 * ww,
            "Dermatology ({derm:.2}) must be far more separable than WhiteWine ({ww:.2})"
        );
    }

    #[test]
    fn imbalance_detects_cardio_skew() {
        let cardio = imbalance(&UciProfile::Cardio.generate(5));
        let pd = imbalance(&UciProfile::PenDigits.generate(5));
        assert!(cardio > 1.8, "Cardio imbalance {cardio:.2}");
        assert!(pd < 1.3, "PenDigits should be near-balanced, got {pd:.2}");
    }

    #[test]
    fn separability_of_identical_classes_is_low() {
        // Two classes drawn identically: consecutive pairs share the same
        // row but opposite labels, so centroids coincide.
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let k = i / 2;
                vec![(k % 10) as f64 / 10.0, ((k * 3) % 10) as f64 / 10.0]
            })
            .collect();
        let labels: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let d = Dataset::new("same", rows, labels, 2).unwrap();
        assert!(separability(&d) < 0.3);
    }
}
