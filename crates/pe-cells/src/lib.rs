//! EGFET printed-electronics PDK model.
//!
//! The papers this repository reproduces evaluate circuits with Synopsys
//! Design Compiler / PrimeTime against the EGFET (Electrolyte-Gated FET)
//! printed PDK of Bleier et al., ISCA'20. That PDK is not publicly
//! distributable, so this crate models it: a small standard-cell library
//! ([`EgfetLibrary`]) with per-cell area, static power, switching energy and
//! propagation delay, plus the technology-level calibration knobs
//! ([`TechParams`]) that the mini-flow in `pe-synth` consumes.
//!
//! The absolute values are calibrated so that classifier-scale circuits land
//! in the regimes the printed-electronics literature reports — areas of
//! square centimeters, clock frequencies of a few tens of hertz, powers of
//! milliwatts, energies of millijoules — while every *relative* comparison
//! (sequential vs. parallel, bespoke vs. generic) emerges from real netlist
//! structure, simulation-measured switching activity and static timing.
//!
//! The crate also models the printed power sources the paper checks against
//! ([`battery`]), most prominently the Molex 30 mW printed battery.

pub mod battery;
pub mod library;
pub mod tech;

pub use battery::{Battery, BatteryVerdict};
pub use library::{CellParams, EgfetLibrary};
pub use tech::TechParams;
