//! Technology-level parameters of the modeled printed process.

/// Process/flow-level knobs consumed by the `pe-synth` analysis passes.
///
/// These correspond to the parts of an EDA flow that are not per-cell:
/// wire loading, clocking overhead, and the glitch model used for
/// vector-based power analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechParams {
    /// Supply voltage in volts (EGFET logic runs at about 1 V).
    pub vdd_v: f64,
    /// Extra delay per fanout pin beyond the first, in ms. Printed wires are
    /// resistive and long; fanout costs real time.
    pub wire_delay_ms_per_fanout: f64,
    /// Extra switched energy per fanout pin beyond the first, as a fraction
    /// of the driving cell's switching energy.
    pub wire_energy_factor_per_fanout: f64,
    /// Glitch amplification per level of logic depth: a functional toggle on
    /// a net at combinational depth `d` is charged `1 + glitch_per_level*d`
    /// transitions. Deep unregistered arrays (the fully-parallel baselines)
    /// glitch far more than shallow or registered logic, which is one of the
    /// two mechanisms behind the sequential design's energy advantage.
    pub glitch_per_level: f64,
    /// Fraction of the clock period reserved for clock skew, register setup
    /// and margin (guard band applied when deriving f_clk from the critical
    /// path).
    pub timing_margin: f64,
}

impl TechParams {
    /// The calibrated defaults used by all experiments.
    #[must_use]
    pub fn standard() -> Self {
        TechParams {
            vdd_v: 1.0,
            wire_delay_ms_per_fanout: 0.05,
            wire_energy_factor_per_fanout: 0.25,
            glitch_per_level: 0.06,
            timing_margin: 0.10,
        }
    }

    /// Returns a copy with a different glitch coefficient (ablation knob).
    #[must_use]
    pub fn with_glitch(mut self, glitch_per_level: f64) -> Self {
        self.glitch_per_level = glitch_per_level;
        self
    }

    /// Returns a copy with a different timing margin.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= margin < 1.0`.
    #[must_use]
    pub fn with_timing_margin(mut self, margin: f64) -> Self {
        assert!((0.0..1.0).contains(&margin), "margin must be in [0, 1)");
        self.timing_margin = margin;
        self
    }
}

impl Default for TechParams {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_values_in_range() {
        let t = TechParams::standard();
        assert!(t.vdd_v > 0.5 && t.vdd_v <= 3.0);
        assert!(t.glitch_per_level >= 0.0);
        assert!((0.0..1.0).contains(&t.timing_margin));
        assert!(t.wire_delay_ms_per_fanout >= 0.0);
    }

    #[test]
    fn knob_builders() {
        let t = TechParams::standard().with_glitch(0.2).with_timing_margin(0.25);
        assert_eq!(t.glitch_per_level, 0.2);
        assert_eq!(t.timing_margin, 0.25);
    }

    #[test]
    #[should_panic(expected = "margin")]
    fn bad_margin_panics() {
        let _ = TechParams::standard().with_timing_margin(1.5);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(TechParams::default(), TechParams::standard());
    }
}
