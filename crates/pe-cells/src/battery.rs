//! Printed power-source models.
//!
//! The paper's headline feasibility claim is that every proposed design can
//! be powered by an existing printed battery (a Molex 30 mW part is cited),
//! while most state-of-the-art designs cannot. This module models printed
//! batteries as a (peak power, capacity) pair and answers feasibility and
//! battery-life questions.

/// A printed battery model.
#[derive(Debug, Clone, PartialEq)]
pub struct Battery {
    name: String,
    max_power_mw: f64,
    capacity_mwh: f64,
}

/// The verdict of checking a design's power draw against a battery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatteryVerdict {
    /// The design can be powered continuously.
    Powered,
    /// The design draws more than the battery can deliver.
    OverBudget,
}

impl Battery {
    /// Creates a battery model.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(name: impl Into<String>, max_power_mw: f64, capacity_mwh: f64) -> Self {
        assert!(max_power_mw > 0.0 && max_power_mw.is_finite(), "invalid power budget");
        assert!(capacity_mwh > 0.0 && capacity_mwh.is_finite(), "invalid capacity");
        Battery { name: name.into(), max_power_mw, capacity_mwh }
    }

    /// The Molex 30 mW printed battery the paper cites as its power budget.
    /// Capacity follows the datasheet class of thin printed Zn-MnO2 cells
    /// (~10 mAh at 1.5 V ≈ 15 mWh).
    #[must_use]
    pub fn molex_30mw() -> Self {
        Battery::new("Molex thin-film (30 mW)", 30.0, 15.0)
    }

    /// A Zinergy-class flexible battery: lower peak power, similar capacity.
    #[must_use]
    pub fn zinergy_15mw() -> Self {
        Battery::new("Zinergy flexible (15 mW)", 15.0, 13.5)
    }

    /// A BlueSpark-class printed battery: small peak power budget.
    #[must_use]
    pub fn bluespark_9mw() -> Self {
        Battery::new("BlueSpark printed (9 mW)", 9.0, 5.0)
    }

    /// The catalog of printed power sources used in reports.
    #[must_use]
    pub fn catalog() -> Vec<Battery> {
        vec![Self::molex_30mw(), Self::zinergy_15mw(), Self::bluespark_9mw()]
    }

    /// Battery name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak continuous power the battery can deliver, mW.
    #[must_use]
    pub fn max_power_mw(&self) -> f64 {
        self.max_power_mw
    }

    /// Energy capacity, mWh.
    #[must_use]
    pub fn capacity_mwh(&self) -> f64 {
        self.capacity_mwh
    }

    /// Whether a design drawing `power_mw` can run from this battery.
    #[must_use]
    pub fn check(&self, power_mw: f64) -> BatteryVerdict {
        if power_mw <= self.max_power_mw {
            BatteryVerdict::Powered
        } else {
            BatteryVerdict::OverBudget
        }
    }

    /// Continuous operating lifetime in hours at `power_mw` draw, or `None`
    /// if the battery cannot power the design at all.
    #[must_use]
    pub fn lifetime_hours(&self, power_mw: f64) -> Option<f64> {
        match self.check(power_mw) {
            BatteryVerdict::Powered => Some(self.capacity_mwh / power_mw),
            BatteryVerdict::OverBudget => None,
        }
    }

    /// Number of classifications per charge for a design that spends
    /// `energy_mj` per classification (assuming duty-cycled operation).
    ///
    /// # Panics
    ///
    /// Panics if `energy_mj` is not positive.
    #[must_use]
    pub fn classifications_per_charge(&self, energy_mj: f64) -> f64 {
        assert!(energy_mj > 0.0, "energy per classification must be positive");
        // 1 mWh = 3600 mJ.
        self.capacity_mwh * 3600.0 / energy_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn molex_budget_is_30mw() {
        let b = Battery::molex_30mw();
        assert_eq!(b.max_power_mw(), 30.0);
        assert_eq!(b.check(22.9), BatteryVerdict::Powered); // the paper's peak
        assert_eq!(b.check(57.4), BatteryVerdict::OverBudget); // [2] Cardio
    }

    #[test]
    fn lifetime_scales_inversely_with_power() {
        let b = Battery::molex_30mw();
        let l1 = b.lifetime_hours(10.0).unwrap();
        let l2 = b.lifetime_hours(20.0).unwrap();
        assert!((l1 / l2 - 2.0).abs() < 1e-12);
        assert!(b.lifetime_hours(100.0).is_none());
    }

    #[test]
    fn classifications_per_charge() {
        let b = Battery::molex_30mw();
        // 15 mWh = 54000 mJ; at 2.46 mJ (the paper's average) ≈ 21951.
        let n = b.classifications_per_charge(2.46);
        assert!((n - 21951.2).abs() < 1.0);
    }

    #[test]
    fn energy_improvement_boosts_battery_life() {
        // The paper's pitch: 6.5x energy improvement => 6.5x classifications.
        let b = Battery::molex_30mw();
        let ours = b.classifications_per_charge(2.46);
        let sota = b.classifications_per_charge(2.46 * 6.5);
        assert!((ours / sota - 6.5).abs() < 1e-9);
    }

    #[test]
    fn catalog_contains_three_models() {
        let c = Battery::catalog();
        assert_eq!(c.len(), 3);
        assert!(c.iter().any(|b| b.name().contains("Molex")));
    }

    #[test]
    #[should_panic(expected = "invalid power")]
    fn invalid_battery_panics() {
        let _ = Battery::new("bad", 0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn invalid_energy_panics() {
        let _ = Battery::molex_30mw().classifications_per_charge(0.0);
    }
}
