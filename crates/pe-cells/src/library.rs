//! The EGFET standard-cell library model.

use pe_netlist::CellKind;

/// Physical parameters of one standard cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellParams {
    /// Printed footprint in mm².
    pub area_mm2: f64,
    /// Static (leakage + resistive-load) power draw in µW. EGFET logic uses
    /// resistive pull-ups, so static power is substantial and scales with
    /// transistor count, i.e. roughly with area.
    pub static_power_uw: f64,
    /// Energy dissipated per output transition in nJ (switched gate +
    /// interconnect capacitance at the supply voltage).
    pub switch_energy_nj: f64,
    /// Intrinsic propagation delay in ms (printed transistors switch in the
    /// millisecond regime, which is why printed circuits clock in the Hz
    /// range).
    pub delay_ms: f64,
}

/// A complete printed standard-cell library.
///
/// Construct with [`EgfetLibrary::standard`] (the calibrated default) or
/// [`EgfetLibrary::scaled`] for sensitivity studies.
#[derive(Debug, Clone, PartialEq)]
pub struct EgfetLibrary {
    name: String,
    cells: Vec<(CellKind, CellParams)>,
}

impl EgfetLibrary {
    /// The calibrated EGFET library used by every experiment in this
    /// repository.
    ///
    /// Relative cell costs follow standard CMOS-style transistor counts
    /// (an XOR is ~2× a NAND; a flip-flop ~6×); absolute scales are set so
    /// classifier-sized netlists reproduce the magnitude ranges of the
    /// paper's Table I (see crate docs).
    #[must_use]
    pub fn standard() -> Self {
        // (kind, area mm², static µW, switch energy nJ, delay ms)
        const TABLE: &[(CellKind, f64, f64, f64, f64)] = &[
            (CellKind::Inv, 0.210, 1.35, 55.0, 0.22),
            (CellKind::Buf, 0.280, 1.80, 70.0, 0.36),
            (CellKind::Nand2, 0.350, 2.25, 95.0, 0.32),
            (CellKind::Nor2, 0.350, 2.25, 95.0, 0.34),
            (CellKind::And2, 0.462, 3.00, 125.0, 0.44),
            (CellKind::Or2, 0.462, 3.00, 125.0, 0.44),
            (CellKind::Xor2, 0.728, 4.65, 195.0, 0.60),
            (CellKind::Xnor2, 0.770, 4.95, 205.0, 0.62),
            (CellKind::And3, 0.588, 3.75, 155.0, 0.52),
            (CellKind::Or3, 0.588, 3.75, 155.0, 0.52),
            (CellKind::Mux2, 0.700, 4.50, 187.5, 0.56),
            (CellKind::Maj3, 0.770, 4.95, 205.0, 0.60),
            (CellKind::Dff, 1.540, 9.90, 400.0, 0.84),
            (CellKind::DffE, 1.820, 11.70, 475.0, 0.96),
        ];
        EgfetLibrary {
            name: "egfet-standard".into(),
            cells: TABLE
                .iter()
                .map(|&(k, a, s, e, d)| {
                    (
                        k,
                        CellParams {
                            area_mm2: a,
                            static_power_uw: s,
                            switch_energy_nj: e,
                            delay_ms: d,
                        },
                    )
                })
                .collect(),
        }
    }

    /// A copy of the standard library with every area/power/energy/delay
    /// multiplied by the given factors. Used by ablation benches to test the
    /// sensitivity of the paper's conclusions to PDK calibration.
    #[must_use]
    pub fn scaled(area: f64, static_power: f64, switch_energy: f64, delay: f64) -> Self {
        let base = Self::standard();
        EgfetLibrary {
            name: format!("egfet-scaled(a={area},p={static_power},e={switch_energy},d={delay})"),
            cells: base
                .cells
                .into_iter()
                .map(|(k, p)| {
                    (
                        k,
                        CellParams {
                            area_mm2: p.area_mm2 * area,
                            static_power_uw: p.static_power_uw * static_power,
                            switch_energy_nj: p.switch_energy_nj * switch_energy,
                            delay_ms: p.delay_ms * delay,
                        },
                    )
                })
                .collect(),
        }
    }

    /// Library name (appears in reports).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameters of one cell kind.
    ///
    /// # Panics
    ///
    /// Panics if the library is missing the kind (the standard library
    /// covers every [`CellKind`]).
    #[must_use]
    pub fn params(&self, kind: CellKind) -> CellParams {
        self.cells
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, p)| *p)
            .unwrap_or_else(|| panic!("library {} has no cell {kind:?}", self.name))
    }

    /// Iterates over all `(kind, params)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellKind, CellParams)> + '_ {
        self.cells.iter().copied()
    }
}

impl Default for EgfetLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_covers_all_kinds() {
        let lib = EgfetLibrary::standard();
        for &k in CellKind::all() {
            let p = lib.params(k);
            assert!(p.area_mm2 > 0.0);
            assert!(p.static_power_uw > 0.0);
            assert!(p.switch_energy_nj > 0.0);
            assert!(p.delay_ms > 0.0);
        }
    }

    #[test]
    fn relative_costs_are_sane() {
        let lib = EgfetLibrary::standard();
        let inv = lib.params(CellKind::Inv);
        let nand = lib.params(CellKind::Nand2);
        let xor = lib.params(CellKind::Xor2);
        let dff = lib.params(CellKind::Dff);
        assert!(nand.area_mm2 > inv.area_mm2);
        assert!(xor.area_mm2 > nand.area_mm2);
        assert!(dff.area_mm2 > xor.area_mm2);
        // Static power roughly tracks area (resistive-load logic).
        let density_inv = inv.static_power_uw / inv.area_mm2;
        let density_dff = dff.static_power_uw / dff.area_mm2;
        assert!((density_inv / density_dff - 1.0).abs() < 0.2);
    }

    #[test]
    fn printed_magnitudes() {
        // A representative classifier netlist has a few thousand cells at
        // ~0.4 mm² each => tens of cm², and static draw of a few mW. These
        // coarse invariants anchor the calibration.
        let lib = EgfetLibrary::standard();
        let avg_area: f64 =
            lib.iter().map(|(_, p)| p.area_mm2).sum::<f64>() / CellKind::all().len() as f64;
        assert!(avg_area > 0.1 && avg_area < 1.0, "avg cell area {avg_area} mm²");
        let nand = lib.params(CellKind::Nand2);
        // 5000 NAND-ish cells land in the tens of cm² and the ~10 mW static
        // regime — the magnitudes printed classifiers occupy.
        let area_cm2 = 5000.0 * nand.area_mm2 / 100.0;
        let static_mw = 5000.0 * nand.static_power_uw / 1000.0;
        assert!(area_cm2 > 5.0 && area_cm2 < 60.0, "area {area_cm2} cm²");
        assert!(static_mw > 3.0 && static_mw < 40.0, "static {static_mw} mW");
    }

    #[test]
    fn scaled_applies_factors() {
        let lib = EgfetLibrary::scaled(2.0, 1.0, 0.5, 3.0);
        let base = EgfetLibrary::standard();
        let (a, b) = (lib.params(CellKind::Xor2), base.params(CellKind::Xor2));
        assert!((a.area_mm2 - 2.0 * b.area_mm2).abs() < 1e-12);
        assert!((a.static_power_uw - b.static_power_uw).abs() < 1e-12);
        assert!((a.switch_energy_nj - 0.5 * b.switch_energy_nj).abs() < 1e-12);
        assert!((a.delay_ms - 3.0 * b.delay_ms).abs() < 1e-12);
        assert!(lib.name().contains("scaled"));
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(EgfetLibrary::default(), EgfetLibrary::standard());
    }
}
