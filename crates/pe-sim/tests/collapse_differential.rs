//! Differential lockdown of the collapsed fault campaigns.
//!
//! The collapsed campaigns ([`pe_sim::collapse`]) retire fault sites three
//! ways before pinning a lane — equivalence classes, structural
//! observability, and the phase-unrolled workload masking analysis — and
//! every reduction must be invisible in the verdicts. Each test runs the
//! same campaign through the uncollapsed PPSFP path and the collapsed path
//! and asserts the reports are **identical**, across lane widths and cone
//! modes, on generated design styles, seeded-random netlists with
//! registered feedback, and hand-built pathologies (dead cones, inverter
//! chains, workload-quiescent gates) where the collapser actually has work
//! to do.
//!
//! The site-enumeration order of `pe-lint`'s collapser is additionally
//! pinned against [`enumerate_fault_sites`]: the two crates must agree on
//! what "the fault list of a netlist" means, element for element.

use pe_core::designs::{parallel, sequential};
use pe_data::{train_test_split, Dataset, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_netlist::testing::{random_netlist, RandomNetlistSpec, RawNetlistBuilder};
use pe_netlist::{CellKind, Driver, Netlist};
use pe_sim::collapse::{
    fault_campaign_comb_ppsfp_collapsed_opts, fault_campaign_seq_ppsfp_collapsed_opts,
    workload_must_simulate,
};
use pe_sim::faults::{
    enumerate_fault_sites, fault_campaign_comb_ppsfp_wide_opts, fault_campaign_seq_ppsfp_wide_opts,
    FaultSite,
};
use pe_sim::{ConeMode, LaneWidth};

// ---- model / workload helpers -------------------------------------------

fn normalized_split(seed: u64) -> (Dataset, Dataset) {
    let d = UciProfile::Cardio.generate(seed);
    let (train, test) = train_test_split(&d, 0.2, seed);
    let norm = Normalizer::fit(&train);
    (norm.apply(&train), norm.apply(&test))
}

fn svm_model(scheme: MulticlassScheme, seed: u64) -> (QuantizedSvm, Dataset) {
    let (train, test) = normalized_split(seed);
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let p = SvmTrainParams { max_epochs: 25, ..SvmTrainParams::default() };
    let m = SvmModel::train(&train.subset(&sub, "-s").quantize_inputs(4), scheme, &p);
    (QuantizedSvm::quantize(&m, 4, 5), test)
}

fn svm_workload(q: &QuantizedSvm, test: &Dataset, take: usize) -> Vec<Vec<(String, i64)>> {
    test.features()
        .iter()
        .take(take)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect()
}

fn fuzz_spec(registers: usize) -> RandomNetlistSpec {
    RandomNetlistSpec { inputs: 5, gates: 60, registers, outputs: 3, input_prefix: "x" }
}

fn fuzz_workload(inputs: usize, count: usize, seed: u64) -> Vec<Vec<(String, i64)>> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|i| {
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    (format!("x{i}"), (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) as i64 & 1)
                })
                .collect()
        })
        .collect()
}

const WIDTHS: [LaneWidth; 2] = [LaneWidth::W1, LaneWidth::W4];
const MODES: [ConeMode; 3] = [ConeMode::Auto, ConeMode::Always, ConeMode::Never];

/// Full vs. collapsed sequential campaign, every width × cone mode.
fn assert_seq_collapsed_identical(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
    cycles: u64,
) {
    for width in WIDTHS {
        for mode in MODES {
            let (full, _) =
                fault_campaign_seq_ppsfp_wide_opts(nl, sites, workload, out, cycles, width, mode)
                    .unwrap();
            let (collapsed, stats) = fault_campaign_seq_ppsfp_collapsed_opts(
                nl, sites, workload, out, cycles, width, mode,
            )
            .unwrap();
            assert_eq!(full, collapsed, "collapsed seq verdicts differ at {width:?}/{mode:?}");
            assert_eq!(stats.sites, sites.len());
            assert!(stats.simulated <= stats.sites);
        }
    }
}

/// Full vs. collapsed combinational campaign, every width × cone mode.
fn assert_comb_collapsed_identical(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
) {
    for width in WIDTHS {
        for mode in MODES {
            let (full, _) =
                fault_campaign_comb_ppsfp_wide_opts(nl, sites, workload, out, width, mode).unwrap();
            let (collapsed, stats) =
                fault_campaign_comb_ppsfp_collapsed_opts(nl, sites, workload, out, width, mode)
                    .unwrap();
            assert_eq!(full, collapsed, "collapsed comb verdicts differ at {width:?}/{mode:?}");
            assert_eq!(stats.sites, sites.len());
        }
    }
}

// ---- cross-crate enumeration pinning ------------------------------------

#[test]
fn lint_site_enumeration_matches_sim_enumeration() {
    let (q, _) = svm_model(MulticlassScheme::OneVsRest, 11);
    let designs: Vec<Netlist> = vec![
        sequential::build_sequential_ovr(&q),
        parallel::build_parallel_svm(&q),
        random_netlist(&fuzz_spec(4), 17),
    ];
    for nl in &designs {
        let sim_sites = enumerate_fault_sites(nl);
        let lint_sites = pe_lint::collapse::enumerate_sites(nl);
        assert_eq!(sim_sites.len(), lint_sites.len(), "site counts differ on {}", nl.name());
        for (a, b) in sim_sites.iter().zip(&lint_sites) {
            assert_eq!((a.net, a.stuck_at), (b.net, b.stuck_at));
        }
    }
}

// ---- random netlists ----------------------------------------------------

#[test]
fn random_sequential_netlists_collapse_identically() {
    for seed in [3u64, 19, 48] {
        let nl = random_netlist(&fuzz_spec(6), seed);
        let sites = enumerate_fault_sites(&nl);
        let workload = fuzz_workload(5, 12, seed ^ 0xC0FE);
        assert_seq_collapsed_identical(&nl, &sites, &workload, "o1", 3);
    }
}

#[test]
fn random_combinational_netlists_collapse_identically() {
    for seed in [7u64, 23] {
        let nl = random_netlist(&fuzz_spec(0), seed);
        let sites = enumerate_fault_sites(&nl);
        let workload = fuzz_workload(5, 16, seed);
        assert_comb_collapsed_identical(&nl, &sites, &workload, "o0");
    }
}

// ---- generated design styles --------------------------------------------

#[test]
fn sequential_svm_style_collapses_identically() {
    // The paper's headline circuit: clocked campaign, per-classification
    // reset. Sites are sampled to keep the debug-mode full reference fast;
    // the release-mode kernels bench runs the full 4k-site campaign.
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 5);
    let nl = sequential::build_sequential_ovr(&q);
    let sites: Vec<FaultSite> = enumerate_fault_sites(&nl).into_iter().step_by(9).collect();
    let workload = svm_workload(&q, &test, 8);
    assert_seq_collapsed_identical(&nl, &sites, &workload, "class", q.num_classes() as u64);
}

#[test]
fn parallel_svm_style_collapses_identically() {
    let (q, test) = svm_model(MulticlassScheme::OneVsOne, 9);
    let nl = parallel::build_parallel_svm(&q);
    let sites: Vec<FaultSite> = enumerate_fault_sites(&nl).into_iter().step_by(9).collect();
    let workload = svm_workload(&q, &test, 8);
    assert_comb_collapsed_identical(&nl, &sites, &workload, "class");
}

// ---- hand-built pathologies ---------------------------------------------

/// A dead xor cone hanging off the live path: its sites must be retired
/// statically, and the report must still match the full campaign.
#[test]
fn dead_cones_are_statically_benign() {
    let mut rb = RawNetlistBuilder::new("dead_cone");
    let x = rb.input("x0");
    let y = rb.input("x1");
    let live = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, y], live);
    let dead1 = rb.net(Driver::Input);
    rb.cell(CellKind::Xor2, &[x, y], dead1);
    let dead2 = rb.net(Driver::Input);
    rb.cell(CellKind::Xor2, &[dead1, x], dead2);
    rb.output("o0", &[live]);
    let nl = rb.finish();
    nl.validate().unwrap();

    let sites = enumerate_fault_sites(&nl);
    let workload = fuzz_workload(2, 4, 77);
    let (_, stats) = fault_campaign_comb_ppsfp_collapsed_opts(
        &nl,
        &sites,
        &workload,
        "o0",
        LaneWidth::W1,
        ConeMode::Auto,
    )
    .unwrap();
    assert!(stats.static_benign > 0, "dead cone sites should be retired statically");
    assert_comb_collapsed_identical(&nl, &sites, &workload, "o0");
}

/// An inverter chain collapses to two equivalence classes; the collapsed
/// campaign pins at most two lanes yet reports all six sites.
#[test]
fn inverter_chains_collapse_to_class_representatives() {
    let mut rb = RawNetlistBuilder::new("inv_chain");
    let x = rb.input("x0");
    let mut cur = x;
    for _ in 0..3 {
        let next = rb.net(Driver::Input);
        rb.cell(CellKind::Inv, &[cur], next);
        cur = next;
    }
    rb.output("o0", &[cur]);
    let nl = rb.finish();
    nl.validate().unwrap();

    let sites = enumerate_fault_sites(&nl);
    assert_eq!(sites.len(), 6);
    let workload = fuzz_workload(1, 4, 5);
    let (_, stats) = fault_campaign_comb_ppsfp_collapsed_opts(
        &nl,
        &sites,
        &workload,
        "o0",
        LaneWidth::W1,
        ConeMode::Never,
    )
    .unwrap();
    assert_eq!(stats.classes, 2, "x -> inv^3 -> y holds exactly two collapse classes");
    assert!(stats.simulated <= 2);
    assert_comb_collapsed_identical(&nl, &sites, &workload, "o0");
}

/// The workload analysis proves sites quiet when the workload never
/// exercises them: an `And2` leg held at 0 keeps the gate's output at 0 in
/// every settled phase, so its stuck-at-0 site needs no lane.
#[test]
fn workload_quiet_sites_are_pruned_and_still_correct() {
    let mut rb = RawNetlistBuilder::new("quiet");
    let x = rb.input("x0");
    let y = rb.input("x1");
    let g = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, y], g);
    let o = rb.net(Driver::Input);
    rb.cell(CellKind::Xor2, &[g, x], o);
    rb.output("o0", &[o]);
    let nl = rb.finish();
    nl.validate().unwrap();

    // x1 is driven 0 in every entry: g settles to 0 everywhere, so g-sa0
    // injects no difference and must be provably benign.
    let workload: Vec<Vec<(String, i64)>> = (0..3)
        .map(|i| vec![("x0".to_string(), i64::from(i % 2 == 0)), ("x1".to_string(), 0)])
        .collect();
    let sites = enumerate_fault_sites(&nl);
    let must = workload_must_simulate(&nl, &sites, &workload, "o0", None).unwrap();
    let g_sa0 = sites.iter().position(|s| s.net == g && !s.stuck_at).unwrap();
    let g_sa1 = sites.iter().position(|s| s.net == g && s.stuck_at).unwrap();
    assert!(!must[g_sa0], "quiescent site should be retired by the workload analysis");
    assert!(must[g_sa1], "the opposite polarity diverges and must keep its lane");
    assert_comb_collapsed_identical(&nl, &sites, &workload, "o0");
}

/// Netlists without a topological order (combinational cycles) must pass
/// through unpruned rather than mis-pruned: the analysis falls back to
/// simulate-everything.
#[test]
fn unanalyzable_netlists_are_left_unpruned() {
    let mut rb = RawNetlistBuilder::new("cyclic");
    let x = rb.input("x0");
    let n1 = rb.net(Driver::Input);
    let n2 = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, n2], n1);
    rb.cell(CellKind::Or2, &[n1, x], n2);
    rb.output("o0", &[n2]);
    let nl = rb.finish();

    let sites = enumerate_fault_sites(&nl);
    let must = workload_must_simulate(&nl, &sites, &fuzz_workload(1, 2, 3), "o0", None).unwrap();
    assert!(must.iter().all(|&m| m), "cyclic designs must not be pruned");
}
