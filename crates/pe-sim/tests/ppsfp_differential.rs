//! Differential lockdown of the PPSFP fault-parallel campaigns.
//!
//! The PPSFP path packs one fault *site* per bit-sliced lane
//! (`force_lanes`), drives every workload pattern broadcast across the
//! lanes, and accumulates a per-lane divergence mask — 64 faulty machines
//! per word. These tests assert the campaign reports are **identical, site
//! for site**, to both references: the rebuild-per-site serial
//! [`oracle`](pe_sim::faults::oracle) and the previous
//! [`pattern_parallel`](pe_sim::faults::pattern_parallel) site-serial path.
//! Coverage spans every generated design style, seeded-random netlists with
//! registered feedback, ragged site counts around the 64-lane word boundary
//! (1/63/64/65), and words whose lanes mix faults on register-driving nets
//! with ordinary combinational sites.
//!
//! The slab is width-generic (`[u64; W]`, up to 512 faulty machines per
//! sweep) and fault verdicts are width-invariant, so the suite additionally
//! sweeps every [`LaneWidth`] with site counts straddling every slab
//! boundary (64W ± 1) and pins each width to the same per-site verdicts.
//!
//! Like the batch differential suite, CI runs this in debug and release:
//! release strips the debug assertions that would otherwise mask
//! wrapping/shift mistakes in the lane-masked merge.

use pe_core::designs::{mlp, parallel, sequential};
use pe_data::{train_test_split, Dataset, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::mlp::{Mlp, MlpTrainParams};
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::{QuantizedMlp, QuantizedSvm};
use pe_netlist::testing::{random_netlist, RandomNetlistSpec};
use pe_netlist::{Driver, Netlist};
use pe_sim::faults::{
    enumerate_fault_sites, fault_campaign_comb_ppsfp, fault_campaign_comb_ppsfp_wide,
    fault_campaign_comb_ppsfp_wide_opts, fault_campaign_seq_ppsfp, fault_campaign_seq_ppsfp_wide,
    fault_campaign_seq_ppsfp_wide_opts, oracle, pattern_parallel, FaultSite,
};
use pe_sim::{ConeMode, LaneWidth};

// ---- model / workload helpers -------------------------------------------

fn normalized_split(seed: u64) -> (Dataset, Dataset) {
    let d = UciProfile::Cardio.generate(seed);
    let (train, test) = train_test_split(&d, 0.2, seed);
    let norm = Normalizer::fit(&train);
    (norm.apply(&train), norm.apply(&test))
}

fn svm_model(scheme: MulticlassScheme, seed: u64) -> (QuantizedSvm, Dataset) {
    let (train, test) = normalized_split(seed);
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let p = SvmTrainParams { max_epochs: 25, ..SvmTrainParams::default() };
    let m = SvmModel::train(&train.subset(&sub, "-s").quantize_inputs(4), scheme, &p);
    (QuantizedSvm::quantize(&m, 4, 5), test)
}

fn mlp_model(seed: u64) -> (QuantizedMlp, Dataset) {
    let (train, test) = normalized_split(seed);
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let train = train.subset(&sub, "-s");
    let m = Mlp::train(&train, &MlpTrainParams { hidden: 4, epochs: 25, ..Default::default() });
    (QuantizedMlp::quantize(&m, &train, 4, 5, 6), test)
}

fn svm_workload(q: &QuantizedSvm, test: &Dataset, take: usize) -> Vec<Vec<(String, i64)>> {
    test.features()
        .iter()
        .take(take)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect()
}

fn fuzz_spec(registers: usize) -> RandomNetlistSpec {
    RandomNetlistSpec { inputs: 5, gates: 60, registers, outputs: 3, input_prefix: "x" }
}

fn fuzz_workload(inputs: usize, count: usize, seed: u64) -> Vec<Vec<(String, i64)>> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|i| {
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    (format!("x{i}"), (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) as i64 & 1)
                })
                .collect()
        })
        .collect()
}

/// Asserts the PPSFP combinational campaign agrees with both references,
/// in aggregate and site for site.
fn assert_comb_agrees(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
) {
    let ppsfp = fault_campaign_comb_ppsfp(nl, sites, workload, out).unwrap();
    let patpar = pattern_parallel::fault_campaign_comb(nl, sites, workload, out).unwrap();
    let slow = oracle::fault_campaign_comb(nl, sites, workload, out).unwrap();
    assert_eq!(ppsfp, patpar, "PPSFP vs pattern-parallel on {}", nl.name());
    assert_eq!(ppsfp, slow, "PPSFP vs oracle on {}", nl.name());
    for &site in sites {
        let f = fault_campaign_comb_ppsfp(nl, &[site], workload, out).unwrap();
        let s = oracle::fault_campaign_comb(nl, &[site], workload, out).unwrap();
        assert_eq!(f, s, "site {site:?} diverged from the rebuild oracle on {}", nl.name());
    }
}

/// Sequential counterpart of [`assert_comb_agrees`].
fn assert_seq_agrees(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
    cycles: u64,
) {
    let ppsfp = fault_campaign_seq_ppsfp(nl, sites, workload, out, cycles).unwrap();
    let patpar = pattern_parallel::fault_campaign_seq(nl, sites, workload, out, cycles).unwrap();
    let slow = oracle::fault_campaign_seq(nl, sites, workload, out, cycles).unwrap();
    assert_eq!(ppsfp, patpar, "PPSFP vs pattern-parallel on {}", nl.name());
    assert_eq!(ppsfp, slow, "PPSFP vs oracle on {}", nl.name());
    for &site in sites {
        let f = fault_campaign_seq_ppsfp(nl, &[site], workload, out, cycles).unwrap();
        let s = oracle::fault_campaign_seq(nl, &[site], workload, out, cycles).unwrap();
        assert_eq!(f, s, "site {site:?} diverged from the rebuild oracle on {}", nl.name());
    }
}

// ---- random netlists, every site ----------------------------------------

#[test]
fn random_combinational_netlists_agree_per_site() {
    for seed in 0..6 {
        let nl = random_netlist(&fuzz_spec(0), seed);
        let sites = enumerate_fault_sites(&nl);
        assert!(sites.len() > 64, "need more than one PPSFP word");
        assert_comb_agrees(&nl, &sites, &fuzz_workload(5, 20, seed), "o0");
    }
}

#[test]
fn random_sequential_netlists_agree_per_site() {
    for seed in 0..6 {
        let nl = random_netlist(&fuzz_spec(3), seed);
        let sites = enumerate_fault_sites(&nl);
        assert_seq_agrees(&nl, &sites, &fuzz_workload(5, 12, seed ^ 0xBEEF), "o1", 3);
    }
}

// ---- ragged site counts around the word boundary ------------------------

#[test]
fn ragged_site_counts_agree() {
    let nl = random_netlist(&fuzz_spec(2), 107);
    let all = enumerate_fault_sites(&nl);
    assert!(all.len() >= 65, "spec must yield at least 65 sites, got {}", all.len());
    let workload = fuzz_workload(5, 10, 21);
    for count in [1usize, 63, 64, 65] {
        let sites = &all[..count];
        let ppsfp = fault_campaign_seq_ppsfp(&nl, sites, &workload, "o0", 2).unwrap();
        let slow = oracle::fault_campaign_seq(&nl, sites, &workload, "o0", 2).unwrap();
        assert_eq!(ppsfp, slow, "{count} sites diverged");
        assert_eq!(ppsfp.total, count);
    }
    // Zero sites: an empty report, no simulation.
    let empty = fault_campaign_seq_ppsfp(&nl, &[], &workload, "o0", 2).unwrap();
    assert_eq!(empty.total, 0);
    assert_eq!(empty.criticality(), 0.0);
}

// ---- lane-width sweep ----------------------------------------------------

/// Site counts straddling every slab boundary: 64W ± 1 and the exact
/// boundary for W = 1, 2, 4, 8.
const WIDTH_BOUNDARY_COUNTS: [usize; 12] =
    [63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512, 513];

#[test]
fn every_width_matches_w1_on_ragged_site_counts() {
    // W = 1 verdicts are locked to the rebuild oracle by the tests above;
    // this pins every wider slab to the same reports across site counts
    // that leave every word of the widest slab ragged, full, or
    // one-past-full. Lanes are independent machines, so the verdicts must
    // not depend on how many share a sweep.
    let spec =
        RandomNetlistSpec { inputs: 6, gates: 300, registers: 3, outputs: 3, input_prefix: "x" };
    let nl = random_netlist(&spec, 149);
    let all = enumerate_fault_sites(&nl);
    assert!(all.len() >= 513, "need 513+ sites for the widest boundary, got {}", all.len());
    let workload = fuzz_workload(6, 6, 91);
    for count in WIDTH_BOUNDARY_COUNTS {
        let sites = &all[..count];
        let w1 =
            fault_campaign_seq_ppsfp_wide(&nl, sites, &workload, "o0", 2, LaneWidth::W1).unwrap();
        assert_eq!(w1.total, count);
        for width in [LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
            let wide =
                fault_campaign_seq_ppsfp_wide(&nl, sites, &workload, "o0", 2, width).unwrap();
            assert_eq!(wide, w1, "{count} sites diverged at W={width}");
        }
    }
}

#[test]
fn every_width_matches_the_oracle_on_a_full_comb_slab() {
    // Combinational counterpart, anchored straight to the rebuild-per-site
    // oracle: 257 sites leave a 1-site ragged tail word at W = 4 and a
    // half-full slab at W = 8.
    let spec =
        RandomNetlistSpec { inputs: 6, gates: 160, registers: 0, outputs: 3, input_prefix: "x" };
    let nl = random_netlist(&spec, 151);
    let all = enumerate_fault_sites(&nl);
    assert!(all.len() >= 257, "need 257+ sites, got {}", all.len());
    let sites = &all[..257];
    let workload = fuzz_workload(6, 10, 17);
    let slow = oracle::fault_campaign_comb(&nl, sites, &workload, "o0").unwrap();
    for width in LaneWidth::ALL {
        let wide = fault_campaign_comb_ppsfp_wide(&nl, sites, &workload, "o0", width).unwrap();
        assert_eq!(wide, slow, "verdicts diverged from the oracle at W={width}");
    }
}

// ---- register-driving nets sharing a word with ordinary sites -----------

#[test]
fn register_sites_share_a_word_with_combinational_sites() {
    // Order the site list so register outputs and their stuck-at pairs land
    // in the same PPSFP word as plain combinational sites: the per-lane
    // state merge in tick/reset must keep every lane independent.
    let nl = random_netlist(&fuzz_spec(3), 109);
    let mut sites = enumerate_fault_sites(&nl);
    sites.sort_by_key(|s| {
        let is_reg = match nl.net(s.net).driver() {
            Driver::Cell(c) => nl.cell(c).kind().is_sequential(),
            _ => false,
        };
        // Interleave: register sites first, then alternate.
        (!is_reg, s.net)
    });
    let reg_sites = sites
        .iter()
        .filter(|s| match nl.net(s.net).driver() {
            Driver::Cell(c) => nl.cell(c).kind().is_sequential(),
            _ => false,
        })
        .count();
    assert!(reg_sites >= 2, "need register-output sites in the first word");
    assert!(sites.len() > 64, "the first word must also hold combinational sites");
    assert_seq_agrees(&nl, &sites, &fuzz_workload(5, 10, 33), "o2", 2);
}

// ---- generated design styles --------------------------------------------

#[test]
fn parallel_svm_style_agrees() {
    let (q, test) = svm_model(MulticlassScheme::OneVsOne, 43);
    let nl = parallel::build_parallel_svm(&q);
    // Sampled sites (the oracle reference is slow), full word + ragged tail.
    let sites: Vec<FaultSite> =
        enumerate_fault_sites(&nl).into_iter().step_by(37).take(90).collect();
    let workload = svm_workload(&q, &test, 12);
    assert_comb_agrees(&nl, &sites, &workload, "class");
}

#[test]
fn mlp_style_agrees() {
    let (q, test) = mlp_model(53);
    let nl = mlp::build_parallel_mlp(&q);
    let sites: Vec<FaultSite> =
        enumerate_fault_sites(&nl).into_iter().step_by(41).take(80).collect();
    let workload: Vec<Vec<(String, i64)>> = test
        .features()
        .iter()
        .take(10)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect();
    let ppsfp = fault_campaign_comb_ppsfp(&nl, &sites, &workload, "class").unwrap();
    let slow = oracle::fault_campaign_comb(&nl, &sites, &workload, "class").unwrap();
    assert_eq!(ppsfp, slow);
}

#[test]
fn sequential_svm_style_agrees() {
    // The paper's headline circuit: clocked campaign, per-classification
    // reset, faults pinned across the reset.
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 61);
    let nl = sequential::build_sequential_ovr(&q);
    let sites: Vec<FaultSite> = enumerate_fault_sites(&nl).into_iter().step_by(97).collect();
    let workload = svm_workload(&q, &test, 8);
    let n = q.num_classes() as u64;
    let ppsfp = fault_campaign_seq_ppsfp(&nl, &sites, &workload, "class", n).unwrap();
    let patpar = pattern_parallel::fault_campaign_seq(&nl, &sites, &workload, "class", n).unwrap();
    let slow = oracle::fault_campaign_seq(&nl, &sites, &workload, "class", n).unwrap();
    assert_eq!(ppsfp, patpar);
    assert_eq!(ppsfp, slow);
}

// ---- cone-scheduled campaigns vs the same references --------------------

#[test]
fn cone_scheduled_campaigns_agree_with_references_at_every_width() {
    // ConeMode::Always forces every chunk through the fanout-cone pass
    // (frontier loaded from the golden trajectory); ConeMode::Never is the
    // dense sweep the suite above locks to the oracle. Both must produce
    // the same report at every slab width, comb and seq.
    let cnl = random_netlist(&fuzz_spec(0), 3);
    let csites = enumerate_fault_sites(&cnl);
    let cwl = fuzz_workload(5, 14, 77);
    let coracle = oracle::fault_campaign_comb(&cnl, &csites, &cwl, "o0").unwrap();

    let snl = random_netlist(&fuzz_spec(3), 5);
    let ssites = enumerate_fault_sites(&snl);
    let swl = fuzz_workload(5, 10, 79);
    let soracle = oracle::fault_campaign_seq(&snl, &ssites, &swl, "o1", 3).unwrap();

    for width in LaneWidth::ALL {
        for mode in [ConeMode::Always, ConeMode::Never, ConeMode::Auto] {
            let (comb, cs) =
                fault_campaign_comb_ppsfp_wide_opts(&cnl, &csites, &cwl, "o0", width, mode)
                    .unwrap();
            assert_eq!(comb, coracle, "comb {mode:?} at W={width} diverged from the oracle");
            let (seq, ss) =
                fault_campaign_seq_ppsfp_wide_opts(&snl, &ssites, &swl, "o1", 3, width, mode)
                    .unwrap();
            assert_eq!(seq, soracle, "seq {mode:?} at W={width} diverged from the oracle");
            match mode {
                ConeMode::Always => {
                    assert_eq!(cs.fallback_chunks + ss.fallback_chunks, 0, "Always fell back");
                }
                ConeMode::Never => {
                    assert_eq!(cs.cone_chunks + ss.cone_chunks, 0, "Never took the cone path");
                }
                ConeMode::Auto => {}
            }
        }
    }
}

#[test]
fn cone_scheduled_ragged_site_counts_agree() {
    // Ragged chunk tails exercise the watch-masked diff of the cone pass:
    // 1/63/64/65 straddle the word boundary at W1, 511/513 the slab
    // boundary at W8. Verdicts locked to the dense sweep, which the suite
    // above locks to the oracle on this exact netlist (seed 149).
    let spec =
        RandomNetlistSpec { inputs: 6, gates: 300, registers: 3, outputs: 3, input_prefix: "x" };
    let nl = random_netlist(&spec, 149);
    let all = enumerate_fault_sites(&nl);
    assert!(all.len() >= 513, "need 513+ sites, got {}", all.len());
    let workload = fuzz_workload(6, 6, 91);
    for count in [1usize, 63, 64, 65, 511, 513] {
        let sites = &all[..count];
        let width = if count > 64 { LaneWidth::W8 } else { LaneWidth::W1 };
        let (cone, stats) = fault_campaign_seq_ppsfp_wide_opts(
            &nl,
            sites,
            &workload,
            "o0",
            2,
            width,
            ConeMode::Always,
        )
        .unwrap();
        let (dense, _) = fault_campaign_seq_ppsfp_wide_opts(
            &nl,
            sites,
            &workload,
            "o0",
            2,
            width,
            ConeMode::Never,
        )
        .unwrap();
        assert_eq!(cone, dense, "{count} sites diverged under cone scheduling");
        assert_eq!(cone.total, count);
        assert_eq!(stats.cone_chunks, stats.chunks, "Always must run every chunk through cones");
    }
}

#[test]
fn cone_scheduled_mixed_register_and_comb_sites_agree() {
    // Register sites and combinational sites packed into the same PPSFP
    // word: the cone pass must reset/update the cone's registers per lane
    // exactly like the dense sweep's full tick. Site-for-site against the
    // rebuild oracle, in cone mode.
    let nl = random_netlist(&fuzz_spec(3), 109);
    let mut sites = enumerate_fault_sites(&nl);
    sites.sort_by_key(|s| {
        let is_reg = match nl.net(s.net).driver() {
            Driver::Cell(c) => nl.cell(c).kind().is_sequential(),
            _ => false,
        };
        (!is_reg, s.net)
    });
    assert!(sites.len() > 64, "the first word must mix register and comb sites");
    let workload = fuzz_workload(5, 10, 33);
    let (whole, _) = fault_campaign_seq_ppsfp_wide_opts(
        &nl,
        &sites,
        &workload,
        "o2",
        2,
        LaneWidth::W1,
        ConeMode::Always,
    )
    .unwrap();
    assert_eq!(whole, oracle::fault_campaign_seq(&nl, &sites, &workload, "o2", 2).unwrap());
    for &site in &sites {
        let (f, _) = fault_campaign_seq_ppsfp_wide_opts(
            &nl,
            &[site],
            &workload,
            "o2",
            2,
            LaneWidth::W1,
            ConeMode::Always,
        )
        .unwrap();
        let s = oracle::fault_campaign_seq(&nl, &[site], &workload, "o2", 2).unwrap();
        assert_eq!(f, s, "site {site:?} diverged from the rebuild oracle under cone scheduling");
    }
}

// ---- campaign reuse: one simulator across divergent-lane chunks ---------

#[test]
fn ppsfp_chunks_do_not_contaminate_each_other() {
    // Running the same sites as one multi-chunk campaign and as per-site
    // singleton campaigns must agree: forced lanes from one chunk may not
    // leak into the next (release + re-force between chunks).
    let nl = random_netlist(&fuzz_spec(2), 113);
    let sites = enumerate_fault_sites(&nl);
    assert!(sites.len() > 128, "need at least three chunks");
    let workload = fuzz_workload(5, 8, 55);
    let whole = fault_campaign_seq_ppsfp(&nl, &sites, &workload, "o0", 2).unwrap();
    let mut critical = 0;
    for &site in &sites {
        critical += fault_campaign_seq_ppsfp(&nl, &[site], &workload, "o0", 2).unwrap().critical;
    }
    assert_eq!(whole.critical, critical);
}
