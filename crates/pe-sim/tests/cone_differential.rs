//! Differential lockdown of the fanout-cone precomputation and the
//! event-driven (dirty-cell worklist) sweep mode.
//!
//! The cone-scheduled PPSFP path trusts [`FanoutCones::cone`] completely:
//! any cell the structural cone misses is a cell the campaign never
//! re-evaluates, so a too-small cone silently corrupts fault verdicts.
//! These tests check the precomputation against **brute-force semantic
//! reachability**: pin one net both ways in two lockstep scalar
//! simulators, drive random vectors through random sequential netlists
//! (register feedback included), and diff *every* net after every settle
//! and every clock tick — a net that differs must be the pinned root or
//! the output of a cone cell.
//!
//! The second half locks the event-driven sweep to the dense sweep at the
//! `run_batch` level: identical outputs *and* identical toggle accounting
//! on scalar / full / event-driven engines at every slab width.
//!
//! Deliberately proptest-free: seeded xorshift workloads, exhaustive net
//! enumeration, zero external dependencies.

use pe_netlist::graph::FanoutCones;
use pe_netlist::testing::{random_netlist, RandomNetlistSpec};
use pe_netlist::{Builder, Driver, Netlist};
use pe_sim::{BatchMode, LaneWidth, Simulator};

fn fuzz_vectors(inputs: usize, count: usize, seed: u64) -> Vec<Vec<i64>> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|_| {
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) as i64 & 1
                })
                .collect()
        })
        .collect()
}

/// Diffs every net between two lockstep simulators; every differing net
/// must be the pinned `root` or driven by a cell inside `membership`.
fn assert_diff_inside_cone(
    nl: &Netlist,
    a: &Simulator<'_>,
    b: &Simulator<'_>,
    root: pe_netlist::NetId,
    membership: &[bool],
    when: &str,
) {
    for (id, net) in nl.nets() {
        if a.net_value(id) == b.net_value(id) || id == root {
            continue;
        }
        let in_cone = match net.driver() {
            Driver::Cell(c) => membership[c.index()],
            _ => false,
        };
        assert!(
            in_cone,
            "net {id:?} of {} differs {when} but its driver is outside the cone of {root:?}",
            nl.name()
        );
    }
}

/// Brute-force semantic reachability: pin `root` low in one simulator and
/// high in another, drive the same random workload through both, and
/// check after every settle/tick that the influence stayed inside the
/// structural cone.
fn check_cone_bounds_influence(nl: &Netlist, vectors: &[Vec<i64>], ticks: u64) {
    let cones = FanoutCones::new(nl);
    let sequential = ticks > 0;
    for (root, _) in nl.nets() {
        let membership = cones.cone(nl, &[root]);
        let mut a = Simulator::new(nl).unwrap();
        let mut b = Simulator::new(nl).unwrap();
        a.force_net(root, false);
        b.force_net(root, true);
        for v in vectors {
            for (sim, v) in [(&mut a, v), (&mut b, v)] {
                for (i, &bit) in v.iter().enumerate() {
                    sim.set_input(&format!("x{i}"), bit);
                }
            }
            if sequential {
                a.reset();
                b.reset();
                assert_diff_inside_cone(nl, &a, &b, root, &membership, "after reset");
                for t in 0..ticks {
                    a.tick();
                    b.tick();
                    assert_diff_inside_cone(
                        nl,
                        &a,
                        &b,
                        root,
                        &membership,
                        &format!("after tick {t}"),
                    );
                }
            } else {
                a.eval_comb();
                b.eval_comb();
                assert_diff_inside_cone(nl, &a, &b, root, &membership, "after settle");
            }
        }
    }
}

// ---- structural cone vs brute-force influence ---------------------------

#[test]
fn cone_bounds_influence_on_random_combinational_netlists() {
    for seed in 0..4 {
        let spec =
            RandomNetlistSpec { inputs: 5, gates: 50, registers: 0, outputs: 3, input_prefix: "x" };
        let nl = random_netlist(&spec, seed);
        check_cone_bounds_influence(&nl, &fuzz_vectors(5, 6, seed ^ 0xC0DE), 0);
    }
}

#[test]
fn cone_bounds_influence_on_random_sequential_netlists() {
    // Registers included: the cone closure must not cut at sequential
    // cells, or a fault upstream of a register would look benign after the
    // first tick. random_netlist wires register feedback (dff inputs
    // connect back into the combinational cloud), so the closure also has
    // cycles to survive.
    for seed in 0..4 {
        let spec =
            RandomNetlistSpec { inputs: 5, gates: 40, registers: 4, outputs: 3, input_prefix: "x" };
        let nl = random_netlist(&spec, seed);
        check_cone_bounds_influence(&nl, &fuzz_vectors(5, 4, seed ^ 0xFEED), 3);
    }
}

#[test]
fn cone_closes_over_register_feedback_cycles() {
    // A self-sustaining toggle loop: q feeds its own next-state logic. The
    // cone of the loop's combinational net must contain the register *and*
    // re-enter the loop logic (fixed point, not infinite recursion), and
    // the brute-force diff must stay inside it across many ticks.
    let mut b = Builder::new("feedback");
    let en = b.input("x0");
    let (q, q_src) = b.dff_deferred(false);
    let nxt = b.xor2(q, en);
    b.connect_dff(q_src, nxt);
    let probe = b.and2(q, en);
    b.output("o0", probe);
    let nl = b.finish();
    let cones = FanoutCones::new(&nl);
    let membership = cones.cone(&nl, &[nxt]);
    // The register consumes nxt, the xor consumes the register's q: both
    // live in the closed cone.
    assert!(
        membership.iter().filter(|&&m| m).count() >= 3,
        "feedback cone must close over the register loop"
    );
    check_cone_bounds_influence(&nl, &fuzz_vectors(1, 6, 11), 4);
}

// ---- event-driven sweeps vs dense sweeps at the run_batch level ---------

/// Scalar / dense bit-sliced / event-driven bit-sliced on the same batch:
/// outputs and toggle counts must agree exactly at every width. The scalar
/// reference is pinned to the same [`LaneWidth`] because sequential batch
/// semantics chunk by `64 * W` vectors (chunked streaming).
fn assert_event_driven_matches(nl: &Netlist, vectors: &[Vec<i64>], cycles: u64, out: &str) {
    for width in LaneWidth::ALL {
        let mut scalar = Simulator::new(nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.set_lane_width(width);
        scalar.enable_activity();
        let want = scalar.run_batch(vectors, cycles, out);
        let want_activity = scalar.activity();
        for events in [false, true] {
            let mut sim = Simulator::new(nl).unwrap();
            sim.set_lane_width(width);
            sim.set_event_driven(events);
            sim.enable_activity();
            let got = sim.run_batch(vectors, cycles, out);
            assert_eq!(
                got.outputs,
                want.outputs,
                "outputs diverged on {} (W={width}, events={events})",
                nl.name()
            );
            assert_eq!(
                sim.activity(),
                want_activity,
                "toggles diverged on {} (W={width}, events={events})",
                nl.name()
            );
        }
    }
}

#[test]
fn event_driven_batches_agree_on_random_netlists() {
    for seed in 0..4 {
        let comb =
            RandomNetlistSpec { inputs: 5, gates: 60, registers: 0, outputs: 3, input_prefix: "x" };
        let nl = random_netlist(&comb, seed ^ 0xAB);
        assert_event_driven_matches(&nl, &fuzz_vectors(5, 130, seed), 0, "o0");
        let seq =
            RandomNetlistSpec { inputs: 5, gates: 50, registers: 4, outputs: 3, input_prefix: "x" };
        let snl = random_netlist(&seq, seed ^ 0xCD);
        assert_event_driven_matches(&snl, &fuzz_vectors(5, 70, seed ^ 0x77), 2, "o1");
    }
}

#[test]
fn event_driven_batches_agree_on_low_activity_streams() {
    // The worklist's best case — repeated and near-constant vectors — is
    // also where a stale-dirty bug would hide: a cell wrongly left clean
    // only shows when its inputs *should* have changed but the output slab
    // was never recomputed. Alternate long constant runs with single-bit
    // steps to cover both edges.
    let spec =
        RandomNetlistSpec { inputs: 5, gates: 60, registers: 3, outputs: 3, input_prefix: "x" };
    let nl = random_netlist(&spec, 23);
    let mut vectors = vec![vec![1, 0, 1, 0, 1]; 80];
    for (i, v) in vectors.iter_mut().enumerate() {
        if i % 17 == 0 {
            v[i % 5] ^= 1;
        }
    }
    assert_event_driven_matches(&nl, &vectors, 2, "o0");
}
