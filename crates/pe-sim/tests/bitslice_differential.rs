//! Differential lockdown of the word-parallel bit-sliced engine.
//!
//! Every test drives the same workload through [`BatchMode::Scalar`] (the
//! bool-per-net reference) and [`BatchMode::BitSliced`] (the wide-lane fast
//! path) and asserts **bit identity**: recorded outputs, accounted cycles,
//! per-net toggle counts, and the register state carried out of the batch.
//! Circuits cover every generated design style (sequential, parallel,
//! pipelined, MLP) plus seeded-random netlists with registered feedback,
//! batch sizes sweep the ragged-chunk edge cases, and the force/release
//! fault campaigns are pinned against the old rebuild-per-site oracle.
//!
//! The engine is width-generic (`[u64; W]` slabs, 64–512 lanes per sweep),
//! so the suite additionally sweeps every [`LaneWidth`] with batch sizes
//! straddling every slab boundary (64W ± 1), and pins cross-width identity
//! on combinational circuits. Setting `PE_LANE_WIDTH=1|2|4|8` re-runs every
//! scalar-vs-sliced test at that forced width (the CI non-default-width
//! pass uses 4).
//!
//! CI runs this suite in both debug and release: release builds strip the
//! debug assertions that would otherwise mask wrapping/shift mistakes in the
//! packed kernels.

use pe_core::designs::{mlp, parallel, pipelined, sequential};
use pe_data::{train_test_split, Dataset, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::mlp::{Mlp, MlpTrainParams};
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::{QuantizedMlp, QuantizedSvm};
use pe_netlist::testing::{random_netlist, RandomNetlistSpec};
use pe_netlist::Netlist;
use pe_sim::faults::{enumerate_fault_sites, fault_campaign_comb, fault_campaign_seq, oracle};
use pe_sim::{BatchMode, BatchResult, LaneWidth, Simulator};

// ---- model / workload helpers -------------------------------------------

fn normalized_split(seed: u64) -> (Dataset, Dataset) {
    let d = UciProfile::Cardio.generate(seed);
    let (train, test) = train_test_split(&d, 0.2, seed);
    let norm = Normalizer::fit(&train);
    (norm.apply(&train), norm.apply(&test))
}

fn svm_model(scheme: MulticlassScheme, seed: u64) -> (QuantizedSvm, Dataset) {
    let (train, test) = normalized_split(seed);
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let p = SvmTrainParams { max_epochs: 25, ..SvmTrainParams::default() };
    let m = SvmModel::train(&train.subset(&sub, "-s").quantize_inputs(4), scheme, &p);
    (QuantizedSvm::quantize(&m, 4, 5), test)
}

fn mlp_model(seed: u64) -> (QuantizedMlp, Dataset) {
    let (train, test) = normalized_split(seed);
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let train = train.subset(&sub, "-s");
    let m = Mlp::train(&train, &MlpTrainParams { hidden: 4, epochs: 25, ..Default::default() });
    (QuantizedMlp::quantize(&m, &train, 4, 5, 6), test)
}

fn svm_vectors(q: &QuantizedSvm, test: &Dataset, take: usize) -> Vec<Vec<i64>> {
    test.features().iter().take(take).map(|x| q.quantize_input(x)).collect()
}

/// The slab width under test: `PE_LANE_WIDTH=1|2|4|8` (words) forces it so
/// CI can replay the whole suite at a non-default width; unset keeps the
/// simulator default.
fn env_width() -> Option<LaneWidth> {
    std::env::var("PE_LANE_WIDTH").ok().as_deref().and_then(LaneWidth::parse)
}

/// Runs the same batch through both engines on fresh simulators — at
/// `width` if given (both sides, since the sequential chunk size is part of
/// the batch contract), else at the `PE_LANE_WIDTH`/default width — and
/// asserts full bit identity; returns the (shared) result.
fn assert_engines_agree_at(
    nl: &Netlist,
    vectors: &[Vec<i64>],
    cycles_per_vector: u64,
    out_port: &str,
    width: Option<LaneWidth>,
) -> BatchResult {
    let width = width.or_else(env_width);
    let mut reference = Simulator::new(nl).unwrap();
    reference.set_batch_mode(BatchMode::Scalar);
    if let Some(w) = width {
        reference.set_lane_width(w);
    }
    reference.enable_activity();
    let want = reference.run_batch(vectors, cycles_per_vector, out_port);

    let mut fast = Simulator::new(nl).unwrap();
    assert_eq!(fast.batch_mode(), BatchMode::BitSliced, "bit-slicing must be the default");
    if let Some(w) = width {
        fast.set_lane_width(w);
    }
    fast.enable_activity();
    let got = fast.run_batch(vectors, cycles_per_vector, out_port);

    assert_eq!(got.outputs, want.outputs, "outputs diverged on {}", nl.name());
    assert_eq!(got.cycles, want.cycles, "cycle accounting diverged on {}", nl.name());
    assert_eq!(
        fast.activity(),
        reference.activity(),
        "per-net toggle counts diverged on {}",
        nl.name()
    );
    assert_eq!(
        fast.register_state(),
        reference.register_state(),
        "carried register state diverged on {}",
        nl.name()
    );
    got
}

/// [`assert_engines_agree_at`] at the suite-wide (`PE_LANE_WIDTH`/default)
/// width.
fn assert_engines_agree(
    nl: &Netlist,
    vectors: &[Vec<i64>],
    cycles_per_vector: u64,
    out_port: &str,
) -> BatchResult {
    assert_engines_agree_at(nl, vectors, cycles_per_vector, out_port, None)
}

// ---- design styles -------------------------------------------------------

#[test]
fn sequential_svm_style_is_bit_identical() {
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 41);
    let nl = sequential::build_sequential_ovr(&q);
    // 90 vectors = one full chunk plus a ragged one: exercises the
    // cross-chunk state carry on the paper's own architecture.
    let vectors = svm_vectors(&q, &test, 90);
    let n = q.num_classes() as u64;
    let r = assert_engines_agree(&nl, &vectors, n, "class");
    assert_eq!(r.cycles, 90 * n);
    // The batched prediction must still match the integer golden model.
    for (x, &got) in vectors.iter().zip(&r.outputs) {
        assert_eq!(got, q.predict_int(x) as i64, "circuit diverged from golden model");
    }
}

#[test]
fn parallel_svm_style_is_bit_identical() {
    let (q, test) = svm_model(MulticlassScheme::OneVsOne, 43);
    let nl = parallel::build_parallel_svm(&q);
    let vectors = svm_vectors(&q, &test, 80);
    let r = assert_engines_agree(&nl, &vectors, 0, "class");
    for (x, &got) in vectors.iter().zip(&r.outputs) {
        assert_eq!(got, q.predict_int(x) as i64);
    }
}

#[test]
fn pipelined_svm_style_is_bit_identical() {
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 47);
    let nl = pipelined::build_pipelined_ovr(&q);
    let vectors = svm_vectors(&q, &test, 70);
    assert_engines_agree(&nl, &vectors, pipelined::cycles_per_inference(&q), "class");
}

#[test]
fn mlp_style_is_bit_identical() {
    let (q, test) = mlp_model(53);
    let nl = mlp::build_parallel_mlp(&q);
    let vectors: Vec<Vec<i64>> =
        test.features().iter().take(80).map(|x| q.quantize_input(x)).collect();
    let r = assert_engines_agree(&nl, &vectors, 0, "class");
    for (x, &got) in vectors.iter().zip(&r.outputs) {
        assert_eq!(got, q.predict_int(x) as i64);
    }
}

// ---- seeded-random netlists (registered feedback, arbitrary logic) ------

fn fuzz_spec(registers: usize) -> RandomNetlistSpec {
    RandomNetlistSpec { inputs: 5, gates: 60, registers, outputs: 3, input_prefix: "x" }
}

fn fuzz_vectors(inputs: usize, count: usize, seed: u64) -> Vec<Vec<i64>> {
    // Deterministic pseudo-random 1-bit vectors (xorshift, like testing.rs).
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..count)
        .map(|_| {
            (0..inputs)
                .map(|_| {
                    s ^= s >> 12;
                    s ^= s << 25;
                    s ^= s >> 27;
                    (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 60) as i64 & 1
                })
                .collect()
        })
        .collect()
}

#[test]
fn random_combinational_netlists_are_bit_identical() {
    for seed in 0..12 {
        let nl = random_netlist(&fuzz_spec(0), seed);
        let vectors = fuzz_vectors(5, 100, seed);
        assert_engines_agree(&nl, &vectors, 0, "o0");
    }
}

#[test]
fn random_sequential_netlists_are_bit_identical() {
    for seed in 0..12 {
        let nl = random_netlist(&fuzz_spec(3), seed);
        let vectors = fuzz_vectors(5, 100, seed ^ 0xABCD);
        for cycles in [1, 2, 3] {
            assert_engines_agree(&nl, &vectors, cycles, "o1");
        }
    }
}

// ---- ragged batches ------------------------------------------------------

#[test]
fn ragged_batch_sizes_agree_combinational() {
    let nl = random_netlist(&fuzz_spec(0), 99);
    for size in [0usize, 1, 63, 64, 65, 127, 128] {
        let vectors = fuzz_vectors(5, size, size as u64 + 7);
        let r = assert_engines_agree(&nl, &vectors, 0, "o0");
        assert_eq!(r.outputs.len(), size);
        assert_eq!(r.cycles, size as u64);
    }
}

#[test]
fn ragged_batch_sizes_agree_sequential() {
    let nl = random_netlist(&fuzz_spec(2), 101);
    for size in [0usize, 1, 63, 64, 65, 127, 128] {
        let vectors = fuzz_vectors(5, size, size as u64 + 11);
        let r = assert_engines_agree(&nl, &vectors, 2, "o2");
        assert_eq!(r.outputs.len(), size);
        assert_eq!(r.cycles, 2 * size as u64);
    }
}

#[test]
fn garbage_lanes_never_leak_into_activity() {
    // A 1-vector batch uses 1 of 64 lanes; if masking were wrong the other
    // 63 lanes of settling garbage would inflate the toggle counts, so
    // equality with a scalar run of the same single vector is a leak check.
    let nl = random_netlist(&fuzz_spec(2), 103);
    let one = fuzz_vectors(5, 1, 5);
    let r = assert_engines_agree(&nl, &one, 3, "o0");
    assert_eq!(r.cycles, 3);
}

// ---- cross-chunk sequential state carry ---------------------------------

#[test]
fn sequential_state_carries_across_chunks() {
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 59);
    let nl = sequential::build_sequential_ovr(&q);
    let n = q.num_classes() as u64;
    let vectors = svm_vectors(&q, &test, 130); // three chunks: 64 + 64 + 2

    let mut reference = Simulator::new(&nl).unwrap();
    reference.set_batch_mode(BatchMode::Scalar);
    let want = reference.run_batch(&vectors, n, "class");

    let mut fast = Simulator::new(&nl).unwrap();
    let got = fast.run_batch(&vectors, n, "class");
    assert_eq!(got, want);
    assert_eq!(fast.register_state(), reference.register_state());

    // The carried state must be live, not cosmetic: classifying one more
    // sample on both simulators (scalar API, no batch) still agrees.
    let extra = svm_vectors(&q, &test, 131).pop().unwrap();
    for (j, &v) in extra.iter().enumerate() {
        reference.set_input(&format!("x{j}"), v);
        fast.set_input(&format!("x{j}"), v);
    }
    for _ in 0..n {
        reference.tick();
        fast.tick();
    }
    assert_eq!(fast.output_unsigned("class"), reference.output_unsigned("class"));
    assert_eq!(fast.register_state(), reference.register_state());
}

// ---- lane-width sweep ----------------------------------------------------

/// Batch sizes straddling every slab boundary: 64W ± 1 and the exact
/// boundary for W = 1, 2, 4, 8.
const WIDTH_BOUNDARY_SIZES: [usize; 12] = [63, 64, 65, 127, 128, 129, 255, 256, 257, 511, 512, 513];

#[test]
fn every_width_agrees_on_ragged_combinational_batches() {
    let nl = random_netlist(&fuzz_spec(0), 131);
    for width in LaneWidth::ALL {
        for size in WIDTH_BOUNDARY_SIZES {
            let vectors = fuzz_vectors(5, size, size as u64 ^ 0x51AB);
            let r = assert_engines_agree_at(&nl, &vectors, 0, "o0", Some(width));
            assert_eq!(r.outputs.len(), size, "W={width} size={size}");
        }
    }
}

#[test]
fn every_width_agrees_on_ragged_sequential_batches() {
    let nl = random_netlist(&fuzz_spec(3), 137);
    for width in LaneWidth::ALL {
        for size in WIDTH_BOUNDARY_SIZES {
            let vectors = fuzz_vectors(5, size, size as u64 ^ 0xC0DE);
            let r = assert_engines_agree_at(&nl, &vectors, 2, "o1", Some(width));
            assert_eq!(r.cycles, 2 * size as u64, "W={width} size={size}");
        }
    }
}

#[test]
fn combinational_results_are_width_invariant() {
    // Same batch at every width: outputs, cycle accounting, and per-net
    // toggle counts must be identical — widening the slab may change how
    // many sweeps run, never what they compute. (Sequential batches are
    // excluded by design: the chunk size 64W is part of the streaming
    // contract, so each width is locked to its own scalar reference above.)
    let nl = random_netlist(&fuzz_spec(0), 139);
    let vectors = fuzz_vectors(5, 300, 77);
    let run_at = |width: LaneWidth| {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_lane_width(width);
        sim.enable_activity();
        (sim.run_batch(&vectors, 0, "o0"), sim.activity())
    };
    let (want, want_activity) = run_at(LaneWidth::W1);
    for width in [LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
        let (got, got_activity) = run_at(width);
        assert_eq!(got, want, "outputs changed at W={width}");
        assert_eq!(got_activity, want_activity, "toggle counts changed at W={width}");
    }
}

// ---- fault campaigns vs. the rebuild-per-site oracle --------------------

#[test]
fn comb_fault_campaign_reproduces_oracle_per_site() {
    let nl = random_netlist(&fuzz_spec(0), 71);
    let sites = enumerate_fault_sites(&nl);
    let workload: Vec<Vec<(String, i64)>> = fuzz_vectors(5, 20, 3)
        .into_iter()
        .map(|v| v.iter().enumerate().map(|(i, &b)| (format!("x{i}"), b)).collect())
        .collect();
    // Aggregate equality over every site...
    let fast = fault_campaign_comb(&nl, &sites, &workload, "o0").unwrap();
    let slow = oracle::fault_campaign_comb(&nl, &sites, &workload, "o0").unwrap();
    assert_eq!(fast, slow);
    assert_eq!(fast.total, sites.len());
    // ...and per-site equality, so compensating double-miscounts cannot
    // hide behind matching totals.
    for &site in &sites {
        let f = fault_campaign_comb(&nl, &[site], &workload, "o0").unwrap();
        let s = oracle::fault_campaign_comb(&nl, &[site], &workload, "o0").unwrap();
        assert_eq!(f, s, "site {site:?} diverged from the rebuild oracle");
    }
}

#[test]
fn seq_fault_campaign_reproduces_oracle_per_site() {
    let nl = random_netlist(&fuzz_spec(3), 73);
    let sites = enumerate_fault_sites(&nl);
    let workload: Vec<Vec<(String, i64)>> = fuzz_vectors(5, 12, 9)
        .into_iter()
        .map(|v| v.iter().enumerate().map(|(i, &b)| (format!("x{i}"), b)).collect())
        .collect();
    let fast = fault_campaign_seq(&nl, &sites, &workload, "o0", 4).unwrap();
    let slow = oracle::fault_campaign_seq(&nl, &sites, &workload, "o0", 4).unwrap();
    assert_eq!(fast, slow);
    for &site in &sites {
        let f = fault_campaign_seq(&nl, &[site], &workload, "o0", 4).unwrap();
        let s = oracle::fault_campaign_seq(&nl, &[site], &workload, "o0", 4).unwrap();
        assert_eq!(f, s, "site {site:?} diverged from the rebuild oracle");
    }
}

#[test]
fn seq_fault_campaign_reproduces_oracle_on_the_paper_circuit() {
    // The real sequential SVM, sparsely sampled sites (the oracle is slow).
    let (q, test) = svm_model(MulticlassScheme::OneVsRest, 61);
    let nl = sequential::build_sequential_ovr(&q);
    let sites: Vec<_> = enumerate_fault_sites(&nl).into_iter().step_by(97).collect();
    let workload: Vec<Vec<(String, i64)>> = test
        .features()
        .iter()
        .take(8)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect();
    let n = q.num_classes() as u64;
    let fast = fault_campaign_seq(&nl, &sites, &workload, "class", n).unwrap();
    let slow = oracle::fault_campaign_seq(&nl, &sites, &workload, "class", n).unwrap();
    assert_eq!(fast, slow);
}
