//! Lifetime-free **warm** simulators for long-lived serving workers.
//!
//! The serving path's economics problem: [`Simulator::run_batch`] constructs
//! a fresh [`BitSlicedSimulator`] per call, and a fresh engine starts its
//! event-driven worklist *all-dirty* — the first settle of every batch is a
//! full sweep, so the worklist pays its bookkeeping overhead without ever
//! collecting its savings. That is exactly why event-driven serving *lost*
//! throughput on `pendigits:seq` while winning >70% of cell evaluations in
//! fault campaigns, where one engine lives across the whole campaign.
//!
//! [`WarmSimulator`] is the fix: it owns the slab engine's detached state
//! ([`DetachedSlab`]) across batches and reattaches it to the netlist only
//! for the duration of each [`WarmSimulator::run_batch`] call. Because the
//! struct holds **no netlist borrow**, a worker thread can keep one per
//! model right next to the `Arc` that owns the netlist — the
//! self-referential layout a borrowing `Simulator<'nl>` cannot express
//! without `unsafe` (which the workspace forbids).
//!
//! What carries across batches:
//!
//! * net value and register-state slabs (collapsed to the serial carry),
//! * the event-driven worklist's clean/dirty flags — a repeated or
//!   near-constant request stream re-dirties only the cells downstream of
//!   the inputs that actually changed *since the previous batch*,
//! * toggle counters and cycle/eval accounting (so activity reports span
//!   the worker's whole serving history, like a long-lived dense
//!   [`Simulator`]),
//! * forced lanes, if any.
//!
//! # Equivalence contract
//!
//! A warm simulator fed a stream of batches is bit-identical — outputs,
//! carried state, *and* toggle counters — to one long-lived dense
//! [`Simulator`] fed the same batches at the same [`LaneWidth`]: the slabs
//! between batches are broadcasts of the carried serial state either way,
//! and the event-driven worklist's exactness invariant (see
//! [`BitSlicedSimulator::set_event_driven`]) makes the skip lossless.
//! Against *fresh-per-batch* simulation the predictions still match for the
//! paper's classifier datapaths (control returns to idle after every
//! inference), but per-batch toggle deltas differ on the entry settle —
//! the warm engine starts each batch from carried state, a fresh engine
//! from power-on reset. `pe-serve`'s warm-state equivalence suite pins both
//! halves of this contract at every width.

use crate::activity::ActivityReport;
use crate::bitslice::{BitSlicedSimulator, DetachedSlab, LaneWidth};
use crate::sim::BatchResult;
use pe_netlist::{CellId, Netlist};
use pe_obs::SimProfile;
use std::sync::Arc;

/// The scalar seed a [`WarmSimulator`] attaches from on its first batch:
/// the owning [`Simulator`](crate::Simulator)'s schedule and settled state,
/// captured by [`Simulator::warm`](crate::Simulator::warm).
#[derive(Debug)]
struct Seed {
    order: Vec<CellId>,
    regs: Vec<CellId>,
    values: Vec<bool>,
    state: Vec<bool>,
    frozen: Vec<bool>,
}

/// The width-monomorphized detached engine (fixed at construction by the
/// seeding simulator's [`LaneWidth`]).
#[derive(Debug)]
enum WarmSlab {
    W1(DetachedSlab<1>),
    W2(DetachedSlab<2>),
    W4(DetachedSlab<4>),
    W8(DetachedSlab<8>),
}

impl WarmSlab {
    fn cycles(&self) -> u64 {
        match self {
            WarmSlab::W1(s) => s.cycles(),
            WarmSlab::W2(s) => s.cycles(),
            WarmSlab::W4(s) => s.cycles(),
            WarmSlab::W8(s) => s.cycles(),
        }
    }

    fn cell_evals(&self) -> u64 {
        match self {
            WarmSlab::W1(s) => s.cell_evals(),
            WarmSlab::W2(s) => s.cell_evals(),
            WarmSlab::W4(s) => s.cell_evals(),
            WarmSlab::W8(s) => s.cell_evals(),
        }
    }

    fn activity(&self) -> ActivityReport {
        match self {
            WarmSlab::W1(s) => s.activity(),
            WarmSlab::W2(s) => s.activity(),
            WarmSlab::W4(s) => s.activity(),
            WarmSlab::W8(s) => s.activity(),
        }
    }
}

/// A bit-sliced batch engine that stays **warm** across
/// [`run_batch`](WarmSimulator::run_batch) calls and holds no netlist
/// borrow. Built by [`Simulator::warm`](crate::Simulator::warm); see the
/// [module docs](self) for what carries over and the equivalence contract.
#[derive(Debug)]
pub struct WarmSimulator {
    /// Consumed by the first attach; `None` once `slab` exists.
    seed: Option<Seed>,
    /// The detached engine between batches; `None` before the first batch.
    slab: Option<WarmSlab>,
    lane_width: LaneWidth,
    event_driven: bool,
    track_activity: bool,
    profile: Option<Arc<dyn SimProfile>>,
    batches: u64,
}

impl WarmSimulator {
    /// Captures the seeding simulator's schedule, settled state and
    /// configuration (called by [`Simulator::warm`](crate::Simulator::warm)).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_scalar_parts(
        order: Vec<CellId>,
        regs: Vec<CellId>,
        values: Vec<bool>,
        state: Vec<bool>,
        frozen: Vec<bool>,
        lane_width: LaneWidth,
        event_driven: bool,
        track_activity: bool,
        profile: Option<Arc<dyn SimProfile>>,
    ) -> Self {
        WarmSimulator {
            seed: Some(Seed { order, regs, values, state, frozen }),
            slab: None,
            lane_width,
            event_driven,
            track_activity,
            profile,
            batches: 0,
        }
    }

    /// Runs one batch with the same contract as
    /// [`Simulator::run_batch`](crate::Simulator::run_batch), carrying the
    /// engine's full state (including event-driven clean/dirty flags) from
    /// the previous call. `nl` must be the netlist the seeding simulator
    /// was built over — the caller keeps it alive next to this struct,
    /// typically inside the same `Arc`ed model entry.
    ///
    /// # Panics
    ///
    /// Panics if `nl` has a different shape than the seeding netlist, or on
    /// unknown ports / out-of-range values like
    /// [`Simulator::run_batch`](crate::Simulator::run_batch).
    pub fn run_batch(
        &mut self,
        nl: &Netlist,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        self.batches += 1;
        macro_rules! run {
            ($W:literal, $variant:ident) => {{
                let mut sim: BitSlicedSimulator<'_, $W> = match self.slab.take() {
                    Some(WarmSlab::$variant(slab)) => BitSlicedSimulator::reattach(nl, slab),
                    Some(_) => unreachable!("slab width is fixed at construction"),
                    None => {
                        let seed = self.seed.take().expect("no slab means the seed is intact");
                        let mut sim = BitSlicedSimulator::<'_, $W>::from_parts(
                            nl,
                            seed.order,
                            seed.regs,
                            &seed.values,
                            &seed.state,
                            &seed.frozen,
                            self.track_activity,
                        );
                        if self.event_driven {
                            sim.set_event_driven(true);
                        }
                        sim
                    }
                };
                let result = sim.run_batch_profiled(
                    vectors,
                    cycles_per_vector,
                    out_port,
                    self.profile.as_deref(),
                );
                self.slab = Some(WarmSlab::$variant(sim.detach()));
                result
            }};
        }
        match self.lane_width {
            LaneWidth::W1 => run!(1, W1),
            LaneWidth::W2 => run!(2, W2),
            LaneWidth::W4 => run!(4, W4),
            LaneWidth::W8 => run!(8, W8),
        }
    }

    /// Installs (or removes) the per-batch observability hook — see
    /// [`Simulator::set_profile`](crate::Simulator::set_profile).
    pub fn set_profile(&mut self, profile: Option<Arc<dyn SimProfile>>) {
        self.profile = profile;
    }

    /// The slab width every batch runs at (fixed at construction).
    #[must_use]
    pub fn lane_width(&self) -> LaneWidth {
        self.lane_width
    }

    /// Whether batches run event-driven (fixed at construction).
    #[must_use]
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Batches served since construction.
    #[must_use]
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Clock cycles accounted across every batch so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.slab.as_ref().map_or(0, WarmSlab::cycles)
    }

    /// Combinational cell evaluations across every batch so far. Dividing
    /// by batches served is the headline warm-event-driven payoff metric:
    /// a cold engine pays `scheduled_cells × sweeps` per batch, a warm
    /// event-driven one only re-evaluates what the traffic actually
    /// changed.
    #[must_use]
    pub fn cell_evals(&self) -> u64 {
        self.slab.as_ref().map_or(0, WarmSlab::cell_evals)
    }

    /// Snapshot of the switching activity accumulated across every batch
    /// (the warm counterpart of
    /// [`Simulator::activity`](crate::Simulator::activity)).
    ///
    /// # Panics
    ///
    /// Panics if the seeding simulator did not have activity tracking
    /// enabled.
    #[must_use]
    pub fn activity(&self) -> ActivityReport {
        assert!(
            self.track_activity,
            "activity tracking not enabled; seed from a simulator with enable_activity()"
        );
        match &self.slab {
            Some(slab) => slab.activity(),
            // No batch yet: zero toggles over zero cycles, at the seeding
            // netlist's net count.
            None => ActivityReport::new(
                vec![0; self.seed.as_ref().expect("seed intact before first batch").values.len()],
                0,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::sim::Simulator;
    use crate::LaneWidth;
    use pe_netlist::{Builder, Netlist};

    /// A small sequential design (`q' = x0 XOR x1` through a register) —
    /// the same shape the engine differential tests use.
    fn toggle_reg() -> Netlist {
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        b.finish()
    }

    /// A low-activity stream split into several ragged batches: mostly
    /// repeated vectors with occasional changes — the event-driven
    /// worklist's target traffic shape.
    fn low_activity_batches() -> Vec<Vec<Vec<i64>>> {
        let mut batches = Vec::new();
        for (size, period) in [(70usize, 9usize), (64, 64), (3, 1), (130, 17)] {
            batches.push(
                (0..size)
                    .map(|i| {
                        let flip = i64::from(i % period == 0);
                        vec![flip, (i / period) as i64 & 1]
                    })
                    .collect(),
            );
        }
        batches
    }

    #[test]
    fn warm_stream_matches_long_lived_dense_simulator_at_every_width() {
        // The module's equivalence contract: a warm simulator fed a stream
        // of batches is bit-identical — outputs, cycles, toggle counters —
        // to one long-lived dense Simulator fed the same batches, at every
        // width, with the event-driven worklist carrying dirty state across
        // batches on the warm side.
        let nl = toggle_reg();
        for width in [LaneWidth::W1, LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
            for events in [false, true] {
                let mut dense = Simulator::new(&nl).unwrap();
                dense.set_lane_width(width);
                dense.enable_activity();
                let mut seed = Simulator::new(&nl).unwrap();
                seed.set_lane_width(width);
                seed.set_event_driven(events);
                seed.enable_activity();
                let mut warm = seed.warm();
                assert_eq!(warm.lane_width(), width);
                assert_eq!(warm.event_driven(), events);
                for (i, batch) in low_activity_batches().iter().enumerate() {
                    let want = dense.run_batch(batch, 2, "q");
                    let got = warm.run_batch(&nl, batch, 2, "q");
                    assert_eq!(got, want, "{width} events={events} batch {i} diverged");
                }
                assert_eq!(warm.batches(), 4);
                assert_eq!(warm.cycles(), dense.cycles(), "{width} events={events}");
                assert_eq!(warm.activity(), dense.activity(), "{width} events={events} toggles");
            }
        }
    }

    #[test]
    fn warm_event_driven_saves_cell_evals_on_repeated_batches() {
        // The economic pin: over a stream of *identical* batches the warm
        // event-driven engine must evaluate strictly fewer cells than the
        // warm dense engine — the first batch sweeps (all-dirty start), the
        // rest ride the carried clean state.
        let nl = toggle_reg();
        let batch: Vec<Vec<i64>> = (0..64).map(|_| vec![1, 0]).collect();
        let mut dense = Simulator::new(&nl).unwrap().warm();
        let mut seed = Simulator::new(&nl).unwrap();
        seed.set_event_driven(true);
        let mut events = seed.warm();
        for _ in 0..8 {
            let want = dense.run_batch(&nl, &batch, 2, "q");
            let got = events.run_batch(&nl, &batch, 2, "q");
            assert_eq!(got, want);
        }
        assert!(
            events.cell_evals() < dense.cell_evals(),
            "warm event-driven must skip work on repeated batches: {} vs {} evals",
            events.cell_evals(),
            dense.cell_evals()
        );
    }

    #[test]
    fn activity_is_empty_before_the_first_batch() {
        let nl = toggle_reg();
        let mut seed = Simulator::new(&nl).unwrap();
        seed.enable_activity();
        let warm = seed.warm();
        assert_eq!(warm.activity().total_toggles(), 0);
        assert_eq!(warm.cycles(), 0);
        assert_eq!(warm.cell_evals(), 0);
        assert_eq!(warm.batches(), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit netlist")]
    fn reattaching_a_different_netlist_panics() {
        let nl = toggle_reg();
        let mut warm = Simulator::new(&nl).unwrap().warm();
        let _ = warm.run_batch(&nl, &[vec![1, 0]], 1, "q");
        let mut b = Builder::new("other");
        let a = b.input("x0");
        b.output("y", a);
        let other = b.finish();
        let _ = warm.run_batch(&other, &[vec![1]], 1, "y");
    }
}
