//! Switching-activity reports.
//!
//! An [`ActivityReport`] is the simulator's answer to a SAIF file: per-net
//! toggle counts over a known number of clock cycles. Power analysis in
//! `pe-synth` multiplies these by per-cell switching energies.

use pe_netlist::NetId;

/// Per-net toggle counts over a measured interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityReport {
    toggles: Vec<u64>,
    cycles: u64,
}

impl ActivityReport {
    /// Wraps raw counters. `toggles` is indexed by [`NetId::index`].
    #[must_use]
    pub fn new(toggles: Vec<u64>, cycles: u64) -> Self {
        ActivityReport { toggles, cycles }
    }

    /// A report with every net at the given constant activity factor
    /// (toggles per cycle), used when no simulation trace is available
    /// (vector-less power estimation, like PrimeTime's default mode).
    #[must_use]
    pub fn uniform(num_nets: usize, cycles: u64, factor: f64) -> Self {
        let per_net = (factor * cycles as f64).round().max(0.0) as u64;
        ActivityReport { toggles: vec![per_net; num_nets], cycles }
    }

    /// Toggle count of one net.
    ///
    /// # Panics
    ///
    /// Panics if the net index is out of range.
    #[must_use]
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Average toggles per cycle for one net (its activity factor).
    /// Returns 0 when no cycles have been accounted.
    #[must_use]
    pub fn factor(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / self.cycles as f64
        }
    }

    /// Number of clock cycles the counts were accumulated over.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sum of all toggle counts.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Mean activity factor across all nets.
    #[must_use]
    pub fn mean_factor(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            0.0
        } else {
            self.total_toggles() as f64 / (self.cycles as f64 * self.toggles.len() as f64)
        }
    }

    /// Number of nets covered by the report.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.toggles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_normalize_by_cycles() {
        let r = ActivityReport::new(vec![10, 0, 5], 10);
        assert!((r.factor(NetIdHelper::id(0)) - 1.0).abs() < 1e-12);
        assert!((r.factor(NetIdHelper::id(2)) - 0.5).abs() < 1e-12);
        assert_eq!(r.total_toggles(), 15);
        assert!((r.mean_factor() - 0.5).abs() < 1e-12);
        assert_eq!(r.num_nets(), 3);
        assert_eq!(r.cycles(), 10);
    }

    #[test]
    fn zero_cycles_yield_zero_factors() {
        let r = ActivityReport::new(vec![3], 0);
        assert_eq!(r.factor(NetIdHelper::id(0)), 0.0);
        assert_eq!(r.mean_factor(), 0.0);
    }

    #[test]
    fn uniform_report() {
        let r = ActivityReport::uniform(4, 100, 0.25);
        assert_eq!(r.toggles(NetIdHelper::id(3)), 25);
        assert!((r.mean_factor() - 0.25).abs() < 1e-12);
    }

    /// NetId's constructor is crate-private to pe-netlist; build ids through
    /// a tiny netlist so tests stay honest.
    struct NetIdHelper;

    impl NetIdHelper {
        fn id(i: usize) -> NetId {
            use pe_netlist::Builder;
            let mut b = Builder::new("ids");
            // const0, const1 occupy 0 and 1; create inputs to reach index i.
            let mut last = b.input("i0");
            let mut nets = vec![b.constant(false), b.constant(true), last];
            for k in 1..=i {
                last = b.input(format!("i{k}"));
                nets.push(last);
            }
            nets[i]
        }
    }
}
