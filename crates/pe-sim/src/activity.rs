//! Switching-activity reports.
//!
//! An [`ActivityReport`] is the simulator's answer to a SAIF file: per-net
//! toggle counts over a known number of clock cycles. Power analysis in
//! `pe-synth` multiplies these by per-cell switching energies.
//!
//! [`ToggleCounters`] is the raw accumulator both simulation engines write
//! into: the scalar engine bumps one net at a time, the bit-sliced engine
//! ([`crate::bitslice`]) hands in a 64-lane XOR difference word and the
//! counter popcounts it, so one instruction accounts the toggles of up to 64
//! test vectors. Because both engines fold into the same counters, activity
//! (and therefore energy) reports are directly comparable between them.

use pe_netlist::NetId;

/// Per-net toggle accumulator shared by the scalar and bit-sliced engines.
///
/// A disabled counter set is an empty vector; every accounting call is a
/// no-op then, which keeps the simulator hot loops branch-cheap.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ToggleCounters {
    counts: Vec<u64>,
}

impl ToggleCounters {
    /// A disabled accumulator (all accounting calls are no-ops).
    #[must_use]
    pub fn disabled() -> Self {
        ToggleCounters { counts: Vec::new() }
    }

    /// An enabled accumulator with one zeroed counter per net.
    #[must_use]
    pub fn enabled(num_nets: usize) -> Self {
        ToggleCounters { counts: vec![0; num_nets] }
    }

    /// Whether tracking is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        !self.counts.is_empty()
    }

    /// Accounts one toggle of one net (the scalar engine's path).
    #[inline]
    pub fn bump(&mut self, net_index: usize) {
        self.counts[net_index] += 1;
    }

    /// Accounts up to 64 toggles of one net at once: `lanes` is the masked
    /// XOR of the net's old and new packed values, each set bit one lane
    /// whose value changed (the bit-sliced engine's path).
    #[inline]
    pub fn bump_packed(&mut self, net_index: usize, lanes: u64) {
        self.counts[net_index] += u64::from(lanes.count_ones());
    }

    /// Accounts up to `64 * W` toggles of one net at once: `lanes` is a
    /// masked XOR-difference slab (see [`crate::bitslice`] for the slab
    /// layout), each set bit one lane whose value changed. The popcounts are
    /// summed before the single counter add, so widening the slab does not
    /// multiply the accounting cost per net.
    #[inline]
    pub fn bump_packed_wide<const W: usize>(&mut self, net_index: usize, lanes: &[u64; W]) {
        let mut n = 0u64;
        for &w in lanes {
            n += u64::from(w.count_ones());
        }
        self.counts[net_index] += n;
    }

    /// Adds another accumulator's counts into this one (used when a
    /// bit-sliced batch folds its activity back into the owning simulator).
    ///
    /// # Panics
    ///
    /// Panics if the net counts differ.
    pub fn merge(&mut self, other: &ToggleCounters) {
        assert_eq!(self.counts.len(), other.counts.len(), "net count mismatch in merge");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The raw counters, indexed by [`NetId::index`].
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Snapshot into an [`ActivityReport`] over `cycles` accounted cycles.
    #[must_use]
    pub fn report(&self, cycles: u64) -> ActivityReport {
        ActivityReport::new(self.counts.clone(), cycles)
    }
}

/// Per-net toggle counts over a measured interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityReport {
    toggles: Vec<u64>,
    cycles: u64,
}

impl ActivityReport {
    /// Wraps raw counters. `toggles` is indexed by [`NetId::index`].
    #[must_use]
    pub fn new(toggles: Vec<u64>, cycles: u64) -> Self {
        ActivityReport { toggles, cycles }
    }

    /// A report with every net at the given constant activity factor
    /// (toggles per cycle), used when no simulation trace is available
    /// (vector-less power estimation, like PrimeTime's default mode).
    #[must_use]
    pub fn uniform(num_nets: usize, cycles: u64, factor: f64) -> Self {
        let per_net = (factor * cycles as f64).round().max(0.0) as u64;
        ActivityReport { toggles: vec![per_net; num_nets], cycles }
    }

    /// Toggle count of one net.
    ///
    /// # Panics
    ///
    /// Panics if the net index is out of range.
    #[must_use]
    pub fn toggles(&self, net: NetId) -> u64 {
        self.toggles[net.index()]
    }

    /// Average toggles per cycle for one net (its activity factor).
    /// Returns 0 when no cycles have been accounted.
    #[must_use]
    pub fn factor(&self, net: NetId) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.toggles[net.index()] as f64 / self.cycles as f64
        }
    }

    /// Number of clock cycles the counts were accumulated over.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Sum of all toggle counts.
    #[must_use]
    pub fn total_toggles(&self) -> u64 {
        self.toggles.iter().sum()
    }

    /// Mean activity factor across all nets.
    #[must_use]
    pub fn mean_factor(&self) -> f64 {
        if self.cycles == 0 || self.toggles.is_empty() {
            0.0
        } else {
            self.total_toggles() as f64 / (self.cycles as f64 * self.toggles.len() as f64)
        }
    }

    /// Number of nets covered by the report.
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.toggles.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_normalize_by_cycles() {
        let r = ActivityReport::new(vec![10, 0, 5], 10);
        assert!((r.factor(NetIdHelper::id(0)) - 1.0).abs() < 1e-12);
        assert!((r.factor(NetIdHelper::id(2)) - 0.5).abs() < 1e-12);
        assert_eq!(r.total_toggles(), 15);
        assert!((r.mean_factor() - 0.5).abs() < 1e-12);
        assert_eq!(r.num_nets(), 3);
        assert_eq!(r.cycles(), 10);
    }

    #[test]
    fn zero_cycles_yield_zero_factors() {
        let r = ActivityReport::new(vec![3], 0);
        assert_eq!(r.factor(NetIdHelper::id(0)), 0.0);
        assert_eq!(r.mean_factor(), 0.0);
    }

    #[test]
    fn toggle_counters_scalar_and_packed_agree() {
        let mut scalar = ToggleCounters::enabled(2);
        let mut packed = ToggleCounters::enabled(2);
        // Three lanes toggled on net 0, one on net 1.
        let diff0 = 0b1011u64;
        let diff1 = 0b0100u64;
        for lane in 0..4u64 {
            if (diff0 >> lane) & 1 == 1 {
                scalar.bump(0);
            }
            if (diff1 >> lane) & 1 == 1 {
                scalar.bump(1);
            }
        }
        packed.bump_packed(0, diff0);
        packed.bump_packed(1, diff1);
        assert_eq!(scalar, packed);
        assert_eq!(packed.counts(), &[3, 1]);
        // Merging doubles the counts.
        let snapshot = packed.clone();
        packed.merge(&snapshot);
        assert_eq!(packed.counts(), &[6, 2]);
        assert_eq!(packed.report(4).total_toggles(), 8);
    }

    #[test]
    fn wide_bump_sums_popcounts_across_words() {
        let mut narrow = ToggleCounters::enabled(1);
        let mut wide = ToggleCounters::enabled(1);
        let slab = [0b1011u64, !0, 0, 1 << 63];
        for &w in &slab {
            narrow.bump_packed(0, w);
        }
        wide.bump_packed_wide(0, &slab);
        assert_eq!(narrow, wide);
        assert_eq!(wide.counts(), &[3 + 64 + 1]);
    }

    #[test]
    fn disabled_counters_report_empty() {
        let c = ToggleCounters::disabled();
        assert!(!c.is_enabled());
        assert!(ToggleCounters::enabled(3).is_enabled());
        assert_eq!(c.report(10).num_nets(), 0);
    }

    #[test]
    fn uniform_report() {
        let r = ActivityReport::uniform(4, 100, 0.25);
        assert_eq!(r.toggles(NetIdHelper::id(3)), 25);
        assert!((r.mean_factor() - 0.25).abs() < 1e-12);
    }

    /// NetId's constructor is crate-private to pe-netlist; build ids through
    /// a tiny netlist so tests stay honest.
    struct NetIdHelper;

    impl NetIdHelper {
        fn id(i: usize) -> NetId {
            use pe_netlist::Builder;
            let mut b = Builder::new("ids");
            // const0, const1 occupy 0 and 1; create inputs to reach index i.
            let mut last = b.input("i0");
            let mut nets = vec![b.constant(false), b.constant(true), last];
            for k in 1..=i {
                last = b.input(format!("i{k}"));
                nets.push(last);
            }
            nets[i]
        }
    }
}
