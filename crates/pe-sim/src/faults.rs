//! Stuck-at fault injection and fault simulation.
//!
//! Printed fabrication yields are far below silicon's: additively printed
//! transistors short or open at percent-level rates, so the printed-ML
//! literature cares which faults actually flip classifications. This module
//! implements the classic single-stuck-at model: a [`FaultSite`] pins one
//! net to a constant, and [`fault_campaign_comb`] / [`fault_campaign_seq`]
//! measure how many injected faults change a design's predictions on a
//! workload — the robustness analog of test-pattern fault coverage.
//!
//! Campaigns reuse **one** scheduled [`BitSlicedSimulator`] for every fault
//! site, pinning the faulted net with force/release between runs instead of
//! rebuilding (and re-levelizing) a simulator per site, and they drive the
//! workload 64 patterns per machine word. The original rebuild-per-site
//! implementations survive in [`oracle`] as the reference the differential
//! suite checks the fast campaigns against, site by site.

use crate::bitslice::BitSlicedSimulator;
use crate::sim::Simulator;
use pe_netlist::{Driver, NetId, Netlist, NetlistError};

/// One single-stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// The faulted net.
    pub net: NetId,
    /// The value the net is stuck at.
    pub stuck_at: bool,
}

/// A simulator wrapper that forces a set of nets to constant values after
/// every settle pass.
#[derive(Debug)]
pub struct FaultySimulator<'nl> {
    sim: Simulator<'nl>,
    faults: Vec<FaultSite>,
}

impl<'nl> FaultySimulator<'nl> {
    /// Builds a faulty simulator: every fault site is pinned via
    /// [`Simulator::force_net`], so ordinary evaluation and clocking simply
    /// never touch the faulted nets.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`] from scheduling.
    pub fn new(nl: &'nl Netlist, faults: Vec<FaultSite>) -> Result<Self, NetlistError> {
        let mut sim = Simulator::new(nl)?;
        for f in &faults {
            sim.force_net(f.net, f.stuck_at);
        }
        sim.eval_comb();
        Ok(FaultySimulator { sim, faults })
    }

    /// Drives an input port (see [`Simulator::set_input`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values.
    pub fn set_input(&mut self, port: &str, value: i64) {
        self.sim.set_input(port, value);
    }

    /// Settles combinational logic with faults applied.
    pub fn eval_comb(&mut self) {
        self.sim.eval_comb();
    }

    /// One clock cycle with faults pinned across the edge.
    pub fn tick(&mut self) {
        self.sim.tick();
    }

    /// The injected faults.
    #[must_use]
    pub fn faults(&self) -> &[FaultSite] {
        &self.faults
    }

    /// Reads an output port as unsigned (see [`Simulator::output_unsigned`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports.
    #[must_use]
    pub fn output_unsigned(&self, port: &str) -> i64 {
        self.sim.output_unsigned(port)
    }

    /// Current value of a net (for inspecting the pinned sites).
    #[must_use]
    pub fn net_value(&self, net: NetId) -> bool {
        self.sim.net_value(net)
    }
}

/// Enumerates candidate fault sites: every cell output net (input and
/// constant nets are excluded — faults there are modeled as cell faults of
/// their sinks).
#[must_use]
pub fn enumerate_fault_sites(nl: &Netlist) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (id, net) in nl.nets() {
        if matches!(net.driver(), Driver::Cell(_)) {
            sites.push(FaultSite { net: id, stuck_at: false });
            sites.push(FaultSite { net: id, stuck_at: true });
        }
    }
    sites
}

/// Result of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Faults whose injection changed at least one prediction.
    pub critical: usize,
    /// Faults that never changed any prediction (logically masked or
    /// functionally tolerated by the classifier).
    pub benign: usize,
    /// Total faults simulated.
    pub total: usize,
}

impl FaultReport {
    /// Fraction of faults that altered behavior.
    #[must_use]
    pub fn criticality(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.critical as f64 / self.total as f64
        }
    }
}

/// Runs a fault campaign on a **combinational** design: for each fault,
/// drives every workload vector and compares the output port against the
/// fault-free run.
///
/// One bit-sliced simulator is scheduled once and reused for the whole
/// campaign: each site is injected with force, simulated 64 workload
/// patterns per word, and released. Settled combinational values are pure
/// functions of the inputs and the pinned net, so the per-site responses
/// are exactly those of a freshly built faulty simulator
/// ([`oracle::fault_campaign_comb`]).
///
/// # Panics
///
/// Panics if the design is sequential (use [`fault_campaign_seq`] for
/// clocked circuits) or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
) -> Result<FaultReport, NetlistError> {
    assert!(
        crate::sim::is_combinational(nl),
        "fault_campaign_comb requires a combinational design"
    );
    let mut sim = BitSlicedSimulator::new(nl)?;
    let golden = sim.run_workload_comb(workload, out_port);
    let mut critical = 0usize;
    for &fault in faults {
        sim.force_net(fault.net, fault.stuck_at);
        // Chunk-wise early exit: the first diverging 64-pattern chunk
        // already proves the fault critical (settled values are pure
        // functions of inputs, so skipping later chunks changes nothing).
        let mut differs = false;
        let mut done = 0;
        for chunk in workload.chunks(crate::bitslice::LANES) {
            if sim.run_workload_comb(chunk, out_port) != golden[done..done + chunk.len()] {
                differs = true;
                break;
            }
            done += chunk.len();
        }
        if differs {
            critical += 1;
        }
        sim.release_net(fault.net);
    }
    Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
}

/// Runs a fault campaign on a **sequential** design: each workload entry
/// starts from power-on register state (faults stay pinned across the
/// reset), is driven for `cycles` clock ticks (inputs held), and the output
/// port is compared against the fault-free run — faults are judged per
/// classification.
///
/// Like [`fault_campaign_comb`], one bit-sliced simulator is reused across
/// all sites with force/release, and the per-classification reset makes the
/// workload entries independent, so 64 of them tick in lockstep per word.
/// The per-site reports are identical to the rebuild-per-site reference
/// ([`oracle::fault_campaign_seq`]).
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
) -> Result<FaultReport, NetlistError> {
    let mut sim = BitSlicedSimulator::new(nl)?;
    let golden = sim.run_workload_seq_reset(workload, cycles, out_port);
    let mut critical = 0usize;
    for &fault in faults {
        sim.force_net(fault.net, fault.stuck_at);
        // Chunk-wise early exit; the per-classification reset makes chunks
        // independent, so later chunks cannot change the verdict.
        let mut differs = false;
        let mut done = 0;
        for chunk in workload.chunks(crate::bitslice::LANES) {
            if sim.run_workload_seq_reset(chunk, cycles, out_port)
                != golden[done..done + chunk.len()]
            {
                differs = true;
                break;
            }
            done += chunk.len();
        }
        if differs {
            critical += 1;
        }
        sim.release_net(fault.net);
    }
    Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
}

/// The original rebuild-per-site campaign implementations.
///
/// These schedule a fresh [`FaultySimulator`] for every fault site and
/// evaluate one pattern at a time — quadratic-ish work the reused
/// force/release campaigns above avoid. They are kept **only** as the
/// reference oracle: the differential suite asserts the fast campaigns
/// reproduce these reports exactly, site for site.
pub mod oracle {
    use super::{FaultReport, FaultSite, FaultySimulator, Netlist, NetlistError};

    /// Reference implementation of [`super::fault_campaign_comb`]: one
    /// freshly scheduled simulator per fault site.
    ///
    /// # Panics
    ///
    /// Panics if the design is sequential or ports are unknown.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_comb(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
    ) -> Result<FaultReport, NetlistError> {
        assert!(
            crate::sim::is_combinational(nl),
            "fault_campaign_comb requires a combinational design"
        );
        // Golden responses.
        let mut golden = Vec::with_capacity(workload.len());
        let mut sim = crate::sim::Simulator::new(nl)?;
        for vec in workload {
            for (p, v) in vec {
                sim.set_input(p, *v);
            }
            sim.eval_comb();
            golden.push(sim.output_unsigned(out_port));
        }
        let mut critical = 0usize;
        for &fault in faults {
            let mut fsim = FaultySimulator::new(nl, vec![fault])?;
            let mut differs = false;
            for (vec, &want) in workload.iter().zip(&golden) {
                for (p, v) in vec {
                    fsim.set_input(p, *v);
                }
                fsim.eval_comb();
                if fsim.output_unsigned(out_port) != want {
                    differs = true;
                    break;
                }
            }
            if differs {
                critical += 1;
            }
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }

    /// Reference implementation of [`super::fault_campaign_seq`]: one
    /// freshly scheduled simulator per fault site, reset per sample.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_seq(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
        cycles: u64,
    ) -> Result<FaultReport, NetlistError> {
        let run = |sim_faults: Vec<FaultSite>| -> Result<Vec<i64>, NetlistError> {
            let mut responses = Vec::with_capacity(workload.len());
            let mut fsim = FaultySimulator::new(nl, sim_faults)?;
            for vec in workload {
                fsim.sim.reset();
                for f in fsim.faults.clone() {
                    fsim.sim.force_net(f.net, f.stuck_at);
                }
                for (p, v) in vec {
                    fsim.set_input(p, *v);
                }
                for _ in 0..cycles {
                    fsim.tick();
                }
                responses.push(fsim.output_unsigned(out_port));
            }
            Ok(responses)
        };
        let golden = run(Vec::new())?;
        let mut critical = 0usize;
        for &fault in faults {
            if run(vec![fault])? != golden {
                critical += 1;
            }
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    fn adder2() -> Netlist {
        let mut b = Builder::new("a2");
        let xs = b.input_bus("x", 2);
        let ys = b.input_bus("y", 2);
        // 2-bit adder out of discrete gates.
        let s0 = b.xor2(xs[0], ys[0]);
        let c0 = b.and2(xs[0], ys[0]);
        let t = b.xor2(xs[1], ys[1]);
        let s1 = b.xor2(t, c0);
        let c1a = b.and2(xs[1], ys[1]);
        let c1b = b.and2(t, c0);
        let c1 = b.or2(c1a, c1b);
        b.output_bus("s", &[s0, s1, c1]);
        b.finish()
    }

    fn full_workload() -> Vec<Vec<(String, i64)>> {
        let mut w = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                w.push(vec![("x".to_string(), x), ("y".to_string(), y)]);
            }
        }
        w
    }

    #[test]
    fn fault_free_run_matches_plain_simulator() {
        let nl = adder2();
        let mut f = FaultySimulator::new(&nl, vec![]).unwrap();
        f.set_input("x", 3);
        f.set_input("y", 2);
        f.eval_comb();
        assert_eq!(f.output_unsigned("s"), 5);
    }

    #[test]
    fn stuck_at_changes_outputs() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        assert_eq!(sites.len(), 2 * 7, "7 gates -> 14 single-stuck-at faults");
        // Stuck the low sum bit at 0: 1+0 must come out wrong.
        let s0_site =
            sites.iter().find(|s| !s.stuck_at).copied().expect("at least one stuck-at-0 site");
        let mut f = FaultySimulator::new(&nl, vec![s0_site]).unwrap();
        f.set_input("x", 1);
        f.set_input("y", 0);
        f.eval_comb();
        // The faulted net is pinned regardless of inputs.
        // (Which output changes depends on the site; just check the pin.)
        let pinned = f.net_value(s0_site.net);
        assert!(!pinned);
    }

    #[test]
    fn exhaustive_campaign_finds_all_faults_on_exhaustive_workload() {
        // With an exhaustive workload every single-stuck-at fault in an
        // adder is detectable (adders are fully testable).
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let report = fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(report.benign, 0, "all adder faults must be critical: {report:?}");
        assert_eq!(report.total, sites.len());
        assert!((report.criticality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_workload_misses_faults() {
        // A single test vector cannot exercise every fault.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let workload = vec![vec![("x".to_string(), 0), ("y".to_string(), 0)]];
        let report = fault_campaign_comb(&nl, &sites, &workload, "s").unwrap();
        assert!(report.benign > 0, "a single vector should miss some faults");
        assert!(report.critical > 0, "but catch some (stuck-at-1 on sums)");
    }

    #[test]
    fn sequential_campaign_detects_register_faults() {
        // A 2-bit shift register: out = in delayed by 2 cycles.
        let mut b = Builder::new("shift");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let nl = b.finish();
        let sites = enumerate_fault_sites(&nl);
        // Workload: drive 1 for 3 cycles -> q must be 1.
        let workload = vec![vec![("d".to_string(), 1)]];
        let report = fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        // Stuck-at-0 on either register output forces q to 0: critical.
        assert!(report.critical >= 2, "{report:?}");
        // Stuck-at-1 faults agree with the golden value 1: benign here.
        assert!(report.benign >= 2, "{report:?}");
    }

    #[test]
    fn empty_fault_list_reports_zero() {
        let nl = adder2();
        let report = fault_campaign_comb(&nl, &[], &full_workload(), "s").unwrap();
        assert_eq!(report.total, 0);
        assert_eq!(report.criticality(), 0.0);
    }

    #[test]
    fn reused_comb_campaign_matches_rebuild_oracle() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let fast = fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        let slow = oracle::fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn reused_seq_campaign_matches_rebuild_oracle() {
        let mut b = Builder::new("shift");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let nl = b.finish();
        let sites = enumerate_fault_sites(&nl);
        let workload = vec![vec![("d".to_string(), 1)], vec![("d".to_string(), 0)]];
        let fast = fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        let slow = oracle::fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn frozen_register_survives_scalar_reset() {
        // The force/release reuse protocol depends on reset() keeping pinned
        // nets pinned (the old rebuild flow re-forced after every reset).
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        let site = enumerate_fault_sites(&nl)
            .into_iter()
            .find(|s| s.stuck_at)
            .expect("stuck-at-1 site on q");
        sim.force_net(site.net, true);
        sim.reset();
        assert_eq!(sim.output_unsigned("q"), 1, "reset must not clobber a forced register");
        sim.set_input("d", 0);
        sim.tick();
        assert_eq!(sim.output_unsigned("q"), 1, "clocking must not clobber a forced register");
        sim.release_net(site.net);
        sim.reset();
        assert_eq!(sim.output_unsigned("q"), 0, "released register resets normally");
    }
}
