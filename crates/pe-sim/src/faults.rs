//! Stuck-at fault injection and fault simulation.
//!
//! Printed fabrication yields are far below silicon's: additively printed
//! transistors short or open at percent-level rates, so the printed-ML
//! literature cares which faults actually flip classifications. This module
//! implements the classic single-stuck-at model on top of [`Simulator`]:
//! a [`FaultSite`] pins one net to a constant, and [`fault_campaign_comb`]
//! measures how many injected faults change a design's predictions on a
//! workload — the robustness analog of test-pattern fault coverage.

use crate::sim::Simulator;
use pe_netlist::{Driver, NetId, Netlist, NetlistError};

/// One single-stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// The faulted net.
    pub net: NetId,
    /// The value the net is stuck at.
    pub stuck_at: bool,
}

/// A simulator wrapper that forces a set of nets to constant values after
/// every settle pass.
#[derive(Debug)]
pub struct FaultySimulator<'nl> {
    sim: Simulator<'nl>,
    faults: Vec<FaultSite>,
}

impl<'nl> FaultySimulator<'nl> {
    /// Builds a faulty simulator: every fault site is pinned via
    /// [`Simulator::force_net`], so ordinary evaluation and clocking simply
    /// never touch the faulted nets.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`] from scheduling.
    pub fn new(nl: &'nl Netlist, faults: Vec<FaultSite>) -> Result<Self, NetlistError> {
        let mut sim = Simulator::new(nl)?;
        for f in &faults {
            sim.force_net(f.net, f.stuck_at);
        }
        sim.eval_comb();
        Ok(FaultySimulator { sim, faults })
    }

    /// Drives an input port (see [`Simulator::set_input`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values.
    pub fn set_input(&mut self, port: &str, value: i64) {
        self.sim.set_input(port, value);
    }

    /// Settles combinational logic with faults applied.
    pub fn eval_comb(&mut self) {
        self.sim.eval_comb();
    }

    /// One clock cycle with faults pinned across the edge.
    pub fn tick(&mut self) {
        self.sim.tick();
    }

    /// The injected faults.
    #[must_use]
    pub fn faults(&self) -> &[FaultSite] {
        &self.faults
    }

    /// Reads an output port as unsigned (see [`Simulator::output_unsigned`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports.
    #[must_use]
    pub fn output_unsigned(&self, port: &str) -> i64 {
        self.sim.output_unsigned(port)
    }

    /// Current value of a net (for inspecting the pinned sites).
    #[must_use]
    pub fn net_value(&self, net: NetId) -> bool {
        self.sim.net_value(net)
    }
}

/// Enumerates candidate fault sites: every cell output net (input and
/// constant nets are excluded — faults there are modeled as cell faults of
/// their sinks).
#[must_use]
pub fn enumerate_fault_sites(nl: &Netlist) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (id, net) in nl.nets() {
        if matches!(net.driver(), Driver::Cell(_)) {
            sites.push(FaultSite { net: id, stuck_at: false });
            sites.push(FaultSite { net: id, stuck_at: true });
        }
    }
    sites
}

/// Result of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Faults whose injection changed at least one prediction.
    pub critical: usize,
    /// Faults that never changed any prediction (logically masked or
    /// functionally tolerated by the classifier).
    pub benign: usize,
    /// Total faults simulated.
    pub total: usize,
}

impl FaultReport {
    /// Fraction of faults that altered behavior.
    #[must_use]
    pub fn criticality(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.critical as f64 / self.total as f64
        }
    }
}

/// Runs a fault campaign on a **combinational** design: for each fault,
/// drives every workload vector and compares the output port against the
/// fault-free run.
///
/// # Panics
///
/// Panics if the design is sequential (use a design-specific harness for
/// clocked circuits) or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
) -> Result<FaultReport, NetlistError> {
    assert!(
        crate::sim::is_combinational(nl),
        "fault_campaign_comb requires a combinational design"
    );
    // Golden responses.
    let mut golden = Vec::with_capacity(workload.len());
    let mut sim = Simulator::new(nl)?;
    for vec in workload {
        for (p, v) in vec {
            sim.set_input(p, *v);
        }
        sim.eval_comb();
        golden.push(sim.output_unsigned(out_port));
    }
    let mut critical = 0usize;
    for &fault in faults {
        let mut fsim = FaultySimulator::new(nl, vec![fault])?;
        let mut differs = false;
        for (vec, &want) in workload.iter().zip(&golden) {
            for (p, v) in vec {
                fsim.set_input(p, *v);
            }
            fsim.eval_comb();
            if fsim.output_unsigned(out_port) != want {
                differs = true;
                break;
            }
        }
        if differs {
            critical += 1;
        }
    }
    Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
}

/// Runs a fault campaign on a **sequential** design: each workload entry is
/// driven for `cycles` clock ticks (inputs held), and the output port is
/// compared against the fault-free run. The simulator is reset between
/// samples so faults are judged per classification.
///
/// # Panics
///
/// Panics on unknown ports.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
) -> Result<FaultReport, NetlistError> {
    let run = |sim_faults: Vec<FaultSite>| -> Result<Vec<i64>, NetlistError> {
        let mut responses = Vec::with_capacity(workload.len());
        let mut fsim = FaultySimulator::new(nl, sim_faults)?;
        for vec in workload {
            fsim.sim.reset();
            for f in fsim.faults.clone() {
                fsim.sim.force_net(f.net, f.stuck_at);
            }
            for (p, v) in vec {
                fsim.set_input(p, *v);
            }
            for _ in 0..cycles {
                fsim.tick();
            }
            responses.push(fsim.output_unsigned(out_port));
        }
        Ok(responses)
    };
    let golden = run(Vec::new())?;
    let mut critical = 0usize;
    for &fault in faults {
        if run(vec![fault])? != golden {
            critical += 1;
        }
    }
    Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    fn adder2() -> Netlist {
        let mut b = Builder::new("a2");
        let xs = b.input_bus("x", 2);
        let ys = b.input_bus("y", 2);
        // 2-bit adder out of discrete gates.
        let s0 = b.xor2(xs[0], ys[0]);
        let c0 = b.and2(xs[0], ys[0]);
        let t = b.xor2(xs[1], ys[1]);
        let s1 = b.xor2(t, c0);
        let c1a = b.and2(xs[1], ys[1]);
        let c1b = b.and2(t, c0);
        let c1 = b.or2(c1a, c1b);
        b.output_bus("s", &[s0, s1, c1]);
        b.finish()
    }

    fn full_workload() -> Vec<Vec<(String, i64)>> {
        let mut w = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                w.push(vec![("x".to_string(), x), ("y".to_string(), y)]);
            }
        }
        w
    }

    #[test]
    fn fault_free_run_matches_plain_simulator() {
        let nl = adder2();
        let mut f = FaultySimulator::new(&nl, vec![]).unwrap();
        f.set_input("x", 3);
        f.set_input("y", 2);
        f.eval_comb();
        assert_eq!(f.output_unsigned("s"), 5);
    }

    #[test]
    fn stuck_at_changes_outputs() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        assert_eq!(sites.len(), 2 * 7, "7 gates -> 14 single-stuck-at faults");
        // Stuck the low sum bit at 0: 1+0 must come out wrong.
        let s0_site =
            sites.iter().find(|s| !s.stuck_at).copied().expect("at least one stuck-at-0 site");
        let mut f = FaultySimulator::new(&nl, vec![s0_site]).unwrap();
        f.set_input("x", 1);
        f.set_input("y", 0);
        f.eval_comb();
        // The faulted net is pinned regardless of inputs.
        // (Which output changes depends on the site; just check the pin.)
        let pinned = f.net_value(s0_site.net);
        assert!(!pinned);
    }

    #[test]
    fn exhaustive_campaign_finds_all_faults_on_exhaustive_workload() {
        // With an exhaustive workload every single-stuck-at fault in an
        // adder is detectable (adders are fully testable).
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let report = fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(report.benign, 0, "all adder faults must be critical: {report:?}");
        assert_eq!(report.total, sites.len());
        assert!((report.criticality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_workload_misses_faults() {
        // A single test vector cannot exercise every fault.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let workload = vec![vec![("x".to_string(), 0), ("y".to_string(), 0)]];
        let report = fault_campaign_comb(&nl, &sites, &workload, "s").unwrap();
        assert!(report.benign > 0, "a single vector should miss some faults");
        assert!(report.critical > 0, "but catch some (stuck-at-1 on sums)");
    }

    #[test]
    fn sequential_campaign_detects_register_faults() {
        // A 2-bit shift register: out = in delayed by 2 cycles.
        let mut b = Builder::new("shift");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let nl = b.finish();
        let sites = enumerate_fault_sites(&nl);
        // Workload: drive 1 for 3 cycles -> q must be 1.
        let workload = vec![vec![("d".to_string(), 1)]];
        let report = fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        // Stuck-at-0 on either register output forces q to 0: critical.
        assert!(report.critical >= 2, "{report:?}");
        // Stuck-at-1 faults agree with the golden value 1: benign here.
        assert!(report.benign >= 2, "{report:?}");
    }

    #[test]
    fn empty_fault_list_reports_zero() {
        let nl = adder2();
        let report = fault_campaign_comb(&nl, &[], &full_workload(), "s").unwrap();
        assert_eq!(report.total, 0);
        assert_eq!(report.criticality(), 0.0);
    }
}
