//! Stuck-at fault injection and fault simulation.
//!
//! Printed fabrication yields are far below silicon's: additively printed
//! transistors short or open at percent-level rates, so the printed-ML
//! literature cares which faults actually flip classifications. This module
//! implements the classic single-stuck-at model: a [`FaultSite`] pins one
//! net to a constant, and [`fault_campaign_comb`] / [`fault_campaign_seq`]
//! measure how many injected faults change a design's predictions on a
//! workload — the robustness analog of test-pattern fault coverage.
//!
//! Campaigns reuse **one** scheduled [`BitSlicedSimulator`] for every fault
//! site and run **PPSFP-style** (parallel-pattern single-fault propagation,
//! flipped): each bit-sliced lane carries a *different* fault site, pinned
//! per lane via [`BitSlicedSimulator::force_lane`], and every workload
//! pattern is driven broadcast across the lanes — up to `64 * W` faulty
//! machines (one slab word holds 64 lanes; the [`LaneWidth`] slab carries
//! 64–512) evaluating (or, under the per-classification reset protocol,
//! ticking) in lockstep per sweep. A per-lane divergence mask against the
//! fault-free golden response accumulates the verdicts, early-exiting once
//! every site in the sweep has diverged.
//!
//! Campaign verdicts are **width-invariant** — each lane is an independent
//! faulty machine reset per entry — so the default campaigns auto-pick the
//! smallest slab covering the site list ([`LaneWidth::for_sites`]): a
//! campaign with more than 64 sites automatically completes in fewer
//! sweeps. The `_ppsfp_wide` variants take an explicit width.
//!
//! Two slower implementations survive as references the differential suite
//! checks the PPSFP campaigns against, site by site:
//!
//! * [`pattern_parallel`] — the previous fast path: sites iterated serially,
//!   64 workload *patterns* per word (the dual packing; it wastes lanes
//!   whenever the workload is shorter than 64 and pays per-site
//!   force/run/release overhead on every single site).
//! * [`oracle`] — the original flow: a freshly scheduled [`FaultySimulator`]
//!   per site, one pattern at a time.

use crate::bitslice::{lane_mask_wide, BitSlicedSimulator, LaneWidth, LANES};
use crate::sim::Simulator;
use pe_netlist::graph::FanoutCones;
use pe_netlist::{Driver, NetId, Netlist, NetlistError};
use pe_obs::{SimChunk, SimProfile};

/// One single-stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSite {
    /// The faulted net.
    pub net: NetId,
    /// The value the net is stuck at.
    pub stuck_at: bool,
}

/// A simulator wrapper that forces a set of nets to constant values after
/// every settle pass.
#[derive(Debug)]
pub struct FaultySimulator<'nl> {
    sim: Simulator<'nl>,
    faults: Vec<FaultSite>,
}

impl<'nl> FaultySimulator<'nl> {
    /// Builds a faulty simulator: every fault site is pinned via
    /// [`Simulator::force_net`], so ordinary evaluation and clocking simply
    /// never touch the faulted nets.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError::CombinationalCycle`] from scheduling.
    pub fn new(nl: &'nl Netlist, faults: Vec<FaultSite>) -> Result<Self, NetlistError> {
        let mut sim = Simulator::new(nl)?;
        for f in &faults {
            sim.force_net(f.net, f.stuck_at);
        }
        sim.eval_comb();
        Ok(FaultySimulator { sim, faults })
    }

    /// Drives an input port (see [`Simulator::set_input`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values.
    pub fn set_input(&mut self, port: &str, value: i64) {
        self.sim.set_input(port, value);
    }

    /// Settles combinational logic with faults applied.
    pub fn eval_comb(&mut self) {
        self.sim.eval_comb();
    }

    /// One clock cycle with faults pinned across the edge.
    pub fn tick(&mut self) {
        self.sim.tick();
    }

    /// The injected faults.
    #[must_use]
    pub fn faults(&self) -> &[FaultSite] {
        &self.faults
    }

    /// Reads an output port as unsigned (see [`Simulator::output_unsigned`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports.
    #[must_use]
    pub fn output_unsigned(&self, port: &str) -> i64 {
        self.sim.output_unsigned(port)
    }

    /// Current value of a net (for inspecting the pinned sites).
    #[must_use]
    pub fn net_value(&self, net: NetId) -> bool {
        self.sim.net_value(net)
    }
}

/// Enumerates candidate fault sites: every cell output net (input and
/// constant nets are excluded — faults there are modeled as cell faults of
/// their sinks).
#[must_use]
pub fn enumerate_fault_sites(nl: &Netlist) -> Vec<FaultSite> {
    let mut sites = Vec::new();
    for (id, net) in nl.nets() {
        if matches!(net.driver(), Driver::Cell(_)) {
            sites.push(FaultSite { net: id, stuck_at: false });
            sites.push(FaultSite { net: id, stuck_at: true });
        }
    }
    sites
}

/// Result of a fault-simulation campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Faults whose injection changed at least one prediction.
    pub critical: usize,
    /// Faults that never changed any prediction (logically masked or
    /// functionally tolerated by the classifier).
    pub benign: usize,
    /// Total faults simulated.
    pub total: usize,
}

impl FaultReport {
    /// Fraction of faults that altered behavior.
    #[must_use]
    pub fn criticality(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.critical as f64 / self.total as f64
        }
    }
}

/// Cone-scheduling policy of the PPSFP campaigns.
///
/// A cone-scheduled chunk evaluates only the cells downstream of its `64 * W`
/// pinned sites (the union fanout cone, register feedback included), loading
/// everything the cone reads from a precomputed fault-free trajectory — the
/// verdicts are bit-identical to the full sweep either way, so this knob is
/// purely about work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConeMode {
    /// Cone-schedule a chunk unless its union cone covers more than 3/4 of
    /// the combinational core, where a full sweep's better locality wins.
    #[default]
    Auto,
    /// Cone-schedule every chunk, however dense (benchmark / test knob).
    Always,
    /// Full sweeps only — the pre-cone campaign behavior (the reference the
    /// differential suites compare against).
    Never,
}

/// Work accounting of one PPSFP campaign (second element of the `_opts`
/// campaign results): how many sweep chunks took the cone-scheduled path and
/// the total combinational cell evaluations spent, the metric cone
/// scheduling exists to shrink at identical verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConeStats {
    /// Total `64 * W`-site sweep chunks in the campaign.
    pub chunks: usize,
    /// Chunks evaluated through their fanout cone.
    pub cone_chunks: usize,
    /// Chunks that fell back to full sweeps (density threshold exceeded, or
    /// [`ConeMode::Never`]).
    pub fallback_chunks: usize,
    /// Combinational cell evaluations over the whole campaign, golden run
    /// included (see [`BitSlicedSimulator::cell_evals`]).
    pub cell_evals: u64,
}

/// The fault-free net-value trajectory of a campaign workload, captured once
/// with the scalar reference simulator: one bit-packed snapshot of **every**
/// net (bit `net.index()`) per settle point — one per entry for combinational
/// workloads, `cycles + 1` per entry (post-reset, then after each tick) under
/// the sequential per-classification reset protocol. Cone-scheduled chunks
/// load their frontier nets from these snapshots instead of recomputing the
/// fault-free world per sweep.
#[derive(Debug)]
pub(crate) struct GoldenTrajectory {
    /// `entries * per_entry` snapshots, each entry's consecutive.
    states: Vec<Vec<u64>>,
    /// Snapshots per workload entry (`1` comb, `cycles + 1` seq).
    per_entry: usize,
    /// `Some(cycles)` for sequential workloads, `None` for combinational.
    cycles: Option<u64>,
}

impl GoldenTrajectory {
    /// Runs the workload on a fresh scalar simulator, snapshotting every
    /// settle point of every entry. The settle points are exactly the ones
    /// the bit-sliced PPSFP driver visits: sequential entries reset the
    /// registers to power-on, settle (snapshot 0), then tick `cycles` times
    /// (snapshots `1..=cycles`); combinational entries drive and settle.
    pub(crate) fn capture(
        nl: &Netlist,
        workload: &[Vec<(String, i64)>],
        cycles: Option<u64>,
    ) -> Result<Self, NetlistError> {
        let mut sim = Simulator::new(nl)?;
        let words = nl.num_nets().div_ceil(64);
        let per_entry = match cycles {
            None => 1,
            Some(c) => c as usize + 1,
        };
        let mut states = Vec::with_capacity(workload.len() * per_entry);
        for entry in workload {
            for (p, v) in entry {
                sim.set_input(p, *v);
            }
            match cycles {
                None => {
                    sim.eval_comb();
                    states.push(Self::snapshot(&sim, nl, words));
                }
                Some(c) => {
                    sim.reset();
                    states.push(Self::snapshot(&sim, nl, words));
                    for _ in 0..c {
                        sim.tick();
                        states.push(Self::snapshot(&sim, nl, words));
                    }
                }
            }
        }
        Ok(GoldenTrajectory { states, per_entry, cycles })
    }

    fn snapshot(sim: &Simulator<'_>, nl: &Netlist, words: usize) -> Vec<u64> {
        let mut s = vec![0u64; words];
        for (id, _) in nl.nets() {
            if sim.net_value(id) {
                s[id.index() / 64] |= 1u64 << (id.index() % 64);
            }
        }
        s
    }

    /// Number of workload entries captured.
    pub(crate) fn entries(&self) -> usize {
        self.states.len() / self.per_entry
    }

    /// The consecutive snapshots of one entry (`per_entry` of them).
    pub(crate) fn entry_states(&self, e: usize) -> &[Vec<u64>] {
        &self.states[e * self.per_entry..(e + 1) * self.per_entry]
    }

    /// `Some(cycles)` for sequential workloads, `None` for combinational.
    pub(crate) fn cycles_per_entry(&self) -> Option<u64> {
        self.cycles
    }
}

/// Runs a fault campaign on a **combinational** design: for each fault,
/// drives every workload vector and compares the output port against the
/// fault-free run. This is the PPSFP path
/// ([`fault_campaign_comb_ppsfp`]) — one fault site per bit-sliced lane.
///
/// # Panics
///
/// Panics if the design is sequential (use [`fault_campaign_seq`] for
/// clocked circuits) or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_comb_ppsfp(nl, faults, workload, out_port)
}

/// Runs a fault campaign on a **sequential** design: each workload entry
/// starts from power-on register state (faults stay pinned across the
/// reset), is driven for `cycles` clock ticks (inputs held), and the output
/// port is compared against the fault-free run — faults are judged per
/// classification. This is the PPSFP path
/// ([`fault_campaign_seq_ppsfp`]) — one fault site per bit-sliced lane.
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_seq_ppsfp(nl, faults, workload, out_port, cycles)
}

/// Pins one chunk of fault sites, one per lane, and returns the watch mask.
fn force_site_lanes<const W: usize>(
    sim: &mut BitSlicedSimulator<'_, W>,
    chunk: &[FaultSite],
) -> [u64; W] {
    for (l, f) in chunk.iter().enumerate() {
        sim.force_lane(f.net, l, f.stuck_at);
    }
    lane_mask_wide::<W>(chunk.len())
}

/// The width-monomorphized PPSFP campaign frame shared by the comb and seq
/// entry points: pin `64 * W` sites per sweep, drive the workload broadcast,
/// accumulate divergence, release. Under [`ConeMode::Auto`] /
/// [`ConeMode::Always`] each chunk is evaluated through its fanout cone
/// (frontier loaded from a once-captured [`GoldenTrajectory`]) whenever the
/// cone is sparse enough to pay; every chunk's verdicts are bit-identical
/// either way.
fn fault_campaign_ppsfp_w<const W: usize>(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: Option<u64>,
    mode: ConeMode,
    profile: Option<&dyn SimProfile>,
) -> Result<(FaultReport, ConeStats), NetlistError> {
    let (verdicts, stats) = fault_campaign_ppsfp_verdicts_w::<W>(
        nl, faults, workload, out_port, cycles, mode, profile,
    )?;
    let critical = verdicts.iter().filter(|&&v| v).count();
    Ok((FaultReport { critical, benign: faults.len() - critical, total: faults.len() }, stats))
}

/// The per-site form of the PPSFP frame: `verdicts[i]` is true iff pinning
/// `faults[i]` diverged the observed port on some workload entry. The
/// aggregate campaigns fold this into a [`FaultReport`]; the collapsed
/// campaigns ([`crate::collapse`]) expand it back over equivalence classes.
fn fault_campaign_ppsfp_verdicts_w<const W: usize>(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: Option<u64>,
    mode: ConeMode,
    profile: Option<&dyn SimProfile>,
) -> Result<(Vec<bool>, ConeStats), NetlistError> {
    let mut sim = BitSlicedSimulator::<'_, W>::new(nl)?;
    let golden = match cycles {
        None => sim.run_workload_comb(workload, out_port),
        Some(c) => sim.run_workload_seq_reset(workload, c, out_port),
    };
    if let Some(p) = profile {
        // Fed first so a recorder's campaign totals reconcile exactly with
        // the exit-summary `ConeStats::cell_evals` (golden + chunk deltas).
        p.on_campaign_golden(sim.cell_evals());
    }
    let prep = if mode != ConeMode::Never && !faults.is_empty() {
        Some((FanoutCones::new(nl), GoldenTrajectory::capture(nl, workload, cycles)?))
    } else {
        None
    };
    let mut stats = ConeStats::default();
    let mut verdicts = Vec::with_capacity(faults.len());
    for chunk in faults.chunks(LANES * W) {
        stats.chunks += 1;
        let evals_before = sim.cell_evals();
        let watch = force_site_lanes(&mut sim, chunk);
        let mut cone_diverged = None;
        let mut cone_cells = 0usize;
        if let Some((cones, traj)) = &prep {
            let mut roots: Vec<NetId> = chunk.iter().map(|f| f.net).collect();
            roots.dedup();
            let sched = sim.cone_schedule(cones, &roots);
            cone_cells = sched.comb_cells();
            // Density threshold: past ~3/4 of the core a cone pass does
            // nearly a full sweep's work with worse locality, so Auto falls
            // back to the plain path.
            let dense = sched.comb_cells() * 4 > sim.scheduled_cells() * 3;
            if mode == ConeMode::Always || !dense {
                cone_diverged =
                    Some(sim.lanes_diverging_cone(&sched, traj, out_port, &golden, watch));
            }
        }
        let (diverged, cone_scheduled) = match cone_diverged {
            Some(d) => {
                stats.cone_chunks += 1;
                (d, true)
            }
            None => {
                stats.fallback_chunks += 1;
                let d = match cycles {
                    None => sim.lanes_diverging_comb(workload, out_port, &golden, watch),
                    Some(c) => sim.lanes_diverging_seq_reset(workload, c, out_port, &golden, watch),
                };
                (d, false)
            }
        };
        for l in 0..chunk.len() {
            verdicts.push(diverged[l / 64] >> (l % 64) & 1 == 1);
        }
        for f in chunk {
            sim.release_net(f.net);
        }
        if let Some(p) = profile {
            p.on_chunk(&SimChunk {
                sites: chunk.len(),
                cone_scheduled,
                cone_cells,
                core_cells: sim.scheduled_cells(),
                cell_evals: sim.cell_evals() - evals_before,
            });
        }
    }
    stats.cell_evals = sim.cell_evals();
    Ok((verdicts, stats))
}

/// Width-dispatched per-site PPSFP verdicts for the collapsed campaigns.
pub(crate) fn ppsfp_verdicts(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: Option<u64>,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(Vec<bool>, ConeStats), NetlistError> {
    match width {
        LaneWidth::W1 => {
            fault_campaign_ppsfp_verdicts_w::<1>(nl, faults, workload, out_port, cycles, mode, None)
        }
        LaneWidth::W2 => {
            fault_campaign_ppsfp_verdicts_w::<2>(nl, faults, workload, out_port, cycles, mode, None)
        }
        LaneWidth::W4 => {
            fault_campaign_ppsfp_verdicts_w::<4>(nl, faults, workload, out_port, cycles, mode, None)
        }
        LaneWidth::W8 => {
            fault_campaign_ppsfp_verdicts_w::<8>(nl, faults, workload, out_port, cycles, mode, None)
        }
    }
}

/// PPSFP fault campaign on a **combinational** design at an explicit
/// [`LaneWidth`]: fault sites are packed `64 * W` per slab (site `l` of a
/// chunk pinned in lane `l` via [`BitSlicedSimulator::force_lane`]), every
/// workload pattern is driven broadcast across the lanes, and a per-lane
/// divergence mask against the fault-free golden response collects the
/// verdicts — with an early exit once every site in the sweep has diverged.
/// One simulator is scheduled for the whole campaign.
///
/// Settled values are lane-wise pure functions of the broadcast inputs and
/// the lane's pinned net, so the verdicts are bit-identical to the
/// rebuild-per-site reference ([`oracle::fault_campaign_comb`]), site for
/// site, at every width.
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp_wide(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    width: LaneWidth,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_comb_ppsfp_wide_opts(nl, faults, workload, out_port, width, ConeMode::Auto)
        .map(|(report, _)| report)
}

/// [`fault_campaign_comb_ppsfp_wide`] with an explicit [`ConeMode`],
/// additionally returning the campaign's [`ConeStats`]. Verdicts are
/// bit-identical across every mode; only the work accounting differs.
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp_wide_opts(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(FaultReport, ConeStats), NetlistError> {
    fault_campaign_comb_ppsfp_wide_obs(nl, faults, workload, out_port, width, mode, None)
}

/// [`fault_campaign_comb_ppsfp_wide_opts`] with an optional [`SimProfile`]
/// hook fed live during the campaign: once per `64 * W`-site chunk
/// ([`SimProfile::on_chunk`] — cone-scheduled or fallback, with the
/// cone/core cell counts and the chunk's cell-evaluation cost) and once for
/// the golden run ([`SimProfile::on_campaign_golden`]). A
/// [`pe_obs::ProfileRecorder`]'s campaign totals reconcile exactly with the
/// returned [`ConeStats`].
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp_wide_obs(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    width: LaneWidth,
    mode: ConeMode,
    profile: Option<&dyn SimProfile>,
) -> Result<(FaultReport, ConeStats), NetlistError> {
    assert!(
        crate::sim::is_combinational(nl),
        "fault_campaign_comb requires a combinational design"
    );
    let p = profile;
    match width {
        LaneWidth::W1 => fault_campaign_ppsfp_w::<1>(nl, faults, workload, out_port, None, mode, p),
        LaneWidth::W2 => fault_campaign_ppsfp_w::<2>(nl, faults, workload, out_port, None, mode, p),
        LaneWidth::W4 => fault_campaign_ppsfp_w::<4>(nl, faults, workload, out_port, None, mode, p),
        LaneWidth::W8 => fault_campaign_ppsfp_w::<8>(nl, faults, workload, out_port, None, mode, p),
    }
}

/// PPSFP fault campaign on a **combinational** design at the auto-picked
/// width: the smallest slab covering the site list
/// ([`LaneWidth::for_sites`]), so campaigns with more than 64 sites finish
/// in fewer sweeps at identical verdicts. See
/// [`fault_campaign_comb_ppsfp_wide`].
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_comb_ppsfp_wide(
        nl,
        faults,
        workload,
        out_port,
        LaneWidth::for_sites(faults.len()),
    )
}

/// PPSFP fault campaign on a **sequential** design at an explicit
/// [`LaneWidth`], under the per-classification reset protocol: `64 * W`
/// faulty machines — one fault site per lane — reset, load the broadcast
/// pattern and tick in lockstep, per workload entry, against the fault-free
/// golden response ([`BitSlicedSimulator::lanes_diverging_seq_reset`]). The
/// reset keeps pinned lanes pinned, so the verdicts are bit-identical to the
/// rebuild-per-site reference ([`oracle::fault_campaign_seq`]), site for
/// site, at every width.
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq_ppsfp_wide(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
    width: LaneWidth,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_seq_ppsfp_wide_opts(
        nl,
        faults,
        workload,
        out_port,
        cycles,
        width,
        ConeMode::Auto,
    )
    .map(|(report, _)| report)
}

/// [`fault_campaign_seq_ppsfp_wide`] with an explicit [`ConeMode`],
/// additionally returning the campaign's [`ConeStats`]. Verdicts are
/// bit-identical across every mode; only the work accounting differs.
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq_ppsfp_wide_opts(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(FaultReport, ConeStats), NetlistError> {
    fault_campaign_seq_ppsfp_wide_obs(nl, faults, workload, out_port, cycles, width, mode, None)
}

/// [`fault_campaign_seq_ppsfp_wide_opts`] with an optional [`SimProfile`]
/// hook fed live during the campaign — the sequential counterpart of
/// [`fault_campaign_comb_ppsfp_wide_obs`]; see there for the feed points and
/// the reconciliation guarantee with the returned [`ConeStats`].
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
#[allow(clippy::too_many_arguments)]
pub fn fault_campaign_seq_ppsfp_wide_obs(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
    width: LaneWidth,
    mode: ConeMode,
    profile: Option<&dyn SimProfile>,
) -> Result<(FaultReport, ConeStats), NetlistError> {
    let c = Some(cycles);
    let p = profile;
    match width {
        LaneWidth::W1 => fault_campaign_ppsfp_w::<1>(nl, faults, workload, out_port, c, mode, p),
        LaneWidth::W2 => fault_campaign_ppsfp_w::<2>(nl, faults, workload, out_port, c, mode, p),
        LaneWidth::W4 => fault_campaign_ppsfp_w::<4>(nl, faults, workload, out_port, c, mode, p),
        LaneWidth::W8 => fault_campaign_ppsfp_w::<8>(nl, faults, workload, out_port, c, mode, p),
    }
}

/// PPSFP fault campaign on a **sequential** design at the auto-picked width
/// ([`LaneWidth::for_sites`]). See [`fault_campaign_seq_ppsfp_wide`].
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq_ppsfp(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
) -> Result<FaultReport, NetlistError> {
    fault_campaign_seq_ppsfp_wide(
        nl,
        faults,
        workload,
        out_port,
        cycles,
        LaneWidth::for_sites(faults.len()),
    )
}

/// The previous fast campaign implementations: fault sites iterated
/// **serially**, workload patterns packed 64 per word — the dual of the
/// PPSFP packing. Kept as the mid-speed reference the differential suite
/// cross-checks (PPSFP == pattern-parallel == oracle): the two fast paths
/// fail differently, so agreement is strong evidence both are right.
///
/// Pattern packing wastes lanes whenever the workload holds fewer than 64
/// patterns (a 40-sample campaign uses 40 of 64 lanes on every one of
/// thousands of sites) and pays the per-site force/run/release overhead on
/// every site; the PPSFP path amortizes both 64 sites at a time.
pub mod pattern_parallel {
    use super::{BitSlicedSimulator, FaultReport, FaultSite, Netlist, NetlistError, LANES};

    /// Pattern-parallel, site-serial counterpart of
    /// [`super::fault_campaign_comb_ppsfp`].
    ///
    /// # Panics
    ///
    /// Panics if the design is sequential or ports are unknown.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_comb(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
    ) -> Result<FaultReport, NetlistError> {
        assert!(
            crate::sim::is_combinational(nl),
            "fault_campaign_comb requires a combinational design"
        );
        let mut sim: BitSlicedSimulator<'_> = BitSlicedSimulator::new(nl)?;
        let golden = sim.run_workload_comb(workload, out_port);
        let mut critical = 0usize;
        for &fault in faults {
            sim.force_net(fault.net, fault.stuck_at);
            // Chunk-wise early exit: the first diverging 64-pattern chunk
            // already proves the fault critical (settled values are pure
            // functions of inputs, so skipping later chunks changes nothing).
            let mut differs = false;
            let mut done = 0;
            for chunk in workload.chunks(LANES) {
                if sim.run_workload_comb(chunk, out_port) != golden[done..done + chunk.len()] {
                    differs = true;
                    break;
                }
                done += chunk.len();
            }
            if differs {
                critical += 1;
            }
            sim.release_net(fault.net);
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }

    /// Pattern-parallel, site-serial counterpart of
    /// [`super::fault_campaign_seq_ppsfp`].
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or `cycles == 0`.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_seq(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
        cycles: u64,
    ) -> Result<FaultReport, NetlistError> {
        let mut sim: BitSlicedSimulator<'_> = BitSlicedSimulator::new(nl)?;
        let golden = sim.run_workload_seq_reset(workload, cycles, out_port);
        let mut critical = 0usize;
        for &fault in faults {
            sim.force_net(fault.net, fault.stuck_at);
            // Chunk-wise early exit; the per-classification reset makes
            // chunks independent, so later chunks cannot change the verdict.
            let mut differs = false;
            let mut done = 0;
            for chunk in workload.chunks(LANES) {
                if sim.run_workload_seq_reset(chunk, cycles, out_port)
                    != golden[done..done + chunk.len()]
                {
                    differs = true;
                    break;
                }
                done += chunk.len();
            }
            if differs {
                critical += 1;
            }
            sim.release_net(fault.net);
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }
}

/// The original rebuild-per-site campaign implementations.
///
/// These schedule a fresh [`FaultySimulator`] for every fault site and
/// evaluate one pattern at a time — quadratic-ish work the reused
/// force/release campaigns above avoid. They are kept **only** as the
/// reference oracle: the differential suite asserts the fast campaigns
/// reproduce these reports exactly, site for site.
pub mod oracle {
    use super::{FaultReport, FaultSite, FaultySimulator, Netlist, NetlistError};

    /// Reference implementation of [`super::fault_campaign_comb`]: one
    /// freshly scheduled simulator per fault site.
    ///
    /// # Panics
    ///
    /// Panics if the design is sequential or ports are unknown.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_comb(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
    ) -> Result<FaultReport, NetlistError> {
        assert!(
            crate::sim::is_combinational(nl),
            "fault_campaign_comb requires a combinational design"
        );
        // Golden responses.
        let mut golden = Vec::with_capacity(workload.len());
        let mut sim = crate::sim::Simulator::new(nl)?;
        for vec in workload {
            for (p, v) in vec {
                sim.set_input(p, *v);
            }
            sim.eval_comb();
            golden.push(sim.output_unsigned(out_port));
        }
        let mut critical = 0usize;
        for &fault in faults {
            let mut fsim = FaultySimulator::new(nl, vec![fault])?;
            let mut differs = false;
            for (vec, &want) in workload.iter().zip(&golden) {
                for (p, v) in vec {
                    fsim.set_input(p, *v);
                }
                fsim.eval_comb();
                if fsim.output_unsigned(out_port) != want {
                    differs = true;
                    break;
                }
            }
            if differs {
                critical += 1;
            }
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }

    /// Reference implementation of [`super::fault_campaign_seq`]: one
    /// freshly scheduled simulator per fault site, reset per sample.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports.
    ///
    /// # Errors
    ///
    /// Propagates scheduling errors.
    pub fn fault_campaign_seq(
        nl: &Netlist,
        faults: &[FaultSite],
        workload: &[Vec<(String, i64)>],
        out_port: &str,
        cycles: u64,
    ) -> Result<FaultReport, NetlistError> {
        let run = |sim_faults: Vec<FaultSite>| -> Result<Vec<i64>, NetlistError> {
            let mut responses = Vec::with_capacity(workload.len());
            let mut fsim = FaultySimulator::new(nl, sim_faults)?;
            for vec in workload {
                fsim.sim.reset();
                for f in fsim.faults.clone() {
                    fsim.sim.force_net(f.net, f.stuck_at);
                }
                for (p, v) in vec {
                    fsim.set_input(p, *v);
                }
                for _ in 0..cycles {
                    fsim.tick();
                }
                responses.push(fsim.output_unsigned(out_port));
            }
            Ok(responses)
        };
        let golden = run(Vec::new())?;
        let mut critical = 0usize;
        for &fault in faults {
            if run(vec![fault])? != golden {
                critical += 1;
            }
        }
        Ok(FaultReport { critical, benign: faults.len() - critical, total: faults.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    fn adder2() -> Netlist {
        let mut b = Builder::new("a2");
        let xs = b.input_bus("x", 2);
        let ys = b.input_bus("y", 2);
        // 2-bit adder out of discrete gates.
        let s0 = b.xor2(xs[0], ys[0]);
        let c0 = b.and2(xs[0], ys[0]);
        let t = b.xor2(xs[1], ys[1]);
        let s1 = b.xor2(t, c0);
        let c1a = b.and2(xs[1], ys[1]);
        let c1b = b.and2(t, c0);
        let c1 = b.or2(c1a, c1b);
        b.output_bus("s", &[s0, s1, c1]);
        b.finish()
    }

    fn full_workload() -> Vec<Vec<(String, i64)>> {
        let mut w = Vec::new();
        for x in 0..4 {
            for y in 0..4 {
                w.push(vec![("x".to_string(), x), ("y".to_string(), y)]);
            }
        }
        w
    }

    #[test]
    fn fault_free_run_matches_plain_simulator() {
        let nl = adder2();
        let mut f = FaultySimulator::new(&nl, vec![]).unwrap();
        f.set_input("x", 3);
        f.set_input("y", 2);
        f.eval_comb();
        assert_eq!(f.output_unsigned("s"), 5);
    }

    #[test]
    fn stuck_at_changes_outputs() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        assert_eq!(sites.len(), 2 * 7, "7 gates -> 14 single-stuck-at faults");
        // Stuck the low sum bit at 0: 1+0 must come out wrong.
        let s0_site =
            sites.iter().find(|s| !s.stuck_at).copied().expect("at least one stuck-at-0 site");
        let mut f = FaultySimulator::new(&nl, vec![s0_site]).unwrap();
        f.set_input("x", 1);
        f.set_input("y", 0);
        f.eval_comb();
        // The faulted net is pinned regardless of inputs.
        // (Which output changes depends on the site; just check the pin.)
        let pinned = f.net_value(s0_site.net);
        assert!(!pinned);
    }

    #[test]
    fn exhaustive_campaign_finds_all_faults_on_exhaustive_workload() {
        // With an exhaustive workload every single-stuck-at fault in an
        // adder is detectable (adders are fully testable).
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let report = fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(report.benign, 0, "all adder faults must be critical: {report:?}");
        assert_eq!(report.total, sites.len());
        assert!((report.criticality() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_workload_misses_faults() {
        // A single test vector cannot exercise every fault.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let workload = vec![vec![("x".to_string(), 0), ("y".to_string(), 0)]];
        let report = fault_campaign_comb(&nl, &sites, &workload, "s").unwrap();
        assert!(report.benign > 0, "a single vector should miss some faults");
        assert!(report.critical > 0, "but catch some (stuck-at-1 on sums)");
    }

    #[test]
    fn sequential_campaign_detects_register_faults() {
        // A 2-bit shift register: out = in delayed by 2 cycles.
        let mut b = Builder::new("shift");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let nl = b.finish();
        let sites = enumerate_fault_sites(&nl);
        // Workload: drive 1 for 3 cycles -> q must be 1.
        let workload = vec![vec![("d".to_string(), 1)]];
        let report = fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        // Stuck-at-0 on either register output forces q to 0: critical.
        assert!(report.critical >= 2, "{report:?}");
        // Stuck-at-1 faults agree with the golden value 1: benign here.
        assert!(report.benign >= 2, "{report:?}");
    }

    #[test]
    fn empty_fault_list_reports_zero() {
        let nl = adder2();
        let report = fault_campaign_comb(&nl, &[], &full_workload(), "s").unwrap();
        assert_eq!(report.total, 0);
        assert_eq!(report.criticality(), 0.0);
    }

    #[test]
    fn reused_comb_campaign_matches_rebuild_oracle() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let fast = fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        let slow = oracle::fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn reused_seq_campaign_matches_rebuild_oracle() {
        let mut b = Builder::new("shift");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let nl = b.finish();
        let sites = enumerate_fault_sites(&nl);
        let workload = vec![vec![("d".to_string(), 1)], vec![("d".to_string(), 0)]];
        let fast = fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        let slow = oracle::fault_campaign_seq(&nl, &sites, &workload, "q", 3).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn release_restores_scalar_register_state() {
        // The satellite bug: release_net used to clear the frozen flag but
        // leave the forced value in the register, so a post-campaign batch
        // started from stale state.
        let mut b = Builder::new("r");
        let d = b.input("x0");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let site = enumerate_fault_sites(&nl)
            .into_iter()
            .find(|s| s.stuck_at)
            .expect("stuck-at-1 site on q");
        let vectors = vec![vec![0i64], vec![1], vec![0]];
        let mut sim = Simulator::new(&nl).unwrap();
        sim.force_net(site.net, true);
        sim.set_input("x0", 0);
        sim.tick();
        sim.release_net(site.net);
        let got = sim.run_batch(&vectors, 1, "q");
        let want = Simulator::new(&nl).unwrap().run_batch(&vectors, 1, "q");
        assert_eq!(got.outputs, want.outputs, "released register must not leak forced state");
        assert_eq!(sim.register_state(), vec![false]);
    }

    #[test]
    fn release_restores_bitsliced_register_state() {
        let mut b = Builder::new("r");
        let d = b.input("x0");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let site = enumerate_fault_sites(&nl)
            .into_iter()
            .find(|s| s.stuck_at)
            .expect("stuck-at-1 site on q");
        let workload = vec![vec![("x0".to_string(), 0i64)], vec![("x0".to_string(), 1)]];
        let mut sim: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        sim.force_net(site.net, true);
        let _ = sim.run_workload_seq_reset(&workload, 2, "q");
        sim.release_net(site.net);
        let vectors = vec![vec![0i64], vec![1], vec![0]];
        let got = sim.run_batch(&vectors, 1, "q");
        let want = BitSlicedSimulator::<1>::new(&nl).unwrap().run_batch(&vectors, 1, "q");
        assert_eq!(got, want, "post-campaign batch must start from power-on state");
    }

    #[test]
    fn ppsfp_seq_run_leaves_unforced_registers_coherent() {
        // Multi-register hazard: a PPSFP sequential run leaves every lane a
        // different faulty machine, and release_net only heals the *forced*
        // net — the driver itself must restore the other registers, or a
        // post-campaign batch reads 64 different leftover states. The
        // holding register (enable low) is what keeps the leftover alive
        // into the batch: a plain shift register would flush it.
        let mut b = Builder::new("hold");
        let d = b.input("x0");
        let en = b.input("x1");
        let q1 = b.dff(d, false);
        let q2 = b.dffe(q1, en, false);
        b.output("q", q2);
        let nl = b.finish();
        let q1_sites: Vec<FaultSite> =
            enumerate_fault_sites(&nl).into_iter().filter(|s| s.net == q1).collect();
        assert_eq!(q1_sites.len(), 2, "stuck-at-0 and stuck-at-1 on q1");
        // Campaign workload loads q2 (enable high) so each lane's q2 captures
        // its own faulty q1.
        let workload = vec![
            vec![("x0".to_string(), 0i64), ("x1".to_string(), 1)],
            vec![("x0".to_string(), 1), ("x1".to_string(), 1)],
        ];
        let mut sim: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        let golden = sim.run_workload_seq_reset(&workload, 2, "q");
        for (l, s) in q1_sites.iter().enumerate() {
            sim.force_lane(s.net, l, s.stuck_at);
        }
        let _ = sim.lanes_diverging_seq_reset(&workload, 2, "q", &golden, [0b11]);
        sim.release_net(q1);
        // Post-campaign batch with enable low: q2 holds, so any leftover
        // lane-divergent state would surface directly in the outputs.
        let vectors = vec![vec![0i64, 0], vec![0, 0], vec![0, 0]];
        let got = sim.run_batch(&vectors, 1, "q");
        let want = BitSlicedSimulator::<1>::new(&nl).unwrap().run_batch(&vectors, 1, "q");
        assert_eq!(got, want, "unforced registers must not leak lane-divergent state");
    }

    #[test]
    fn ppsfp_campaigns_match_pattern_parallel_and_oracle() {
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let ppsfp = fault_campaign_comb_ppsfp(&nl, &sites, &full_workload(), "s").unwrap();
        let patpar =
            pattern_parallel::fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        let slow = oracle::fault_campaign_comb(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(ppsfp, patpar);
        assert_eq!(ppsfp, slow);
    }

    #[test]
    fn profile_recorder_reconciles_with_cone_stats() {
        // The observability contract: a ProfileRecorder fed live through the
        // `_obs` entry points must reproduce the campaign's exit-summary
        // ConeStats exactly — chunk counts, cone/fallback split, and total
        // cell evaluations (golden run included).
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        for mode in [ConeMode::Auto, ConeMode::Always, ConeMode::Never] {
            let rec = pe_obs::ProfileRecorder::new();
            let (report, stats) = fault_campaign_comb_ppsfp_wide_obs(
                &nl,
                &sites,
                &full_workload(),
                "s",
                LaneWidth::W1,
                mode,
                Some(&rec),
            )
            .unwrap();
            let s = rec.snapshot();
            assert_eq!(s.chunks as usize, stats.chunks, "{mode:?}");
            assert_eq!(s.cone_chunks as usize, stats.cone_chunks, "{mode:?}");
            assert_eq!(s.fallback_chunks as usize, stats.fallback_chunks, "{mode:?}");
            assert_eq!(s.campaign_cell_evals, stats.cell_evals, "{mode:?}");
            assert_eq!(s.campaign_sites as usize, report.total, "{mode:?}");
        }

        let mut b = Builder::new("shiftobs");
        let d = b.input("d");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let snl = b.finish();
        let ssites = enumerate_fault_sites(&snl);
        let wl = vec![vec![("d".to_string(), 1i64)], vec![("d".to_string(), 0)]];
        let rec = pe_obs::ProfileRecorder::new();
        let (sreport, sstats) = fault_campaign_seq_ppsfp_wide_obs(
            &snl,
            &ssites,
            &wl,
            "q",
            3,
            LaneWidth::W1,
            ConeMode::Auto,
            Some(&rec),
        )
        .unwrap();
        let s = rec.snapshot();
        assert_eq!(s.chunks as usize, sstats.chunks);
        assert_eq!(s.campaign_cell_evals, sstats.cell_evals);
        assert_eq!(s.campaign_sites as usize, sreport.total);
        // And the verdicts are identical to the unprofiled path.
        let (plain, _) = fault_campaign_seq_ppsfp_wide_opts(
            &snl,
            &ssites,
            &wl,
            "q",
            3,
            LaneWidth::W1,
            ConeMode::Auto,
        )
        .unwrap();
        assert_eq!(sreport, plain);
    }

    #[test]
    fn ppsfp_verdicts_are_width_invariant() {
        // Same campaign at every explicit slab width: per-lane verdicts must
        // not depend on how many faulty machines share a sweep.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let baseline =
            fault_campaign_comb_ppsfp_wide(&nl, &sites, &full_workload(), "s", LaneWidth::W1)
                .unwrap();
        for width in LaneWidth::ALL {
            let wide =
                fault_campaign_comb_ppsfp_wide(&nl, &sites, &full_workload(), "s", width).unwrap();
            assert_eq!(wide, baseline, "comb verdicts diverge at {width} words");
        }

        let mut b = Builder::new("seqwide");
        let d = b.input("x0");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let snl = b.finish();
        let ssites = enumerate_fault_sites(&snl);
        let wl: Vec<Vec<(String, i64)>> = (0..4).map(|v| vec![("x0".to_string(), v & 1)]).collect();
        let sbase =
            fault_campaign_seq_ppsfp_wide(&snl, &ssites, &wl, "q", 3, LaneWidth::W1).unwrap();
        for width in LaneWidth::ALL {
            let wide = fault_campaign_seq_ppsfp_wide(&snl, &ssites, &wl, "q", 3, width).unwrap();
            assert_eq!(wide, sbase, "seq verdicts diverge at {width} words");
        }
    }

    #[test]
    fn ppsfp_packs_both_stuck_values_of_one_net_in_one_word() {
        // enumerate_fault_sites emits stuck-at-0 and stuck-at-1 of each net
        // adjacently, so every chunk forces the same net in two lanes with
        // opposite values — the force_lanes merge must keep them distinct.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        assert!(sites.len() <= 64, "all sites must share one word for this test");
        for (a, b) in sites.iter().zip(sites.iter().skip(1)).step_by(2) {
            assert_eq!(a.net, b.net, "paired sites share a net");
            assert_ne!(a.stuck_at, b.stuck_at);
        }
        let report = fault_campaign_comb_ppsfp(&nl, &sites, &full_workload(), "s").unwrap();
        assert_eq!(report.benign, 0, "adders are fully testable: {report:?}");
    }

    #[test]
    fn cone_modes_agree_on_comb_and_seq_campaigns() {
        // Always / Never / Auto are three routes to the same verdicts; the
        // stats must also confirm each route actually ran where claimed.
        let nl = adder2();
        let sites = enumerate_fault_sites(&nl);
        let wl = full_workload();
        let (never, sn) = fault_campaign_comb_ppsfp_wide_opts(
            &nl,
            &sites,
            &wl,
            "s",
            LaneWidth::W1,
            ConeMode::Never,
        )
        .unwrap();
        let (always, sa) = fault_campaign_comb_ppsfp_wide_opts(
            &nl,
            &sites,
            &wl,
            "s",
            LaneWidth::W1,
            ConeMode::Always,
        )
        .unwrap();
        let (auto, _) = fault_campaign_comb_ppsfp_wide_opts(
            &nl,
            &sites,
            &wl,
            "s",
            LaneWidth::W1,
            ConeMode::Auto,
        )
        .unwrap();
        assert_eq!(always, never, "cone-scheduled comb verdicts diverged");
        assert_eq!(auto, never, "auto comb verdicts diverged");
        assert_eq!(sn.cone_chunks, 0, "Never must not take the cone path");
        assert_eq!(sa.fallback_chunks, 0, "Always must never fall back");
        assert_eq!(sa.cone_chunks, sa.chunks);

        let mut b = Builder::new("shift");
        let d = b.input("x0");
        let q1 = b.dff(d, false);
        let q2 = b.dff(q1, false);
        b.output("q", q2);
        let snl = b.finish();
        let ssites = enumerate_fault_sites(&snl);
        let swl: Vec<Vec<(String, i64)>> =
            (0..4).map(|v| vec![("x0".to_string(), v & 1)]).collect();
        let (snever, _) = fault_campaign_seq_ppsfp_wide_opts(
            &snl,
            &ssites,
            &swl,
            "q",
            3,
            LaneWidth::W1,
            ConeMode::Never,
        )
        .unwrap();
        let (salways, st) = fault_campaign_seq_ppsfp_wide_opts(
            &snl,
            &ssites,
            &swl,
            "q",
            3,
            LaneWidth::W1,
            ConeMode::Always,
        )
        .unwrap();
        assert_eq!(salways, snever, "cone-scheduled seq verdicts diverged");
        assert_eq!(st.cone_chunks, st.chunks, "Always must run every chunk through cones");
        assert_eq!(
            snever,
            oracle::fault_campaign_seq(&snl, &ssites, &swl, "q", 3).unwrap(),
            "both routes must agree with the rebuild oracle"
        );
    }

    #[test]
    fn cone_scheduling_cuts_cell_evals_near_the_outputs() {
        // A deep xor chain feeding a masked and-gate, with fault sites only
        // on the and output: that site's cone is empty, so each workload
        // entry costs the cone pass nothing while the dense sweep re-settles
        // the whole chain. The stuck-at-0 site is benign (z is held low, o
        // is constant 0), which keeps the dense sweep from early-exiting —
        // this is exactly the shape where cone scheduling pays.
        let mut b = Builder::new("chain");
        let x = b.input("x0");
        let t = b.input("x1");
        let z = b.input("x2");
        let mut n = x;
        for _ in 0..64 {
            n = b.xor2(n, t);
        }
        let o = b.and2(n, z);
        b.output("o", o);
        let nl = b.finish();
        let tail: Vec<FaultSite> =
            enumerate_fault_sites(&nl).into_iter().filter(|s| s.net == o).collect();
        assert_eq!(tail.len(), 2);
        let wl: Vec<Vec<(String, i64)>> = (0..16)
            .map(|v| {
                vec![
                    ("x0".to_string(), v & 1),
                    ("x1".to_string(), (v >> 1) & 1),
                    ("x2".to_string(), 0),
                ]
            })
            .collect();
        let (always, sa) = fault_campaign_comb_ppsfp_wide_opts(
            &nl,
            &tail,
            &wl,
            "o",
            LaneWidth::W1,
            ConeMode::Always,
        )
        .unwrap();
        let (never, sn) = fault_campaign_comb_ppsfp_wide_opts(
            &nl,
            &tail,
            &wl,
            "o",
            LaneWidth::W1,
            ConeMode::Never,
        )
        .unwrap();
        assert_eq!(always, never);
        assert_eq!(always.critical, 1, "stuck-at-1 critical, stuck-at-0 masked by z=0");
        assert!(
            sa.cell_evals * 4 < sn.cell_evals,
            "tail-site cone sweep should be >4x cheaper: {} vs {}",
            sa.cell_evals,
            sn.cell_evals
        );
    }

    #[test]
    fn frozen_register_survives_scalar_reset() {
        // The force/release reuse protocol depends on reset() keeping pinned
        // nets pinned (the old rebuild flow re-forced after every reset).
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        let site = enumerate_fault_sites(&nl)
            .into_iter()
            .find(|s| s.stuck_at)
            .expect("stuck-at-1 site on q");
        sim.force_net(site.net, true);
        sim.reset();
        assert_eq!(sim.output_unsigned("q"), 1, "reset must not clobber a forced register");
        sim.set_input("d", 0);
        sim.tick();
        assert_eq!(sim.output_unsigned("q"), 1, "clocking must not clobber a forced register");
        sim.release_net(site.net);
        sim.reset();
        assert_eq!(sim.output_unsigned("q"), 0, "released register resets normally");
    }
}
