//! The levelized two-valued simulator.

use crate::activity::{ActivityReport, ToggleCounters};
use crate::bitslice::{BitSlicedSimulator, LaneWidth};
use pe_netlist::{CellId, CellKind, Driver, Netlist, NetlistError, PortDir};
use pe_obs::SimProfile;
use std::collections::HashMap;

/// Which engine executes [`Simulator::run_batch`].
///
/// The bit-sliced engine is the default: it packs up to 64 vectors per
/// machine word and is what every grid run and fault campaign uses. The
/// scalar engine implements the identical batch contract with one `bool` per
/// net and exists as the reference oracle the differential test suite pins
/// the fast path against (`tests/bitslice_differential.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// One vector at a time, one `bool` per net (the reference).
    Scalar,
    /// 64 vectors per `u64` per net (see [`crate::bitslice`]).
    #[default]
    BitSliced,
}

/// The reusable scheduling of a netlist: the topological order of its
/// combinational cells plus its sequential cells, computed once by
/// [`Schedule::new`] and shared by every simulator built over the same
/// netlist.
///
/// Levelization is the only super-linear part of simulator construction, so
/// long-lived owners of a netlist (the serving-path model registry, fault
/// campaigns spawning per-worker simulators) compute a `Schedule` once and
/// stamp out simulators with [`Simulator::with_schedule`] — a pure
/// allocation, no graph traversal.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// Topological order of combinational cells.
    order: Vec<CellId>,
    /// All sequential cells.
    regs: Vec<CellId>,
    /// Connectivity fingerprint of the netlist this schedule was computed
    /// for (guards against pairing a schedule with the wrong netlist).
    fingerprint: u64,
}

/// Hashes a netlist's cell connectivity (every cell's output and input
/// nets, in id order) — cheap, and two structurally different netlists
/// virtually never collide.
fn connectivity_fingerprint(nl: &Netlist) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    nl.num_nets().hash(&mut h);
    for (id, cell) in nl.cells() {
        id.hash(&mut h);
        cell.output().hash(&mut h);
        cell.inputs().hash(&mut h);
    }
    h.finish()
}

impl Schedule {
    /// Levelizes a netlist: topological order of the combinational core plus
    /// the sequential cell list.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design's
    /// combinational core is cyclic.
    pub fn new(nl: &Netlist) -> Result<Self, NetlistError> {
        let order = pe_netlist::graph::topo_order(nl)?;
        let regs: Vec<CellId> =
            nl.cells().filter(|(_, c)| c.kind().is_sequential()).map(|(id, _)| id).collect();
        Ok(Schedule { order, regs, fingerprint: connectivity_fingerprint(nl) })
    }

    /// Whether this schedule was computed for a netlist with this exact
    /// cell connectivity.
    #[must_use]
    pub fn matches(&self, nl: &Netlist) -> bool {
        self.fingerprint == connectivity_fingerprint(nl)
    }
}

/// A cycle-based simulator over a borrowed [`Netlist`].
///
/// Construction performs the topological scheduling once; every subsequent
/// evaluation is a linear sweep. See the [crate documentation](crate) for the
/// timing model.
#[derive(Debug, Clone)]
pub struct Simulator<'nl> {
    nl: &'nl Netlist,
    /// Settled value of every net.
    values: Vec<bool>,
    /// Topological order of combinational cells.
    order: Vec<CellId>,
    /// All sequential cells.
    regs: Vec<CellId>,
    /// Current state of each register (parallel to `regs`).
    state: Vec<bool>,
    /// Input port name -> bit nets (LSB first).
    input_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Output port name -> bit nets (LSB first).
    output_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Per-net toggle counters (disabled until `enable_activity`).
    toggles: ToggleCounters,
    /// Number of clock cycles accounted so far (ticks + sampled comb cycles).
    cycles: u64,
    /// Scratch buffer for cell input values.
    scratch: Vec<bool>,
    /// Nets pinned by [`Simulator::force_net`]; never updated by evaluation.
    frozen: Vec<bool>,
    /// Engine selection for [`Simulator::run_batch`].
    batch_mode: BatchMode,
    /// Slab width of [`Simulator::run_batch`]: how many vectors one chunk
    /// carries (`64 * W`). Part of the sequential chunked-streaming
    /// contract, so *both* engines honor it — the scalar reference chunks
    /// by the same effective lane count.
    lane_width: LaneWidth,
    /// Event-driven sweeps for bit-sliced batches (see
    /// [`Simulator::set_event_driven`]).
    event_driven: bool,
    /// Observability hook fed once per bit-sliced batch (see
    /// [`Simulator::set_profile`]); `None` skips all phase clocks.
    profile: Option<std::sync::Arc<dyn SimProfile>>,
}

impl<'nl> Simulator<'nl> {
    /// Builds a simulator, scheduling the combinational core.
    ///
    /// Registers power on at their declared init values and the combinational
    /// core is settled once with all primary inputs at 0.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design's
    /// combinational core is cyclic.
    pub fn new(nl: &'nl Netlist) -> Result<Self, NetlistError> {
        Ok(Self::with_schedule(nl, &Schedule::new(nl)?))
    }

    /// Builds a simulator from an already-computed [`Schedule`], skipping
    /// levelization. This is the cheap path for serving workers and
    /// campaigns that stamp out many simulators over one long-lived netlist;
    /// behavior is identical to [`Simulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if `schedule` was computed for a different netlist shape.
    #[must_use]
    pub fn with_schedule(nl: &'nl Netlist, schedule: &Schedule) -> Self {
        assert!(
            schedule.matches(nl),
            "schedule was computed for a different netlist than {:?} ({} nets / {} cells)",
            nl.name(),
            nl.num_nets(),
            nl.num_cells()
        );
        let order = schedule.order.clone();
        let regs = schedule.regs.clone();
        let mut input_ports = HashMap::new();
        let mut output_ports = HashMap::new();
        for p in nl.ports() {
            match p.dir() {
                PortDir::Input => {
                    input_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
                PortDir::Output => {
                    output_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
            }
        }
        let mut values = vec![false; nl.num_nets()];
        values[nl.const1().index()] = true;
        let mut sim = Simulator {
            nl,
            values,
            order,
            regs,
            state: Vec::new(),
            input_ports,
            output_ports,
            toggles: ToggleCounters::disabled(),
            cycles: 0,
            scratch: Vec::new(),
            frozen: vec![false; nl.num_nets()],
            batch_mode: BatchMode::default(),
            lane_width: LaneWidth::default(),
            event_driven: false,
            profile: None,
        };
        sim.reset();
        sim
    }

    /// A deep copy of this simulator — schedule, settled net values,
    /// register state, forced nets, batch-mode selection and toggle counts
    /// included — without re-levelizing the netlist. Service workers use
    /// this to fan one scheduled simulator out across threads; the copies
    /// share nothing and diverge independently.
    #[must_use]
    pub fn clone_scheduled(&self) -> Simulator<'nl> {
        self.clone()
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Seeds a lifetime-free [`WarmSimulator`](crate::WarmSimulator) from
    /// this simulator's schedule, settled state and configuration
    /// (lane width, event-driven mode, activity tracking, profile hook).
    ///
    /// Where [`Simulator::run_batch`] stamps out a fresh slab engine per
    /// call — restarting the event-driven worklist all-dirty every time —
    /// the warm simulator keeps the engine's state *across* batches, which
    /// is what lets serving workers finally collect the worklist's savings
    /// on low-activity request streams. Holding no netlist borrow, it can
    /// live inside the same struct (or thread) that owns the netlist; pass
    /// the netlist back in on every
    /// [`run_batch`](crate::WarmSimulator::run_batch) call.
    #[must_use]
    pub fn warm(&self) -> crate::WarmSimulator {
        crate::warm::WarmSimulator::from_scalar_parts(
            self.order.clone(),
            self.regs.clone(),
            self.values.clone(),
            self.state.clone(),
            self.frozen.clone(),
            self.lane_width,
            self.event_driven,
            self.toggles.is_enabled(),
            self.profile.clone(),
        )
    }

    /// Selects which engine executes [`Simulator::run_batch`]. The default
    /// is [`BatchMode::BitSliced`]; tests pin the fast path against
    /// [`BatchMode::Scalar`], the reference implementation.
    pub fn set_batch_mode(&mut self, mode: BatchMode) {
        self.batch_mode = mode;
    }

    /// The currently selected batch engine.
    #[must_use]
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }

    /// Selects the slab width of [`Simulator::run_batch`]: `64 * W` vectors
    /// per chunk (see [`LaneWidth`]). The width is part of the sequential
    /// chunked-streaming contract, so it applies to *both* engines — the
    /// scalar reference chunks by the same effective lane count, keeping
    /// scalar/bit-sliced bit-identity at every width. The default is
    /// [`LaneWidth::W1`] (the original 64-lane engine).
    pub fn set_lane_width(&mut self, width: LaneWidth) {
        self.lane_width = width;
    }

    /// The currently selected slab width.
    #[must_use]
    pub fn lane_width(&self) -> LaneWidth {
        self.lane_width
    }

    /// Enables **event-driven** sweeps for bit-sliced batches: the slab
    /// engine only re-evaluates cells whose input slabs changed since their
    /// last evaluation ([`BitSlicedSimulator::set_event_driven`]), which pays
    /// off on low-activity batches (repeated or near-constant vectors) and is
    /// bit-identical — outputs, cycles, toggle accounting — to the full-sweep
    /// default. Ignored under [`BatchMode::Scalar`].
    pub fn set_event_driven(&mut self, on: bool) {
        self.event_driven = on;
    }

    /// Whether bit-sliced batches run event-driven.
    #[must_use]
    pub fn event_driven(&self) -> bool {
        self.event_driven
    }

    /// Installs an observability hook fed once per bit-sliced batch with the
    /// phase decomposition (drive/eval/readout nanoseconds), sweep count,
    /// cycles and cell-evaluation count — see
    /// [`pe_obs::SimProfile::on_batch`]. `None` (the default) removes the
    /// hook and with it every phase clock read, so the unprofiled hot path
    /// is byte-identical to before. The scalar reference engine is never
    /// profiled: it exists as a correctness oracle, not a production path.
    pub fn set_profile(&mut self, profile: Option<std::sync::Arc<dyn SimProfile>>) {
        self.profile = profile;
    }

    /// The installed observability hook, if any.
    #[must_use]
    pub fn profile(&self) -> Option<&std::sync::Arc<dyn SimProfile>> {
        self.profile.as_ref()
    }

    /// Enables per-net toggle counting (and clears any previous counts).
    pub fn enable_activity(&mut self) {
        self.toggles = ToggleCounters::enabled(self.nl.num_nets());
        self.cycles = 0;
    }

    /// Resets registers to their power-on values and settles the
    /// combinational core. Toggle counters are not cleared. Nets pinned by
    /// [`Simulator::force_net`] stay pinned: a forced register keeps its
    /// forced state across the reset.
    pub fn reset(&mut self) {
        self.state = self
            .regs
            .iter()
            .map(|&r| {
                let out = self.nl.cell(r).output().index();
                if self.frozen[out] {
                    self.values[out]
                } else {
                    self.nl.cell(r).init()
                }
            })
            .collect();
        for (i, &r) in self.regs.iter().enumerate() {
            let out = self.nl.cell(r).output().index();
            if !self.frozen[out] {
                self.values[out] = self.state[i];
            }
        }
        self.eval_comb();
    }

    /// Current register states, in the simulator's internal register order
    /// (stable for a given netlist). The differential suite uses this to
    /// assert that both batch engines carry identical sequential state
    /// across chunks.
    #[must_use]
    pub fn register_state(&self) -> Vec<bool> {
        self.state.clone()
    }

    /// Drives an input port with an integer (two's complement, LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or `value` does not fit the port
    /// width (signed or unsigned interpretation both accepted).
    pub fn set_input(&mut self, port: &str, value: i64) {
        let bits = self
            .input_ports
            .get(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"))
            .clone();
        let w = bits.len() as u32;
        assert!(w <= 63, "port {port} too wide");
        let min = -(1i64 << (w - 1));
        let max = (1i64 << w) - 1;
        assert!(value >= min && value <= max, "value {value} does not fit {w}-bit port {port}");
        for (i, &b) in bits.iter().enumerate() {
            self.values[b.index()] = (value >> i) & 1 == 1;
        }
    }

    /// Drives an input port bit-by-bit (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or widths mismatch.
    pub fn set_input_bits(&mut self, port: &str, bits: &[bool]) {
        let nets = self
            .input_ports
            .get(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"))
            .clone();
        assert_eq!(nets.len(), bits.len(), "width mismatch for port {port}");
        for (&n, &v) in nets.iter().zip(bits) {
            self.values[n.index()] = v;
        }
    }

    /// Pins a net to a constant value: evaluation and clocking will never
    /// change it until [`Simulator::release_net`] is called. This is the
    /// mechanism behind stuck-at fault injection ([`crate::faults`]) and is
    /// also handy for interactive debugging.
    pub fn force_net(&mut self, net: pe_netlist::NetId, value: bool) {
        self.frozen[net.index()] = true;
        self.values[net.index()] = value;
        // Keep register state consistent with a forced register output.
        for (i, &r) in self.regs.iter().enumerate() {
            if self.nl.cell(r).output() == net {
                self.state[i] = value;
            }
        }
    }

    /// Releases a pinned net (its next evaluation recomputes it normally).
    /// A released *register* output is restored to its power-on init value —
    /// not left at the stale forced value — so a post-campaign batch on a
    /// sequential design starts from sane state; combinational nets need no
    /// restore because the next settle recomputes them.
    pub fn release_net(&mut self, net: pe_netlist::NetId) {
        if !self.frozen[net.index()] {
            return;
        }
        self.frozen[net.index()] = false;
        for (i, &r) in self.regs.iter().enumerate() {
            if self.nl.cell(r).output() == net {
                self.state[i] = self.nl.cell(r).init();
                self.values[net.index()] = self.state[i];
            }
        }
    }

    /// Settles the combinational core with current inputs and register
    /// outputs. Accumulates toggle counts if activity tracking is enabled.
    pub fn eval_comb(&mut self) {
        let track = self.toggles.is_enabled();
        for idx in 0..self.order.len() {
            let cell_id = self.order[idx];
            let cell = self.nl.cell(cell_id);
            let out = cell.output().index();
            if self.frozen[out] {
                continue;
            }
            self.scratch.clear();
            for &inp in cell.inputs() {
                self.scratch.push(self.values[inp.index()]);
            }
            let new = cell.kind().eval(&self.scratch);
            if self.values[out] != new {
                if track {
                    self.toggles.bump(out);
                }
                self.values[out] = new;
            }
        }
    }

    /// One clock cycle: settle, capture register next-states, update
    /// registers, settle again. Increments the cycle counter.
    pub fn tick(&mut self) {
        self.eval_comb();
        let track = self.toggles.is_enabled();
        // Capture next states from settled values.
        let mut next = Vec::with_capacity(self.regs.len());
        for (i, &r) in self.regs.iter().enumerate() {
            let cell = self.nl.cell(r);
            self.scratch.clear();
            for &inp in cell.inputs() {
                self.scratch.push(self.values[inp.index()]);
            }
            next.push(cell.kind().next_state(&self.scratch, self.state[i]));
        }
        // Apply.
        for (i, &r) in self.regs.iter().enumerate() {
            let out = self.nl.cell(r).output().index();
            if self.frozen[out] {
                continue;
            }
            if self.values[out] != next[i] {
                if track {
                    self.toggles.bump(out);
                }
                self.values[out] = next[i];
            }
            self.state[i] = next[i];
        }
        self.eval_comb();
        self.cycles += 1;
    }

    /// Accounts one clock cycle for a purely combinational design: settles
    /// the core and increments the cycle counter. Use after driving a new
    /// input vector on a single-cycle (unregistered) datapath.
    pub fn sample_comb(&mut self) {
        self.eval_comb();
        self.cycles += 1;
    }

    /// Current value of a net.
    #[must_use]
    pub fn net_value(&self, net: pe_netlist::NetId) -> bool {
        self.values[net.index()]
    }

    /// Reads an output port as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 63 bits.
    #[must_use]
    pub fn output_unsigned(&self, port: &str) -> i64 {
        let bits =
            self.output_ports.get(port).unwrap_or_else(|| panic!("no output port named {port:?}"));
        assert!(bits.len() <= 63, "port {port} too wide");
        let mut v = 0i64;
        for (i, &b) in bits.iter().enumerate() {
            if self.values[b.index()] {
                v |= 1i64 << i;
            }
        }
        v
    }

    /// Reads an output port as a signed (two's complement) integer.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 63 bits.
    #[must_use]
    pub fn output_signed(&self, port: &str) -> i64 {
        let bits =
            self.output_ports.get(port).unwrap_or_else(|| panic!("no output port named {port:?}"));
        let w = bits.len();
        let mut v = self.output_unsigned(port);
        if w > 0 && self.values[bits[w - 1].index()] {
            v -= 1i64 << w;
        }
        v
    }

    /// Number of clock cycles accounted so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Drives a whole batch of input vectors through the design and records
    /// the value of `out_port` after each one — verification plus activity
    /// extraction in a single call instead of a caller-side loop.
    ///
    /// Element `j` of each vector drives input port `x{j}` (the naming
    /// convention of every generated classifier datapath). For a sequential
    /// design pass the design's cycles-per-inference as `cycles_per_vector`;
    /// pass 0 for a purely combinational datapath (the vector is settled and
    /// accounted as one cycle, like [`Simulator::sample_comb`]).
    ///
    /// # Batch semantics
    ///
    /// Combinational batches behave exactly like a caller-side serial loop
    /// (each vector's settled values toggle against the previous vector's),
    /// at every configured [`LaneWidth`]. Sequential batches use **chunked
    /// streaming**: vectors are processed in chunks of `64 * W` (the
    /// configured [`LaneWidth`], default 64), every vector in a chunk starts
    /// from the register state and net values carried into the chunk, and
    /// the last vector's state carries into the next chunk. For the generated classifier
    /// datapaths — whose control returns to its idle state after every
    /// inference — the recorded outputs are identical to fully-serial
    /// back-to-back classification; for a design whose state genuinely
    /// accumulates across vectors, drive it with the serial
    /// [`Simulator::set_input`]/[`Simulator::tick`] API instead of a batch.
    /// Both [`BatchMode`] engines implement
    /// this contract bit-identically (outputs, per-net toggles, carried
    /// state); the bit-sliced engine evaluates the 64 lanes of a chunk in
    /// parallel, one bitwise op per gate (see [`crate::bitslice`]).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values, like
    /// [`Simulator::set_input`].
    pub fn run_batch(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        match self.batch_mode {
            BatchMode::Scalar => self.run_batch_scalar(vectors, cycles_per_vector, out_port),
            BatchMode::BitSliced => self.run_batch_sliced(vectors, cycles_per_vector, out_port),
        }
    }

    /// The reference implementation of the [`Simulator::run_batch`]
    /// contract: plain `bool` evaluation, one vector at a time.
    fn run_batch_scalar(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        let mut outputs = Vec::with_capacity(vectors.len());
        let start_cycles = self.cycles;
        if cycles_per_vector == 0 {
            for x in vectors {
                for (j, &v) in x.iter().enumerate() {
                    self.set_input(&format!("x{j}"), v);
                }
                self.sample_comb();
                outputs.push(self.output_unsigned(out_port));
            }
        } else {
            for chunk in vectors.chunks(self.lane_width.lanes()) {
                // Chunked streaming: every vector in the chunk starts from
                // the chunk-entry snapshot; the last vector's state carries.
                let entry_values = self.values.clone();
                let entry_state = self.state.clone();
                for (l, x) in chunk.iter().enumerate() {
                    if l > 0 {
                        self.values.copy_from_slice(&entry_values);
                        self.state.copy_from_slice(&entry_state);
                    }
                    for (j, &v) in x.iter().enumerate() {
                        self.set_input(&format!("x{j}"), v);
                    }
                    for _ in 0..cycles_per_vector {
                        self.tick();
                    }
                    outputs.push(self.output_unsigned(out_port));
                }
            }
        }
        BatchResult { outputs, cycles: self.cycles - start_cycles }
    }

    /// The fast path of [`Simulator::run_batch`]: seeds a
    /// [`BitSlicedSimulator`] with the current values/state (reusing this
    /// simulator's schedule), runs the batch `64 * W` lanes at a time, and
    /// folds the carried state, toggle counts and cycles back in. The
    /// configured [`LaneWidth`] picks which monomorphized slab engine runs.
    fn run_batch_sliced(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        match self.lane_width {
            LaneWidth::W1 => self.run_batch_sliced_w::<1>(vectors, cycles_per_vector, out_port),
            LaneWidth::W2 => self.run_batch_sliced_w::<2>(vectors, cycles_per_vector, out_port),
            LaneWidth::W4 => self.run_batch_sliced_w::<4>(vectors, cycles_per_vector, out_port),
            LaneWidth::W8 => self.run_batch_sliced_w::<8>(vectors, cycles_per_vector, out_port),
        }
    }

    /// The width-monomorphized body of [`Simulator::run_batch_sliced`].
    fn run_batch_sliced_w<const W: usize>(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        let track = self.toggles.is_enabled();
        let mut sliced = BitSlicedSimulator::<'_, W>::from_parts(
            self.nl,
            self.order.clone(),
            self.regs.clone(),
            &self.values,
            &self.state,
            &self.frozen,
            track,
        );
        if self.event_driven {
            sliced.set_event_driven(true);
        }
        let result = sliced.run_batch_profiled(
            vectors,
            cycles_per_vector,
            out_port,
            self.profile.as_deref(),
        );
        sliced.carry_into(&mut self.values, &mut self.state);
        if track {
            self.toggles.merge(sliced.toggle_counters());
        }
        self.cycles += result.cycles;
        result
    }

    /// Snapshot of the accumulated switching activity.
    ///
    /// # Panics
    ///
    /// Panics if activity tracking was never enabled.
    #[must_use]
    pub fn activity(&self) -> ActivityReport {
        assert!(
            self.toggles.is_enabled(),
            "activity tracking not enabled; call enable_activity() first"
        );
        self.toggles.report(self.cycles)
    }
}

/// Result of a [`Simulator::run_batch`] call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchResult {
    /// Value of the observed output port after each input vector, in input
    /// order.
    pub outputs: Vec<i64>,
    /// Clock cycles accounted by this batch.
    pub cycles: u64,
}

/// Convenience: simulates a purely combinational netlist for one input
/// vector given as `(port, value)` pairs and returns the signed value of
/// `out_port`.
///
/// # Panics
///
/// Panics on unknown ports or on a cyclic design.
#[must_use]
pub fn eval_comb_once(nl: &Netlist, inputs: &[(&str, i64)], out_port: &str) -> i64 {
    let mut sim = Simulator::new(nl).expect("netlist must be acyclic");
    for &(p, v) in inputs {
        sim.set_input(p, v);
    }
    sim.eval_comb();
    sim.output_signed(out_port)
}

/// Identifies nets driven by cells (the ones whose toggles dissipate dynamic
/// power in the driver cell). Constant and input nets are excluded.
#[must_use]
pub fn cell_driven_nets(nl: &Netlist) -> Vec<pe_netlist::NetId> {
    nl.nets().filter(|(_, n)| matches!(n.driver(), Driver::Cell(_))).map(|(id, _)| id).collect()
}

/// Returns the driving cell of a net, if any.
#[must_use]
pub fn driver_cell(nl: &Netlist, net: pe_netlist::NetId) -> Option<CellId> {
    match nl.net(net).driver() {
        Driver::Cell(c) => Some(c),
        _ => None,
    }
}

/// Checks that a netlist contains no sequential cells (useful before
/// single-pass combinational evaluation).
#[must_use]
pub fn is_combinational(nl: &Netlist) -> bool {
    !nl.cells().any(|(_, c)| matches!(c.kind(), CellKind::Dff | CellKind::DffE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::Builder;

    fn full_adder() -> Netlist {
        let mut b = Builder::new("fa");
        let a = b.input("a");
        let x = b.input("b");
        let cin = b.input("cin");
        let s1 = b.xor2(a, x);
        let sum = b.xor2(s1, cin);
        let carry = b.maj3(a, x, cin);
        b.output("sum", sum);
        b.output("carry", carry);
        b.finish()
    }

    #[test]
    fn full_adder_truth_table() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        for a in 0..2 {
            for x in 0..2 {
                for c in 0..2 {
                    sim.set_input("a", a);
                    sim.set_input("b", x);
                    sim.set_input("cin", c);
                    sim.eval_comb();
                    let total = a + x + c;
                    assert_eq!(sim.output_unsigned("sum"), total & 1);
                    assert_eq!(sim.output_unsigned("carry"), total >> 1);
                }
            }
        }
    }

    #[test]
    fn counter_sequences() {
        // 2-bit counter: q0' = !q0 ; q1' = q1 ^ q0.
        let mut b = Builder::new("count2");
        let seed = b.input("unused");
        let _ = seed;
        // Create feedback: build dffs with placeholder inputs is not possible
        // in a pure builder, so express the counter algebraically:
        // q0 = dff(!q0) requires a cycle through the register, which is legal.
        // The builder cannot reference a net before creating it, so build via
        // two passes: first the registers on dummy nets is impossible; instead
        // we exploit DffE: hold register feeding itself. For the test we use
        // a simpler structure: a toggle register from an inverter loop.
        let mut b = Builder::new("toggle");
        let q_feedback = b.input("qf"); // stand-in driven externally
        let q = b.dff(q_feedback, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        // Manually close the loop: drive qf with !q each cycle.
        let mut expected = false;
        for _ in 0..8 {
            let q_now = sim.output_unsigned("q") == 1;
            assert_eq!(q_now, expected);
            sim.set_input("qf", i64::from(!q_now));
            sim.tick();
            expected = !expected;
        }
    }

    #[test]
    fn registers_power_on_at_init() {
        let mut b = Builder::new("init");
        let d = b.input("d");
        let q1 = b.dff(d, true);
        let q0 = b.dff(d, false);
        b.output("q1", q1);
        b.output("q0", q0);
        let nl = b.finish();
        let sim = Simulator::new(&nl).unwrap();
        assert_eq!(sim.output_unsigned("q1"), 1);
        assert_eq!(sim.output_unsigned("q0"), 0);
    }

    #[test]
    fn dffe_holds_without_enable() {
        let mut b = Builder::new("hold");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.dffe(d, en, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 1);
        sim.set_input("en", 0);
        sim.tick();
        assert_eq!(sim.output_unsigned("q"), 0, "disabled register must hold");
        sim.set_input("en", 1);
        sim.tick();
        assert_eq!(sim.output_unsigned("q"), 1, "enabled register must load");
    }

    #[test]
    fn signed_output_reads() {
        let mut b = Builder::new("neg");
        let xs = b.input_bus("x", 4);
        b.output_bus("y", &xs);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", -3);
        sim.eval_comb();
        assert_eq!(sim.output_signed("y"), -3);
        assert_eq!(sim.output_unsigned("y"), 13);
    }

    #[test]
    fn activity_counts_toggles() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.enable_activity();
        sim.set_input("a", 1);
        sim.set_input("b", 1);
        sim.set_input("cin", 0);
        sim.sample_comb();
        sim.set_input("a", 0);
        sim.sample_comb();
        let act = sim.activity();
        assert_eq!(act.cycles(), 2);
        assert!(act.total_toggles() > 0);
    }

    #[test]
    fn reset_restores_state() {
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 1);
        sim.tick();
        assert_eq!(sim.output_unsigned("q"), 1);
        sim.reset();
        assert_eq!(sim.output_unsigned("q"), 0);
    }

    #[test]
    fn run_batch_matches_manual_loop() {
        // Combinational: batch over the full-adder (renamed x-ports).
        let mut b = Builder::new("fa");
        let a = b.input("x0");
        let x = b.input("x1");
        let cin = b.input("x2");
        let s1 = b.xor2(a, x);
        let sum = b.xor2(s1, cin);
        b.output("sum", sum);
        let nl = b.finish();
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();

        let mut manual = Simulator::new(&nl).unwrap();
        manual.enable_activity();
        let mut expected = Vec::new();
        for x in &vectors {
            for (j, &v) in x.iter().enumerate() {
                manual.set_input(&format!("x{j}"), v);
            }
            manual.sample_comb();
            expected.push(manual.output_unsigned("sum"));
        }

        let mut batched = Simulator::new(&nl).unwrap();
        batched.enable_activity();
        let r = batched.run_batch(&vectors, 0, "sum");
        assert_eq!(r.outputs, expected);
        assert_eq!(r.cycles, 8);
        assert_eq!(batched.activity().total_toggles(), manual.activity().total_toggles());
    }

    #[test]
    fn run_batch_sequential_carries_state() {
        // q' = x0 XOR x1 through a register; both engines must agree on the
        // outputs, the cycle count, and the register state carried out of
        // the batch.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let fb = b.input("x1");
        let nxt = b.xor2(x0, fb);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let vectors = vec![vec![1, 0], vec![1, 1], vec![0, 0]];
        let mut sim = Simulator::new(&nl).unwrap();
        let r = sim.run_batch(&vectors, 1, "q");
        assert_eq!(r.cycles, 3);
        assert_eq!(r.outputs, vec![1, 0, 0]);

        let mut reference = Simulator::new(&nl).unwrap();
        reference.set_batch_mode(BatchMode::Scalar);
        let want = reference.run_batch(&vectors, 1, "q");
        assert_eq!(r, want);
        assert_eq!(sim.register_state(), reference.register_state());
        assert_eq!(sim.register_state(), vec![false], "last vector leaves q = 0");
    }

    #[test]
    fn wide_lane_width_keeps_both_engines_in_lockstep() {
        // Sequential design, batch longer than one 64-lane word: at W=4 both
        // engines chunk by 256 and must stay bit-identical on outputs,
        // cycles, toggles and carried state.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let fb = b.input("x1");
        let nxt = b.xor2(x0, fb);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let vectors: Vec<Vec<i64>> = (0..300).map(|v| vec![v & 1, (v >> 1) & 1]).collect();
        let mut fast = Simulator::new(&nl).unwrap();
        fast.set_lane_width(LaneWidth::W4);
        fast.enable_activity();
        let got = fast.run_batch(&vectors, 2, "q");
        let mut reference = Simulator::new(&nl).unwrap();
        reference.set_batch_mode(BatchMode::Scalar);
        reference.set_lane_width(LaneWidth::W4);
        reference.enable_activity();
        let want = reference.run_batch(&vectors, 2, "q");
        assert_eq!(got, want);
        assert_eq!(fast.activity(), reference.activity());
        assert_eq!(fast.register_state(), reference.register_state());
        assert_eq!(fast.lane_width(), LaneWidth::W4);
    }

    #[test]
    fn with_schedule_matches_fresh_construction() {
        // Ports follow the x{j} batch convention so run_batch can drive them.
        let mut b = Builder::new("fa");
        let a = b.input("x0");
        let x = b.input("x1");
        let cin = b.input("x2");
        let s1 = b.xor2(a, x);
        let sum = b.xor2(s1, cin);
        b.output("sum", sum);
        let nl = b.finish();
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| vec![v & 1, (v >> 1) & 1, (v >> 2) & 1]).collect();
        let schedule = Schedule::new(&nl).unwrap();
        let mut fresh = Simulator::new(&nl).unwrap();
        let mut reused = Simulator::with_schedule(&nl, &schedule);
        let want = fresh.run_batch(&vectors, 0, "sum");
        let got = reused.run_batch(&vectors, 0, "sum");
        assert_eq!(got, want);
    }

    #[test]
    fn clone_scheduled_copies_state_and_diverges_independently() {
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("d", 1);
        sim.tick();
        let mut copy = sim.clone_scheduled();
        assert_eq!(copy.output_unsigned("q"), 1, "clone carries register state");
        copy.set_input("d", 0);
        copy.tick();
        assert_eq!(copy.output_unsigned("q"), 0);
        assert_eq!(sim.output_unsigned("q"), 1, "original is untouched by the clone");
    }

    #[test]
    #[should_panic(expected = "different netlist")]
    fn mismatched_schedule_panics() {
        let nl = full_adder();
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let other = b.finish();
        let schedule = Schedule::new(&other).unwrap();
        let _ = Simulator::with_schedule(&nl, &schedule);
    }

    #[test]
    #[should_panic(expected = "no input port")]
    fn unknown_port_panics() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("nope", 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_panics() {
        let nl = full_adder();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("a", 5);
    }

    #[test]
    fn helpers() {
        let nl = full_adder();
        assert!(is_combinational(&nl));
        // A set 1-bit port reads as -1 under two's-complement interpretation.
        assert_eq!(eval_comb_once(&nl, &[("a", 1), ("b", 0), ("cin", 1)], "carry"), -1);
        let driven = cell_driven_nets(&nl);
        assert_eq!(driven.len(), 3); // xor, xor, maj
        assert!(driver_cell(&nl, driven[0]).is_some());
    }
}
