//! Word-parallel bit-sliced simulation: up to 512 test vectors per sweep.
//!
//! The scalar [`Simulator`](crate::Simulator) stores one `bool` per net and
//! walks the netlist once per test vector — the single hottest loop behind
//! every Table-I grid run and fault campaign. [`BitSlicedSimulator`] packs
//! test vectors into a **slab** of `W` machine words (`[u64; W]`, the const
//! generic `W` one of 1/2/4/8) per net, so a topological sweep evaluates
//! every gate for `64 * W` vectors at once with `W` bitwise operations per
//! cell ([`pe_netlist::CellKind::eval_packed_wide`]). The slabs are stored
//! structure-of-arrays: each net owns `W` contiguous words, so a cell eval
//! touches whole cache lines (a `[u64; 8]` slab is exactly one 64-byte
//! line). `W = 1` compiles to exactly the original one-word engine; the
//! runtime knob picking among the monomorphized widths is [`LaneWidth`].
//!
//! # Lane layout
//!
//! Bit `l` of word `i` of every slab belongs to **lane** `64*i + l`, which
//! simulates vector `64*i + l` of the current chunk. A batch of `N` vectors
//! is processed as `ceil(N / (64*W))` chunks; the final chunk may be
//! *ragged* (fewer than `64*W` active lanes) and is handled with a **lane
//! mask** — a slab with one bit set per active lane ([`lane_mask_wide`]).
//! Values in masked-off lanes are garbage and are never allowed to escape:
//! activity accounting ANDs every XOR-difference with the mask before
//! popcounting, outputs are extracted per active lane only, and the
//! chunk-exit carry reads exactly the last active lane.
//!
//! # Batch semantics (shared with the scalar engine)
//!
//! Between chunks every slab is a *broadcast* (all `64*W` lanes hold the
//! same bit): the serial value carried from the previous chunk.
//!
//! * **Combinational batches** (`cycles_per_vector == 0`): settled values are
//!   pure functions of the inputs, so lanes evaluate independently and the
//!   result is bit-identical to a caller-side serial loop *at every width*.
//!   Toggle counts are serial-exact too: for each net the count of adjacent
//!   differences in the settled sequence `v_prev, v_0, v_1, …` is
//!   `popcount((w ^ ((w << 1) | carry)) & mask)` per word — lane `l`
//!   compares against lane `l-1`, lane 0 of word `i` against bit 63 of word
//!   `i-1` (word 0 against the carried broadcast bit), chaining the shift
//!   carry across the slab.
//! * **Sequential batches** (`cycles_per_vector == c > 0`): every lane starts
//!   the chunk from the chunk-entry net values and register state, all lanes
//!   tick `c` times in lockstep (packed register update via
//!   [`pe_netlist::CellKind::next_state_packed_wide`]), and the last active
//!   lane's final values/state become the carry into the next chunk. The
//!   chunk size `64*W` is part of this contract: the scalar engine
//!   implements the identical chunked-streaming semantics at the *same*
//!   configured [`LaneWidth`]
//!   ([`Simulator::run_batch`](crate::Simulator::run_batch) with
//!   [`BatchMode::Scalar`](crate::sim::BatchMode)), which is what makes
//!   bit-identity — outputs, per-net toggle counts, carried register state —
//!   testable exactly (see `tests/bitslice_differential.rs`). Sequential
//!   *outputs* are additionally width-invariant whenever each
//!   classification's result depends only on its own input vector (true for
//!   the paper's classifier datapaths); sequential *toggle counts* are
//!   defined per width because chunk boundaries move.
//!
//! Fault campaigns reuse one `BitSlicedSimulator` across every fault site by
//! pinning nets with [`BitSlicedSimulator::force_net`] and releasing them
//! afterwards, instead of rebuilding and rescheduling a simulator per site;
//! at `W = 8` a PPSFP sweep carries 512 faulty machines in lockstep (see
//! [`crate::faults`]).

use crate::activity::{ActivityReport, ToggleCounters};
use crate::sim::BatchResult;
use pe_netlist::graph::FanoutCones;
use pe_netlist::{CellId, Netlist, NetlistError, PortDir};
use pe_obs::{SimBatch, SimProfile};
use std::collections::HashMap;

/// Number of simulation lanes in one machine word (one slab holds
/// `LANES * W` lanes).
pub const LANES: usize = 64;

/// Largest supported slab width in words (`MAX_WIDTH * LANES` lanes).
pub const MAX_WIDTH: usize = 8;

/// Runtime-selectable slab width of the bit-sliced engine: how many `u64`
/// words (and therefore how many `64 * W` packed test vectors) one
/// topological sweep carries. Each variant selects a monomorphized
/// `[u64; W]` engine; [`LaneWidth::W1`] is exactly the original one-word
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LaneWidth {
    /// One word per net: 64 lanes per sweep.
    #[default]
    W1,
    /// Two words per net: 128 lanes per sweep.
    W2,
    /// Four words per net: 256 lanes per sweep.
    W4,
    /// Eight words per net (a full 64-byte cache line): 512 lanes per sweep.
    W8,
}

impl LaneWidth {
    /// Every supported width, narrowest first (the width-sweep order used by
    /// benches and differential tests).
    pub const ALL: [LaneWidth; 4] = [LaneWidth::W1, LaneWidth::W2, LaneWidth::W4, LaneWidth::W8];

    /// Slab width in words.
    #[must_use]
    pub fn words(self) -> usize {
        match self {
            LaneWidth::W1 => 1,
            LaneWidth::W2 => 2,
            LaneWidth::W4 => 4,
            LaneWidth::W8 => 8,
        }
    }

    /// Packed vectors per sweep (`64 * words`).
    #[must_use]
    pub fn lanes(self) -> usize {
        LANES * self.words()
    }

    /// The width with the given word count, if supported.
    #[must_use]
    pub fn from_words(words: usize) -> Option<Self> {
        match words {
            1 => Some(LaneWidth::W1),
            2 => Some(LaneWidth::W2),
            4 => Some(LaneWidth::W4),
            8 => Some(LaneWidth::W8),
            _ => None,
        }
    }

    /// Parses a CLI-style width spec: a word count (`1`/`2`/`4`/`8`) or a
    /// lane count (`64`/`128`/`256`/`512`).
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s.trim() {
            "1" | "64" => Some(LaneWidth::W1),
            "2" | "128" => Some(LaneWidth::W2),
            "4" | "256" => Some(LaneWidth::W4),
            "8" | "512" => Some(LaneWidth::W8),
            _ => None,
        }
    }

    /// Smallest width whose sweep covers `n` fault sites (capped at
    /// [`LaneWidth::W8`]) — the auto choice of the PPSFP campaigns, which
    /// are width-invariant in their verdicts, so wider is purely fewer
    /// sweeps.
    #[must_use]
    pub fn for_sites(n: usize) -> Self {
        Self::ALL.into_iter().find(|w| n <= w.lanes()).unwrap_or(LaneWidth::W8)
    }

    /// Netlist-size heuristic for batch classification: the widest slab
    /// whose hot working set (three slabs per net: values, forced masks,
    /// forced values) still fits comfortably in a per-core L2. Tiny printed
    /// classifiers (hundreds of nets) always get [`LaneWidth::W8`]; very
    /// large netlists fall back toward [`LaneWidth::W1`], where the extra
    /// words would just thrash the cache for no occupancy win.
    #[must_use]
    pub fn auto_for_netlist(nl: &Netlist) -> Self {
        const BUDGET_BYTES: usize = 512 * 1024;
        let per_net_per_word = 3 * std::mem::size_of::<u64>();
        Self::ALL
            .into_iter()
            .rev()
            .find(|w| nl.num_nets() * per_net_per_word * w.words() <= BUDGET_BYTES)
            .unwrap_or(LaneWidth::W1)
    }
}

impl std::fmt::Display for LaneWidth {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.words())
    }
}

/// A mask with one bit set per active lane of a (possibly ragged) chunk.
#[inline]
#[must_use]
pub fn lane_mask(active: usize) -> u64 {
    debug_assert!((1..=LANES).contains(&active));
    if active >= LANES {
        !0
    } else {
        (1u64 << active) - 1
    }
}

/// A slab mask with one bit set per active lane of a (possibly ragged)
/// chunk of up to `64 * W` lanes.
#[inline]
#[must_use]
pub fn lane_mask_wide<const W: usize>(active: usize) -> [u64; W] {
    debug_assert!((1..=LANES * W).contains(&active));
    core::array::from_fn(|i| {
        let lo = i * LANES;
        if active >= lo + LANES {
            !0
        } else if active <= lo {
            0
        } else {
            (1u64 << (active - lo)) - 1
        }
    })
}

/// Number of set lanes in a slab mask.
#[inline]
#[must_use]
pub fn popcount_wide<const W: usize>(mask: &[u64; W]) -> u64 {
    let mut n = 0u64;
    for &w in mask {
        n += u64::from(w.count_ones());
    }
    n
}

/// Replicates one bit into all 64 lanes of one word.
#[inline]
fn broadcast(b: bool) -> u64 {
    if b {
        !0
    } else {
        0
    }
}

/// Replicates one bit into every lane of a slab.
#[inline]
fn broadcast_wide<const W: usize>(b: bool) -> [u64; W] {
    [broadcast(b); W]
}

/// A word-parallel cycle-based simulator over a borrowed [`Netlist`],
/// carrying `64 * W` packed test vectors per sweep.
///
/// The default `W = 1` is the original one-word engine; see the
/// [module docs](self) for the slab layout and batch semantics, and
/// [`LaneWidth`] for the runtime width knob callers dispatch over.
#[derive(Debug)]
pub struct BitSlicedSimulator<'nl, const W: usize = 1> {
    nl: &'nl Netlist,
    /// Topological order of combinational cells.
    order: Vec<CellId>,
    /// All sequential cells.
    regs: Vec<CellId>,
    /// Packed value slab of every net, one lane per bit (structure of
    /// arrays: the `W` words of one net are contiguous).
    words: Vec<[u64; W]>,
    /// Packed state slab of each register (parallel to `regs`).
    state: Vec<[u64; W]>,
    /// Scratch buffer for packed next-states (parallel to `regs`).
    next_scratch: Vec<[u64; W]>,
    /// Input port name -> bit nets (LSB first).
    input_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Output port name -> bit nets (LSB first).
    output_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Per-net toggle counters (disabled when empty).
    toggles: ToggleCounters,
    /// Clock cycles accounted so far (summed over active lanes).
    cycles: u64,
    /// Per-net slab mask of lanes pinned by
    /// [`BitSlicedSimulator::force_lanes`] (all-ones for a broadcast
    /// [`BitSlicedSimulator::force_net`]).
    forced_mask: Vec<[u64; W]>,
    /// Per-net pinned values in the lanes selected by `forced_mask`.
    forced_vals: Vec<[u64; W]>,
    /// Register index (into `regs`/`state`) driving each net, or
    /// `usize::MAX` for nets not driven by a sequential cell. Lets
    /// force/release target register state without scanning every register.
    reg_of_net: Vec<usize>,
    /// Combinational cell evaluations performed so far (each cell of each
    /// settle pass counts one, at every width — the work metric the
    /// cone-scheduled and event-driven modes exist to shrink).
    cell_evals: u64,
    /// Dirty-cell worklist state when event-driven sweeps are enabled
    /// ([`BitSlicedSimulator::set_event_driven`]); `None` runs full sweeps.
    events: Option<Events>,
}

/// The owned state of a [`BitSlicedSimulator`] with the netlist borrow
/// removed: schedule, slabs, register state, forced lanes, toggle counters,
/// cycle/eval accounting and the event-driven worklist.
///
/// A `BitSlicedSimulator<'nl, W>` borrows its netlist, so it cannot live
/// inside a struct that also owns the netlist (self-referential, and the
/// workspace forbids `unsafe`). Detaching breaks the borrow:
/// [`BitSlicedSimulator::detach`] moves every field here,
/// [`BitSlicedSimulator::reattach`] moves them back around any netlist of
/// the same shape. Both directions are pure moves — no allocation, no
/// re-settling, and crucially the worklist's clean/dirty flags survive, so
/// event-driven sweeps keep their cross-batch savings. [`crate::warm`]
/// builds the lifetime-free [`WarmSimulator`](crate::WarmSimulator) on top.
#[derive(Debug)]
pub struct DetachedSlab<const W: usize = 1> {
    num_nets: usize,
    num_cells: usize,
    order: Vec<CellId>,
    regs: Vec<CellId>,
    words: Vec<[u64; W]>,
    state: Vec<[u64; W]>,
    next_scratch: Vec<[u64; W]>,
    input_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    output_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    toggles: ToggleCounters,
    cycles: u64,
    forced_mask: Vec<[u64; W]>,
    forced_vals: Vec<[u64; W]>,
    reg_of_net: Vec<usize>,
    cell_evals: u64,
    events: Option<Events>,
}

impl<const W: usize> DetachedSlab<W> {
    /// Whether this state was detached from a netlist of this shape.
    #[must_use]
    pub fn matches(&self, nl: &Netlist) -> bool {
        self.num_nets == nl.num_nets() && self.num_cells == nl.num_cells()
    }

    /// Clock cycles accounted so far (carried across detach/reattach).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Combinational cell evaluations so far (carried across
    /// detach/reattach) — the work metric warm event-driven serving shrinks.
    #[must_use]
    pub fn cell_evals(&self) -> u64 {
        self.cell_evals
    }

    /// Whether the detached state runs event-driven sweeps when reattached.
    #[must_use]
    pub fn event_driven(&self) -> bool {
        self.events.is_some()
    }

    /// Snapshot of the switching activity accumulated so far.
    ///
    /// # Panics
    ///
    /// Panics if activity tracking was never enabled.
    #[must_use]
    pub fn activity(&self) -> ActivityReport {
        assert!(
            self.toggles.is_enabled(),
            "activity tracking not enabled; call enable_activity() first"
        );
        self.toggles.report(self.cycles)
    }
}

/// Worklist bookkeeping of the event-driven sweep mode: instead of
/// re-evaluating every combinational cell per settle pass, only cells at
/// least one of whose input slabs changed since their last evaluation are
/// visited, in topological-position order. Every site that mutates a net
/// slab outside evaluation (input driving, forcing/releasing, register
/// updates and resets, chunk collapse of partially forced nets) marks the
/// net's sink cells dirty, which is what keeps the skip bit-exact — see the
/// invariant on [`BitSlicedSimulator::set_event_driven`].
#[derive(Debug)]
struct Events {
    /// `net.index()` → positions (into `order`) of the net's combinational
    /// sink cells.
    sinks_of_net: Vec<Vec<u32>>,
    /// `cell.index()` → its position in `order` (`u32::MAX` for sequential
    /// cells, which are never on the worklist).
    pos_of_cell: Vec<u32>,
    /// Dirty-position bitmap: bit `p % 64` of word `p / 64` is set iff
    /// position `p` is queued. Setting is idempotent, so marking needs no
    /// dedup branch, and popping in ascending position is a trailing-zeros
    /// scan — the heap this replaced cost `O(log n)` pointer-chasing per
    /// push/pop, which at serving activity levels ate the sweep savings.
    words: Vec<u64>,
    /// One bit per `words` entry (`words[w] != 0`), so a pop touches at
    /// most a couple of cache lines regardless of netlist size.
    summary: Vec<u64>,
    /// Lowest summary index that might be non-zero: pops advance it lazily,
    /// marks pull it back. During a drain sinks are always downstream of
    /// the popped cell, so this almost never moves backwards.
    cursor: usize,
}

impl Events {
    fn new(nl: &Netlist, order: &[CellId]) -> Self {
        let mut pos_of_cell = vec![u32::MAX; nl.num_cells()];
        for (p, &c) in order.iter().enumerate() {
            pos_of_cell[c.index()] = p as u32;
        }
        let mut sinks_of_net: Vec<Vec<u32>> = vec![Vec::new(); nl.num_nets()];
        for (p, &c) in order.iter().enumerate() {
            for &inp in nl.cell(c).inputs() {
                let s = &mut sinks_of_net[inp.index()];
                if s.last() != Some(&(p as u32)) {
                    s.push(p as u32);
                }
            }
        }
        // Start all-dirty: the first settle is a full sweep, which makes
        // enabling the mode safe in any simulator state.
        let n = order.len();
        let mut words = vec![!0u64; n.div_ceil(64)];
        if let Some(last) = words.last_mut() {
            let tail = n % 64;
            if tail != 0 {
                *last = (1u64 << tail) - 1;
            }
        }
        let mut summary = vec![0u64; words.len().div_ceil(64).max(1)];
        for (w, &word) in words.iter().enumerate() {
            if word != 0 {
                summary[w / 64] |= 1u64 << (w % 64);
            }
        }
        Events { sinks_of_net, pos_of_cell, words, summary, cursor: 0 }
    }

    /// Queues one position (idempotent).
    #[inline]
    fn mark(&mut self, pos: u32) {
        let p = pos as usize;
        self.words[p / 64] |= 1u64 << (p % 64);
        let s = p / 4096;
        self.summary[s] |= 1u64 << ((p / 64) % 64);
        if s < self.cursor {
            self.cursor = s;
        }
    }

    /// Queues every combinational sink of a net whose slab just changed.
    #[inline]
    fn mark_sinks(&mut self, net: usize) {
        for i in 0..self.sinks_of_net[net].len() {
            self.mark(self.sinks_of_net[net][i]);
        }
    }

    /// Pops the lowest queued position, or `None` when the worklist is
    /// drained. Ascending-position order guarantees a cell runs after every
    /// dirty cell upstream of it, so one drain settles the core.
    #[inline]
    fn pop_min(&mut self) -> Option<u32> {
        while self.cursor < self.summary.len() {
            let s = self.summary[self.cursor];
            if s == 0 {
                self.cursor += 1;
                continue;
            }
            let wi = self.cursor * 64 + s.trailing_zeros() as usize;
            let word = self.words[wi];
            let bit = word.trailing_zeros() as usize;
            let rest = word & (word - 1);
            self.words[wi] = rest;
            if rest == 0 {
                self.summary[self.cursor] &= !(1u64 << (wi % 64));
            }
            return Some((wi * 64 + bit) as u32);
        }
        None
    }
}

/// The per-chunk cone schedule of a cone-scheduled PPSFP sweep: the subset
/// of the topological order downstream of the chunk's pinned fault sites,
/// plus the *frontier* — the nets feeding that subset from outside it, whose
/// fault-free values are loaded from a precomputed golden trajectory instead
/// of being recomputed. Built by [`BitSlicedSimulator::cone_schedule`],
/// consumed by [`BitSlicedSimulator::lanes_diverging_cone`].
#[derive(Debug)]
pub(crate) struct ConeSchedule {
    /// Positions (into `order`) of the cone's combinational cells, ascending
    /// — a valid topological order of the cone.
    comb: Vec<u32>,
    /// Indices (into `regs`) of the cone's sequential cells.
    regs: Vec<u32>,
    /// Nets read by cone cells but not driven by one, plus root (fault
    /// site) nets not driven by a cone cell: everything the cone consumes
    /// from the fault-free world. Loaded broadcast from the golden
    /// trajectory (forced lanes keep their pinned values).
    frontier: Vec<pe_netlist::NetId>,
    /// Net-indexed: true iff the net's slab is meaningful after a cone pass
    /// (cone-driven or frontier-loaded). Output bits outside this set are
    /// provably fault-free and are skipped by the divergence diff.
    valid_net: Vec<bool>,
}

impl ConeSchedule {
    /// Number of combinational cells a cone pass evaluates.
    pub(crate) fn comb_cells(&self) -> usize {
        self.comb.len()
    }
}

impl<'nl, const W: usize> BitSlicedSimulator<'nl, W> {
    /// Builds a bit-sliced simulator, scheduling the combinational core.
    ///
    /// Registers power on at their declared init values (broadcast to all
    /// lanes) and the combinational core is settled once with all primary
    /// inputs at 0, exactly like the scalar constructor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design's
    /// combinational core is cyclic.
    pub fn new(nl: &'nl Netlist) -> Result<Self, NetlistError> {
        let order = pe_netlist::graph::topo_order(nl)?;
        let regs: Vec<CellId> =
            nl.cells().filter(|(_, c)| c.kind().is_sequential()).map(|(id, _)| id).collect();
        let mut sim = Self::assemble(nl, order, regs);
        for (i, &r) in sim.regs.clone().iter().enumerate() {
            sim.state[i] = broadcast_wide(nl.cell(r).init());
            sim.words[nl.cell(r).output().index()] = sim.state[i];
        }
        sim.eval_lanes(&[!0; W]);
        Ok(sim)
    }

    /// Builds a simulator from an already-computed schedule, seeding every
    /// lane with the given (settled) scalar values and register state. Used
    /// by the scalar [`Simulator`](crate::Simulator) to route `run_batch`
    /// through the sliced engine without re-scheduling or re-settling.
    pub(crate) fn from_parts(
        nl: &'nl Netlist,
        order: Vec<CellId>,
        regs: Vec<CellId>,
        values: &[bool],
        state: &[bool],
        frozen: &[bool],
        track_activity: bool,
    ) -> Self {
        let mut sim = Self::assemble(nl, order, regs);
        for (w, &v) in sim.words.iter_mut().zip(values) {
            *w = broadcast_wide(v);
        }
        for (s, &v) in sim.state.iter_mut().zip(state) {
            *s = broadcast_wide(v);
        }
        for (i, &f) in frozen.iter().enumerate() {
            if f {
                sim.forced_mask[i] = [!0; W];
                sim.forced_vals[i] = sim.words[i];
            }
        }
        if track_activity {
            sim.toggles = ToggleCounters::enabled(nl.num_nets());
        }
        sim
    }

    fn assemble(nl: &'nl Netlist, order: Vec<CellId>, regs: Vec<CellId>) -> Self {
        let mut input_ports = HashMap::new();
        let mut output_ports = HashMap::new();
        for p in nl.ports() {
            match p.dir() {
                PortDir::Input => {
                    input_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
                PortDir::Output => {
                    output_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
            }
        }
        let mut words = vec![[0u64; W]; nl.num_nets()];
        words[nl.const1().index()] = [!0; W];
        let state = vec![[0u64; W]; regs.len()];
        let next_scratch = vec![[0u64; W]; regs.len()];
        let mut reg_of_net = vec![usize::MAX; nl.num_nets()];
        for (i, &r) in regs.iter().enumerate() {
            reg_of_net[nl.cell(r).output().index()] = i;
        }
        BitSlicedSimulator {
            nl,
            order,
            regs,
            words,
            state,
            next_scratch,
            input_ports,
            output_ports,
            toggles: ToggleCounters::disabled(),
            cycles: 0,
            forced_mask: vec![[0; W]; nl.num_nets()],
            forced_vals: vec![[0; W]; nl.num_nets()],
            reg_of_net,
            cell_evals: 0,
            events: None,
        }
    }

    /// Combinational cell evaluations performed since construction: each
    /// cell visited by each settle pass counts one, regardless of width.
    /// Full sweeps evaluate the whole scheduled core per pass; the
    /// cone-scheduled and event-driven modes exist to make this counter
    /// grow slower at identical outputs.
    #[must_use]
    pub fn cell_evals(&self) -> u64 {
        self.cell_evals
    }

    /// Number of combinational cells one full settle pass evaluates.
    #[must_use]
    pub fn scheduled_cells(&self) -> usize {
        self.order.len()
    }

    /// Switches the engine between full topological sweeps (the default)
    /// and **event-driven** sweeps: a dirty-cell worklist that only
    /// re-evaluates cells whose input slabs changed since their last
    /// evaluation, popping in topological-position order.
    ///
    /// The skip is bit-exact — outputs *and* toggle accounting — because the
    /// engine maintains the invariant *clean cell ⇒ stored output slab ==
    /// forced-merge(eval(stored input slabs))*: every mutation outside
    /// evaluation (driving inputs, forcing/releasing nets, register updates
    /// and resets, collapsing chunks with partially forced nets) marks the
    /// affected sinks dirty. Enabling starts all-dirty, so the first settle
    /// is one full sweep and the mode is safe to flip in any state. The
    /// payoff is proportional to batch inactivity: repeated or near-constant
    /// vectors leave most of the core clean.
    pub fn set_event_driven(&mut self, on: bool) {
        if on {
            self.events = Some(Events::new(self.nl, &self.order));
        } else {
            self.events = None;
        }
    }

    /// Whether event-driven sweeps are enabled.
    #[must_use]
    pub fn event_driven(&self) -> bool {
        self.events.is_some()
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Packed vectors one sweep of this simulator carries (`64 * W`).
    #[must_use]
    pub fn lanes(&self) -> usize {
        LANES * W
    }

    /// Enables per-net toggle counting (and clears any previous counts).
    pub fn enable_activity(&mut self) {
        self.toggles = ToggleCounters::enabled(self.nl.num_nets());
        self.cycles = 0;
    }

    /// Number of clock cycles accounted so far, summed over active lanes so
    /// the total matches what a serial simulation of the same batch would
    /// report.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pins a net to a constant in every lane: evaluation and clocking will
    /// never change it until [`BitSlicedSimulator::release_net`]. This is
    /// the force/release mechanism fault campaigns use to reuse one
    /// scheduled simulator across all fault sites.
    pub fn force_net(&mut self, net: pe_netlist::NetId, value: bool) {
        self.force_lanes(net, broadcast_wide(value), [!0; W]);
    }

    /// Pins a net in a single lane (lane `64*i + l` is bit `l` of slab word
    /// `i`) — the per-site convenience the PPSFP campaigns use to pack one
    /// fault site per lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64 * W`.
    pub fn force_lane(&mut self, net: pe_netlist::NetId, lane: usize, value: bool) {
        assert!(lane < LANES * W, "lane {lane} out of range for width {W}");
        let mut vals = [0u64; W];
        let mut mask = [0u64; W];
        mask[lane / LANES] = 1u64 << (lane % LANES);
        if value {
            vals[lane / LANES] = 1u64 << (lane % LANES);
        }
        self.force_lanes(net, vals, mask);
    }

    /// Pins a net per lane: in every lane selected by `mask` the net is held
    /// at the corresponding bit of `values`; unselected lanes keep evaluating
    /// normally. Pinned lanes are re-merged after every cell evaluation and
    /// register update, so `64 * W` *different* faulty machines can tick in
    /// lockstep in one slab — the PPSFP mechanism behind
    /// [`crate::faults::fault_campaign_comb_ppsfp`] and
    /// [`crate::faults::fault_campaign_seq_ppsfp`]. Repeated calls merge:
    /// forcing the same net in different lanes (e.g. its stuck-at-0 and
    /// stuck-at-1 sites packed into one chunk) accumulates.
    pub fn force_lanes(&mut self, net: pe_netlist::NetId, values: [u64; W], mask: [u64; W]) {
        let i = net.index();
        let old = self.words[i];
        for w in 0..W {
            self.forced_mask[i][w] |= mask[w];
            self.forced_vals[i][w] = (self.forced_vals[i][w] & !mask[w]) | (values[w] & mask[w]);
            self.words[i][w] = (self.words[i][w] & !mask[w]) | (values[w] & mask[w]);
        }
        let r = self.reg_of_net[i];
        if r != usize::MAX {
            for w in 0..W {
                self.state[r][w] = (self.state[r][w] & !mask[w]) | (values[w] & mask[w]);
            }
        }
        if let Some(ev) = &mut self.events {
            // The pin overrides the net's own evaluation too, so the driver
            // must re-merge on its next visit, not only the sinks.
            if let pe_netlist::Driver::Cell(c) = self.nl.net(net).driver() {
                let p = ev.pos_of_cell[c.index()];
                if p != u32::MAX {
                    ev.mark(p);
                }
            }
            if self.words[i] != old {
                ev.mark_sinks(i);
            }
        }
    }

    /// Releases a pinned net in every lane (its next evaluation recomputes
    /// it normally). A released *register* output is restored to its
    /// power-on init value — not left at the stale forced value — so a
    /// post-campaign batch on a sequential design starts from sane state
    /// (combinational nets need no restore: the next settle recomputes
    /// them).
    pub fn release_net(&mut self, net: pe_netlist::NetId) {
        let i = net.index();
        if self.forced_mask[i] == [0; W] {
            return;
        }
        let old = self.words[i];
        self.forced_mask[i] = [0; W];
        self.forced_vals[i] = [0; W];
        let r = self.reg_of_net[i];
        if r != usize::MAX {
            let init = broadcast_wide(self.nl.cell(self.regs[r]).init());
            self.state[r] = init;
            self.words[i] = init;
        }
        if let Some(ev) = &mut self.events {
            // A released combinational net must be recomputed by its driver;
            // a released register output may have jumped back to init.
            if let pe_netlist::Driver::Cell(c) = self.nl.net(net).driver() {
                let p = ev.pos_of_cell[c.index()];
                if p != u32::MAX {
                    ev.mark(p);
                }
            }
            if self.words[i] != old {
                ev.mark_sinks(i);
            }
        }
    }

    /// Snapshot of the accumulated switching activity.
    ///
    /// # Panics
    ///
    /// Panics if activity tracking was never enabled.
    #[must_use]
    pub fn activity(&self) -> ActivityReport {
        assert!(
            self.toggles.is_enabled(),
            "activity tracking not enabled; call enable_activity() first"
        );
        self.toggles.report(self.cycles)
    }

    /// Writes the carried serial value of every net and register back into
    /// scalar storage (the batch-glue counterpart of
    /// [`BitSlicedSimulator::from_parts`]). Slabs are broadcasts between
    /// chunks, so lane 0 is the carried value.
    pub(crate) fn carry_into(&self, values: &mut [bool], state: &mut [bool]) {
        for (v, w) in values.iter_mut().zip(&self.words) {
            *v = w[0] & 1 == 1;
        }
        for (s, w) in state.iter_mut().zip(&self.state) {
            *s = w[0] & 1 == 1;
        }
    }

    /// The raw toggle accumulator (for merging back into a scalar owner).
    pub(crate) fn toggle_counters(&self) -> &ToggleCounters {
        &self.toggles
    }

    /// Splits the simulator into its owned state, dropping the netlist
    /// borrow — the storage half of the **warm-simulator** pattern (see
    /// [`crate::warm`]). Everything moves: slabs, register state, forced
    /// lanes, toggle counters, cycle/eval accounting *and* the event-driven
    /// worklist, so a later [`BitSlicedSimulator::reattach`] resumes exactly
    /// where this simulator left off — including which cells are still
    /// clean, which is what lets a serving worker skip re-settling state
    /// that did not change between batches.
    #[must_use]
    pub fn detach(self) -> DetachedSlab<W> {
        DetachedSlab {
            num_nets: self.nl.num_nets(),
            num_cells: self.nl.num_cells(),
            order: self.order,
            regs: self.regs,
            words: self.words,
            state: self.state,
            next_scratch: self.next_scratch,
            input_ports: self.input_ports,
            output_ports: self.output_ports,
            toggles: self.toggles,
            cycles: self.cycles,
            forced_mask: self.forced_mask,
            forced_vals: self.forced_vals,
            reg_of_net: self.reg_of_net,
            cell_evals: self.cell_evals,
            events: self.events,
        }
    }

    /// Rebuilds a simulator around detached state — the inverse of
    /// [`BitSlicedSimulator::detach`]. This is a pure move (no allocation,
    /// no re-settling), so attaching per batch costs nothing next to the
    /// batch itself.
    ///
    /// # Panics
    ///
    /// Panics if `nl` does not have the net/cell counts the state was
    /// detached with. This is a shape check, not a full connectivity
    /// fingerprint: the warm path reattaches the *same* long-lived netlist
    /// every batch, and the full fingerprint was already paid once at
    /// [`Simulator::with_schedule`](crate::Simulator::with_schedule).
    #[must_use]
    pub fn reattach(nl: &Netlist, slab: DetachedSlab<W>) -> BitSlicedSimulator<'_, W> {
        assert!(
            slab.matches(nl),
            "detached slab ({} nets / {} cells) does not fit netlist {:?} ({} nets / {} cells)",
            slab.num_nets,
            slab.num_cells,
            nl.name(),
            nl.num_nets(),
            nl.num_cells()
        );
        BitSlicedSimulator {
            nl,
            order: slab.order,
            regs: slab.regs,
            words: slab.words,
            state: slab.state,
            next_scratch: slab.next_scratch,
            input_ports: slab.input_ports,
            output_ports: slab.output_ports,
            toggles: slab.toggles,
            cycles: slab.cycles,
            forced_mask: slab.forced_mask,
            forced_vals: slab.forced_vals,
            reg_of_net: slab.reg_of_net,
            cell_evals: slab.cell_evals,
            events: slab.events,
        }
    }

    // ---- packed kernel ---------------------------------------------------

    /// One lane-parallel settle pass: every combinational cell evaluated as
    /// `W` bitwise ops, toggles accounted per lane against the stored slab
    /// (masked, so ragged lanes never leak into activity).
    fn eval_lanes(&mut self, mask: &[u64; W]) {
        if self.events.is_some() {
            return self.eval_worklist(mask, false);
        }
        let track = self.toggles.is_enabled();
        let mut ins = [[0u64; W]; 3];
        for idx in 0..self.order.len() {
            let cell = self.nl.cell(self.order[idx]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed_wide::<W>(&ins[..cell.inputs().len()]);
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    new[w] = (new[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            let old = self.words[out];
            if new != old {
                if track {
                    let diff: [u64; W] = core::array::from_fn(|w| (new[w] ^ old[w]) & mask[w]);
                    self.toggles.bump_packed_wide(out, &diff);
                }
                self.words[out] = new;
            }
        }
        self.cell_evals += self.order.len() as u64;
    }

    /// A settle pass with *serial* toggle accounting for combinational
    /// batches: lane `l` is compared against lane `l-1` (lane 0 of word `i`
    /// against bit 63 of word `i-1`, lane 0 of word 0 against the carried
    /// broadcast bit), reproducing exactly the adjacent-vector toggle
    /// sequence of a serial loop across the whole slab.
    fn settle_serial(&mut self, mask: &[u64; W]) {
        if self.events.is_some() {
            return self.eval_worklist(mask, true);
        }
        let track = self.toggles.is_enabled();
        let mut ins = [[0u64; W]; 3];
        for idx in 0..self.order.len() {
            let cell = self.nl.cell(self.order[idx]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed_wide::<W>(&ins[..cell.inputs().len()]);
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    new[w] = (new[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            if track {
                let mut carry = self.words[out][0] & 1;
                let mut diff = [0u64; W];
                for w in 0..W {
                    diff[w] = (new[w] ^ ((new[w] << 1) | carry)) & mask[w];
                    carry = new[w] >> 63;
                }
                self.toggles.bump_packed_wide(out, &diff);
            }
            self.words[out] = new;
        }
        self.cell_evals += self.order.len() as u64;
    }

    /// The event-driven settle shared by [`BitSlicedSimulator::eval_lanes`]
    /// and [`BitSlicedSimulator::settle_serial`]: drains the dirty worklist
    /// in ascending topological position, re-queueing the sinks of every
    /// changed output. `serial` selects the serial (adjacent-lane) toggle
    /// formula of `settle_serial` over the slab-difference formula of
    /// `eval_lanes`.
    ///
    /// Skipping a clean cell is exact under both formulas: clean means its
    /// recomputation would reproduce the stored slab, so the slab-difference
    /// contribution is zero; and between chunks every slab is a broadcast,
    /// so the serial formula over an unchanged broadcast is zero as well.
    fn eval_worklist(&mut self, mask: &[u64; W], serial: bool) {
        let track = self.toggles.is_enabled();
        let mut ins = [[0u64; W]; 3];
        let mut ev = self.events.take().expect("eval_worklist requires event mode");
        while let Some(p) = ev.pop_min() {
            let idx = p as usize;
            let cell = self.nl.cell(self.order[idx]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed_wide::<W>(&ins[..cell.inputs().len()]);
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    new[w] = (new[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            self.cell_evals += 1;
            let old = self.words[out];
            if serial {
                if track {
                    let mut carry = old[0] & 1;
                    let mut diff = [0u64; W];
                    for w in 0..W {
                        diff[w] = (new[w] ^ ((new[w] << 1) | carry)) & mask[w];
                        carry = new[w] >> 63;
                    }
                    self.toggles.bump_packed_wide(out, &diff);
                }
                self.words[out] = new;
                if new != old {
                    ev.mark_sinks(out);
                }
            } else if new != old {
                if track {
                    let diff: [u64; W] = core::array::from_fn(|w| (new[w] ^ old[w]) & mask[w]);
                    self.toggles.bump_packed_wide(out, &diff);
                }
                self.words[out] = new;
                ev.mark_sinks(out);
            }
        }
        self.events = Some(ev);
    }

    /// One clock cycle for all active lanes: settle, capture packed
    /// next-states, update registers, settle again — the lane-parallel
    /// mirror of [`Simulator::tick`](crate::Simulator::tick). The next-state
    /// capture reuses a persistent scratch buffer: this runs once per clock
    /// tick of every sequential batch and campaign.
    fn tick_lanes(&mut self, mask: &[u64; W]) {
        self.eval_lanes(mask);
        let track = self.toggles.is_enabled();
        let nl = self.nl;
        let mut ins = [[0u64; W]; 3];
        for i in 0..self.regs.len() {
            let cell = nl.cell(self.regs[i]);
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            self.next_scratch[i] = cell
                .kind()
                .next_state_packed_wide::<W>(&ins[..cell.inputs().len()], &self.state[i]);
        }
        for i in 0..self.regs.len() {
            let out = nl.cell(self.regs[i]).output().index();
            let old = self.words[out];
            let mut next = self.next_scratch[i];
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    next[w] = (next[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            if old != next {
                if track {
                    let diff: [u64; W] = core::array::from_fn(|w| (old[w] ^ next[w]) & mask[w]);
                    self.toggles.bump_packed_wide(out, &diff);
                }
                self.words[out] = next;
                if let Some(ev) = &mut self.events {
                    ev.mark_sinks(out);
                }
            }
            self.state[i] = next;
        }
        self.eval_lanes(mask);
    }

    /// Resets every register to its power-on init value in all lanes except
    /// the ones pinned by [`BitSlicedSimulator::force_lanes`], which keep
    /// their forced values — the lane-aware per-classification reset shared
    /// by [`BitSlicedSimulator::run_workload_seq_reset`] and the PPSFP
    /// campaign driver.
    fn reset_regs_lanes(&mut self) {
        for i in 0..self.regs.len() {
            let cell = self.nl.cell(self.regs[i]);
            let out = cell.output().index();
            let init = broadcast(cell.init());
            let fm = &self.forced_mask[out];
            let fv = &self.forced_vals[out];
            let old = self.words[out];
            for w in 0..W {
                self.state[i][w] = (init & !fm[w]) | (fv[w] & fm[w]);
            }
            self.words[out] = self.state[i];
            if self.words[out] != old {
                if let Some(ev) = &mut self.events {
                    ev.mark_sinks(out);
                }
            }
        }
    }

    /// Collapses every slab (and register) to a broadcast of lane `lane`,
    /// establishing the between-chunk invariant that the carried serial
    /// value occupies all lanes. Lanes pinned by
    /// [`BitSlicedSimulator::force_lanes`] are re-merged afterwards so a
    /// collapse never un-pins them.
    fn collapse_to_lane(&mut self, lane: usize) {
        let (wi, bi) = (lane / LANES, lane % LANES);
        for (i, w) in self.words.iter_mut().enumerate() {
            let b = broadcast((w[wi] >> bi) & 1 == 1);
            let fm = &self.forced_mask[i];
            let fv = &self.forced_vals[i];
            for k in 0..W {
                w[k] = (b & !fm[k]) | (fv[k] & fm[k]);
            }
        }
        // Collapsing preserves the clean-cell invariant lane-wise: every net
        // becomes the broadcast of lane `lane`, and a clean cell's broadcast
        // output is exactly its evaluation of the broadcast inputs — except
        // where a *partially* forced net mixes the pinned value into the
        // collapsed lane. Those nets (never present on the serving path,
        // which only pins whole nets) get their driver and sinks re-queued.
        if let Some(ev) = &mut self.events {
            for (id, net) in self.nl.nets() {
                let i = id.index();
                let fm = &self.forced_mask[i];
                if *fm == [0; W] || *fm == [!0; W] {
                    continue;
                }
                if let pe_netlist::Driver::Cell(c) = net.driver() {
                    let p = ev.pos_of_cell[c.index()];
                    if p != u32::MAX {
                        ev.mark(p);
                    }
                }
                ev.mark_sinks(i);
            }
        }
        for (r, s) in self.state.iter_mut().enumerate() {
            let out = self.nl.cell(self.regs[r]).output().index();
            let b = broadcast((s[wi] >> bi) & 1 == 1);
            let fm = &self.forced_mask[out];
            let fv = &self.forced_vals[out];
            for k in 0..W {
                s[k] = (b & !fm[k]) | (fv[k] & fm[k]);
            }
        }
    }

    // ---- lane I/O --------------------------------------------------------

    /// Drives an input port with one integer per lane (two's complement,
    /// LSB first). Lanes beyond `values.len()` are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, more than `64 * W` values are
    /// given, or a value does not fit the port width.
    pub fn set_input_lanes(&mut self, port: &str, values: &[i64]) {
        let nets = self
            .input_ports
            .get(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"))
            .clone();
        assert!(values.len() <= LANES * W, "more than {} lanes driven on port {port}", LANES * W);
        let w = nets.len() as u32;
        assert!(w <= 63, "port {port} too wide");
        let min = -(1i64 << (w - 1));
        let max = (1i64 << w) - 1;
        for &v in values {
            assert!(v >= min && v <= max, "value {v} does not fit {w}-bit port {port}");
        }
        for (j, &net) in nets.iter().enumerate() {
            let mut slab = [0u64; W];
            for (l, &v) in values.iter().enumerate() {
                slab[l / LANES] |= (((v >> j) & 1) as u64) << (l % LANES);
            }
            if self.words[net.index()] != slab {
                self.words[net.index()] = slab;
                if let Some(ev) = &mut self.events {
                    ev.mark_sinks(net.index());
                }
            }
        }
    }

    /// Reads an output port of one lane as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 63 bits.
    #[must_use]
    pub fn output_unsigned_lane(&self, port: &str, lane: usize) -> i64 {
        let bits =
            self.output_ports.get(port).unwrap_or_else(|| panic!("no output port named {port:?}"));
        assert!(bits.len() <= 63, "port {port} too wide");
        let (wi, bi) = (lane / LANES, lane % LANES);
        let mut v = 0i64;
        for (j, &b) in bits.iter().enumerate() {
            if (self.words[b.index()][wi] >> bi) & 1 == 1 {
                v |= 1i64 << j;
            }
        }
        v
    }

    /// Resolves the port list of a workload entry to nets and value ranges,
    /// done once per chunk/campaign so per-entry driving is pure bit packing.
    fn resolve_entry_ports(
        &self,
        first: &[(String, i64)],
    ) -> Vec<(usize, Vec<pe_netlist::NetId>, i64, i64)> {
        first
            .iter()
            .enumerate()
            .map(|(k, (p, _))| {
                let nets = self
                    .input_ports
                    .get(p)
                    .unwrap_or_else(|| panic!("no input port named {p:?}"))
                    .clone();
                let w = nets.len() as u32;
                assert!(w <= 63, "port {p} too wide");
                (k, nets, -(1i64 << (w - 1)), (1i64 << w) - 1)
            })
            .collect()
    }

    /// Packs one chunk of port-named workload entries into the lanes. Every
    /// entry must drive the same ports in the same order (campaign workloads
    /// always do); the port lists are resolved once per chunk from the first
    /// entry, so the per-lane loop is pure bit packing.
    fn drive_port_lanes(&mut self, chunk: &[Vec<(String, i64)>]) {
        let first = &chunk[0];
        let ports = self.resolve_entry_ports(first);
        // Event mode needs before/after comparison: the fill below is
        // zero-then-OR, so the old slabs are snapshotted first.
        let old: Vec<(usize, [u64; W])> = if self.events.is_some() {
            ports
                .iter()
                .flat_map(|(_, nets, _, _)| nets.iter().map(|n| (n.index(), self.words[n.index()])))
                .collect()
        } else {
            Vec::new()
        };
        for (_, nets, _, _) in &ports {
            for &net in nets {
                self.words[net.index()] = [0; W];
            }
        }
        for (l, entry) in chunk.iter().enumerate() {
            assert_eq!(
                entry.len(),
                first.len(),
                "workload entries must drive the same ports in the same order"
            );
            let (wi, bi) = (l / LANES, l % LANES);
            for &(k, ref nets, min, max) in &ports {
                let (p, v) = &entry[k];
                assert_eq!(
                    p, &first[k].0,
                    "workload entries must drive the same ports in the same order"
                );
                assert!(*v >= min && *v <= max, "value {v} does not fit port {p}");
                for (j, &net) in nets.iter().enumerate() {
                    self.words[net.index()][wi] |= (((v >> j) & 1) as u64) << bi;
                }
            }
        }
        if let Some(ev) = &mut self.events {
            for (i, before) in old {
                if self.words[i] != before {
                    ev.mark_sinks(i);
                }
            }
        }
    }

    // ---- batch drivers ---------------------------------------------------

    /// Word-parallel counterpart of
    /// [`Simulator::run_batch`](crate::Simulator::run_batch): element `j` of
    /// each vector drives input port `x{j}`, the observed output port is
    /// recorded per vector. See the [module docs](self) for the exact batch
    /// semantics (serial-identical for combinational batches, chunked
    /// streaming with `64 * W`-lane chunks for sequential ones).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, or vectors of unequal
    /// length.
    pub fn run_batch(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        self.run_batch_profiled(vectors, cycles_per_vector, out_port, None)
    }

    /// [`BitSlicedSimulator::run_batch`] with an optional [`SimProfile`] hook
    /// fed once at the end with the batch's phase decomposition: nanoseconds
    /// spent packing input lanes (*drive*), settling/ticking the core
    /// (*eval*), and reading outputs back out (*readout*), plus sweep and
    /// cell-evaluation counts. Phase clocks are only read when a hook is
    /// installed — `None` is exactly the unprofiled path.
    ///
    /// # Panics
    ///
    /// Same contract as [`BitSlicedSimulator::run_batch`].
    pub fn run_batch_profiled(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
        profile: Option<&dyn SimProfile>,
    ) -> BatchResult {
        let timing = profile.is_some();
        let start_cycles = self.cycles;
        let start_evals = self.cell_evals;
        let (mut drive_ns, mut eval_ns, mut readout_ns) = (0u64, 0u64, 0u64);
        let mut sweeps = 0u64;
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut lane_vals = Vec::with_capacity(LANES * W);
        for chunk in vectors.chunks(LANES * W) {
            sweeps += 1;
            let t0 = timing.then(std::time::Instant::now);
            let active = chunk.len();
            let mask = lane_mask_wide::<W>(active);
            let m = chunk[0].len();
            for x in chunk {
                assert_eq!(x.len(), m, "all vectors in a batch must have the same arity");
            }
            for j in 0..m {
                lane_vals.clear();
                lane_vals.extend(chunk.iter().map(|x| x[j]));
                self.set_input_lanes(&format!("x{j}"), &lane_vals);
            }
            let t1 = timing.then(std::time::Instant::now);
            if cycles_per_vector == 0 {
                self.settle_serial(&mask);
                self.cycles += active as u64;
            } else {
                for _ in 0..cycles_per_vector {
                    self.tick_lanes(&mask);
                }
                self.cycles += active as u64 * cycles_per_vector;
            }
            let t2 = timing.then(std::time::Instant::now);
            for l in 0..active {
                outputs.push(self.output_unsigned_lane(out_port, l));
            }
            self.collapse_to_lane(active - 1);
            if let (Some(t0), Some(t1), Some(t2)) = (t0, t1, t2) {
                drive_ns += (t1 - t0).as_nanos() as u64;
                eval_ns += (t2 - t1).as_nanos() as u64;
                readout_ns += t2.elapsed().as_nanos() as u64;
            }
        }
        if let Some(p) = profile {
            p.on_batch(&SimBatch {
                lanes: vectors.len(),
                lane_words: W,
                sweeps,
                cycles: self.cycles - start_cycles,
                cell_evals: self.cell_evals - start_evals,
                drive_ns,
                eval_ns,
                readout_ns,
                event_driven: self.events.is_some(),
            });
        }
        BatchResult { outputs, cycles: self.cycles - start_cycles }
    }

    /// Drives a port-named **combinational** workload through the design and
    /// returns the output port value per entry — the inner loop of
    /// [`crate::faults::fault_campaign_comb`], `64 * W` patterns per sweep.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values.
    pub fn run_workload_comb(
        &mut self,
        workload: &[Vec<(String, i64)>],
        out_port: &str,
    ) -> Vec<i64> {
        let mut out = Vec::with_capacity(workload.len());
        for chunk in workload.chunks(LANES * W) {
            let active = chunk.len();
            let mask = lane_mask_wide::<W>(active);
            self.drive_port_lanes(chunk);
            self.settle_serial(&mask);
            self.cycles += active as u64;
            for l in 0..active {
                out.push(self.output_unsigned_lane(out_port, l));
            }
            self.collapse_to_lane(active - 1);
        }
        out
    }

    /// Drives a port-named **sequential** workload where every entry starts
    /// from power-on register state (frozen nets stay pinned) and is clocked
    /// for `cycles_per_vector` ticks — the per-classification reset protocol
    /// of [`crate::faults::fault_campaign_seq`], `64 * W` classifications
    /// per sweep. Lanes are independent, so the whole chunk resets and ticks
    /// in lockstep.
    ///
    /// Activity tracking must be disabled: the per-entry reset makes toggle
    /// accounting meaningless here, and campaigns never enable it.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values,
    /// `cycles_per_vector == 0`, or enabled activity tracking.
    pub fn run_workload_seq_reset(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> Vec<i64> {
        assert!(cycles_per_vector >= 1, "sequential workloads need at least one cycle");
        assert!(
            !self.toggles.is_enabled(),
            "run_workload_seq_reset resets state per entry; activity accounting is undefined"
        );
        let mut out = Vec::with_capacity(workload.len());
        for chunk in workload.chunks(LANES * W) {
            let active = chunk.len();
            let mask = lane_mask_wide::<W>(active);
            self.reset_regs_lanes();
            self.drive_port_lanes(chunk);
            for _ in 0..cycles_per_vector {
                self.tick_lanes(&mask);
            }
            self.cycles += active as u64 * cycles_per_vector;
            for l in 0..active {
                out.push(self.output_unsigned_lane(out_port, l));
            }
            // Re-establish the between-chunk broadcast invariant so a later
            // run_batch on this simulator reads a coherent serial carry.
            self.collapse_to_lane(active - 1);
        }
        out
    }

    // ---- PPSFP drivers (one fault site per lane) -------------------------

    /// Drives one entry's value broadcast into every lane of its ports.
    fn drive_entry_broadcast(
        &mut self,
        ports: &[(usize, Vec<pe_netlist::NetId>, i64, i64)],
        first: &[(String, i64)],
        entry: &[(String, i64)],
    ) {
        assert_eq!(
            entry.len(),
            first.len(),
            "workload entries must drive the same ports in the same order"
        );
        for &(k, ref nets, min, max) in ports {
            let (p, v) = &entry[k];
            assert_eq!(
                p, &first[k].0,
                "workload entries must drive the same ports in the same order"
            );
            assert!(*v >= min && *v <= max, "value {v} does not fit port {p}");
            for (j, &net) in nets.iter().enumerate() {
                self.words[net.index()] = broadcast_wide((v >> j) & 1 == 1);
            }
        }
    }

    /// Slab mask of lanes whose current value of `out_port` differs from
    /// `golden` (compared over the port's bits, like
    /// [`BitSlicedSimulator::output_unsigned_lane`] per lane).
    fn output_diff_lanes(&self, out_bits: &[pe_netlist::NetId], golden: i64) -> [u64; W] {
        let mut diff = [0u64; W];
        for (j, &b) in out_bits.iter().enumerate() {
            let want = broadcast((golden >> j) & 1 == 1);
            let slab = &self.words[b.index()];
            for w in 0..W {
                diff[w] |= slab[w] ^ want;
            }
        }
        diff
    }

    /// PPSFP inner loop for **combinational** designs: every workload entry
    /// is driven *broadcast* across all lanes (each lane is one faulty
    /// machine, pinned per lane via [`BitSlicedSimulator::force_lanes`]) and
    /// compared against the fault-free `golden` response. Returns the slab
    /// mask of `watch` lanes whose output differed on at least one entry,
    /// early-exiting once every watched lane has diverged.
    ///
    /// Settled values are lane-wise pure functions of the (broadcast) inputs
    /// and the lane's pinned net, so lane `l`'s responses are exactly those
    /// of a scalar simulator with only fault `l` injected — which is what
    /// makes the campaign bit-identical to the rebuild-per-site oracle at
    /// every width.
    ///
    /// Cycle accounting: each driven entry counts one cycle per watched
    /// lane (one classification per faulty machine).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, `golden` shorter than
    /// the workload, or enabled activity tracking (lanes hold different
    /// machines; toggle accounting is undefined).
    pub fn lanes_diverging_comb(
        &mut self,
        workload: &[Vec<(String, i64)>],
        out_port: &str,
        golden: &[i64],
        watch: [u64; W],
    ) -> [u64; W] {
        self.lanes_diverging(workload, None, out_port, golden, watch)
    }

    /// PPSFP inner loop for **sequential** designs under the
    /// per-classification reset protocol: every workload entry resets the
    /// registers to power-on state (lanes pinned by
    /// [`BitSlicedSimulator::force_lanes`] keep their forced values), is
    /// driven broadcast and clocked for `cycles_per_vector` ticks, and the
    /// output is compared against the fault-free `golden` response — the
    /// `64 * W`-faulty-machines-in-lockstep counterpart of
    /// [`BitSlicedSimulator::run_workload_seq_reset`]. Returns the slab mask
    /// of `watch` lanes that diverged, early-exiting once all of them have.
    ///
    /// On return the registers are reset to power-on state again (pinned
    /// lanes still pinned): the run leaves every lane a different faulty
    /// machine, and a later batch on this simulator must not observe one
    /// lane's leftover register state.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, `cycles_per_vector ==
    /// 0`, a short `golden`, or enabled activity tracking.
    pub fn lanes_diverging_seq_reset(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles_per_vector: u64,
        out_port: &str,
        golden: &[i64],
        watch: [u64; W],
    ) -> [u64; W] {
        assert!(cycles_per_vector >= 1, "sequential workloads need at least one cycle");
        self.lanes_diverging(workload, Some(cycles_per_vector), out_port, golden, watch)
    }

    /// The shared PPSFP frame: `cycles` selects the per-entry step — `None`
    /// settles combinationally, `Some(c)` resets the registers and ticks
    /// `c` times.
    fn lanes_diverging(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles: Option<u64>,
        out_port: &str,
        golden: &[i64],
        watch: [u64; W],
    ) -> [u64; W] {
        assert!(
            !self.toggles.is_enabled(),
            "PPSFP lanes hold different machines; activity accounting is undefined"
        );
        assert!(
            self.events.is_none(),
            "PPSFP campaigns drive their own sweep schedule; disable event mode"
        );
        assert!(golden.len() >= workload.len(), "golden response shorter than the workload");
        if workload.is_empty() || watch == [0; W] {
            return [0; W];
        }
        let first = &workload[0];
        let ports = self.resolve_entry_ports(first);
        let out_bits = self
            .output_ports
            .get(out_port)
            .unwrap_or_else(|| panic!("no output port named {out_port:?}"))
            .clone();
        assert!(out_bits.len() <= 63, "port {out_port} too wide");
        let watched = popcount_wide(&watch);
        let mut diverged = [0u64; W];
        for (entry, &want) in workload.iter().zip(golden) {
            match cycles {
                None => {
                    self.drive_entry_broadcast(&ports, first, entry);
                    self.eval_lanes(&[!0; W]);
                    self.cycles += watched;
                }
                Some(c) => {
                    self.reset_regs_lanes();
                    self.drive_entry_broadcast(&ports, first, entry);
                    for _ in 0..c {
                        self.tick_lanes(&[!0; W]);
                    }
                    self.cycles += watched * c;
                }
            }
            let diff = self.output_diff_lanes(&out_bits, want);
            for w in 0..W {
                diverged[w] |= diff[w] & watch[w];
            }
            if diverged == watch {
                break;
            }
        }
        if cycles.is_some() {
            // Leave the registers at power-on instead of 64*W different
            // faulty machines' leftovers: non-forced registers would
            // otherwise stay lane-divergent after the campaign chunk, and
            // release_net only heals the *forced* nets.
            self.reset_regs_lanes();
        }
        diverged
    }

    // ---- cone-scheduled PPSFP (evaluate only downstream of the sites) ----

    /// Builds the cone schedule of one PPSFP chunk: the cells downstream of
    /// the chunk's pinned `roots` (per [`FanoutCones::cone`], register
    /// feedback included), split into combinational positions and register
    /// indices, plus the frontier nets the cone reads from the fault-free
    /// world.
    ///
    /// A net is *cone-driven* when its driver is in the cone; every other
    /// net holds its fault-free value in all lanes throughout the chunk —
    /// no pinned site can reach it — which is what makes loading the
    /// frontier from a golden trajectory exact. Root nets whose driver is
    /// outside the cone (the common case: the fault's upstream cell) join
    /// the frontier so the pinned lanes merge against golden values, and
    /// join `valid_net` so sites on dead-end nets wired straight to an
    /// output port are still observed by the divergence diff.
    pub(crate) fn cone_schedule(
        &self,
        cones: &FanoutCones,
        roots: &[pe_netlist::NetId],
    ) -> ConeSchedule {
        let in_cone = cones.cone(self.nl, roots);
        let mut cone_driven = vec![false; self.nl.num_nets()];
        let mut comb = Vec::new();
        for (p, &c) in self.order.iter().enumerate() {
            if in_cone[c.index()] {
                comb.push(p as u32);
                cone_driven[self.nl.cell(c).output().index()] = true;
            }
        }
        let mut regs = Vec::new();
        for (i, &r) in self.regs.iter().enumerate() {
            if in_cone[r.index()] {
                regs.push(i as u32);
                cone_driven[self.nl.cell(r).output().index()] = true;
            }
        }
        let mut valid_net = cone_driven.clone();
        let mut frontier = Vec::new();
        let mut queued = vec![false; self.nl.num_nets()];
        let mut add_frontier = |n: pe_netlist::NetId, frontier: &mut Vec<pe_netlist::NetId>| {
            let i = n.index();
            if !cone_driven[i] && !queued[i] {
                queued[i] = true;
                valid_net[i] = true;
                frontier.push(n);
            }
        };
        for &p in &comb {
            for &inp in self.nl.cell(self.order[p as usize]).inputs() {
                add_frontier(inp, &mut frontier);
            }
        }
        for &i in &regs {
            for &inp in self.nl.cell(self.regs[i as usize]).inputs() {
                add_frontier(inp, &mut frontier);
            }
        }
        for &r in roots {
            add_frontier(r, &mut frontier);
        }
        ConeSchedule { comb, regs, frontier, valid_net }
    }

    /// Loads every frontier net from one bit-packed golden state (bit
    /// `net.index()` of `state`), broadcast across the lanes with pinned
    /// lanes re-merged — the cone counterpart of driving an entry broadcast.
    fn load_frontier(&mut self, sched: &ConeSchedule, state: &[u64]) {
        for &n in &sched.frontier {
            let i = n.index();
            let b = broadcast((state[i / LANES] >> (i % LANES)) & 1 == 1);
            let fm = &self.forced_mask[i];
            let fv = &self.forced_vals[i];
            let w = &mut self.words[i];
            for k in 0..W {
                w[k] = (b & !fm[k]) | (fv[k] & fm[k]);
            }
        }
    }

    /// One settle pass over the cone's combinational cells only. Positions
    /// ascend, so this is a valid topological sweep of the cone; inputs from
    /// outside the cone were frontier-loaded.
    fn eval_cone(&mut self, sched: &ConeSchedule) {
        let mut ins = [[0u64; W]; 3];
        for &p in &sched.comb {
            let cell = self.nl.cell(self.order[p as usize]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed_wide::<W>(&ins[..cell.inputs().len()]);
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    new[w] = (new[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            self.words[out] = new;
        }
        self.cell_evals += sched.comb.len() as u64;
    }

    /// Resets the cone's registers to power-on init (pinned lanes keep
    /// their forced values). Non-cone registers need no reset: if the cone
    /// reads them their output nets are frontier-loaded, and the golden
    /// trajectory's first state *is* the post-reset state.
    fn reset_cone_regs(&mut self, sched: &ConeSchedule) {
        for &ri in &sched.regs {
            let i = ri as usize;
            let cell = self.nl.cell(self.regs[i]);
            let out = cell.output().index();
            let init = broadcast(cell.init());
            let fm = &self.forced_mask[out];
            let fv = &self.forced_vals[out];
            for w in 0..W {
                self.state[i][w] = (init & !fm[w]) | (fv[w] & fm[w]);
            }
            self.words[out] = self.state[i];
        }
    }

    /// One register update restricted to the cone's registers: capture
    /// packed next-states from the settled slabs, then apply with the
    /// forced-lane merge — the cone counterpart of the register phase of
    /// [`BitSlicedSimulator::tick_lanes`].
    fn update_cone_regs(&mut self, sched: &ConeSchedule) {
        let nl = self.nl;
        let mut ins = [[0u64; W]; 3];
        for &ri in &sched.regs {
            let i = ri as usize;
            let cell = nl.cell(self.regs[i]);
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            self.next_scratch[i] = cell
                .kind()
                .next_state_packed_wide::<W>(&ins[..cell.inputs().len()], &self.state[i]);
        }
        for &ri in &sched.regs {
            let i = ri as usize;
            let out = nl.cell(self.regs[i]).output().index();
            let mut next = self.next_scratch[i];
            let fm = &self.forced_mask[out];
            if *fm != [0; W] {
                let fv = &self.forced_vals[out];
                for w in 0..W {
                    next[w] = (next[w] & !fm[w]) | (fv[w] & fm[w]);
                }
            }
            self.words[out] = next;
            self.state[i] = next;
        }
    }

    /// Cone-scheduled PPSFP inner loop: the exact counterpart of
    /// [`BitSlicedSimulator::lanes_diverging_comb`] /
    /// [`BitSlicedSimulator::lanes_diverging_seq_reset`] that evaluates only
    /// the chunk's fanout cone. Per workload entry the frontier is loaded
    /// from the precomputed fault-free `traj` states (and for sequential
    /// designs the cone registers are reset, then capture/update/settle per
    /// cycle tracks the trajectory state by state), so every net outside the
    /// cone provably holds its golden value — the divergence diff therefore
    /// only inspects output bits in `valid_net`. Verdicts, early exit and
    /// cycle accounting are bit-identical to the full-sweep path.
    pub(crate) fn lanes_diverging_cone(
        &mut self,
        sched: &ConeSchedule,
        traj: &crate::faults::GoldenTrajectory,
        out_port: &str,
        golden: &[i64],
        watch: [u64; W],
    ) -> [u64; W] {
        assert!(
            !self.toggles.is_enabled(),
            "PPSFP lanes hold different machines; activity accounting is undefined"
        );
        assert!(
            self.events.is_none(),
            "PPSFP campaigns drive their own sweep schedule; disable event mode"
        );
        assert!(golden.len() >= traj.entries(), "golden response shorter than the workload");
        if traj.entries() == 0 || watch == [0; W] {
            return [0; W];
        }
        let out_bits = self
            .output_ports
            .get(out_port)
            .unwrap_or_else(|| panic!("no output port named {out_port:?}"))
            .clone();
        assert!(out_bits.len() <= 63, "port {out_port} too wide");
        // Only output bits the cone can reach (or frontier-loaded root
        // nets wired straight to the port) can diverge; the rest may hold
        // stale slabs and are provably golden anyway.
        let cone_bits: Vec<(usize, pe_netlist::NetId)> = out_bits
            .iter()
            .enumerate()
            .filter(|(_, b)| sched.valid_net[b.index()])
            .map(|(j, &b)| (j, b))
            .collect();
        let cycles = traj.cycles_per_entry();
        let watched = popcount_wide(&watch);
        let mut diverged = [0u64; W];
        for (e, &want) in golden.iter().enumerate().take(traj.entries()) {
            let states = traj.entry_states(e);
            match cycles {
                None => {
                    self.load_frontier(sched, &states[0]);
                    self.eval_cone(sched);
                    self.cycles += watched;
                }
                Some(c) => {
                    self.reset_cone_regs(sched);
                    self.load_frontier(sched, &states[0]);
                    self.eval_cone(sched);
                    for state in states.iter().take(c as usize + 1).skip(1) {
                        self.update_cone_regs(sched);
                        self.load_frontier(sched, state);
                        self.eval_cone(sched);
                    }
                    self.cycles += watched * c;
                }
            }
            let mut diff = [0u64; W];
            for &(j, b) in &cone_bits {
                let want_b = broadcast((want >> j) & 1 == 1);
                let slab = &self.words[b.index()];
                for w in 0..W {
                    diff[w] |= slab[w] ^ want_b;
                }
            }
            for w in 0..W {
                diverged[w] |= diff[w] & watch[w];
            }
            if diverged == watch {
                break;
            }
        }
        diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BatchMode, Simulator};
    use pe_netlist::Builder;

    fn full_adder_x() -> Netlist {
        let mut b = Builder::new("fa");
        let a = b.input("x0");
        let x = b.input("x1");
        let cin = b.input("x2");
        let s1 = b.xor2(a, x);
        let sum = b.xor2(s1, cin);
        let carry = b.maj3(a, x, cin);
        b.output("sum", sum);
        b.output("carry", carry);
        b.finish()
    }

    #[test]
    fn profiled_batches_feed_the_hook_and_match_unprofiled_outputs() {
        let nl = full_adder_x();
        let vectors: Vec<Vec<i64>> =
            (0..150).map(|i| vec![i & 1, (i >> 1) & 1, (i >> 2) & 1]).collect();
        let rec = std::sync::Arc::new(pe_obs::ProfileRecorder::new());

        let mut plain = Simulator::new(&nl).unwrap();
        let want = plain.run_batch(&vectors, 0, "sum");

        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_profile(Some(rec.clone()));
        let got = sim.run_batch(&vectors, 0, "sum");
        assert_eq!(got, want, "profiling must not change batch results");

        let s = rec.snapshot();
        assert_eq!(s.batches, 1);
        assert_eq!(s.lanes, 150);
        assert_eq!(s.sweeps, 3, "150 vectors at W1 = three 64-lane sweeps");
        assert_eq!(s.cycles, got.cycles);
        assert!(s.cell_evals > 0, "a comb settle spends cell evaluations");
        assert_eq!(s.event_batches, 0);

        // Event-driven batches are flagged, and their cell evaluations land
        // in the dirty-cell accumulator.
        let mut ev = Simulator::new(&nl).unwrap();
        ev.set_event_driven(true);
        ev.set_profile(Some(rec.clone()));
        let got_ev = ev.run_batch(&vectors, 0, "sum");
        assert_eq!(got_ev, want);
        let s2 = rec.snapshot();
        assert_eq!(s2.batches, 2);
        assert_eq!(s2.event_batches, 1);
        assert!(s2.event_cell_evals > 0);
    }

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), (1u64 << 63) - 1);
        assert_eq!(lane_mask(64), !0);
    }

    #[test]
    fn wide_lane_mask_straddles_word_boundaries() {
        assert_eq!(lane_mask_wide::<1>(64), [!0]);
        assert_eq!(lane_mask_wide::<2>(63), [(1u64 << 63) - 1, 0]);
        assert_eq!(lane_mask_wide::<2>(64), [!0, 0]);
        assert_eq!(lane_mask_wide::<2>(65), [!0, 1]);
        assert_eq!(lane_mask_wide::<4>(128), [!0, !0, 0, 0]);
        assert_eq!(lane_mask_wide::<4>(129), [!0, !0, 1, 0]);
        assert_eq!(lane_mask_wide::<8>(512), [!0; 8]);
        assert_eq!(lane_mask_wide::<8>(511), {
            let mut m = [!0u64; 8];
            m[7] = (1u64 << 63) - 1;
            m
        });
        assert_eq!(popcount_wide(&lane_mask_wide::<8>(300)), 300);
    }

    #[test]
    fn lane_width_knob_round_trips() {
        for w in LaneWidth::ALL {
            assert_eq!(LaneWidth::from_words(w.words()), Some(w));
            assert_eq!(LaneWidth::parse(&w.to_string()), Some(w));
            assert_eq!(LaneWidth::parse(&w.lanes().to_string()), Some(w));
            assert_eq!(w.lanes(), 64 * w.words());
        }
        assert_eq!(LaneWidth::parse("3"), None);
        assert_eq!(LaneWidth::from_words(16), None);
        assert_eq!(LaneWidth::default(), LaneWidth::W1);
        assert_eq!(LaneWidth::for_sites(1), LaneWidth::W1);
        assert_eq!(LaneWidth::for_sites(64), LaneWidth::W1);
        assert_eq!(LaneWidth::for_sites(65), LaneWidth::W2);
        assert_eq!(LaneWidth::for_sites(256), LaneWidth::W4);
        assert_eq!(LaneWidth::for_sites(257), LaneWidth::W8);
        assert_eq!(LaneWidth::for_sites(10_000), LaneWidth::W8);
        // A tiny netlist always earns the full cache-line slab.
        assert_eq!(LaneWidth::auto_for_netlist(&full_adder_x()), LaneWidth::W8);
    }

    #[test]
    fn comb_batch_matches_scalar_engine_exactly() {
        let nl = full_adder_x();
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();

        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 0, "sum");

        let mut sliced: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 0, "sum");

        assert_eq!(got, want);
        assert_eq!(sliced.activity(), scalar.activity());
    }

    #[test]
    fn wide_comb_batch_matches_narrow_engine_exactly() {
        // Combinational outputs *and* serial toggle accounting are
        // width-invariant: sweep every width over the same batch.
        let nl = full_adder_x();
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        let mut narrow = BitSlicedSimulator::<1>::new(&nl).unwrap();
        narrow.enable_activity();
        let want = narrow.run_batch(&vectors, 0, "sum");
        macro_rules! check {
            ($w:literal) => {
                let mut wide = BitSlicedSimulator::<'_, $w>::new(&nl).unwrap();
                wide.enable_activity();
                let got = wide.run_batch(&vectors, 0, "sum");
                assert_eq!(got, want, "W={} diverged", $w);
                assert_eq!(wide.activity(), narrow.activity(), "W={} toggles diverged", $w);
            };
        }
        check!(2);
        check!(4);
        check!(8);
    }

    #[test]
    fn forced_net_is_pinned_in_every_lane() {
        let nl = full_adder_x();
        let site = crate::faults::enumerate_fault_sites(&nl)[0];
        let mut sliced = BitSlicedSimulator::<'_, 2>::new(&nl).unwrap();
        sliced.force_net(site.net, true);
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        sliced.run_batch(&vectors, 0, "sum");
        assert_eq!(sliced.words[site.net.index()], [!0; 2], "stuck-at-1 must hold in all lanes");
        sliced.release_net(site.net);
        let healthy = sliced.run_batch(&vectors, 0, "sum");
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        assert_eq!(healthy.outputs, scalar.run_batch(&vectors, 0, "sum").outputs);
    }

    #[test]
    fn force_lanes_pins_only_the_masked_lanes() {
        // Pin `sum`'s driving net to 1 in lane 2 only: lanes 0/1/3.. keep
        // evaluating normally while lane 2 behaves as its own faulty machine.
        let nl = full_adder_x();
        let sum_net = nl.ports().iter().find(|p| p.name() == "sum").unwrap().bits()[0];
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        let mut healthy = BitSlicedSimulator::<1>::new(&nl).unwrap();
        let want = healthy.run_batch(&vectors, 0, "sum");

        let mut sliced = BitSlicedSimulator::<1>::new(&nl).unwrap();
        sliced.force_lanes(sum_net, [!0], [1 << 2]);
        let golden: Vec<i64> = want.outputs.clone();
        let diverged = sliced.lanes_diverging_comb(
            &(0..8)
                .map(|v| (0..3).map(|i| (format!("x{i}"), (v >> i) & 1)).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            "sum",
            &golden,
            [0b1111],
        );
        // Only lane 2 is faulty; sum=1 disagrees with golden on the four
        // even-parity vectors, so lane 2 must diverge and no other lane may.
        assert_eq!(diverged, [1 << 2]);
        sliced.release_net(sum_net);
        let got = sliced.run_batch(&vectors, 0, "sum");
        assert_eq!(got.outputs, want.outputs, "release must fully heal the lane");
    }

    #[test]
    fn force_lane_pins_across_word_boundaries() {
        // The same single-lane fault behaves identically whether the lane
        // lives in word 0 or word 3 of a wide slab.
        let nl = full_adder_x();
        let sum_net = nl.ports().iter().find(|p| p.name() == "sum").unwrap().bits()[0];
        let workload: Vec<Vec<(String, i64)>> = (0..8)
            .map(|v| (0..3).map(|i| (format!("x{i}"), (v >> i) & 1)).collect::<Vec<_>>())
            .collect();
        let mut healthy = BitSlicedSimulator::<1>::new(&nl).unwrap();
        let golden = healthy.run_workload_comb(&workload, "sum");

        let mut sliced = BitSlicedSimulator::<'_, 4>::new(&nl).unwrap();
        let lane = 3 * 64 + 17;
        sliced.force_lane(sum_net, lane, true);
        let watch = lane_mask_wide::<4>(256);
        let diverged = sliced.lanes_diverging_comb(&workload, "sum", &golden, watch);
        let mut want = [0u64; 4];
        want[3] = 1 << 17;
        assert_eq!(diverged, want, "only the forced lane may diverge");
    }

    #[test]
    fn force_lanes_merges_conflicting_values_per_lane() {
        let nl = full_adder_x();
        let site = crate::faults::enumerate_fault_sites(&nl)[0];
        let mut sliced = BitSlicedSimulator::<1>::new(&nl).unwrap();
        // Stuck-at-0 in lane 0, stuck-at-1 in lane 1 on the same net.
        sliced.force_lanes(site.net, [0], [1 << 0]);
        sliced.force_lanes(site.net, [!0], [1 << 1]);
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        sliced.run_batch(&vectors, 0, "sum");
        let w = sliced.words[site.net.index()][0];
        assert_eq!(w & 0b11, 0b10, "lane 0 pinned low, lane 1 pinned high");
    }

    #[test]
    fn ragged_chunk_never_leaks_garbage_lanes() {
        // A single vector (1 active lane of 512): totals must match a scalar
        // run exactly, proving masked lanes contribute nothing.
        let nl = full_adder_x();
        let vectors = vec![vec![1, 1, 0]];
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 0, "carry");
        let mut sliced = BitSlicedSimulator::<'_, 8>::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 0, "carry");
        assert_eq!(got, want);
        assert_eq!(sliced.activity().total_toggles(), scalar.activity().total_toggles());
        assert_eq!(sliced.cycles(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let nl = full_adder_x();
        let mut sliced: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let r = sliced.run_batch(&[], 0, "sum");
        assert!(r.outputs.is_empty());
        assert_eq!(r.cycles, 0);
        assert_eq!(sliced.activity().total_toggles(), 0);
    }

    #[test]
    fn sequential_chunk_streaming_matches_scalar_reference() {
        // q' = x0 XOR x1 through a register; outputs depend only on the
        // current vector, so chunked streaming agrees with a serial loop.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let vectors = vec![vec![1, 0], vec![1, 1], vec![0, 0], vec![0, 1]];

        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 2, "q");

        let mut sliced: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 2, "q");
        assert_eq!(got, want);
        assert_eq!(sliced.activity(), scalar.activity());
        assert_eq!(got.cycles, 8);
    }

    #[test]
    #[should_panic(expected = "same ports in the same order")]
    fn heterogeneous_workload_chunk_panics() {
        let nl = full_adder_x();
        let mut sliced: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        let workload = vec![
            vec![("x0".to_string(), 1), ("x1".to_string(), 0)],
            vec![("x1".to_string(), 1), ("x2".to_string(), 0)],
        ];
        let _ = sliced.run_workload_comb(&workload, "sum");
    }

    #[test]
    fn seq_reset_workload_restores_broadcast_invariant() {
        // After a reset-per-entry campaign run, a subsequent batch on the
        // same simulator must still agree with a fresh scalar reference:
        // the carry words may not stay lane-divergent.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sliced = BitSlicedSimulator::<'_, 2>::new(&nl).unwrap();
        let workload = vec![
            vec![("x0".to_string(), 1), ("x1".to_string(), 0)],
            vec![("x0".to_string(), 0), ("x1".to_string(), 1)],
            vec![("x0".to_string(), 1), ("x1".to_string(), 1)],
        ];
        let _ = sliced.run_workload_seq_reset(&workload, 1, "q");
        for w in &sliced.words {
            for &word in w {
                assert!(word == 0 || word == !0, "word {word:#x} not a broadcast after workload");
            }
        }
        let vectors = vec![vec![1, 0], vec![1, 1], vec![0, 1]];
        let got = sliced.run_batch(&vectors, 1, "q");
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        // Bring the scalar reference to the same carried state first.
        for (p, v) in &workload[2] {
            scalar.set_input(p, *v);
        }
        scalar.reset();
        scalar.tick();
        let want = scalar.run_batch(&vectors, 1, "q");
        assert_eq!(got.outputs, want.outputs);
    }

    #[test]
    fn event_driven_batch_matches_full_sweep_exactly() {
        // Outputs *and* serial toggle accounting must be bit-identical
        // between the worklist sweep and the dense sweep, comb and seq,
        // at narrow and wide slab widths.
        let comb = full_adder_x();
        let comb_vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let seq = b.finish();
        let seq_vectors = vec![vec![1, 0], vec![1, 1], vec![0, 0], vec![0, 1]];
        macro_rules! check {
            ($w:literal) => {
                let mut full = BitSlicedSimulator::<'_, $w>::new(&comb).unwrap();
                full.enable_activity();
                let want = full.run_batch(&comb_vectors, 0, "sum");
                let mut ev = BitSlicedSimulator::<'_, $w>::new(&comb).unwrap();
                ev.set_event_driven(true);
                ev.enable_activity();
                let got = ev.run_batch(&comb_vectors, 0, "sum");
                assert_eq!(got, want, "W={} comb diverged", $w);
                assert_eq!(ev.activity(), full.activity(), "W={} comb toggles diverged", $w);

                let mut full = BitSlicedSimulator::<'_, $w>::new(&seq).unwrap();
                full.enable_activity();
                let want = full.run_batch(&seq_vectors, 2, "q");
                let mut ev = BitSlicedSimulator::<'_, $w>::new(&seq).unwrap();
                ev.set_event_driven(true);
                ev.enable_activity();
                let got = ev.run_batch(&seq_vectors, 2, "q");
                assert_eq!(got, want, "W={} seq diverged", $w);
                assert_eq!(ev.activity(), full.activity(), "W={} seq toggles diverged", $w);
            };
        }
        check!(1);
        check!(2);
        check!(8);
    }

    #[test]
    fn event_driven_skips_clean_cells_on_repeated_batches() {
        // The first batch dirties everything (cold start); an identical
        // second batch leaves every input slab unchanged, so the worklist
        // must drain without re-evaluating the whole netlist.
        let nl = full_adder_x();
        let vectors = vec![vec![1, 0, 1]; 5];
        let mut ev: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        ev.set_event_driven(true);
        let first = ev.run_batch(&vectors, 0, "sum");
        let after_first = ev.cell_evals();
        let second = ev.run_batch(&vectors, 0, "sum");
        let delta = ev.cell_evals() - after_first;
        assert_eq!(first.outputs, second.outputs);
        assert!(
            delta < after_first,
            "repeat batch re-evaluated {delta} cells, cold start took {after_first}"
        );

        let mut full: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        full.run_batch(&vectors, 0, "sum");
        assert_eq!(after_first, full.cell_evals(), "cold start must cost a full sweep");
    }

    #[test]
    fn event_driven_tracks_force_and_release() {
        // force_lanes / release_net mutate net slabs behind the scheduler's
        // back; both must dirty the affected fanout so a worklist sweep
        // still agrees with a dense sweep.
        let nl = full_adder_x();
        let site = crate::faults::enumerate_fault_sites(&nl)[0];
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();

        let mut full = BitSlicedSimulator::<'_, 2>::new(&nl).unwrap();
        full.force_net(site.net, true);
        let want_forced = full.run_batch(&vectors, 0, "sum");
        full.release_net(site.net);
        let want_healed = full.run_batch(&vectors, 0, "sum");

        let mut ev = BitSlicedSimulator::<'_, 2>::new(&nl).unwrap();
        ev.set_event_driven(true);
        // Warm up so the net slabs are settled (worklist empty), *then*
        // inject the fault: the force itself must wake the fanout.
        ev.run_batch(&vectors, 0, "sum");
        ev.force_net(site.net, true);
        assert_eq!(ev.run_batch(&vectors, 0, "sum"), want_forced);
        ev.release_net(site.net);
        assert_eq!(ev.run_batch(&vectors, 0, "sum"), want_healed);
    }

    #[test]
    #[should_panic(expected = "activity accounting is undefined")]
    fn seq_reset_workload_rejects_activity() {
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sliced: BitSlicedSimulator<'_> = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let _ = sliced.run_workload_seq_reset(&[vec![("d".to_string(), 1)]], 1, "q");
    }
}
