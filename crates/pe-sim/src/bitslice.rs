//! Word-parallel bit-sliced simulation: 64 test vectors per machine word.
//!
//! The scalar [`Simulator`](crate::Simulator) stores one `bool` per net and
//! walks the netlist once per test vector — the single hottest loop behind
//! every Table-I grid run and fault campaign. [`BitSlicedSimulator`] packs up
//! to 64 vectors into one `u64` per net ("lanes"), so a topological sweep
//! evaluates every gate for the whole chunk with a single bitwise operation
//! per cell ([`pe_netlist::CellKind::eval_packed`]).
//!
//! # Lane layout
//!
//! Bit `l` of every packed word belongs to **lane** `l`, which simulates
//! vector `l` of the current chunk. A batch of `N` vectors is processed as
//! `ceil(N / 64)` chunks; the final chunk may be *ragged* (fewer than 64
//! active lanes) and is handled with a **lane mask** — a word with one bit
//! set per active lane. Values in masked-off lanes are garbage and are never
//! allowed to escape: activity accounting ANDs every XOR-difference with the
//! mask before popcounting, outputs are extracted per active lane only, and
//! the chunk-exit carry reads exactly the last active lane.
//!
//! # Batch semantics (shared with the scalar engine)
//!
//! Between chunks every word is a *broadcast* (all 64 lanes hold the same
//! bit): the serial value carried from the previous chunk.
//!
//! * **Combinational batches** (`cycles_per_vector == 0`): settled values are
//!   pure functions of the inputs, so lanes evaluate independently and the
//!   result is bit-identical to a caller-side serial loop. Toggle counts are
//!   serial-exact too: for each net the count of adjacent differences in the
//!   settled sequence `v_prev, v_0, v_1, …` is
//!   `popcount((w ^ ((w << 1) | carry)) & mask)` — lane `l` compares against
//!   lane `l-1`, lane 0 against the carried bit.
//! * **Sequential batches** (`cycles_per_vector == c > 0`): every lane starts
//!   the chunk from the chunk-entry net values and register state, all lanes
//!   tick `c` times in lockstep (packed register update via
//!   [`pe_netlist::CellKind::next_state_packed`]), and the last active lane's final
//!   values/state become the carry into the next chunk. The scalar engine
//!   implements this identical chunked-streaming contract
//!   ([`Simulator::run_batch`](crate::Simulator::run_batch) with
//!   [`BatchMode::Scalar`](crate::sim::BatchMode)), which is what makes
//!   bit-identity — outputs, per-net toggle counts, carried register state —
//!   testable exactly (see `tests/bitslice_differential.rs`).
//!
//! Fault campaigns reuse one `BitSlicedSimulator` across every fault site by
//! pinning nets with [`BitSlicedSimulator::force_net`] and releasing them
//! afterwards, instead of rebuilding and rescheduling a simulator per site
//! (see [`crate::faults`]).

use crate::activity::{ActivityReport, ToggleCounters};
use crate::sim::BatchResult;
use pe_netlist::{CellId, Netlist, NetlistError, PortDir};
use std::collections::HashMap;

/// Number of simulation lanes in one machine word.
pub const LANES: usize = 64;

/// A mask with one bit set per active lane of a (possibly ragged) chunk.
#[inline]
#[must_use]
pub fn lane_mask(active: usize) -> u64 {
    debug_assert!((1..=LANES).contains(&active));
    if active >= LANES {
        !0
    } else {
        (1u64 << active) - 1
    }
}

/// Replicates one bit into all 64 lanes.
#[inline]
fn broadcast(b: bool) -> u64 {
    if b {
        !0
    } else {
        0
    }
}

/// A word-parallel cycle-based simulator over a borrowed [`Netlist`].
///
/// See the [module docs](self) for the lane layout and batch semantics.
#[derive(Debug)]
pub struct BitSlicedSimulator<'nl> {
    nl: &'nl Netlist,
    /// Topological order of combinational cells.
    order: Vec<CellId>,
    /// All sequential cells.
    regs: Vec<CellId>,
    /// Packed value of every net, one lane per bit.
    words: Vec<u64>,
    /// Packed state of each register (parallel to `regs`).
    state: Vec<u64>,
    /// Scratch buffer for packed next-states (parallel to `regs`).
    next_scratch: Vec<u64>,
    /// Input port name -> bit nets (LSB first).
    input_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Output port name -> bit nets (LSB first).
    output_ports: HashMap<String, Vec<pe_netlist::NetId>>,
    /// Per-net toggle counters (disabled when empty).
    toggles: ToggleCounters,
    /// Clock cycles accounted so far (summed over active lanes).
    cycles: u64,
    /// Per-net mask of lanes pinned by [`BitSlicedSimulator::force_lanes`]
    /// (all-ones for a broadcast [`BitSlicedSimulator::force_net`]).
    forced_mask: Vec<u64>,
    /// Per-net pinned values in the lanes selected by `forced_mask`.
    forced_vals: Vec<u64>,
    /// Register index (into `regs`/`state`) driving each net, or
    /// `usize::MAX` for nets not driven by a sequential cell. Lets
    /// force/release target register state without scanning every register.
    reg_of_net: Vec<usize>,
}

impl<'nl> BitSlicedSimulator<'nl> {
    /// Builds a bit-sliced simulator, scheduling the combinational core.
    ///
    /// Registers power on at their declared init values (broadcast to all
    /// lanes) and the combinational core is settled once with all primary
    /// inputs at 0, exactly like the scalar constructor.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::CombinationalCycle`] if the design's
    /// combinational core is cyclic.
    pub fn new(nl: &'nl Netlist) -> Result<Self, NetlistError> {
        let order = pe_netlist::graph::topo_order(nl)?;
        let regs: Vec<CellId> =
            nl.cells().filter(|(_, c)| c.kind().is_sequential()).map(|(id, _)| id).collect();
        let mut sim = Self::assemble(nl, order, regs);
        for (i, &r) in sim.regs.clone().iter().enumerate() {
            sim.state[i] = broadcast(nl.cell(r).init());
            sim.words[nl.cell(r).output().index()] = sim.state[i];
        }
        sim.eval_lanes(!0);
        Ok(sim)
    }

    /// Builds a simulator from an already-computed schedule, seeding every
    /// lane with the given (settled) scalar values and register state. Used
    /// by the scalar [`Simulator`](crate::Simulator) to route `run_batch`
    /// through the sliced engine without re-scheduling or re-settling.
    pub(crate) fn from_parts(
        nl: &'nl Netlist,
        order: Vec<CellId>,
        regs: Vec<CellId>,
        values: &[bool],
        state: &[bool],
        frozen: &[bool],
        track_activity: bool,
    ) -> Self {
        let mut sim = Self::assemble(nl, order, regs);
        for (w, &v) in sim.words.iter_mut().zip(values) {
            *w = broadcast(v);
        }
        for (s, &v) in sim.state.iter_mut().zip(state) {
            *s = broadcast(v);
        }
        for (i, &f) in frozen.iter().enumerate() {
            if f {
                sim.forced_mask[i] = !0;
                sim.forced_vals[i] = sim.words[i];
            }
        }
        if track_activity {
            sim.toggles = ToggleCounters::enabled(nl.num_nets());
        }
        sim
    }

    fn assemble(nl: &'nl Netlist, order: Vec<CellId>, regs: Vec<CellId>) -> Self {
        let mut input_ports = HashMap::new();
        let mut output_ports = HashMap::new();
        for p in nl.ports() {
            match p.dir() {
                PortDir::Input => {
                    input_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
                PortDir::Output => {
                    output_ports.insert(p.name().to_owned(), p.bits().to_vec());
                }
            }
        }
        let mut words = vec![0u64; nl.num_nets()];
        words[nl.const1().index()] = !0;
        let state = vec![0u64; regs.len()];
        let next_scratch = vec![0u64; regs.len()];
        let mut reg_of_net = vec![usize::MAX; nl.num_nets()];
        for (i, &r) in regs.iter().enumerate() {
            reg_of_net[nl.cell(r).output().index()] = i;
        }
        BitSlicedSimulator {
            nl,
            order,
            regs,
            words,
            state,
            next_scratch,
            input_ports,
            output_ports,
            toggles: ToggleCounters::disabled(),
            cycles: 0,
            forced_mask: vec![0; nl.num_nets()],
            forced_vals: vec![0; nl.num_nets()],
            reg_of_net,
        }
    }

    /// The netlist under simulation.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.nl
    }

    /// Enables per-net toggle counting (and clears any previous counts).
    pub fn enable_activity(&mut self) {
        self.toggles = ToggleCounters::enabled(self.nl.num_nets());
        self.cycles = 0;
    }

    /// Number of clock cycles accounted so far, summed over active lanes so
    /// the total matches what a serial simulation of the same batch would
    /// report.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Pins a net to a constant in every lane: evaluation and clocking will
    /// never change it until [`BitSlicedSimulator::release_net`]. This is
    /// the force/release mechanism fault campaigns use to reuse one
    /// scheduled simulator across all fault sites.
    pub fn force_net(&mut self, net: pe_netlist::NetId, value: bool) {
        self.force_lanes(net, broadcast(value), !0);
    }

    /// Pins a net per lane: in every lane selected by `mask` the net is held
    /// at the corresponding bit of `values`; unselected lanes keep evaluating
    /// normally. Pinned lanes are re-merged after every cell evaluation and
    /// register update, so 64 *different* faulty machines can tick in
    /// lockstep in one word — the PPSFP mechanism behind
    /// [`crate::faults::fault_campaign_comb_ppsfp`] and
    /// [`crate::faults::fault_campaign_seq_ppsfp`]. Repeated calls merge:
    /// forcing the same net in different lanes (e.g. its stuck-at-0 and
    /// stuck-at-1 sites packed into one chunk) accumulates.
    pub fn force_lanes(&mut self, net: pe_netlist::NetId, values: u64, mask: u64) {
        let i = net.index();
        self.forced_mask[i] |= mask;
        self.forced_vals[i] = (self.forced_vals[i] & !mask) | (values & mask);
        self.words[i] = (self.words[i] & !mask) | (values & mask);
        let r = self.reg_of_net[i];
        if r != usize::MAX {
            self.state[r] = (self.state[r] & !mask) | (values & mask);
        }
    }

    /// Releases a pinned net in every lane (its next evaluation recomputes
    /// it normally). A released *register* output is restored to its
    /// power-on init value — not left at the stale forced value — so a
    /// post-campaign batch on a sequential design starts from sane state
    /// (combinational nets need no restore: the next settle recomputes
    /// them).
    pub fn release_net(&mut self, net: pe_netlist::NetId) {
        let i = net.index();
        if self.forced_mask[i] == 0 {
            return;
        }
        self.forced_mask[i] = 0;
        self.forced_vals[i] = 0;
        let r = self.reg_of_net[i];
        if r != usize::MAX {
            let init = broadcast(self.nl.cell(self.regs[r]).init());
            self.state[r] = init;
            self.words[i] = init;
        }
    }

    /// Snapshot of the accumulated switching activity.
    ///
    /// # Panics
    ///
    /// Panics if activity tracking was never enabled.
    #[must_use]
    pub fn activity(&self) -> ActivityReport {
        assert!(
            self.toggles.is_enabled(),
            "activity tracking not enabled; call enable_activity() first"
        );
        self.toggles.report(self.cycles)
    }

    /// Writes the carried serial value of every net and register back into
    /// scalar storage (the batch-glue counterpart of
    /// [`BitSlicedSimulator::from_parts`]). Words are broadcasts between
    /// chunks, so lane 0 is the carried value.
    pub(crate) fn carry_into(&self, values: &mut [bool], state: &mut [bool]) {
        for (v, &w) in values.iter_mut().zip(&self.words) {
            *v = w & 1 == 1;
        }
        for (s, &w) in state.iter_mut().zip(&self.state) {
            *s = w & 1 == 1;
        }
    }

    /// The raw toggle accumulator (for merging back into a scalar owner).
    pub(crate) fn toggle_counters(&self) -> &ToggleCounters {
        &self.toggles
    }

    // ---- packed kernel ---------------------------------------------------

    /// One lane-parallel settle pass: every combinational cell evaluated as
    /// a single bitwise op, toggles accounted per lane against the stored
    /// word (masked, so ragged lanes never leak into activity).
    fn eval_lanes(&mut self, mask: u64) {
        let track = self.toggles.is_enabled();
        let mut ins = [0u64; 3];
        for idx in 0..self.order.len() {
            let cell = self.nl.cell(self.order[idx]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed(&ins[..cell.inputs().len()]);
            let fm = self.forced_mask[out];
            if fm != 0 {
                new = (new & !fm) | (self.forced_vals[out] & fm);
            }
            let old = self.words[out];
            if new != old {
                if track {
                    self.toggles.bump_packed(out, (new ^ old) & mask);
                }
                self.words[out] = new;
            }
        }
    }

    /// A settle pass with *serial* toggle accounting for combinational
    /// batches: lane `l` is compared against lane `l-1` (lane 0 against the
    /// carried broadcast bit), reproducing exactly the adjacent-vector
    /// toggle sequence of a serial loop.
    fn settle_serial(&mut self, mask: u64) {
        let track = self.toggles.is_enabled();
        let mut ins = [0u64; 3];
        for idx in 0..self.order.len() {
            let cell = self.nl.cell(self.order[idx]);
            let out = cell.output().index();
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            let mut new = cell.kind().eval_packed(&ins[..cell.inputs().len()]);
            let fm = self.forced_mask[out];
            if fm != 0 {
                new = (new & !fm) | (self.forced_vals[out] & fm);
            }
            if track {
                let carry = self.words[out] & 1;
                self.toggles.bump_packed(out, (new ^ ((new << 1) | carry)) & mask);
            }
            self.words[out] = new;
        }
    }

    /// One clock cycle for all active lanes: settle, capture packed
    /// next-states, update registers, settle again — the lane-parallel
    /// mirror of [`Simulator::tick`](crate::Simulator::tick). The next-state
    /// capture reuses a persistent scratch buffer: this runs once per clock
    /// tick of every sequential batch and campaign.
    fn tick_lanes(&mut self, mask: u64) {
        self.eval_lanes(mask);
        let track = self.toggles.is_enabled();
        let nl = self.nl;
        let mut ins = [0u64; 3];
        for i in 0..self.regs.len() {
            let cell = nl.cell(self.regs[i]);
            for (k, &inp) in cell.inputs().iter().enumerate() {
                ins[k] = self.words[inp.index()];
            }
            self.next_scratch[i] =
                cell.kind().next_state_packed(&ins[..cell.inputs().len()], self.state[i]);
        }
        for i in 0..self.regs.len() {
            let out = nl.cell(self.regs[i]).output().index();
            let old = self.words[out];
            let mut next = self.next_scratch[i];
            let fm = self.forced_mask[out];
            if fm != 0 {
                next = (next & !fm) | (self.forced_vals[out] & fm);
            }
            if old != next {
                if track {
                    self.toggles.bump_packed(out, (old ^ next) & mask);
                }
                self.words[out] = next;
            }
            self.state[i] = next;
        }
        self.eval_lanes(mask);
    }

    /// Resets every register to its power-on init value in all lanes except
    /// the ones pinned by [`BitSlicedSimulator::force_lanes`], which keep
    /// their forced values — the lane-aware per-classification reset shared
    /// by [`BitSlicedSimulator::run_workload_seq_reset`] and the PPSFP
    /// campaign driver.
    fn reset_regs_lanes(&mut self) {
        for i in 0..self.regs.len() {
            let cell = self.nl.cell(self.regs[i]);
            let out = cell.output().index();
            let fm = self.forced_mask[out];
            self.state[i] = (broadcast(cell.init()) & !fm) | (self.forced_vals[out] & fm);
            self.words[out] = self.state[i];
        }
    }

    /// Collapses every word (and register) to a broadcast of lane `lane`,
    /// establishing the between-chunk invariant that the carried serial
    /// value occupies all lanes. Lanes pinned by
    /// [`BitSlicedSimulator::force_lanes`] are re-merged afterwards so a
    /// collapse never un-pins them.
    fn collapse_to_lane(&mut self, lane: usize) {
        for (i, w) in self.words.iter_mut().enumerate() {
            let b = broadcast((*w >> lane) & 1 == 1);
            let fm = self.forced_mask[i];
            *w = (b & !fm) | (self.forced_vals[i] & fm);
        }
        for (r, s) in self.state.iter_mut().enumerate() {
            let out = self.nl.cell(self.regs[r]).output().index();
            let b = broadcast((*s >> lane) & 1 == 1);
            let fm = self.forced_mask[out];
            *s = (b & !fm) | (self.forced_vals[out] & fm);
        }
    }

    // ---- lane I/O --------------------------------------------------------

    /// Drives an input port with one integer per lane (two's complement,
    /// LSB first). Lanes beyond `values.len()` are zeroed.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist, more than [`LANES`] values are
    /// given, or a value does not fit the port width.
    pub fn set_input_lanes(&mut self, port: &str, values: &[i64]) {
        let nets = self
            .input_ports
            .get(port)
            .unwrap_or_else(|| panic!("no input port named {port:?}"))
            .clone();
        assert!(values.len() <= LANES, "more than {LANES} lanes driven on port {port}");
        let w = nets.len() as u32;
        assert!(w <= 63, "port {port} too wide");
        let min = -(1i64 << (w - 1));
        let max = (1i64 << w) - 1;
        for &v in values {
            assert!(v >= min && v <= max, "value {v} does not fit {w}-bit port {port}");
        }
        for (j, &net) in nets.iter().enumerate() {
            let mut word = 0u64;
            for (l, &v) in values.iter().enumerate() {
                word |= (((v >> j) & 1) as u64) << l;
            }
            self.words[net.index()] = word;
        }
    }

    /// Reads an output port of one lane as an unsigned integer.
    ///
    /// # Panics
    ///
    /// Panics if the port does not exist or is wider than 63 bits.
    #[must_use]
    pub fn output_unsigned_lane(&self, port: &str, lane: usize) -> i64 {
        let bits =
            self.output_ports.get(port).unwrap_or_else(|| panic!("no output port named {port:?}"));
        assert!(bits.len() <= 63, "port {port} too wide");
        let mut v = 0i64;
        for (j, &b) in bits.iter().enumerate() {
            if (self.words[b.index()] >> lane) & 1 == 1 {
                v |= 1i64 << j;
            }
        }
        v
    }

    /// Resolves the port list of a workload entry to nets and value ranges,
    /// done once per chunk/campaign so per-entry driving is pure bit packing.
    fn resolve_entry_ports(
        &self,
        first: &[(String, i64)],
    ) -> Vec<(usize, Vec<pe_netlist::NetId>, i64, i64)> {
        first
            .iter()
            .enumerate()
            .map(|(k, (p, _))| {
                let nets = self
                    .input_ports
                    .get(p)
                    .unwrap_or_else(|| panic!("no input port named {p:?}"))
                    .clone();
                let w = nets.len() as u32;
                assert!(w <= 63, "port {p} too wide");
                (k, nets, -(1i64 << (w - 1)), (1i64 << w) - 1)
            })
            .collect()
    }

    /// Packs one chunk of port-named workload entries into the lanes. Every
    /// entry must drive the same ports in the same order (campaign workloads
    /// always do); the port lists are resolved once per chunk from the first
    /// entry, so the per-lane loop is pure bit packing.
    fn drive_port_lanes(&mut self, chunk: &[Vec<(String, i64)>]) {
        let first = &chunk[0];
        let ports = self.resolve_entry_ports(first);
        for (_, nets, _, _) in &ports {
            for &net in nets {
                self.words[net.index()] = 0;
            }
        }
        for (l, entry) in chunk.iter().enumerate() {
            assert_eq!(
                entry.len(),
                first.len(),
                "workload entries must drive the same ports in the same order"
            );
            for &(k, ref nets, min, max) in &ports {
                let (p, v) = &entry[k];
                assert_eq!(
                    p, &first[k].0,
                    "workload entries must drive the same ports in the same order"
                );
                assert!(*v >= min && *v <= max, "value {v} does not fit port {p}");
                for (j, &net) in nets.iter().enumerate() {
                    self.words[net.index()] |= (((v >> j) & 1) as u64) << l;
                }
            }
        }
    }

    // ---- batch drivers ---------------------------------------------------

    /// Word-parallel counterpart of
    /// [`Simulator::run_batch`](crate::Simulator::run_batch): element `j` of
    /// each vector drives input port `x{j}`, the observed output port is
    /// recorded per vector. See the [module docs](self) for the exact batch
    /// semantics (serial-identical for combinational batches, chunked
    /// streaming for sequential ones).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, or vectors of unequal
    /// length.
    pub fn run_batch(
        &mut self,
        vectors: &[Vec<i64>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> BatchResult {
        let start_cycles = self.cycles;
        let mut outputs = Vec::with_capacity(vectors.len());
        let mut lane_vals = Vec::with_capacity(LANES);
        for chunk in vectors.chunks(LANES) {
            let active = chunk.len();
            let mask = lane_mask(active);
            let m = chunk[0].len();
            for x in chunk {
                assert_eq!(x.len(), m, "all vectors in a batch must have the same arity");
            }
            for j in 0..m {
                lane_vals.clear();
                lane_vals.extend(chunk.iter().map(|x| x[j]));
                self.set_input_lanes(&format!("x{j}"), &lane_vals);
            }
            if cycles_per_vector == 0 {
                self.settle_serial(mask);
                self.cycles += active as u64;
            } else {
                for _ in 0..cycles_per_vector {
                    self.tick_lanes(mask);
                }
                self.cycles += active as u64 * cycles_per_vector;
            }
            for l in 0..active {
                outputs.push(self.output_unsigned_lane(out_port, l));
            }
            self.collapse_to_lane(active - 1);
        }
        BatchResult { outputs, cycles: self.cycles - start_cycles }
    }

    /// Drives a port-named **combinational** workload through the design and
    /// returns the output port value per entry — the inner loop of
    /// [`crate::faults::fault_campaign_comb`], 64 patterns per sweep.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports or out-of-range values.
    pub fn run_workload_comb(
        &mut self,
        workload: &[Vec<(String, i64)>],
        out_port: &str,
    ) -> Vec<i64> {
        let mut out = Vec::with_capacity(workload.len());
        for chunk in workload.chunks(LANES) {
            let active = chunk.len();
            let mask = lane_mask(active);
            self.drive_port_lanes(chunk);
            self.settle_serial(mask);
            self.cycles += active as u64;
            for l in 0..active {
                out.push(self.output_unsigned_lane(out_port, l));
            }
            self.collapse_to_lane(active - 1);
        }
        out
    }

    /// Drives a port-named **sequential** workload where every entry starts
    /// from power-on register state (frozen nets stay pinned) and is clocked
    /// for `cycles_per_vector` ticks — the per-classification reset protocol
    /// of [`crate::faults::fault_campaign_seq`], 64 classifications per
    /// sweep. Lanes are independent, so the whole chunk resets and ticks in
    /// lockstep.
    ///
    /// Activity tracking must be disabled: the per-entry reset makes toggle
    /// accounting meaningless here, and campaigns never enable it.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values,
    /// `cycles_per_vector == 0`, or enabled activity tracking.
    pub fn run_workload_seq_reset(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles_per_vector: u64,
        out_port: &str,
    ) -> Vec<i64> {
        assert!(cycles_per_vector >= 1, "sequential workloads need at least one cycle");
        assert!(
            !self.toggles.is_enabled(),
            "run_workload_seq_reset resets state per entry; activity accounting is undefined"
        );
        let mut out = Vec::with_capacity(workload.len());
        for chunk in workload.chunks(LANES) {
            let active = chunk.len();
            let mask = lane_mask(active);
            self.reset_regs_lanes();
            self.drive_port_lanes(chunk);
            for _ in 0..cycles_per_vector {
                self.tick_lanes(mask);
            }
            self.cycles += active as u64 * cycles_per_vector;
            for l in 0..active {
                out.push(self.output_unsigned_lane(out_port, l));
            }
            // Re-establish the between-chunk broadcast invariant so a later
            // run_batch on this simulator reads a coherent serial carry.
            self.collapse_to_lane(active - 1);
        }
        out
    }

    // ---- PPSFP drivers (one fault site per lane) -------------------------

    /// Drives one entry's value broadcast into every lane of its ports.
    fn drive_entry_broadcast(
        &mut self,
        ports: &[(usize, Vec<pe_netlist::NetId>, i64, i64)],
        first: &[(String, i64)],
        entry: &[(String, i64)],
    ) {
        assert_eq!(
            entry.len(),
            first.len(),
            "workload entries must drive the same ports in the same order"
        );
        for &(k, ref nets, min, max) in ports {
            let (p, v) = &entry[k];
            assert_eq!(
                p, &first[k].0,
                "workload entries must drive the same ports in the same order"
            );
            assert!(*v >= min && *v <= max, "value {v} does not fit port {p}");
            for (j, &net) in nets.iter().enumerate() {
                self.words[net.index()] = broadcast((v >> j) & 1 == 1);
            }
        }
    }

    /// Mask of lanes whose current value of `out_port` differs from
    /// `golden` (compared over the port's bits, like
    /// [`BitSlicedSimulator::output_unsigned_lane`] per lane).
    fn output_diff_lanes(&self, out_bits: &[pe_netlist::NetId], golden: i64) -> u64 {
        let mut diff = 0u64;
        for (j, &b) in out_bits.iter().enumerate() {
            diff |= self.words[b.index()] ^ broadcast((golden >> j) & 1 == 1);
        }
        diff
    }

    /// PPSFP inner loop for **combinational** designs: every workload entry
    /// is driven *broadcast* across all lanes (each lane is one faulty
    /// machine, pinned per lane via [`BitSlicedSimulator::force_lanes`]) and
    /// compared against the fault-free `golden` response. Returns the mask
    /// of `watch` lanes whose output differed on at least one entry,
    /// early-exiting once every watched lane has diverged.
    ///
    /// Settled values are lane-wise pure functions of the (broadcast) inputs
    /// and the lane's pinned net, so lane `l`'s responses are exactly those
    /// of a scalar simulator with only fault `l` injected — which is what
    /// makes the campaign bit-identical to the rebuild-per-site oracle.
    ///
    /// Cycle accounting: each driven entry counts one cycle per watched
    /// lane (one classification per faulty machine).
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, `golden` shorter than
    /// the workload, or enabled activity tracking (lanes hold different
    /// machines; toggle accounting is undefined).
    pub fn lanes_diverging_comb(
        &mut self,
        workload: &[Vec<(String, i64)>],
        out_port: &str,
        golden: &[i64],
        watch: u64,
    ) -> u64 {
        self.lanes_diverging(workload, None, out_port, golden, watch)
    }

    /// PPSFP inner loop for **sequential** designs under the
    /// per-classification reset protocol: every workload entry resets the
    /// registers to power-on state (lanes pinned by
    /// [`BitSlicedSimulator::force_lanes`] keep their forced values), is
    /// driven broadcast and clocked for `cycles_per_vector` ticks, and the
    /// output is compared against the fault-free `golden` response — the
    /// 64-faulty-machines-in-lockstep counterpart of
    /// [`BitSlicedSimulator::run_workload_seq_reset`]. Returns the mask of
    /// `watch` lanes that diverged, early-exiting once all of them have.
    ///
    /// On return the registers are reset to power-on state again (pinned
    /// lanes still pinned): the run leaves every lane a different faulty
    /// machine, and a later batch on this simulator must not observe one
    /// lane's leftover register state.
    ///
    /// # Panics
    ///
    /// Panics on unknown ports, out-of-range values, `cycles_per_vector ==
    /// 0`, a short `golden`, or enabled activity tracking.
    pub fn lanes_diverging_seq_reset(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles_per_vector: u64,
        out_port: &str,
        golden: &[i64],
        watch: u64,
    ) -> u64 {
        assert!(cycles_per_vector >= 1, "sequential workloads need at least one cycle");
        self.lanes_diverging(workload, Some(cycles_per_vector), out_port, golden, watch)
    }

    /// The shared PPSFP frame: `cycles` selects the per-entry step — `None`
    /// settles combinationally, `Some(c)` resets the registers and ticks
    /// `c` times.
    fn lanes_diverging(
        &mut self,
        workload: &[Vec<(String, i64)>],
        cycles: Option<u64>,
        out_port: &str,
        golden: &[i64],
        watch: u64,
    ) -> u64 {
        assert!(
            !self.toggles.is_enabled(),
            "PPSFP lanes hold different machines; activity accounting is undefined"
        );
        assert!(golden.len() >= workload.len(), "golden response shorter than the workload");
        if workload.is_empty() || watch == 0 {
            return 0;
        }
        let first = &workload[0];
        let ports = self.resolve_entry_ports(first);
        let out_bits = self
            .output_ports
            .get(out_port)
            .unwrap_or_else(|| panic!("no output port named {out_port:?}"))
            .clone();
        assert!(out_bits.len() <= 63, "port {out_port} too wide");
        let mut diverged = 0u64;
        for (entry, &want) in workload.iter().zip(golden) {
            match cycles {
                None => {
                    self.drive_entry_broadcast(&ports, first, entry);
                    self.eval_lanes(!0);
                    self.cycles += u64::from(watch.count_ones());
                }
                Some(c) => {
                    self.reset_regs_lanes();
                    self.drive_entry_broadcast(&ports, first, entry);
                    for _ in 0..c {
                        self.tick_lanes(!0);
                    }
                    self.cycles += u64::from(watch.count_ones()) * c;
                }
            }
            diverged |= self.output_diff_lanes(&out_bits, want) & watch;
            if diverged == watch {
                break;
            }
        }
        if cycles.is_some() {
            // Leave the registers at power-on instead of 64 different faulty
            // machines' leftovers: non-forced registers would otherwise stay
            // lane-divergent after the campaign chunk, and release_net only
            // heals the *forced* nets.
            self.reset_regs_lanes();
        }
        diverged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{BatchMode, Simulator};
    use pe_netlist::Builder;

    fn full_adder_x() -> Netlist {
        let mut b = Builder::new("fa");
        let a = b.input("x0");
        let x = b.input("x1");
        let cin = b.input("x2");
        let s1 = b.xor2(a, x);
        let sum = b.xor2(s1, cin);
        let carry = b.maj3(a, x, cin);
        b.output("sum", sum);
        b.output("carry", carry);
        b.finish()
    }

    #[test]
    fn lane_mask_edges() {
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), (1u64 << 63) - 1);
        assert_eq!(lane_mask(64), !0);
    }

    #[test]
    fn comb_batch_matches_scalar_engine_exactly() {
        let nl = full_adder_x();
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();

        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 0, "sum");

        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 0, "sum");

        assert_eq!(got, want);
        assert_eq!(sliced.activity(), scalar.activity());
    }

    #[test]
    fn forced_net_is_pinned_in_every_lane() {
        let nl = full_adder_x();
        let site = crate::faults::enumerate_fault_sites(&nl)[0];
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.force_net(site.net, true);
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        sliced.run_batch(&vectors, 0, "sum");
        assert_eq!(sliced.words[site.net.index()], !0, "stuck-at-1 must hold in all lanes");
        sliced.release_net(site.net);
        let healthy = sliced.run_batch(&vectors, 0, "sum");
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        assert_eq!(healthy.outputs, scalar.run_batch(&vectors, 0, "sum").outputs);
    }

    #[test]
    fn force_lanes_pins_only_the_masked_lanes() {
        // Pin `sum`'s driving net to 1 in lane 2 only: lanes 0/1/3.. keep
        // evaluating normally while lane 2 behaves as its own faulty machine.
        let nl = full_adder_x();
        let sum_net = nl.ports().iter().find(|p| p.name() == "sum").unwrap().bits()[0];
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        let mut healthy = BitSlicedSimulator::new(&nl).unwrap();
        let want = healthy.run_batch(&vectors, 0, "sum");

        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.force_lanes(sum_net, !0, 1 << 2);
        let golden: Vec<i64> = want.outputs.clone();
        let diverged = sliced.lanes_diverging_comb(
            &(0..8)
                .map(|v| (0..3).map(|i| (format!("x{i}"), (v >> i) & 1)).collect::<Vec<_>>())
                .collect::<Vec<_>>(),
            "sum",
            &golden,
            0b1111,
        );
        // Only lane 2 is faulty; sum=1 disagrees with golden on the four
        // even-parity vectors, so lane 2 must diverge and no other lane may.
        assert_eq!(diverged, 1 << 2);
        sliced.release_net(sum_net);
        let got = sliced.run_batch(&vectors, 0, "sum");
        assert_eq!(got.outputs, want.outputs, "release must fully heal the lane");
    }

    #[test]
    fn force_lanes_merges_conflicting_values_per_lane() {
        let nl = full_adder_x();
        let site = crate::faults::enumerate_fault_sites(&nl)[0];
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        // Stuck-at-0 in lane 0, stuck-at-1 in lane 1 on the same net.
        sliced.force_lanes(site.net, 0, 1 << 0);
        sliced.force_lanes(site.net, !0, 1 << 1);
        let vectors: Vec<Vec<i64>> =
            (0..8).map(|v| (0..3).map(|i| (v >> i) & 1).collect()).collect();
        sliced.run_batch(&vectors, 0, "sum");
        let w = sliced.words[site.net.index()];
        assert_eq!(w & 0b11, 0b10, "lane 0 pinned low, lane 1 pinned high");
    }

    #[test]
    fn ragged_chunk_never_leaks_garbage_lanes() {
        // A single vector (1 active lane of 64): totals must match a scalar
        // run exactly, proving masked lanes contribute nothing.
        let nl = full_adder_x();
        let vectors = vec![vec![1, 1, 0]];
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 0, "carry");
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 0, "carry");
        assert_eq!(got, want);
        assert_eq!(sliced.activity().total_toggles(), scalar.activity().total_toggles());
        assert_eq!(sliced.cycles(), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let nl = full_adder_x();
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let r = sliced.run_batch(&[], 0, "sum");
        assert!(r.outputs.is_empty());
        assert_eq!(r.cycles, 0);
        assert_eq!(sliced.activity().total_toggles(), 0);
    }

    #[test]
    fn sequential_chunk_streaming_matches_scalar_reference() {
        // q' = x0 XOR x1 through a register; outputs depend only on the
        // current vector, so chunked streaming agrees with a serial loop.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let vectors = vec![vec![1, 0], vec![1, 1], vec![0, 0], vec![0, 1]];

        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        scalar.enable_activity();
        let want = scalar.run_batch(&vectors, 2, "q");

        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let got = sliced.run_batch(&vectors, 2, "q");
        assert_eq!(got, want);
        assert_eq!(sliced.activity(), scalar.activity());
        assert_eq!(got.cycles, 8);
    }

    #[test]
    #[should_panic(expected = "same ports in the same order")]
    fn heterogeneous_workload_chunk_panics() {
        let nl = full_adder_x();
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        let workload = vec![
            vec![("x0".to_string(), 1), ("x1".to_string(), 0)],
            vec![("x1".to_string(), 1), ("x2".to_string(), 0)],
        ];
        let _ = sliced.run_workload_comb(&workload, "sum");
    }

    #[test]
    fn seq_reset_workload_restores_broadcast_invariant() {
        // After a reset-per-entry campaign run, a subsequent batch on the
        // same simulator must still agree with a fresh scalar reference:
        // the carry words may not stay lane-divergent.
        let mut b = Builder::new("tog");
        let x0 = b.input("x0");
        let x1 = b.input("x1");
        let nxt = b.xor2(x0, x1);
        let q = b.dff(nxt, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        let workload = vec![
            vec![("x0".to_string(), 1), ("x1".to_string(), 0)],
            vec![("x0".to_string(), 0), ("x1".to_string(), 1)],
            vec![("x0".to_string(), 1), ("x1".to_string(), 1)],
        ];
        let _ = sliced.run_workload_seq_reset(&workload, 1, "q");
        for &w in &sliced.words {
            assert!(w == 0 || w == !0, "word {w:#x} is not a broadcast after the workload");
        }
        let vectors = vec![vec![1, 0], vec![1, 1], vec![0, 1]];
        let got = sliced.run_batch(&vectors, 1, "q");
        let mut scalar = Simulator::new(&nl).unwrap();
        scalar.set_batch_mode(BatchMode::Scalar);
        // Bring the scalar reference to the same carried state first.
        for (p, v) in &workload[2] {
            scalar.set_input(p, *v);
        }
        scalar.reset();
        scalar.tick();
        let want = scalar.run_batch(&vectors, 1, "q");
        assert_eq!(got.outputs, want.outputs);
    }

    #[test]
    #[should_panic(expected = "activity accounting is undefined")]
    fn seq_reset_workload_rejects_activity() {
        let mut b = Builder::new("r");
        let d = b.input("d");
        let q = b.dff(d, false);
        b.output("q", q);
        let nl = b.finish();
        let mut sliced = BitSlicedSimulator::new(&nl).unwrap();
        sliced.enable_activity();
        let _ = sliced.run_workload_seq_reset(&[vec![("d".to_string(), 1)]], 1, "q");
    }
}
