//! Cycle-based gate-level logic simulation for printed bespoke circuits.
//!
//! This crate plays the role gate-level simulation plays in the paper's flow:
//! it verifies that generated netlists are bit-exact against behavioral golden
//! models, and it extracts per-net switching activity, the input to dynamic
//! power analysis (the equivalent of dumping SAIF from a simulator and handing
//! it to PrimeTime).
//!
//! The simulation model is two-valued and zero-delay: combinational cells are
//! evaluated in topological order until settled, flip-flops update on an
//! implicit common clock via [`Simulator::tick`]. Per-net toggle counts are
//! accumulated on every settle pass when activity tracking is enabled.
//!
//! Batched workloads ([`Simulator::run_batch`] and the fault campaigns in
//! [`faults`]) run **word-parallel** by default: [`BitSlicedSimulator`]
//! packs test vectors into a `[u64; W]` slab per net — 64 lanes per word,
//! with the runtime-selectable [`LaneWidth`] choosing `W` in 1/2/4/8 (64 to
//! 512 vectors per topological sweep) — and evaluates every gate for the
//! whole chunk with `W` bitwise operations, counting toggles by popcount.
//! The scalar engine remains available as [`BatchMode::Scalar`], the
//! reference oracle the differential test suite pins the sliced engine
//! against at every width. See [`bitslice`] for the slab layout, masking
//! rules and batch semantics.
//!
//! # Example
//!
//! ```
//! use pe_netlist::Builder;
//! use pe_sim::Simulator;
//!
//! let mut b = Builder::new("adder1");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.xor2(a, c);
//! let carry = b.and2(a, c);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let nl = b.finish();
//!
//! let mut sim = Simulator::new(&nl).unwrap();
//! sim.set_input("a", 1);
//! sim.set_input("b", 1);
//! sim.eval_comb();
//! assert_eq!(sim.output_unsigned("sum"), 0);
//! assert_eq!(sim.output_unsigned("carry"), 1);
//! ```

pub mod activity;
pub mod bitslice;
pub mod collapse;
pub mod faults;
pub mod sim;
pub mod vcd;
pub mod warm;

pub use activity::{ActivityReport, ToggleCounters};
pub use bitslice::{BitSlicedSimulator, DetachedSlab, LaneWidth};
pub use collapse::{
    fault_campaign_comb_ppsfp_collapsed, fault_campaign_seq_ppsfp_collapsed, CollapseStats,
};
pub use faults::{ConeMode, ConeStats, FaultReport, FaultSite, FaultySimulator};
pub use sim::{BatchMode, BatchResult, Schedule, Simulator};
pub use warm::WarmSimulator;
