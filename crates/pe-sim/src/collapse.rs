//! Collapsed PPSFP fault campaigns: run class representatives only, prove
//! the rest benign statically, and expand verdicts back bit-for-bit.
//!
//! The campaign pipeline composes three verdict-preserving reductions before
//! any lane is pinned:
//!
//! 1. **Equivalence collapsing** ([`pe_lint::collapse_sites`]): classic
//!    gate-rule equivalence classes (inverter/buffer chains, controlling
//!    input ≡ forced output, register `d`-at-init ≡ `q`-at-init). Every
//!    member of a class induces the *same* faulty circuit, so one
//!    representative's verdict is every member's verdict.
//! 2. **Structural observability** (also from `pe-lint`): classes with no
//!    member whose fanout cone reaches an output port can never diverge
//!    anything observable — statically benign, never simulated.
//! 3. **Workload quiescence/masking** ([`workload_must_simulate`]): a
//!    phase-unrolled ternary difference propagation over the campaign's own
//!    fault-free trajectory. A site whose pinned value equals the settled
//!    fault-free value at every phase of an entry injects no difference in
//!    that entry; a difference that is injected is propagated forward as an
//!    unknown (X) with the *concrete* fault-free phase values masking side
//!    inputs (a diff through an `And2` whose other pin settles to 0 dies
//!    unless that pin is itself diffed, and so on per [`CellKind::eval`]).
//!    Clock edges hand register `d`-pin diffs to `q` for the next phase, and
//!    only the final phase of each entry is compared — exactly the
//!    observation point of the sequential reset protocol
//!    ([`crate::BitSlicedSimulator::lanes_diverging_seq_reset`] reads the output
//!    port once per entry, after the last tick). Sites whose difference
//!    provably never reaches the observed port at that point, in any entry,
//!    are benign without simulation.
//!
//! All three are *sound over-approximations of divergence*: a site is only
//! dropped when no input vector of the campaign can distinguish the faulty
//! machine at the observed port, so the expanded [`FaultReport`] is
//! bit-identical to the uncollapsed campaign's — the differential suite
//! pins this across lane widths and cone modes.
//!
//! On the paper's sequential OvR classifier (4126 sites) the pipeline
//! retires ~20% of the fault list before simulation; the xor/maj-dominated
//! MAC datapath is collapse-resistant to pure gate-rule equivalence (~1%),
//! so nearly all of the reduction comes from observability and the
//! phase-unrolled masking analysis.

use crate::bitslice::LaneWidth;
use crate::faults::{ppsfp_verdicts, ConeMode, FaultReport, FaultSite};
use crate::sim::Simulator;
use pe_lint::StuckAt;
use pe_netlist::graph::topo_order;
use pe_netlist::{CellKind, Netlist, NetlistError};

/// Site accounting of one collapsed campaign (second element of the
/// collapsed campaign results).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollapseStats {
    /// Sites in the requested fault list.
    pub sites: usize,
    /// Equivalence classes over those sites.
    pub classes: usize,
    /// Classes proven benign structurally (no observable member).
    pub static_benign: usize,
    /// Classes proven benign by the workload quiescence/masking analysis.
    pub workload_benign: usize,
    /// Sites actually pinned into simulator lanes (class representatives
    /// that survived both benign proofs).
    pub simulated: usize,
}

impl CollapseStats {
    /// Sites retired before simulation.
    #[must_use]
    pub fn collapsed_away(&self) -> usize {
        self.sites - self.simulated
    }

    /// Fraction of the fault list never pinned into a lane.
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.sites == 0 {
            0.0
        } else {
            1.0 - self.simulated as f64 / self.sites as f64
        }
    }
}

/// Which candidate sites might diverge the observed port: the phase-unrolled
/// ternary difference propagation described in the [module docs](self).
///
/// Returns one flag per candidate — `false` means *provably benign on this
/// workload* (the sound direction; `true` only means the analysis could not
/// rule divergence out). Designs without a topological order are left
/// entirely unpruned.
///
/// # Panics
///
/// Panics on unknown ports or out-of-range input values, like the campaigns.
///
/// # Errors
///
/// Propagates scheduling errors from the fault-free reference run.
pub fn workload_must_simulate(
    nl: &Netlist,
    candidates: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: Option<u64>,
) -> Result<Vec<bool>, NetlistError> {
    if candidates.is_empty() {
        return Ok(Vec::new());
    }
    let Ok(order) = topo_order(nl) else {
        return Ok(vec![true; candidates.len()]);
    };
    let out_bits: Vec<usize> = nl
        .output_ports()
        .find(|p| p.name() == out_port)
        .unwrap_or_else(|| panic!("no output port named {out_port:?}"))
        .bits()
        .iter()
        .map(|b| b.index())
        .collect();

    let n = nl.num_nets();
    // Local bit positions: up to one sa0 and one sa1 candidate per net.
    let mut bit_of = vec![[usize::MAX; 2]; n];
    for (i, f) in candidates.iter().enumerate() {
        bit_of[f.net.index()][usize::from(f.stuck_at)] = i;
    }
    let words = candidates.len().div_ceil(64);

    let comb_cells: Vec<(usize, Vec<usize>, CellKind)> = order
        .iter()
        .map(|&c| {
            let cell = nl.cell(c);
            (cell.output().index(), cell.inputs().iter().map(|x| x.index()).collect(), cell.kind())
        })
        .collect();
    let reg_cells: Vec<(usize, Vec<usize>, CellKind)> = nl
        .cells()
        .filter(|(_, c)| c.kind().is_sequential())
        .map(|(_, c)| {
            (c.output().index(), c.inputs().iter().map(|x| x.index()).collect(), c.kind())
        })
        .collect();

    let mut sim = Simulator::new(nl)?;
    let nets: Vec<pe_netlist::NetId> = nl.nets().map(|(id, _)| id).collect();
    let mut must = vec![0u64; words];
    let mut dd = vec![0u64; words * n];
    for entry in workload {
        for (p, v) in entry {
            sim.set_input(p, *v);
        }
        // The settle points of this entry, in campaign order.
        let mut snaps: Vec<Vec<bool>> = Vec::new();
        match cycles {
            None => {
                sim.eval_comb();
                snaps.push(nets.iter().map(|&id| sim.net_value(id)).collect());
            }
            Some(c) => {
                sim.reset();
                snaps.push(nets.iter().map(|&id| sim.net_value(id)).collect());
                for _ in 0..c {
                    sim.tick();
                    snaps.push(nets.iter().map(|&id| sim.net_value(id)).collect());
                }
            }
        }

        dd.fill(0);
        for (t, snap) in snaps.iter().enumerate() {
            if t > 0 {
                // Clock edge: q inherits d's diff from the settled previous
                // phase (DffE conservatively unions d, enable, and held q).
                let latched: Vec<Vec<u64>> = reg_cells
                    .iter()
                    .map(|(q, ins, kind)| {
                        let mut row = dd[words * ins[0]..words * (ins[0] + 1)].to_vec();
                        if *kind == CellKind::DffE {
                            for w in 0..words {
                                row[w] |= dd[words * ins[1] + w] | dd[words * q + w];
                            }
                        }
                        row
                    })
                    .collect();
                for ((q, _, _), row) in reg_cells.iter().zip(latched) {
                    dd[words * q..words * (q + 1)].copy_from_slice(&row);
                }
            }
            // Pinned-net override: a candidate's own net differs from the
            // fault-free run exactly when the settled value isn't the pinned
            // one — whatever flowed in from upstream.
            for i in 0..n {
                let [b0, b1] = bit_of[i];
                for (b, diff) in [(b0, snap[i]), (b1, !snap[i])] {
                    if b != usize::MAX {
                        let m = 1u64 << (b % 64);
                        let w = words * i + b / 64;
                        dd[w] = if diff { dd[w] | m } else { dd[w] & !m };
                    }
                }
            }
            for (out, ins, kind) in &comb_cells {
                let gins: Vec<bool> = ins.iter().map(|&i| snap[i]).collect();
                let gout = kind.eval(&gins);
                // A pin whose lone flip can't change the settled output only
                // passes a diff when some co-input is diffed too.
                let masked: Vec<bool> = (0..ins.len())
                    .map(|p| {
                        let mut v = gins.clone();
                        v[p] = !v[p];
                        kind.eval(&v) == gout
                    })
                    .collect();
                let own: Vec<(usize, u64)> = bit_of[*out]
                    .iter()
                    .filter(|&&b| b != usize::MAX)
                    .map(|&b| (b / 64, 1u64 << (b % 64)))
                    .collect();
                for w in 0..words {
                    let mut contrib = 0u64;
                    for (p, &m) in masked.iter().enumerate() {
                        let dp = dd[words * ins[p] + w];
                        if dp == 0 {
                            continue;
                        }
                        if m {
                            let mut unmask = 0u64;
                            for (q, &i2) in ins.iter().enumerate() {
                                if q != p {
                                    unmask |= dd[words * i2 + w];
                                }
                            }
                            contrib |= dp & unmask;
                        } else {
                            contrib |= dp;
                        }
                    }
                    // The pinned-net override on this net survives its own
                    // driver's recomputation.
                    for &(ow, om) in &own {
                        if ow == w {
                            contrib = (contrib & !om) | (dd[words * out + w] & om);
                        }
                    }
                    dd[words * out + w] = contrib;
                }
            }
        }
        // Only the final settle of each entry is compared by the campaigns.
        for &b in &out_bits {
            for w in 0..words {
                must[w] |= dd[words * b + w];
            }
        }
    }
    Ok((0..candidates.len()).map(|i| must[i / 64] >> (i % 64) & 1 == 1).collect())
}

/// The shared collapsed-campaign frame.
fn collapsed_campaign(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: Option<u64>,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(FaultReport, CollapseStats), NetlistError> {
    let sites: Vec<StuckAt> =
        faults.iter().map(|f| StuckAt { net: f.net, stuck_at: f.stuck_at }).collect();
    let collapsed = pe_lint::collapse_sites(nl, &sites);
    let reps: Vec<FaultSite> = collapsed.simulate.iter().map(|&i| faults[i]).collect();
    let must = workload_must_simulate(nl, &reps, workload, out_port, cycles)?;
    let survivors: Vec<FaultSite> =
        reps.iter().zip(&must).filter(|&(_, &m)| m).map(|(&f, _)| f).collect();
    let (verdicts, _) = ppsfp_verdicts(nl, &survivors, workload, out_port, cycles, width, mode)?;

    // Verdicts aligned with the static simulate list: pruned reps are benign.
    let mut rep_verdicts = vec![false; collapsed.simulate.len()];
    let mut k = 0usize;
    for (j, &m) in must.iter().enumerate() {
        if m {
            rep_verdicts[j] = verdicts[k];
            k += 1;
        }
    }
    let full = collapsed.expand_verdicts(&rep_verdicts, false);
    let critical = full.iter().filter(|&&v| v).count();
    let stats = CollapseStats {
        sites: faults.len(),
        classes: collapsed.num_representatives(),
        static_benign: collapsed.static_benign.len(),
        workload_benign: must.iter().filter(|&&m| !m).count(),
        simulated: survivors.len(),
    };
    Ok((FaultReport { critical, benign: faults.len() - critical, total: faults.len() }, stats))
}

/// Collapsed PPSFP campaign on a **combinational** design: equivalence
/// classes, structural observability, and the workload masking analysis
/// retire sites before simulation; the remaining representatives run through
/// [`crate::faults::fault_campaign_comb_ppsfp_wide`]'s frame and their
/// verdicts expand back over their classes. The [`FaultReport`] is
/// bit-identical to the uncollapsed campaign's.
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp_collapsed(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    width: LaneWidth,
) -> Result<(FaultReport, CollapseStats), NetlistError> {
    fault_campaign_comb_ppsfp_collapsed_opts(nl, faults, workload, out_port, width, ConeMode::Auto)
}

/// [`fault_campaign_comb_ppsfp_collapsed`] with an explicit [`ConeMode`]
/// for the surviving representatives' sweeps.
///
/// # Panics
///
/// Panics if the design is sequential or ports are unknown.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_comb_ppsfp_collapsed_opts(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(FaultReport, CollapseStats), NetlistError> {
    assert!(
        crate::sim::is_combinational(nl),
        "fault_campaign_comb requires a combinational design"
    );
    collapsed_campaign(nl, faults, workload, out_port, None, width, mode)
}

/// Collapsed PPSFP campaign on a **sequential** design under the
/// per-classification reset protocol: see
/// [`fault_campaign_comb_ppsfp_collapsed`] for the reduction pipeline and
/// [`crate::faults::fault_campaign_seq_ppsfp_wide`] for the campaign
/// semantics the verdicts are bit-identical to.
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq_ppsfp_collapsed(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
    width: LaneWidth,
) -> Result<(FaultReport, CollapseStats), NetlistError> {
    fault_campaign_seq_ppsfp_collapsed_opts(
        nl,
        faults,
        workload,
        out_port,
        cycles,
        width,
        ConeMode::Auto,
    )
}

/// [`fault_campaign_seq_ppsfp_collapsed`] with an explicit [`ConeMode`]
/// for the surviving representatives' sweeps.
///
/// # Panics
///
/// Panics on unknown ports or `cycles == 0`.
///
/// # Errors
///
/// Propagates scheduling errors.
pub fn fault_campaign_seq_ppsfp_collapsed_opts(
    nl: &Netlist,
    faults: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out_port: &str,
    cycles: u64,
    width: LaneWidth,
    mode: ConeMode,
) -> Result<(FaultReport, CollapseStats), NetlistError> {
    assert!(cycles >= 1, "sequential workloads need at least one cycle");
    collapsed_campaign(nl, faults, workload, out_port, Some(cycles), width, mode)
}
