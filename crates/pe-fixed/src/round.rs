//! Rounding modes for float → fixed-point conversion.

/// How a real value is rounded onto the fixed-point grid.
///
/// Printed bespoke classifiers use [`Rounding::NearestTiesAway`] (the behavior
/// of `round()` in the Python flows the papers use) by default; truncation is
/// provided because approximate variants (baseline \[3\]) truncate instead of
/// rounding to save hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest; ties away from zero (`f64::round` semantics).
    #[default]
    NearestTiesAway,
    /// Round to nearest; ties to even (IEEE default, lowest bias).
    NearestTiesEven,
    /// Round toward zero (hardware truncation of the magnitude).
    TowardZero,
    /// Round toward negative infinity (arithmetic shift-right semantics).
    Floor,
}

impl Rounding {
    /// Applies the rounding mode to `x`, producing an integer-valued `f64`.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Rounding::NearestTiesAway => x.round(),
            Rounding::NearestTiesEven => {
                let r = x.round();
                if (x - x.trunc()).abs() == 0.5 {
                    // Tie: pick the even neighbor.
                    let below = x.floor();
                    let above = x.ceil();
                    if (below as i64) % 2 == 0 {
                        below
                    } else {
                        above
                    }
                } else {
                    r
                }
            }
            Rounding::TowardZero => x.trunc(),
            Rounding::Floor => x.floor(),
        }
    }

    /// Applies the rounding mode and converts to `i64`.
    ///
    /// # Panics
    ///
    /// Panics if the rounded value overflows `i64` range (debug-quality guard;
    /// quantizers clamp before this can occur).
    #[must_use]
    pub fn to_i64(self, x: f64) -> i64 {
        let r = self.apply(x);
        assert!(r >= i64::MIN as f64 && r <= i64::MAX as f64, "rounded value {r} overflows i64");
        r as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_ties_away() {
        let m = Rounding::NearestTiesAway;
        assert_eq!(m.to_i64(2.5), 3);
        assert_eq!(m.to_i64(-2.5), -3);
        assert_eq!(m.to_i64(2.4), 2);
        assert_eq!(m.to_i64(-2.4), -2);
    }

    #[test]
    fn nearest_ties_even() {
        let m = Rounding::NearestTiesEven;
        assert_eq!(m.to_i64(2.5), 2);
        assert_eq!(m.to_i64(3.5), 4);
        assert_eq!(m.to_i64(-2.5), -2);
        assert_eq!(m.to_i64(-3.5), -4);
        assert_eq!(m.to_i64(2.6), 3);
    }

    #[test]
    fn toward_zero_and_floor() {
        assert_eq!(Rounding::TowardZero.to_i64(2.9), 2);
        assert_eq!(Rounding::TowardZero.to_i64(-2.9), -2);
        assert_eq!(Rounding::Floor.to_i64(2.9), 2);
        assert_eq!(Rounding::Floor.to_i64(-2.1), -3);
    }

    #[test]
    fn default_is_nearest_ties_away() {
        assert_eq!(Rounding::default(), Rounding::NearestTiesAway);
    }
}
