//! Error type for fixed-point construction and quantization.

use std::error::Error;
use std::fmt;

/// Errors produced when constructing fixed-point formats or quantizing data.
#[derive(Debug, Clone, PartialEq)]
pub enum FixedError {
    /// The requested bit width is outside the supported `1..=32` range.
    ///
    /// Widths are capped at 32 so that products of two values always fit in
    /// an `i64` without overflow, which keeps every behavioral model exact.
    InvalidWidth(u32),
    /// A value does not fit in the requested format and saturation was not
    /// permitted by the caller.
    OutOfRange {
        /// The raw integer that did not fit.
        value: i64,
        /// The width of the target format in bits.
        width: u32,
        /// Whether the target format was signed.
        signed: bool,
    },
    /// The input slice was empty where at least one element is required
    /// (e.g. when fitting a quantization scale).
    EmptyInput,
    /// The input contained a non-finite value (NaN or infinity).
    NonFinite(f64),
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::InvalidWidth(w) => {
                write!(f, "invalid fixed-point width {w}, supported range is 1..=32")
            }
            FixedError::OutOfRange { value, width, signed } => write!(
                f,
                "value {value} does not fit in {}{width}-bit format",
                if *signed { "signed " } else { "unsigned " }
            ),
            FixedError::EmptyInput => write!(f, "input slice is empty"),
            FixedError::NonFinite(v) => write!(f, "non-finite input value {v}"),
        }
    }
}

impl Error for FixedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = FixedError::InvalidWidth(40);
        assert!(e.to_string().contains("40"));
        let e = FixedError::OutOfRange { value: 300, width: 8, signed: true };
        assert!(e.to_string().contains("300"));
        assert!(e.to_string().contains("signed 8"));
        let e = FixedError::NonFinite(f64::NAN);
        assert!(e.to_string().contains("non-finite"));
        assert!(FixedError::EmptyInput.to_string().contains("empty"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(FixedError::EmptyInput);
    }
}
