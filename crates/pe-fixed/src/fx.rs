//! Dynamically-formatted fixed-point values.
//!
//! [`Fx`] pairs a raw two's-complement integer with an [`FxFormat`] describing
//! its width, fractional bits and signedness. Arithmetic derives the result
//! format the way a hardware datapath would (full-precision products, one
//! guard bit per addition) so behavioral models built on `Fx` match generated
//! netlists bit for bit.

use crate::bits;
use crate::error::FixedError;
use crate::round::Rounding;
use std::fmt;

/// The format of a fixed-point value: total width, fractional bits, signedness.
///
/// The represented real value of raw integer `r` is `r * 2^-frac`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FxFormat {
    width: u32,
    frac: i32,
    signed: bool,
}

impl FxFormat {
    /// Creates a format.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidWidth`] if `width` is outside `1..=32`.
    pub fn new(width: u32, frac: i32, signed: bool) -> Result<Self, FixedError> {
        if width == 0 || width > 32 {
            return Err(FixedError::InvalidWidth(width));
        }
        Ok(FxFormat { width, frac, signed })
    }

    /// Signed format with `width` total bits and `frac` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32`. Use [`FxFormat::new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn signed(width: u32, frac: i32) -> Self {
        Self::new(width, frac, true).expect("invalid width")
    }

    /// Unsigned format with `width` total bits and `frac` fractional bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is outside `1..=32`.
    #[must_use]
    pub fn unsigned(width: u32, frac: i32) -> Self {
        Self::new(width, frac, false).expect("invalid width")
    }

    /// Total width in bits (including the sign bit for signed formats).
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Fractional bits. May be negative (scale larger than one).
    #[must_use]
    pub fn frac(&self) -> i32 {
        self.frac
    }

    /// Whether the format is signed two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Smallest representable raw integer.
    #[must_use]
    pub fn min_raw(&self) -> i64 {
        if self.signed {
            bits::min_signed(self.width)
        } else {
            0
        }
    }

    /// Largest representable raw integer.
    #[must_use]
    pub fn max_raw(&self) -> i64 {
        if self.signed {
            bits::max_signed(self.width)
        } else {
            bits::max_unsigned(self.width)
        }
    }

    /// The real value of one least-significant bit, `2^-frac`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (2.0f64).powi(-self.frac)
    }

    /// Largest representable real value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        self.max_raw() as f64 * self.step()
    }

    /// Smallest representable real value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        self.min_raw() as f64 * self.step()
    }

    /// Format of the full-precision product of two operands, as produced by a
    /// hardware multiplier: widths add, fractional bits add, signed if either
    /// operand is signed.
    ///
    /// # Panics
    ///
    /// Panics if the product width would exceed 32 bits (wider datapaths are
    /// outside the printed-electronics regime this crate models).
    #[must_use]
    pub fn product(&self, rhs: &FxFormat) -> FxFormat {
        let width = self.width + rhs.width;
        assert!(width <= 32, "product width {width} exceeds 32 bits");
        FxFormat { width, frac: self.frac + rhs.frac, signed: self.signed || rhs.signed }
    }

    /// Format of a sum of `n` operands of this format: `ceil(log2(n))` guard
    /// bits are added, matching a multi-operand adder tree's output width.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the result width would exceed 32 bits.
    #[must_use]
    pub fn sum_of(&self, n: usize) -> FxFormat {
        assert!(n >= 1, "sum of zero operands");
        let guard = usize::BITS - (n - 1).leading_zeros();
        let width = self.width + guard;
        assert!(width <= 32, "sum width {width} exceeds 32 bits");
        FxFormat { width, frac: self.frac, signed: self.signed }
    }
}

impl fmt::Display for FxFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}.{}",
            if self.signed { "s" } else { "u" },
            self.width as i64 - self.frac as i64,
            self.frac
        )
    }
}

/// A fixed-point value: raw two's-complement integer plus its [`FxFormat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fx {
    raw: i64,
    fmt: FxFormat,
}

impl Fx {
    /// Wraps a raw integer already known to fit the format.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::OutOfRange`] if `raw` does not fit.
    pub fn from_raw(raw: i64, fmt: FxFormat) -> Result<Self, FixedError> {
        if raw < fmt.min_raw() || raw > fmt.max_raw() {
            return Err(FixedError::OutOfRange {
                value: raw,
                width: fmt.width(),
                signed: fmt.is_signed(),
            });
        }
        Ok(Fx { raw, fmt })
    }

    /// Converts a real value into the format, rounding with `rounding` and
    /// saturating to the representable range.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::NonFinite`] if `value` is NaN or infinite.
    pub fn from_f64(value: f64, fmt: FxFormat, rounding: Rounding) -> Result<Self, FixedError> {
        if !value.is_finite() {
            return Err(FixedError::NonFinite(value));
        }
        let scaled = value / fmt.step();
        let raw = rounding.to_i64(scaled.clamp(fmt.min_raw() as f64, fmt.max_raw() as f64));
        let raw = raw.clamp(fmt.min_raw(), fmt.max_raw());
        Ok(Fx { raw, fmt })
    }

    /// The raw two's-complement integer.
    #[must_use]
    pub fn raw(&self) -> i64 {
        self.raw
    }

    /// The format of this value.
    #[must_use]
    pub fn format(&self) -> FxFormat {
        self.fmt
    }

    /// The real value represented.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.raw as f64 * self.fmt.step()
    }

    /// Full-precision product, with the derived [`FxFormat::product`] format.
    ///
    /// # Panics
    ///
    /// Panics if the product format would exceed 32 bits.
    #[must_use]
    pub fn mul_full(&self, rhs: &Fx) -> Fx {
        let fmt = self.fmt.product(&rhs.fmt);
        let raw = self.raw * rhs.raw;
        debug_assert!(raw >= fmt.min_raw() && raw <= fmt.max_raw());
        Fx { raw, fmt }
    }

    /// Saturating addition in a common format. Both operands must share the
    /// same `frac`; the result gains one guard bit.
    ///
    /// # Panics
    ///
    /// Panics if the fractional bits differ (align first with
    /// [`Fx::rescale`]) or the result width would exceed 32 bits.
    #[must_use]
    pub fn add_grow(&self, rhs: &Fx) -> Fx {
        assert_eq!(self.fmt.frac(), rhs.fmt.frac(), "fractional bits must match");
        let width = self.fmt.width().max(rhs.fmt.width()) + 1;
        assert!(width <= 32, "sum width {width} exceeds 32 bits");
        let fmt = FxFormat {
            width,
            frac: self.fmt.frac(),
            signed: self.fmt.is_signed() || rhs.fmt.is_signed(),
        };
        Fx { raw: self.raw + rhs.raw, fmt }
    }

    /// Reformats into `target`, shifting the binary point as needed.
    ///
    /// Right shifts (losing fractional bits) use the supplied rounding mode;
    /// out-of-range results saturate, matching a saturating output stage.
    #[must_use]
    pub fn rescale(&self, target: FxFormat, rounding: Rounding) -> Fx {
        let shift = target.frac() - self.fmt.frac();
        let raw = if shift >= 0 {
            // Gaining fractional bits: exact left shift (may saturate).
            let s = shift.min(62) as u32;
            self.raw.checked_shl(s).unwrap_or(i64::MAX)
        } else {
            let s = (-shift).min(62) as u32;
            let denom = 1i64 << s;
            rounding.to_i64(self.raw as f64 / denom as f64)
        };
        let raw = raw.clamp(target.min_raw(), target.max_raw());
        Fx { raw, fmt: target }
    }
}

impl fmt::Display for Fx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.fmt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_ranges() {
        let f = FxFormat::signed(8, 4);
        assert_eq!(f.min_raw(), -128);
        assert_eq!(f.max_raw(), 127);
        assert!((f.step() - 0.0625).abs() < 1e-12);
        assert!((f.max_value() - 7.9375).abs() < 1e-12);
        let u = FxFormat::unsigned(4, 4);
        assert_eq!(u.max_raw(), 15);
        assert_eq!(u.min_raw(), 0);
        assert!((u.max_value() - 0.9375).abs() < 1e-12);
    }

    #[test]
    fn invalid_width_is_rejected() {
        assert!(FxFormat::new(0, 0, true).is_err());
        assert!(FxFormat::new(33, 0, true).is_err());
        assert!(FxFormat::new(32, 0, true).is_ok());
    }

    #[test]
    fn from_f64_rounds_and_saturates() {
        let f = FxFormat::signed(8, 4);
        let x = Fx::from_f64(1.0, f, Rounding::NearestTiesAway).unwrap();
        assert_eq!(x.raw(), 16);
        let big = Fx::from_f64(100.0, f, Rounding::NearestTiesAway).unwrap();
        assert_eq!(big.raw(), 127);
        let small = Fx::from_f64(-100.0, f, Rounding::NearestTiesAway).unwrap();
        assert_eq!(small.raw(), -128);
        assert!(Fx::from_f64(f64::NAN, f, Rounding::default()).is_err());
    }

    #[test]
    fn product_format_derivation() {
        let a = FxFormat::unsigned(4, 4); // input activation u0.4
        let w = FxFormat::signed(8, 6); // weight s2.6
        let p = a.product(&w);
        assert_eq!(p.width(), 12);
        assert_eq!(p.frac(), 10);
        assert!(p.is_signed());
    }

    #[test]
    fn mul_full_is_exact() {
        let a = Fx::from_raw(13, FxFormat::unsigned(4, 4)).unwrap();
        let w = Fx::from_raw(-77, FxFormat::signed(8, 6)).unwrap();
        let p = a.mul_full(&w);
        assert_eq!(p.raw(), -1001);
        assert!((p.to_f64() - (13.0 / 16.0) * (-77.0 / 64.0)).abs() < 1e-12);
    }

    #[test]
    fn add_grow_gains_guard_bit() {
        let f = FxFormat::signed(8, 0);
        let a = Fx::from_raw(127, f).unwrap();
        let b = Fx::from_raw(127, f).unwrap();
        let s = a.add_grow(&b);
        assert_eq!(s.raw(), 254);
        assert_eq!(s.format().width(), 9);
    }

    #[test]
    fn sum_of_guard_bits() {
        let f = FxFormat::signed(12, 10);
        assert_eq!(f.sum_of(1).width(), 12);
        assert_eq!(f.sum_of(2).width(), 13);
        assert_eq!(f.sum_of(21).width(), 17); // ceil(log2(21)) = 5
    }

    #[test]
    fn rescale_shifts_binary_point() {
        let x = Fx::from_raw(100, FxFormat::signed(12, 6)).unwrap();
        let down = x.rescale(FxFormat::signed(8, 4), Rounding::NearestTiesAway);
        assert_eq!(down.raw(), 25);
        let up = down.rescale(FxFormat::signed(12, 6), Rounding::NearestTiesAway);
        assert_eq!(up.raw(), 100);
    }

    #[test]
    fn rescale_saturates() {
        let x = Fx::from_raw(2000, FxFormat::signed(12, 0)).unwrap();
        let down = x.rescale(FxFormat::signed(8, 0), Rounding::NearestTiesAway);
        assert_eq!(down.raw(), 127);
    }

    #[test]
    fn display_formats() {
        let f = FxFormat::signed(8, 6);
        assert_eq!(f.to_string(), "s2.6");
        let x = Fx::from_raw(64, f).unwrap();
        assert!(x.to_string().contains("1 "));
    }
}
