//! Post-training quantization with power-of-two scales.
//!
//! Bespoke printed classifiers hardwire coefficients into logic, so the
//! quantization scale must be a power of two: the scale then costs nothing
//! (it is just a binary-point position), and the datapath is pure integer
//! arithmetic. [`QuantScheme`] captures `(width, frac_bits, signedness)`;
//! [`quantize_slice`] maps real coefficients onto that grid.

use crate::bits;
use crate::error::FixedError;
use crate::round::Rounding;

/// A power-of-two-scale quantization scheme.
///
/// A real value `x` maps to the integer `round(x * 2^frac)` clamped to the
/// `width`-bit range; the represented value is `q * 2^-frac`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantScheme {
    width: u32,
    frac: i32,
    signed: bool,
    rounding: Rounding,
}

impl QuantScheme {
    /// Creates a scheme with explicit parameters.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidWidth`] for widths outside `1..=32`.
    pub fn new(
        width: u32,
        frac: i32,
        signed: bool,
        rounding: Rounding,
    ) -> Result<Self, FixedError> {
        if width == 0 || width > 32 {
            return Err(FixedError::InvalidWidth(width));
        }
        Ok(QuantScheme { width, frac, signed, rounding })
    }

    /// Fits the largest `frac` (finest resolution) such that every value in
    /// `data` fits a signed `width`-bit integer after scaling by `2^frac`.
    ///
    /// This is the standard per-tensor symmetric scheme for weights.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::EmptyInput`] for an empty slice and
    /// [`FixedError::NonFinite`] if any value is NaN/inf.
    pub fn fit_signed(data: &[f64], width: u32) -> Result<Self, FixedError> {
        Self::fit(data, width, true)
    }

    /// Unsigned variant of [`QuantScheme::fit_signed`] for non-negative data
    /// (e.g. input activations normalized to `[0, 1]`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantScheme::fit_signed`].
    pub fn fit_unsigned(data: &[f64], width: u32) -> Result<Self, FixedError> {
        Self::fit(data, width, false)
    }

    fn fit(data: &[f64], width: u32, signed: bool) -> Result<Self, FixedError> {
        if width == 0 || width > 32 {
            return Err(FixedError::InvalidWidth(width));
        }
        if data.is_empty() {
            return Err(FixedError::EmptyInput);
        }
        let mut max_abs = 0.0f64;
        for &v in data {
            if !v.is_finite() {
                return Err(FixedError::NonFinite(v));
            }
            if signed {
                max_abs = max_abs.max(v.abs());
            } else {
                max_abs = max_abs.max(v.max(0.0));
            }
        }
        // All-zero data: any frac works; choose 0 for a canonical answer.
        if max_abs == 0.0 {
            return Ok(QuantScheme { width, frac: 0, signed, rounding: Rounding::default() });
        }
        let limit =
            if signed { bits::max_signed(width) as f64 } else { bits::max_unsigned(width) as f64 };
        // Largest frac with round(max_abs * 2^frac) <= limit. Start from the
        // analytic guess and walk down while rounding overflows.
        let mut frac = (limit / max_abs).log2().floor() as i32;
        loop {
            let q = Rounding::default().apply(max_abs * (2.0f64).powi(frac));
            if q <= limit || frac <= -64 {
                break;
            }
            frac -= 1;
        }
        Ok(QuantScheme { width, frac, signed, rounding: Rounding::default() })
    }

    /// Returns a copy with a different rounding mode.
    #[must_use]
    pub fn with_rounding(mut self, rounding: Rounding) -> Self {
        self.rounding = rounding;
        self
    }

    /// Total width in bits.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Binary-point position (`scale = 2^-frac`).
    #[must_use]
    pub fn frac(&self) -> i32 {
        self.frac
    }

    /// Whether values are signed.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The rounding mode applied during quantization.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Resolution of the grid, `2^-frac`.
    #[must_use]
    pub fn step(&self) -> f64 {
        (2.0f64).powi(-self.frac)
    }

    /// Smallest representable integer.
    #[must_use]
    pub fn min_q(&self) -> i64 {
        if self.signed {
            bits::min_signed(self.width)
        } else {
            0
        }
    }

    /// Largest representable integer.
    #[must_use]
    pub fn max_q(&self) -> i64 {
        if self.signed {
            bits::max_signed(self.width)
        } else {
            bits::max_unsigned(self.width)
        }
    }

    /// Quantizes one value: scale, round, clamp.
    #[must_use]
    pub fn quantize(&self, x: f64) -> i64 {
        let scaled = x * (2.0f64).powi(self.frac);
        let q = self.rounding.to_i64(scaled.clamp(self.min_q() as f64, self.max_q() as f64));
        q.clamp(self.min_q(), self.max_q())
    }

    /// Maps a quantized integer back to its real value.
    #[must_use]
    pub fn dequantize(&self, q: i64) -> f64 {
        q as f64 * self.step()
    }
}

/// Quantizes a slice under `scheme`.
#[must_use]
pub fn quantize_slice(data: &[f64], scheme: QuantScheme) -> Vec<i64> {
    data.iter().map(|&x| scheme.quantize(x)).collect()
}

/// Dequantizes a slice under `scheme`.
#[must_use]
pub fn dequantize_slice(q: &[i64], scheme: QuantScheme) -> Vec<f64> {
    q.iter().map(|&v| scheme.dequantize(v)).collect()
}

/// Reconstruction-error statistics of a quantization pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantStats {
    /// Maximum absolute reconstruction error.
    pub max_abs_error: f64,
    /// Mean squared reconstruction error.
    pub mse: f64,
    /// Fraction of values that hit the clamp rails.
    pub saturation_rate: f64,
}

/// Computes [`QuantStats`] for `data` under `scheme`.
///
/// # Panics
///
/// Panics if `data` is empty.
#[must_use]
pub fn quant_stats(data: &[f64], scheme: QuantScheme) -> QuantStats {
    assert!(!data.is_empty(), "quant_stats of empty slice");
    let mut max_abs = 0.0f64;
    let mut sq = 0.0f64;
    let mut sat = 0usize;
    for &x in data {
        let q = scheme.quantize(x);
        if q == scheme.min_q() || q == scheme.max_q() {
            // Only count as saturation when the unclamped value was outside.
            let unclamped = scheme.rounding.apply(x * (2.0f64).powi(scheme.frac));
            if unclamped < scheme.min_q() as f64 || unclamped > scheme.max_q() as f64 {
                sat += 1;
            }
        }
        let e = x - scheme.dequantize(q);
        max_abs = max_abs.max(e.abs());
        sq += e * e;
    }
    QuantStats {
        max_abs_error: max_abs,
        mse: sq / data.len() as f64,
        saturation_rate: sat as f64 / data.len() as f64,
    }
}

/// A quantized tensor: integers plus the scheme that produced them.
///
/// This is the handoff object from training ([`pe-ml`]) to circuit generation
/// ([`pe-synth`]): the integers become hardwired constants and the scheme
/// becomes bit widths and binary-point positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedTensor {
    values: Vec<i64>,
    scheme: QuantScheme,
}

impl QuantizedTensor {
    /// Quantizes `data` under `scheme`.
    #[must_use]
    pub fn quantize(data: &[f64], scheme: QuantScheme) -> Self {
        QuantizedTensor { values: quantize_slice(data, scheme), scheme }
    }

    /// Wraps already-quantized integers.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::OutOfRange`] if any integer is outside the
    /// scheme's representable range.
    pub fn from_values(values: Vec<i64>, scheme: QuantScheme) -> Result<Self, FixedError> {
        for &v in &values {
            if v < scheme.min_q() || v > scheme.max_q() {
                return Err(FixedError::OutOfRange {
                    value: v,
                    width: scheme.width(),
                    signed: scheme.is_signed(),
                });
            }
        }
        Ok(QuantizedTensor { values, scheme })
    }

    /// The quantized integers.
    #[must_use]
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The scheme the integers were quantized under.
    #[must_use]
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the tensor is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Dequantized real values.
    #[must_use]
    pub fn to_f64(&self) -> Vec<f64> {
        dequantize_slice(&self.values, self.scheme)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_signed_picks_finest_scale() {
        let data = [0.9, -0.4, 0.05];
        let s = QuantScheme::fit_signed(&data, 8).unwrap();
        // 0.9 * 2^7 = 115.2 <= 127, 0.9 * 2^8 = 230 > 127 -> frac = 7
        assert_eq!(s.frac(), 7);
        assert_eq!(s.quantize(0.9), 115);
        assert_eq!(s.quantize(-0.4), -51);
    }

    #[test]
    fn fit_handles_large_values() {
        let data = [100.0, -3.0];
        let s = QuantScheme::fit_signed(&data, 8).unwrap();
        assert!(s.frac() <= 0);
        assert!(s.quantize(100.0) <= 127);
        let err = (s.dequantize(s.quantize(100.0)) - 100.0).abs();
        assert!(err <= s.step());
    }

    #[test]
    fn fit_unsigned_input_activations() {
        // Inputs normalized to [0,1] quantized to 4 bits, as in the paper.
        let data = [0.0, 0.5, 1.0];
        let s = QuantScheme::fit_unsigned(&data, 4).unwrap();
        assert_eq!(s.frac(), 3); // 1.0 * 2^3 = 8 <= 15; 2^4 = 16 > 15
        assert_eq!(s.quantize(1.0), 8);
        assert_eq!(s.quantize(0.5), 4);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert_eq!(QuantScheme::fit_signed(&[], 8), Err(FixedError::EmptyInput));
        assert!(QuantScheme::fit_signed(&[f64::INFINITY], 8).is_err());
        assert!(QuantScheme::fit_signed(&[1.0], 0).is_err());
    }

    #[test]
    fn all_zero_data_is_canonical() {
        let s = QuantScheme::fit_signed(&[0.0, 0.0], 6).unwrap();
        assert_eq!(s.frac(), 0);
        assert_eq!(s.quantize(0.0), 0);
    }

    #[test]
    fn quantize_clamps() {
        let s = QuantScheme::new(4, 0, true, Rounding::default()).unwrap();
        assert_eq!(s.quantize(100.0), 7);
        assert_eq!(s.quantize(-100.0), -8);
    }

    #[test]
    fn stats_reflect_error_bound() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) / 100.0 - 0.5).collect();
        let s = QuantScheme::fit_signed(&data, 6).unwrap();
        let stats = quant_stats(&data, s);
        assert!(stats.max_abs_error <= 0.5 * s.step() + 1e-12);
        assert!(stats.mse <= stats.max_abs_error * stats.max_abs_error);
        assert_eq!(stats.saturation_rate, 0.0);
    }

    #[test]
    fn saturation_is_detected() {
        let s = QuantScheme::new(4, 0, true, Rounding::default()).unwrap();
        let stats = quant_stats(&[100.0, 0.0, -100.0, 3.0], s);
        assert!((stats.saturation_rate - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tensor_roundtrip_and_validation() {
        let s = QuantScheme::new(6, 4, true, Rounding::default()).unwrap();
        let t = QuantizedTensor::quantize(&[1.0, -1.0, 0.25], s);
        assert_eq!(t.values(), &[16, -16, 4]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.to_f64(), vec![1.0, -1.0, 0.25]);
        assert!(QuantizedTensor::from_values(vec![31], s).is_ok());
        assert!(QuantizedTensor::from_values(vec![32], s).is_err());
    }

    #[test]
    fn truncation_mode_biases_toward_zero() {
        let s = QuantScheme::new(8, 4, true, Rounding::default())
            .unwrap()
            .with_rounding(Rounding::TowardZero);
        assert_eq!(s.quantize(0.99), 15); // 15.84 -> 15 (round would give 16)
        assert_eq!(s.quantize(-0.99), -15);
    }
}
