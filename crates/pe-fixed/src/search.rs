//! Lowest-precision search.
//!
//! The paper quantizes SVM weights and biases "to the lowest precision that
//! can retain acceptable accuracy" (§II). This module implements that search
//! generically: given an evaluation closure mapping a candidate coefficient
//! width to an accuracy, find the narrowest width whose accuracy is within a
//! tolerance of the reference (float) accuracy.

/// Parameters of a lowest-width search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchSpec {
    /// Narrowest width to consider (inclusive).
    pub min_width: u32,
    /// Widest width to consider (inclusive); evaluated as the fallback.
    pub max_width: u32,
    /// Maximum accuracy loss (absolute, e.g. `0.005` = half a point) allowed
    /// relative to `reference_accuracy`.
    pub tolerance: f64,
    /// The accuracy of the unquantized model that quantized candidates are
    /// compared against.
    pub reference_accuracy: f64,
}

impl SearchSpec {
    /// Creates a spec covering `min_width..=max_width`.
    ///
    /// # Panics
    ///
    /// Panics if `min_width == 0`, `min_width > max_width`, or the tolerance
    /// is negative or non-finite.
    #[must_use]
    pub fn new(min_width: u32, max_width: u32, tolerance: f64, reference_accuracy: f64) -> Self {
        assert!(min_width >= 1, "min_width must be at least 1");
        assert!(min_width <= max_width, "min_width must not exceed max_width");
        assert!(tolerance >= 0.0 && tolerance.is_finite(), "tolerance must be non-negative");
        SearchSpec { min_width, max_width, tolerance, reference_accuracy }
    }
}

/// Result of a lowest-width search.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// The chosen coefficient width.
    pub width: u32,
    /// Accuracy at the chosen width.
    pub accuracy: f64,
    /// `(width, accuracy)` for every candidate evaluated, in evaluation order.
    pub trace: Vec<(u32, f64)>,
    /// Whether the chosen width met the tolerance (if `false`, the widest
    /// candidate was returned as a fallback).
    pub met_tolerance: bool,
}

/// Finds the lowest width `w` in `spec.min_width..=spec.max_width` such that
/// `eval(w) >= spec.reference_accuracy - spec.tolerance`.
///
/// Candidates are evaluated in increasing width order and the search stops at
/// the first acceptable width (accuracy is monotone enough in practice that
/// this matches an exhaustive scan, and it keeps every evaluation in the
/// outcome trace for reporting). If no candidate meets the tolerance the
/// widest width is returned with `met_tolerance == false`.
pub fn search_lowest_width<F>(spec: SearchSpec, mut eval: F) -> SearchOutcome
where
    F: FnMut(u32) -> f64,
{
    let threshold = spec.reference_accuracy - spec.tolerance;
    let mut trace = Vec::new();
    for width in spec.min_width..=spec.max_width {
        let acc = eval(width);
        trace.push((width, acc));
        if acc >= threshold {
            return SearchOutcome { width, accuracy: acc, trace, met_tolerance: true };
        }
    }
    let (width, accuracy) = *trace.last().expect("at least one candidate evaluated");
    SearchOutcome { width, accuracy, trace, met_tolerance: false }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_first_width_meeting_tolerance() {
        // Accuracy ramps with width: 4->0.80, 5->0.88, 6->0.92, 7->0.93, 8->0.93.
        let table = [(4u32, 0.80), (5, 0.88), (6, 0.92), (7, 0.93), (8, 0.93)];
        let spec = SearchSpec::new(4, 8, 0.01, 0.93);
        let out = search_lowest_width(spec, |w| table.iter().find(|(tw, _)| *tw == w).unwrap().1);
        assert_eq!(out.width, 6);
        assert!(out.met_tolerance);
        assert_eq!(out.trace.len(), 3);
    }

    #[test]
    fn falls_back_to_widest_when_nothing_meets() {
        let spec = SearchSpec::new(2, 4, 0.0, 1.0);
        let out = search_lowest_width(spec, |w| w as f64 * 0.1);
        assert_eq!(out.width, 4);
        assert!(!out.met_tolerance);
        assert!((out.accuracy - 0.4).abs() < 1e-12);
        assert_eq!(out.trace.len(), 3);
    }

    #[test]
    fn single_width_range() {
        let spec = SearchSpec::new(6, 6, 0.05, 0.9);
        let out = search_lowest_width(spec, |_| 0.9);
        assert_eq!(out.width, 6);
        assert!(out.met_tolerance);
    }

    #[test]
    #[should_panic(expected = "min_width must not exceed")]
    fn invalid_spec_panics() {
        let _ = SearchSpec::new(8, 4, 0.0, 0.9);
    }

    #[test]
    fn tolerance_zero_requires_match() {
        let spec = SearchSpec::new(1, 3, 0.0, 0.5);
        let out = search_lowest_width(spec, |w| if w == 3 { 0.5 } else { 0.49 });
        assert_eq!(out.width, 3);
        assert!(out.met_tolerance);
    }
}
