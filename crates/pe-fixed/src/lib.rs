//! Fixed-point arithmetic and post-training quantization for printed bespoke
//! machine-learning circuits.
//!
//! Printed-electronics classifiers operate on narrow two's-complement integers:
//! input features are quantized to a handful of bits, and trained coefficients
//! (weights, biases) are quantized post-training to the lowest precision that
//! retains accuracy. This crate provides the numeric substrate shared by the
//! training side ([`pe-ml`]) and the hardware side ([`pe-synth`]):
//!
//! * [`FxFormat`] / [`Fx`] — a dynamically-formatted fixed-point value with
//!   explicit width, fractional bits and signedness, plus saturating and
//!   wrapping arithmetic that mirrors what a datapath of that width computes.
//! * [`QuantScheme`] and the [`quant`] module — power-of-two-scale post-training
//!   quantization (the scheme used by bespoke printed classifiers, where the
//!   scale must be a shift so that no real multiplier is spent on it).
//! * [`bits`] — two's-complement helpers used by circuit generators and the
//!   behavioral golden models (sign extension, bit extraction, range checks).
//! * [`search`] — lowest-precision search: find the narrowest coefficient
//!   width whose accuracy stays within a tolerance of the float model, the
//!   procedure §II of the paper applies to its SVMs.
//!
//! # Example
//!
//! ```
//! use pe_fixed::{QuantScheme, quant};
//!
//! // Quantize classifier weights to 6 signed bits with an automatic
//! // power-of-two scale.
//! let weights = [0.82, -0.33, 0.05, -0.91];
//! let scheme = QuantScheme::fit_signed(&weights, 6).unwrap();
//! let q = quant::quantize_slice(&weights, scheme);
//! let back = quant::dequantize_slice(&q, scheme);
//! for (w, b) in weights.iter().zip(&back) {
//!     assert!((w - b).abs() <= scheme.step());
//! }
//! ```

pub mod bits;
pub mod error;
pub mod fx;
pub mod quant;
pub mod round;
pub mod search;

pub use error::FixedError;
pub use fx::{Fx, FxFormat};
pub use quant::{QuantScheme, QuantStats, QuantizedTensor};
pub use round::Rounding;
pub use search::{search_lowest_width, SearchOutcome, SearchSpec};
