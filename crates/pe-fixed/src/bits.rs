//! Two's-complement bit-level helpers shared by circuit generators and
//! behavioral golden models.
//!
//! Everything here works on `i64` raw values and explicit widths, matching the
//! semantics of the generated datapaths bit for bit.

/// Smallest value representable in a signed two's-complement field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
#[must_use]
pub fn min_signed(width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width {width} out of range 1..=63");
    -(1i64 << (width - 1))
}

/// Largest value representable in a signed two's-complement field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
#[must_use]
pub fn max_signed(width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width {width} out of range 1..=63");
    (1i64 << (width - 1)) - 1
}

/// Largest value representable in an unsigned field of `width` bits.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 63.
#[must_use]
pub fn max_unsigned(width: u32) -> i64 {
    assert!((1..=63).contains(&width), "width {width} out of range 1..=63");
    (1i64 << width) - 1
}

/// Returns `true` if `value` fits in a signed field of `width` bits.
#[must_use]
pub fn fits_signed(value: i64, width: u32) -> bool {
    value >= min_signed(width) && value <= max_signed(width)
}

/// Returns `true` if `value` fits in an unsigned field of `width` bits.
#[must_use]
pub fn fits_unsigned(value: i64, width: u32) -> bool {
    value >= 0 && value <= max_unsigned(width)
}

/// Number of bits needed to represent `value` in signed two's complement.
///
/// `signed_width(0) == 1`; `signed_width(-1) == 1`; `signed_width(1) == 2`.
#[must_use]
pub fn signed_width(value: i64) -> u32 {
    for w in 1..=63 {
        if fits_signed(value, w) {
            return w;
        }
    }
    64
}

/// Number of bits needed to represent a non-negative `value` unsigned.
///
/// `unsigned_width(0) == 1`.
///
/// # Panics
///
/// Panics if `value` is negative.
#[must_use]
pub fn unsigned_width(value: i64) -> u32 {
    assert!(value >= 0, "unsigned_width of negative value {value}");
    if value == 0 {
        return 1;
    }
    64 - (value as u64).leading_zeros()
}

/// Extracts bit `index` (LSB = 0) of the two's-complement encoding of `value`.
///
/// For negative values this is the bit of the infinitely sign-extended
/// encoding, so `bit(-1, k) == true` for every `k`.
#[must_use]
pub fn bit(value: i64, index: u32) -> bool {
    if index >= 63 {
        return value < 0;
    }
    (value >> index) & 1 == 1
}

/// Encodes `value` as `width` two's-complement bits, LSB first.
///
/// # Panics
///
/// Panics if `value` does not fit in `width` signed bits (use
/// [`fits_signed`] to check first) unless `value >= 0` and fits unsigned.
#[must_use]
pub fn to_bits_lsb_first(value: i64, width: u32) -> Vec<bool> {
    assert!(
        fits_signed(value, width) || fits_unsigned(value, width),
        "value {value} does not fit in {width} bits"
    );
    (0..width).map(|i| bit(value, i)).collect()
}

/// Decodes `width` two's-complement bits (LSB first) into a signed value.
///
/// # Panics
///
/// Panics if `bits.len() != width as usize` or `width` is 0 or greater than 63.
#[must_use]
pub fn from_bits_signed(bits: &[bool], width: u32) -> i64 {
    assert!((1..=63).contains(&width));
    assert_eq!(bits.len(), width as usize, "bit vector length mismatch");
    let mut v: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1i64 << i;
        }
    }
    // Sign-extend from the top bit.
    if bits[width as usize - 1] {
        v -= 1i64 << width;
    }
    v
}

/// Decodes `width` bits (LSB first) into an unsigned value.
///
/// # Panics
///
/// Panics if `bits.len() != width as usize` or `width` is 0 or greater than 63.
#[must_use]
pub fn from_bits_unsigned(bits: &[bool], width: u32) -> i64 {
    assert!((1..=63).contains(&width));
    assert_eq!(bits.len(), width as usize, "bit vector length mismatch");
    let mut v: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1i64 << i;
        }
    }
    v
}

/// Wraps `value` into a signed field of `width` bits (two's-complement
/// truncation, i.e. what a hardware register of that width stores).
#[must_use]
pub fn wrap_signed(value: i64, width: u32) -> i64 {
    assert!((1..=63).contains(&width));
    let m = 1i64 << width;
    let mut v = value.rem_euclid(m);
    if v >= m / 2 {
        v -= m;
    }
    v
}

/// Saturates `value` into a signed field of `width` bits.
#[must_use]
pub fn saturate_signed(value: i64, width: u32) -> i64 {
    value.clamp(min_signed(width), max_signed(width))
}

/// Saturates `value` into an unsigned field of `width` bits.
#[must_use]
pub fn saturate_unsigned(value: i64, width: u32) -> i64 {
    value.clamp(0, max_unsigned(width))
}

/// Canonical Signed Digit (CSD) recoding of an integer constant.
///
/// Returns the list of `(shift, positive)` terms such that
/// `value == Σ ±2^shift`, with no two adjacent non-zero digits. CSD minimizes
/// the number of add/subtract terms in a bespoke constant-coefficient
/// multiplier, the core trick of fully-parallel printed classifiers.
///
/// # Example
///
/// ```
/// // 7 = 8 - 1 rather than 4 + 2 + 1.
/// let terms = pe_fixed::bits::csd(7);
/// assert_eq!(terms, vec![(0, false), (3, true)]);
/// ```
#[must_use]
pub fn csd(value: i64) -> Vec<(u32, bool)> {
    let mut terms = Vec::new();
    let mut v = value as i128; // avoid overflow of v+1 at i64::MAX
    let mut shift = 0u32;
    while v != 0 {
        if v & 1 != 0 {
            // Look at the two LSBs to decide between +1 and -1 digit.
            let rem = v & 3;
            if rem == 3 {
                // ...11 -> digit -1, carry.
                terms.push((shift, false));
                v += 1;
            } else {
                terms.push((shift, true));
                v -= 1;
            }
        }
        v >>= 1;
        shift += 1;
    }
    terms
}

/// Evaluates a CSD term list back to the integer it encodes.
#[must_use]
pub fn csd_value(terms: &[(u32, bool)]) -> i64 {
    terms
        .iter()
        .map(|&(s, pos)| {
            let t = 1i64 << s;
            if pos {
                t
            } else {
                -t
            }
        })
        .sum()
}

/// Number of non-zero CSD digits of `value` (the adder cost of a bespoke
/// constant multiplier for this coefficient).
#[must_use]
pub fn csd_cost(value: i64) -> usize {
    csd(value).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges() {
        assert_eq!(min_signed(8), -128);
        assert_eq!(max_signed(8), 127);
        assert_eq!(max_unsigned(8), 255);
        assert_eq!(min_signed(1), -1);
        assert_eq!(max_signed(1), 0);
    }

    #[test]
    fn width_of_values() {
        assert_eq!(signed_width(0), 1);
        assert_eq!(signed_width(-1), 1);
        assert_eq!(signed_width(1), 2);
        assert_eq!(signed_width(127), 8);
        assert_eq!(signed_width(-128), 8);
        assert_eq!(signed_width(128), 9);
        assert_eq!(unsigned_width(0), 1);
        assert_eq!(unsigned_width(1), 1);
        assert_eq!(unsigned_width(255), 8);
        assert_eq!(unsigned_width(256), 9);
    }

    #[test]
    fn bit_extraction_and_roundtrip() {
        assert!(bit(-1, 62));
        assert!(bit(-1, 63));
        assert!(!bit(1, 1));
        let bits = to_bits_lsb_first(-3, 4);
        assert_eq!(bits, vec![true, false, true, true]);
        assert_eq!(from_bits_signed(&bits, 4), -3);
        let ubits = to_bits_lsb_first(11, 4);
        assert_eq!(from_bits_unsigned(&ubits, 4), 11);
    }

    #[test]
    fn wrap_matches_hardware_truncation() {
        assert_eq!(wrap_signed(128, 8), -128);
        assert_eq!(wrap_signed(-129, 8), 127);
        assert_eq!(wrap_signed(255, 8), -1);
        assert_eq!(wrap_signed(5, 8), 5);
    }

    #[test]
    fn saturation() {
        assert_eq!(saturate_signed(1000, 8), 127);
        assert_eq!(saturate_signed(-1000, 8), -128);
        assert_eq!(saturate_unsigned(-5, 4), 0);
        assert_eq!(saturate_unsigned(99, 4), 15);
    }

    #[test]
    fn csd_examples() {
        assert_eq!(csd(0), vec![]);
        assert_eq!(csd_value(&csd(7)), 7);
        assert_eq!(csd(7).len(), 2); // 8 - 1
        assert_eq!(csd_value(&csd(-7)), -7);
        assert_eq!(csd_value(&csd(45)), 45);
        assert_eq!(csd_cost(15), 2); // 16 - 1
        assert_eq!(csd_cost(85), 4); // 64+16+4+1
    }

    #[test]
    fn csd_no_adjacent_nonzero_digits() {
        for v in -300i64..=300 {
            let terms = csd(v);
            assert_eq!(csd_value(&terms), v, "roundtrip failed for {v}");
            let mut shifts: Vec<u32> = terms.iter().map(|t| t.0).collect();
            shifts.sort_unstable();
            for w in shifts.windows(2) {
                assert!(w[1] > w[0] + 1, "adjacent CSD digits for {v}: {shifts:?}");
            }
        }
    }
}
