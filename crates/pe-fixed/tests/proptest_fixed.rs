//! Property-based tests for the fixed-point substrate, driven by seeded
//! deterministic sweeps (the environment has no crates.io access, so the
//! `proptest` runner is replaced by explicit loops; failures carry the
//! inputs).

use pe_fixed::bits;
use pe_fixed::{Fx, FxFormat, QuantScheme, Rounding};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// CSD recoding always evaluates back to the original value and never has
/// adjacent non-zero digits.
#[test]
fn csd_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC5D);
    let edge = [-1_000_000i64, -1, 0, 1, 3, 5, 255, 999_999];
    let random = (0..256).map(|_| rng.gen_range(-1_000_000i64..1_000_000));
    for v in edge.into_iter().chain(random) {
        let terms = bits::csd(v);
        assert_eq!(bits::csd_value(&terms), v, "value {v}");
        let mut shifts: Vec<u32> = terms.iter().map(|t| t.0).collect();
        shifts.sort_unstable();
        for w in shifts.windows(2) {
            assert!(w[1] > w[0] + 1, "adjacent CSD digits for {v}");
        }
    }
}

/// CSD cost never exceeds the number of set bits in the binary encoding
/// (CSD is at least as sparse as plain binary).
#[test]
fn csd_at_most_binary_cost() {
    let mut rng = StdRng::seed_from_u64(0xC057);
    for v in (0..256).map(|_| rng.gen_range(0i64..1_000_000)) {
        assert!(bits::csd_cost(v) <= v.count_ones() as usize + 1, "value {v}");
    }
}

/// Two's-complement encode/decode is the identity on in-range values.
#[test]
fn bits_roundtrip() {
    for v in -128i64..=127 {
        let b = bits::to_bits_lsb_first(v, 8);
        assert_eq!(bits::from_bits_signed(&b, 8), v);
    }
}

/// Wrapping then wrapping again is idempotent and always lands in range.
#[test]
fn wrap_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x3AB);
    for _ in 0..512 {
        let v = rng.gen_range(i64::from(i32::MIN)..=i64::from(i32::MAX));
        let w = rng.gen_range(1u32..=24);
        let once = bits::wrap_signed(v, w);
        assert!(once >= bits::min_signed(w) && once <= bits::max_signed(w), "v={v} w={w}");
        assert_eq!(bits::wrap_signed(once, w), once, "v={v} w={w}");
    }
}

/// Quantize/dequantize error is bounded by one step (half a step for
/// round-to-nearest) for values inside the representable range.
#[test]
fn quant_error_bound() {
    let mut rng = StdRng::seed_from_u64(0x0b0);
    for _ in 0..512 {
        let x = rng.gen_range(-0.999f64..0.999);
        let width = rng.gen_range(4u32..=12);
        let scheme = QuantScheme::fit_signed(&[1.0], width).unwrap();
        let q = scheme.quantize(x);
        let back = scheme.dequantize(q);
        assert!(
            (x - back).abs() <= 0.5 * scheme.step() + 1e-12,
            "x={x} back={back} step={}",
            scheme.step()
        );
    }
}

/// fit_signed always produces a scheme in which every input fits without
/// clamping.
#[test]
fn fit_signed_never_saturates() {
    let mut rng = StdRng::seed_from_u64(0xF17);
    for _ in 0..128 {
        let len = rng.gen_range(1usize..50);
        let data: Vec<f64> = (0..len).map(|_| rng.gen_range(-100.0f64..100.0)).collect();
        let width = rng.gen_range(2u32..=16);
        let scheme = QuantScheme::fit_signed(&data, width).unwrap();
        for &x in &data {
            let unclamped = Rounding::default().apply(x * (2.0f64).powi(scheme.frac()));
            assert!(unclamped <= scheme.max_q() as f64, "x={x} width={width}");
            assert!(unclamped >= scheme.min_q() as f64, "x={x} width={width}");
        }
    }
}

/// Full-precision products computed through `Fx` equal i128 reference math.
#[test]
fn fx_product_exact() {
    for a in -128i64..=127 {
        for b in 0i64..=15 {
            let wa = Fx::from_raw(a, FxFormat::signed(8, 6)).unwrap();
            let xb = Fx::from_raw(b, FxFormat::unsigned(4, 4)).unwrap();
            let p = wa.mul_full(&xb);
            assert_eq!(p.raw(), a * b);
            assert_eq!(p.format().frac(), 10);
        }
    }
}

/// Rescaling down and back up loses at most the dropped fractional bits.
#[test]
fn rescale_bounded_error() {
    for raw in -2048i64..=2047 {
        let x = Fx::from_raw(raw, FxFormat::signed(12, 8)).unwrap();
        let down = x.rescale(FxFormat::signed(8, 4), Rounding::NearestTiesAway);
        let err = (x.to_f64() - down.to_f64()).abs();
        // Half a step of the coarse format, unless saturated.
        let sat = down.raw() == down.format().max_raw() || down.raw() == down.format().min_raw();
        if !sat {
            assert!(err <= 0.5 * down.format().step() + 1e-12, "raw={raw}");
        }
    }
}
