//! Property-based tests for the fixed-point substrate.

use pe_fixed::bits;
use pe_fixed::{Fx, FxFormat, QuantScheme, Rounding};
use proptest::prelude::*;

proptest! {
    /// CSD recoding always evaluates back to the original value and never
    /// has adjacent non-zero digits.
    #[test]
    fn csd_roundtrip(v in -1_000_000i64..1_000_000) {
        let terms = bits::csd(v);
        prop_assert_eq!(bits::csd_value(&terms), v);
        let mut shifts: Vec<u32> = terms.iter().map(|t| t.0).collect();
        shifts.sort_unstable();
        for w in shifts.windows(2) {
            prop_assert!(w[1] > w[0] + 1);
        }
    }

    /// CSD cost never exceeds the number of set bits in the binary encoding
    /// (CSD is at least as sparse as plain binary).
    #[test]
    fn csd_at_most_binary_cost(v in 0i64..1_000_000) {
        prop_assert!(bits::csd_cost(v) <= v.count_ones() as usize + 1);
    }

    /// Two's-complement encode/decode is the identity on in-range values.
    #[test]
    fn bits_roundtrip(v in -128i64..=127) {
        let b = bits::to_bits_lsb_first(v, 8);
        prop_assert_eq!(bits::from_bits_signed(&b, 8), v);
    }

    /// Wrapping then wrapping again is idempotent and always lands in range.
    #[test]
    fn wrap_idempotent(v in any::<i32>(), w in 1u32..=24) {
        let once = bits::wrap_signed(v as i64, w);
        prop_assert!(once >= bits::min_signed(w) && once <= bits::max_signed(w));
        prop_assert_eq!(bits::wrap_signed(once, w), once);
    }

    /// Quantize/dequantize error is bounded by one step (half a step for
    /// round-to-nearest) for values inside the representable range.
    #[test]
    fn quant_error_bound(x in -0.999f64..0.999, width in 4u32..=12) {
        let scheme = QuantScheme::fit_signed(&[1.0], width).unwrap();
        let q = scheme.quantize(x);
        let back = scheme.dequantize(q);
        prop_assert!((x - back).abs() <= 0.5 * scheme.step() + 1e-12,
            "x={x} back={back} step={}", scheme.step());
    }

    /// fit_signed always produces a scheme in which every input fits without
    /// clamping.
    #[test]
    fn fit_signed_never_saturates(
        data in proptest::collection::vec(-100.0f64..100.0, 1..50),
        width in 2u32..=16,
    ) {
        let scheme = QuantScheme::fit_signed(&data, width).unwrap();
        for &x in &data {
            let unclamped = Rounding::default().apply(x * (2.0f64).powi(scheme.frac()));
            prop_assert!(unclamped <= scheme.max_q() as f64);
            prop_assert!(unclamped >= scheme.min_q() as f64);
        }
    }

    /// Full-precision products computed through `Fx` equal i128 reference math.
    #[test]
    fn fx_product_exact(a in -128i64..=127, b in 0i64..=15) {
        let wa = Fx::from_raw(a, FxFormat::signed(8, 6)).unwrap();
        let xb = Fx::from_raw(b, FxFormat::unsigned(4, 4)).unwrap();
        let p = wa.mul_full(&xb);
        prop_assert_eq!(p.raw(), a * b);
        prop_assert_eq!(p.format().frac(), 10);
    }

    /// Rescaling down and back up loses at most the dropped fractional bits.
    #[test]
    fn rescale_bounded_error(raw in -2048i64..=2047) {
        let x = Fx::from_raw(raw, FxFormat::signed(12, 8)).unwrap();
        let down = x.rescale(FxFormat::signed(8, 4), Rounding::NearestTiesAway);
        let err = (x.to_f64() - down.to_f64()).abs();
        // Half a step of the coarse format, unless saturated.
        let sat = down.raw() == down.format().max_raw() || down.raw() == down.format().min_raw();
        if !sat {
            prop_assert!(err <= 0.5 * down.format().step() + 1e-12);
        }
    }
}
