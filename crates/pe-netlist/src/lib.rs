//! Gate-level netlist intermediate representation for printed bespoke circuits.
//!
//! This crate is the in-memory equivalent of a synthesis tool's design
//! database. Circuits are flat gate-level netlists over a small standard-cell
//! vocabulary ([`CellKind`]), built through a [`Builder`] that performs the two
//! optimizations that make *bespoke* printed circuits cheap:
//!
//! * **constant folding** — hardwired coefficient bits (the defining feature
//!   of bespoke printed classifiers) collapse the downstream logic at build
//!   time, exactly like a logic synthesizer propagating constants;
//! * **structural hashing** — identical gates over identical inputs are
//!   created once, giving common-subexpression sharing across e.g. the rows of
//!   an array multiplier.
//!
//! On top of the IR the crate provides graph utilities (topological ordering,
//! levelization, fanout), cell/area statistics grouped by architectural
//! component (control / storage / compute engine / voter — the Fig. 1 blocks
//! of the DATE'25 paper), multi-bit [`Word`] bus helpers used by datapath
//! generators, netlist validation, and a structural-Verilog exporter for
//! inspection.
//!
//! # Example
//!
//! ```
//! use pe_netlist::{Builder, Netlist};
//!
//! let mut b = Builder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let sum = b.xor2(a, c);
//! let carry = b.and2(a, c);
//! b.output("sum", sum);
//! b.output("carry", carry);
//! let nl: Netlist = b.finish();
//! assert_eq!(nl.num_cells(), 2);
//! nl.validate().unwrap();
//! ```

pub mod build;
pub mod dot;
pub mod graph;
pub mod kind;
pub mod netlist;
pub mod opt;
pub mod stats;
pub mod testing;
pub mod verilog;
pub mod verilog_parse;
pub mod word;

pub use build::Builder;
pub use kind::CellKind;
pub use netlist::{
    Cell, CellId, Driver, GroupId, Net, NetId, Netlist, NetlistError, Port, PortDir,
};
pub use word::Word;
