//! Multi-bit bus values for datapath construction.
//!
//! A [`Word`] is an ordered list of nets (LSB first) plus a signedness flag.
//! Datapath generators in `pe-synth` manipulate `Word`s; the signedness flag
//! determines how the word is extended when widened (zero- vs sign-extension),
//! mirroring two's-complement hardware semantics exactly.

use crate::build::Builder;
use crate::netlist::NetId;

/// A multi-bit signal bundle, LSB first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Word {
    bits: Vec<NetId>,
    signed: bool,
}

impl Word {
    /// Wraps nets as a word. `bits[0]` is the LSB.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty.
    #[must_use]
    pub fn new(bits: Vec<NetId>, signed: bool) -> Self {
        assert!(!bits.is_empty(), "a word needs at least one bit");
        Word { bits, signed }
    }

    /// A constant word encoding `value` in `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit `width` bits under the requested
    /// signedness.
    #[must_use]
    pub fn constant(b: &Builder, value: i64, width: u32, signed: bool) -> Self {
        if signed {
            assert!(
                value >= -(1i64 << (width - 1)) && value < (1i64 << (width - 1)),
                "constant {value} does not fit signed {width} bits"
            );
        } else {
            assert!(
                value >= 0 && (width >= 63 || value < (1i64 << width)),
                "constant {value} does not fit unsigned {width} bits"
            );
        }
        let bits = (0..width).map(|i| b.constant((value >> i) & 1 == 1)).collect();
        Word { bits, signed }
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Whether the word is interpreted as signed two's complement.
    #[must_use]
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// The nets of the word, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// One bit of the word.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn bit(&self, i: usize) -> NetId {
        self.bits[i]
    }

    /// The most significant bit.
    #[must_use]
    pub fn msb(&self) -> NetId {
        *self.bits.last().expect("word is non-empty")
    }

    /// The net that extends this word beyond its MSB: the sign bit for
    /// signed words, constant 0 for unsigned words.
    #[must_use]
    pub fn extension_bit(&self, b: &Builder) -> NetId {
        if self.signed {
            self.msb()
        } else {
            b.constant(false)
        }
    }

    /// Returns this word widened to `width` bits (sign- or zero-extended
    /// according to signedness). Narrowing is not allowed; use
    /// [`Word::truncate`].
    ///
    /// # Panics
    ///
    /// Panics if `width` is smaller than the current width.
    #[must_use]
    pub fn extend_to(&self, b: &Builder, width: usize) -> Word {
        assert!(width >= self.width(), "extend_to cannot narrow; use truncate");
        let ext = self.extension_bit(b);
        let mut bits = self.bits.clone();
        bits.resize(width, ext);
        Word { bits, signed: self.signed }
    }

    /// Keeps the low `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero or larger than the current width.
    #[must_use]
    pub fn truncate(&self, width: usize) -> Word {
        assert!(width >= 1 && width <= self.width(), "bad truncate width");
        Word { bits: self.bits[..width].to_vec(), signed: self.signed }
    }

    /// Returns the word shifted left by `n` bits (zeros shifted in), i.e.
    /// multiplied by `2^n`; the width grows by `n`.
    #[must_use]
    pub fn shl(&self, b: &Builder, n: usize) -> Word {
        let mut bits = vec![b.constant(false); n];
        bits.extend_from_slice(&self.bits);
        Word { bits, signed: self.signed }
    }

    /// Reinterprets the word with different signedness (no hardware).
    #[must_use]
    pub fn with_signedness(&self, signed: bool) -> Word {
        Word { bits: self.bits.clone(), signed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_encodes_twos_complement() {
        let b = Builder::new("t");
        let w = Word::constant(&b, -3, 4, true);
        // -3 = 1101b -> bits LSB first: 1,0,1,1
        let vals: Vec<bool> = w.bits().iter().map(|&n| n == b.constant(true)).collect();
        assert_eq!(vals, vec![true, false, true, true]);
        assert!(w.is_signed());
        assert_eq!(w.width(), 4);
    }

    #[test]
    fn constant_unsigned() {
        let b = Builder::new("t");
        let w = Word::constant(&b, 10, 4, false);
        let vals: Vec<bool> = w.bits().iter().map(|&n| n == b.constant(true)).collect();
        assert_eq!(vals, vec![false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn constant_overflow_panics() {
        let b = Builder::new("t");
        let _ = Word::constant(&b, 8, 4, true);
    }

    #[test]
    fn extension_semantics() {
        let mut b = Builder::new("t");
        let bus = b.input_bus("x", 3);
        let w_signed = Word::new(bus.clone(), true);
        let w_unsigned = Word::new(bus.clone(), false);
        let es = w_signed.extend_to(&b, 5);
        let eu = w_unsigned.extend_to(&b, 5);
        assert_eq!(es.bit(3), w_signed.msb());
        assert_eq!(es.bit(4), w_signed.msb());
        assert_eq!(eu.bit(3), b.constant(false));
        assert_eq!(eu.bit(4), b.constant(false));
    }

    #[test]
    fn shl_multiplies_by_power_of_two() {
        let mut b = Builder::new("t");
        let bus = b.input_bus("x", 2);
        let w = Word::new(bus.clone(), false);
        let s = w.shl(&b, 2);
        assert_eq!(s.width(), 4);
        assert_eq!(s.bit(0), b.constant(false));
        assert_eq!(s.bit(1), b.constant(false));
        assert_eq!(s.bit(2), bus[0]);
        assert_eq!(s.bit(3), bus[1]);
    }

    #[test]
    fn truncate_keeps_low_bits() {
        let mut b = Builder::new("t");
        let bus = b.input_bus("x", 4);
        let w = Word::new(bus.clone(), true);
        let t = w.truncate(2);
        assert_eq!(t.bits(), &bus[..2]);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn empty_word_panics() {
        let _ = Word::new(vec![], false);
    }
}
