//! Structural-Verilog export.
//!
//! Emits a flat gate-level module using primitive instances, for eyeballing
//! generated circuits or feeding them to an external simulator. The output is
//! deliberately simple: one wire per net, one primitive instance per cell,
//! `assign` statements for constants and output ports.

use crate::kind::CellKind;
use crate::netlist::{Driver, Netlist, PortDir};
use std::fmt::Write as _;

fn net_ref(nl: &Netlist, id: crate::netlist::NetId) -> String {
    match nl.net(id).driver() {
        Driver::Const(false) => "1'b0".to_owned(),
        Driver::Const(true) => "1'b1".to_owned(),
        _ => format!("n{}", id.index()),
    }
}

/// Renders the netlist as structural Verilog.
///
/// Sequential cells become `always @(posedge clk)` blocks on an implicit
/// `clk` port that is added whenever the design contains flip-flops.
#[must_use]
pub fn to_verilog(nl: &Netlist) -> String {
    let mut s = String::new();
    let has_seq = nl.num_seq_cells() > 0;
    let mut port_names: Vec<String> = Vec::new();
    if has_seq {
        port_names.push("clk".into());
    }
    for p in nl.ports() {
        port_names.push(p.name().to_owned());
    }
    let _ = writeln!(s, "module {} ({});", sanitize(nl.name()), port_names.join(", "));
    if has_seq {
        let _ = writeln!(s, "  input clk;");
    }
    for p in nl.ports() {
        let dir = match p.dir() {
            PortDir::Input => "input",
            PortDir::Output => "output",
        };
        if p.width() == 1 {
            let _ = writeln!(s, "  {} {};", dir, sanitize(p.name()));
        } else {
            let _ = writeln!(s, "  {} [{}:0] {};", dir, p.width() - 1, sanitize(p.name()));
        }
    }
    // Wires for every cell-driven or input-driven net.
    for (id, net) in nl.nets() {
        if matches!(net.driver(), Driver::Const(_)) {
            continue;
        }
        let _ = writeln!(s, "  wire n{};", id.index());
    }
    // Input port bits feed their nets.
    for p in nl.ports() {
        if p.dir() == PortDir::Input {
            for (i, &b) in p.bits().iter().enumerate() {
                if p.width() == 1 {
                    let _ = writeln!(s, "  assign n{} = {};", b.index(), sanitize(p.name()));
                } else {
                    let _ = writeln!(s, "  assign n{} = {}[{}];", b.index(), sanitize(p.name()), i);
                }
            }
        }
    }
    // Cells.
    for (id, cell) in nl.cells() {
        let ins: Vec<String> = cell.inputs().iter().map(|&n| net_ref(nl, n)).collect();
        let out = format!("n{}", cell.output().index());
        match cell.kind() {
            CellKind::Dff => {
                let _ = writeln!(s, "  reg r{}; // init={}", id.index(), u8::from(cell.init()));
                let _ = writeln!(s, "  always @(posedge clk) r{} <= {};", id.index(), ins[0]);
                let _ = writeln!(s, "  assign {out} = r{};", id.index());
            }
            CellKind::DffE => {
                let _ = writeln!(s, "  reg r{}; // init={}", id.index(), u8::from(cell.init()));
                let _ = writeln!(
                    s,
                    "  always @(posedge clk) if ({}) r{} <= {};",
                    ins[1],
                    id.index(),
                    ins[0]
                );
                let _ = writeln!(s, "  assign {out} = r{};", id.index());
            }
            CellKind::Inv => {
                let _ = writeln!(s, "  assign {out} = ~{};", ins[0]);
            }
            CellKind::Buf => {
                let _ = writeln!(s, "  assign {out} = {};", ins[0]);
            }
            CellKind::And2 => {
                let _ = writeln!(s, "  assign {out} = {} & {};", ins[0], ins[1]);
            }
            CellKind::Or2 => {
                let _ = writeln!(s, "  assign {out} = {} | {};", ins[0], ins[1]);
            }
            CellKind::Nand2 => {
                let _ = writeln!(s, "  assign {out} = ~({} & {});", ins[0], ins[1]);
            }
            CellKind::Nor2 => {
                let _ = writeln!(s, "  assign {out} = ~({} | {});", ins[0], ins[1]);
            }
            CellKind::Xor2 => {
                let _ = writeln!(s, "  assign {out} = {} ^ {};", ins[0], ins[1]);
            }
            CellKind::Xnor2 => {
                let _ = writeln!(s, "  assign {out} = ~({} ^ {});", ins[0], ins[1]);
            }
            CellKind::And3 => {
                let _ = writeln!(s, "  assign {out} = {} & {} & {};", ins[0], ins[1], ins[2]);
            }
            CellKind::Or3 => {
                let _ = writeln!(s, "  assign {out} = {} | {} | {};", ins[0], ins[1], ins[2]);
            }
            CellKind::Mux2 => {
                let _ = writeln!(s, "  assign {out} = {} ? {} : {};", ins[2], ins[1], ins[0]);
            }
            CellKind::Maj3 => {
                let _ = writeln!(
                    s,
                    "  assign {out} = ({a} & {b}) | ({a} & {c}) | ({b} & {c});",
                    a = ins[0],
                    b = ins[1],
                    c = ins[2]
                );
            }
        }
    }
    // Output ports.
    for p in nl.ports() {
        if p.dir() == PortDir::Output {
            for (i, &b) in p.bits().iter().enumerate() {
                let rhs = net_ref(nl, b);
                if p.width() == 1 {
                    let _ = writeln!(s, "  assign {} = {};", sanitize(p.name()), rhs);
                } else {
                    let _ = writeln!(s, "  assign {}[{}] = {};", sanitize(p.name()), i, rhs);
                }
            }
        }
    }
    let _ = writeln!(s, "endmodule");
    s
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn exports_combinational_design() {
        let mut b = Builder::new("half adder");
        let a = b.input("a");
        let c = b.input("b");
        let sum = b.xor2(a, c);
        let carry = b.and2(a, c);
        b.output("sum", sum);
        b.output("carry", carry);
        let v = to_verilog(&b.finish());
        assert!(v.contains("module half_adder (a, b, sum, carry);"));
        assert!(v.contains('^'));
        assert!(v.contains('&'));
        assert!(v.contains("endmodule"));
        assert!(!v.contains("clk"), "no clock for combinational design");
    }

    #[test]
    fn exports_sequential_design_with_clock() {
        let mut b = Builder::new("reg1");
        let d = b.input("d");
        let q = b.dff(d, true);
        b.output("q", q);
        let v = to_verilog(&b.finish());
        assert!(v.contains("input clk;"));
        assert!(v.contains("always @(posedge clk)"));
        assert!(v.contains("init=1"));
    }

    #[test]
    fn bus_ports_use_indices() {
        let mut b = Builder::new("bus");
        let xs = b.input_bus("x", 3);
        let y = b.and2(xs[0], xs[2]);
        b.output_bus("y", &[y, xs[1]]);
        let v = to_verilog(&b.finish());
        assert!(v.contains("input [2:0] x;"));
        assert!(v.contains("output [1:0] y;"));
        assert!(v.contains("assign y[1] ="));
    }

    #[test]
    fn constants_render_as_literals() {
        let mut b = Builder::new("c");
        let c1 = b.constant(true);
        b.output("one", c1);
        let v = to_verilog(&b.finish());
        assert!(v.contains("assign one = 1'b1;"));
    }

    #[test]
    fn dffe_renders_enable() {
        let mut b = Builder::new("e");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.dffe(d, en, false);
        b.output("q", q);
        let v = to_verilog(&b.finish());
        assert!(v.contains("if ("));
    }
}
