//! Standard-cell vocabulary.
//!
//! The printed EGFET libraries used by the papers are tiny (a dozen cells);
//! this enum mirrors that reality. Every combinational cell has exactly one
//! output; sequential behavior is expressed with [`CellKind::Dff`] /
//! [`CellKind::DffE`].

/// The kind of a standard cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CellKind {
    /// Inverter: `y = !a`.
    Inv,
    /// Buffer: `y = a` (used for fanout repair / port isolation).
    Buf,
    /// 2-input NAND.
    Nand2,
    /// 2-input NOR.
    Nor2,
    /// 2-input AND.
    And2,
    /// 2-input OR.
    Or2,
    /// 2-input XOR.
    Xor2,
    /// 2-input XNOR.
    Xnor2,
    /// 3-input AND.
    And3,
    /// 3-input OR.
    Or3,
    /// 2:1 multiplexer; inputs `[a, b, sel]`, `y = sel ? b : a`.
    Mux2,
    /// AND-OR-invert 2-1 is absent from printed libraries; majority carries
    /// the full-adder carry: inputs `[a, b, c]`, `y = ab | ac | bc`.
    Maj3,
    /// D flip-flop; inputs `[d]`, output `q`, clocked by the implicit clock.
    Dff,
    /// D flip-flop with clock enable; inputs `[d, en]`: `q' = en ? d : q`.
    DffE,
}

impl CellKind {
    /// Number of input pins.
    #[must_use]
    pub fn arity(&self) -> usize {
        match self {
            CellKind::Inv | CellKind::Buf | CellKind::Dff => 1,
            CellKind::Nand2
            | CellKind::Nor2
            | CellKind::And2
            | CellKind::Or2
            | CellKind::Xor2
            | CellKind::Xnor2
            | CellKind::DffE => 2,
            CellKind::And3 | CellKind::Or3 | CellKind::Mux2 | CellKind::Maj3 => 3,
        }
    }

    /// Whether the cell is a state element (flip-flop).
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(self, CellKind::Dff | CellKind::DffE)
    }

    /// Combinational truth function. For sequential cells this computes the
    /// *next-state* function given `[d]` / `[d, en, q]` — see [`CellKind::next_state`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` or if called on a sequential
    /// cell (use [`CellKind::next_state`]).
    #[must_use]
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert!(!self.is_sequential(), "eval called on sequential cell {self:?}");
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] && inputs[1]),
            CellKind::Nor2 => !(inputs[0] || inputs[1]),
            CellKind::And2 => inputs[0] && inputs[1],
            CellKind::Or2 => inputs[0] || inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::And3 => inputs[0] && inputs[1] && inputs[2],
            CellKind::Or3 => inputs[0] || inputs[1] || inputs[2],
            CellKind::Mux2 => {
                if inputs[2] {
                    inputs[1]
                } else {
                    inputs[0]
                }
            }
            CellKind::Maj3 => (inputs[0] && (inputs[1] || inputs[2])) || (inputs[1] && inputs[2]),
            CellKind::Dff | CellKind::DffE => unreachable!(),
        }
    }

    /// Word-parallel truth function: every bit position of the operands is an
    /// independent evaluation (one simulation lane), so a single bitwise
    /// expression computes the cell for up to 64 input vectors at once. This
    /// is the kernel of `pe-sim`'s bit-sliced simulator; bit `l` of the
    /// result equals `self.eval(...)` applied to bit `l` of each operand.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` or if called on a sequential
    /// cell (use [`CellKind::next_state_packed`]).
    #[must_use]
    pub fn eval_packed(&self, inputs: &[u64]) -> u64 {
        assert!(!self.is_sequential(), "eval_packed called on sequential cell {self:?}");
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            CellKind::Inv => !inputs[0],
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => !(inputs[0] & inputs[1]),
            CellKind::Nor2 => !(inputs[0] | inputs[1]),
            CellKind::And2 => inputs[0] & inputs[1],
            CellKind::Or2 => inputs[0] | inputs[1],
            CellKind::Xor2 => inputs[0] ^ inputs[1],
            CellKind::Xnor2 => !(inputs[0] ^ inputs[1]),
            CellKind::And3 => inputs[0] & inputs[1] & inputs[2],
            CellKind::Or3 => inputs[0] | inputs[1] | inputs[2],
            CellKind::Mux2 => (inputs[0] & !inputs[2]) | (inputs[1] & inputs[2]),
            CellKind::Maj3 => (inputs[0] & (inputs[1] | inputs[2])) | (inputs[1] & inputs[2]),
            CellKind::Dff | CellKind::DffE => unreachable!(),
        }
    }

    /// Width-generic word-parallel truth function: a `[u64; W]` slab packs
    /// `64 * W` lanes per net (word `i` holds lanes `64*i .. 64*i+63`), and
    /// one call evaluates the cell for all of them. The match on the cell
    /// kind happens once per call, outside the word loop, so each arm
    /// monomorphizes to `W` straight-line bitwise ops — at `W = 1` this
    /// compiles to exactly [`CellKind::eval_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != self.arity()` or if called on a sequential
    /// cell (use [`CellKind::next_state_packed_wide`]).
    #[must_use]
    #[inline]
    pub fn eval_packed_wide<const W: usize>(&self, inputs: &[[u64; W]]) -> [u64; W] {
        assert!(!self.is_sequential(), "eval_packed_wide called on sequential cell {self:?}");
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        use core::array::from_fn;
        match self {
            CellKind::Inv => from_fn(|i| !inputs[0][i]),
            CellKind::Buf => inputs[0],
            CellKind::Nand2 => from_fn(|i| !(inputs[0][i] & inputs[1][i])),
            CellKind::Nor2 => from_fn(|i| !(inputs[0][i] | inputs[1][i])),
            CellKind::And2 => from_fn(|i| inputs[0][i] & inputs[1][i]),
            CellKind::Or2 => from_fn(|i| inputs[0][i] | inputs[1][i]),
            CellKind::Xor2 => from_fn(|i| inputs[0][i] ^ inputs[1][i]),
            CellKind::Xnor2 => from_fn(|i| !(inputs[0][i] ^ inputs[1][i])),
            CellKind::And3 => from_fn(|i| inputs[0][i] & inputs[1][i] & inputs[2][i]),
            CellKind::Or3 => from_fn(|i| inputs[0][i] | inputs[1][i] | inputs[2][i]),
            CellKind::Mux2 => {
                from_fn(|i| (inputs[0][i] & !inputs[2][i]) | (inputs[1][i] & inputs[2][i]))
            }
            CellKind::Maj3 => from_fn(|i| {
                (inputs[0][i] & (inputs[1][i] | inputs[2][i])) | (inputs[1][i] & inputs[2][i])
            }),
            CellKind::Dff | CellKind::DffE => unreachable!(),
        }
    }

    /// Next-state function of a sequential cell given its data inputs and the
    /// current state `q`.
    ///
    /// # Panics
    ///
    /// Panics if called on a combinational cell or with the wrong number of
    /// inputs.
    #[must_use]
    pub fn next_state(&self, inputs: &[bool], q: bool) -> bool {
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            CellKind::Dff => inputs[0],
            CellKind::DffE => {
                if inputs[1] {
                    inputs[0]
                } else {
                    q
                }
            }
            _ => panic!("next_state called on combinational cell {self:?}"),
        }
    }

    /// Word-parallel next-state function (see [`CellKind::eval_packed`] for
    /// the lane model): bit `l` of the result is the next state of lane `l`.
    ///
    /// # Panics
    ///
    /// Panics if called on a combinational cell or with the wrong number of
    /// inputs.
    #[must_use]
    pub fn next_state_packed(&self, inputs: &[u64], q: u64) -> u64 {
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        match self {
            CellKind::Dff => inputs[0],
            CellKind::DffE => (inputs[0] & inputs[1]) | (q & !inputs[1]),
            _ => panic!("next_state_packed called on combinational cell {self:?}"),
        }
    }

    /// Width-generic word-parallel next-state function (see
    /// [`CellKind::eval_packed_wide`] for the slab model): word `i`, bit `l`
    /// of the result is the next state of lane `64*i + l`.
    ///
    /// # Panics
    ///
    /// Panics if called on a combinational cell or with the wrong number of
    /// inputs.
    #[must_use]
    #[inline]
    pub fn next_state_packed_wide<const W: usize>(
        &self,
        inputs: &[[u64; W]],
        q: &[u64; W],
    ) -> [u64; W] {
        assert_eq!(inputs.len(), self.arity(), "arity mismatch for {self:?}");
        use core::array::from_fn;
        match self {
            CellKind::Dff => inputs[0],
            CellKind::DffE => from_fn(|i| (inputs[0][i] & inputs[1][i]) | (q[i] & !inputs[1][i])),
            _ => panic!("next_state_packed_wide called on combinational cell {self:?}"),
        }
    }

    /// All cell kinds, for iterating cell libraries.
    #[must_use]
    pub fn all() -> &'static [CellKind] {
        &[
            CellKind::Inv,
            CellKind::Buf,
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::And3,
            CellKind::Or3,
            CellKind::Mux2,
            CellKind::Maj3,
            CellKind::Dff,
            CellKind::DffE,
        ]
    }

    /// Short lower-case name (the cell-library / Verilog name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CellKind::Inv => "inv",
            CellKind::Buf => "buf",
            CellKind::Nand2 => "nand2",
            CellKind::Nor2 => "nor2",
            CellKind::And2 => "and2",
            CellKind::Or2 => "or2",
            CellKind::Xor2 => "xor2",
            CellKind::Xnor2 => "xnor2",
            CellKind::And3 => "and3",
            CellKind::Or3 => "or3",
            CellKind::Mux2 => "mux2",
            CellKind::Maj3 => "maj3",
            CellKind::Dff => "dff",
            CellKind::DffE => "dffe",
        }
    }

    /// Whether the inputs of this cell are symmetric (order-insensitive).
    /// Used by structural hashing to canonicalize input order.
    #[must_use]
    pub fn is_commutative(&self) -> bool {
        matches!(
            self,
            CellKind::Nand2
                | CellKind::Nor2
                | CellKind::And2
                | CellKind::Or2
                | CellKind::Xor2
                | CellKind::Xnor2
                | CellKind::And3
                | CellKind::Or3
                | CellKind::Maj3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_eval_expectations() {
        for &k in CellKind::all() {
            if k.is_sequential() {
                continue;
            }
            let n = k.arity();
            // Exhaustive truth-table sanity: eval never panics over all input
            // combinations and is deterministic.
            for m in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                let a = k.eval(&inputs);
                let b = k.eval(&inputs);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn basic_truth_tables() {
        assert!(CellKind::Nand2.eval(&[false, true]));
        assert!(!CellKind::Nand2.eval(&[true, true]));
        assert!(CellKind::Xor2.eval(&[true, false]));
        assert!(!CellKind::Xor2.eval(&[true, true]));
        assert!(CellKind::Maj3.eval(&[true, true, false]));
        assert!(!CellKind::Maj3.eval(&[true, false, false]));
        assert!(CellKind::Mux2.eval(&[false, true, true]));
        assert!(!CellKind::Mux2.eval(&[false, true, false]));
    }

    #[test]
    fn dff_next_state() {
        assert!(CellKind::Dff.next_state(&[true], false));
        assert!(!CellKind::Dff.next_state(&[false], true));
        assert!(CellKind::DffE.next_state(&[true, true], false));
        assert!(CellKind::DffE.next_state(&[false, false], true)); // holds
        assert!(!CellKind::DffE.next_state(&[false, true], true)); // loads
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn eval_on_dff_panics() {
        let _ = CellKind::Dff.eval(&[true]);
    }

    #[test]
    fn packed_eval_matches_scalar_on_every_lane() {
        // Fill each operand with a different bit pattern so every lane sees a
        // distinct input combination, then check all 64 lanes against the
        // scalar truth function.
        for &k in CellKind::all() {
            if k.is_sequential() {
                continue;
            }
            let n = k.arity();
            let words: Vec<u64> =
                (0..n).map(|i| 0xA5A5_5A5A_DEAD_BEEFu64.rotate_left(7 * i as u32 + 3)).collect();
            let packed = k.eval_packed(&words);
            for lane in 0..64 {
                let inputs: Vec<bool> = words.iter().map(|w| (w >> lane) & 1 == 1).collect();
                assert_eq!(
                    (packed >> lane) & 1 == 1,
                    k.eval(&inputs),
                    "{k:?} lane {lane} diverged from scalar eval"
                );
            }
        }
    }

    #[test]
    fn packed_next_state_matches_scalar_on_every_lane() {
        let d = 0x0123_4567_89AB_CDEFu64;
        let en = 0xF0F0_0F0F_3C3C_C3C3u64;
        let q = 0xFFFF_0000_FF00_00FFu64;
        for lane in 0..64 {
            let bit = |w: u64| (w >> lane) & 1 == 1;
            assert_eq!(
                bit(CellKind::Dff.next_state_packed(&[d], q)),
                CellKind::Dff.next_state(&[bit(d)], bit(q))
            );
            assert_eq!(
                bit(CellKind::DffE.next_state_packed(&[d, en], q)),
                CellKind::DffE.next_state(&[bit(d), bit(en)], bit(q))
            );
        }
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn packed_next_state_on_gate_panics() {
        let _ = CellKind::And2.next_state_packed(&[0, 0], 0);
    }

    fn wide_eval_matches_word_at_a_time<const W: usize>() {
        for &k in CellKind::all() {
            if k.is_sequential() {
                continue;
            }
            let n = k.arity();
            let slabs: Vec<[u64; W]> = (0..n)
                .map(|i| {
                    core::array::from_fn(|w| {
                        0xA5A5_5A5A_DEAD_BEEFu64.rotate_left((7 * i + 13 * w + 3) as u32)
                    })
                })
                .collect();
            let wide = k.eval_packed_wide::<W>(&slabs);
            for w in 0..W {
                let words: Vec<u64> = slabs.iter().map(|s| s[w]).collect();
                assert_eq!(wide[w], k.eval_packed(&words), "{k:?} word {w} diverged at W={W}");
            }
        }
    }

    #[test]
    fn wide_eval_matches_narrow_eval_per_word() {
        wide_eval_matches_word_at_a_time::<1>();
        wide_eval_matches_word_at_a_time::<2>();
        wide_eval_matches_word_at_a_time::<4>();
        wide_eval_matches_word_at_a_time::<8>();
    }

    #[test]
    fn wide_next_state_matches_narrow_per_word() {
        let d: [u64; 4] = core::array::from_fn(|w| 0x0123_4567_89AB_CDEFu64.rotate_left(w as u32));
        let en: [u64; 4] =
            core::array::from_fn(|w| 0xF0F0_0F0F_3C3C_C3C3u64.rotate_right(w as u32));
        let q: [u64; 4] =
            core::array::from_fn(|w| 0xFFFF_0000_FF00_00FFu64.rotate_left(2 * w as u32));
        let dff = CellKind::Dff.next_state_packed_wide::<4>(&[d], &q);
        let dffe = CellKind::DffE.next_state_packed_wide::<4>(&[d, en], &q);
        for w in 0..4 {
            assert_eq!(dff[w], CellKind::Dff.next_state_packed(&[d[w]], q[w]));
            assert_eq!(dffe[w], CellKind::DffE.next_state_packed(&[d[w], en[w]], q[w]));
        }
    }

    #[test]
    #[should_panic(expected = "combinational")]
    fn wide_next_state_on_gate_panics() {
        let _ = CellKind::And2.next_state_packed_wide::<2>(&[[0; 2], [0; 2]], &[0; 2]);
    }

    #[test]
    #[should_panic(expected = "sequential")]
    fn wide_eval_on_dff_panics() {
        let _ = CellKind::Dff.eval_packed_wide::<2>(&[[0; 2]]);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = CellKind::all().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), CellKind::all().len());
    }

    #[test]
    fn commutativity_consistent_with_truth_table() {
        // For every cell marked commutative, swapping any two inputs must not
        // change the output.
        for &k in CellKind::all() {
            if k.is_sequential() || !k.is_commutative() {
                continue;
            }
            let n = k.arity();
            for m in 0..(1u32 << n) {
                let inputs: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                let base = k.eval(&inputs);
                for i in 0..n {
                    for j in (i + 1)..n {
                        let mut sw = inputs.clone();
                        sw.swap(i, j);
                        assert_eq!(base, k.eval(&sw), "{k:?} not symmetric in ({i},{j})");
                    }
                }
            }
        }
    }
}
