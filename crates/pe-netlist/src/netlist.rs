//! The flat gate-level netlist data structure.

use crate::kind::CellKind;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net (a single-bit signal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) u32);

impl NetId {
    /// The dense index of this net, suitable for indexing side tables.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// Identifier of a cell instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) u32);

impl CellId {
    /// The dense index of this cell, suitable for indexing side tables.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// Identifier of an architectural group (e.g. "storage", "voter").
///
/// Groups exist so hardware reports can break area/power down by the block
/// structure of Fig. 1 in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub(crate) u16);

impl GroupId {
    /// The default group every cell belongs to unless the builder says
    /// otherwise.
    pub const DEFAULT: GroupId = GroupId(0);

    /// The dense index of this group.
    #[must_use]
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

/// What drives a net.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Driver {
    /// Constant logic value (tie cell).
    Const(bool),
    /// Primary input.
    Input,
    /// Output of a cell.
    Cell(CellId),
}

/// A single-bit signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    pub(crate) name: Option<String>,
    pub(crate) driver: Driver,
}

impl Net {
    /// Optional debug name of the net.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }

    /// What drives this net.
    #[must_use]
    pub fn driver(&self) -> Driver {
        self.driver
    }
}

/// A standard-cell instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    pub(crate) kind: CellKind,
    pub(crate) inputs: Vec<NetId>,
    pub(crate) output: NetId,
    pub(crate) group: GroupId,
    pub(crate) init: bool,
}

impl Cell {
    /// The cell's kind.
    #[must_use]
    pub fn kind(&self) -> CellKind {
        self.kind
    }

    /// Input nets, in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// The output net.
    #[must_use]
    pub fn output(&self) -> NetId {
        self.output
    }

    /// The architectural group this cell belongs to.
    #[must_use]
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Power-on value for sequential cells (ignored for combinational cells).
    #[must_use]
    pub fn init(&self) -> bool {
        self.init
    }
}

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// Primary input.
    Input,
    /// Primary output.
    Output,
}

/// A named multi-bit port (bit 0 = LSB).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    pub(crate) name: String,
    pub(crate) dir: PortDir,
    pub(crate) bits: Vec<NetId>,
}

impl Port {
    /// Port name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Port direction.
    #[must_use]
    pub fn dir(&self) -> PortDir {
        self.dir
    }

    /// The nets of this port, LSB first.
    #[must_use]
    pub fn bits(&self) -> &[NetId] {
        &self.bits
    }

    /// Width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }
}

/// Validation failures for a [`Netlist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A cell has the wrong number of input pins for its kind.
    ArityMismatch {
        /// The offending cell.
        cell: CellId,
        /// Its kind.
        kind: CellKind,
        /// How many inputs it was given.
        got: usize,
    },
    /// Two drivers contend for one net.
    MultipleDrivers(NetId),
    /// A net is referenced but driven by nothing.
    Undriven(NetId),
    /// The combinational core contains a cycle through the given cell.
    CombinationalCycle(CellId),
    /// An output port references a net that does not exist.
    DanglingPort(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ArityMismatch { cell, kind, got } => write!(
                f,
                "cell c{} of kind {} has {got} inputs, expected {}",
                cell.0,
                kind.name(),
                kind.arity()
            ),
            NetlistError::MultipleDrivers(n) => write!(f, "net n{} has multiple drivers", n.0),
            NetlistError::Undriven(n) => write!(f, "net n{} is undriven", n.0),
            NetlistError::CombinationalCycle(c) => {
                write!(f, "combinational cycle through cell c{}", c.0)
            }
            NetlistError::DanglingPort(p) => write!(f, "port {p} references a missing net"),
        }
    }
}

impl Error for NetlistError {}

/// A flat gate-level netlist.
///
/// Create one with [`crate::Builder`]; the struct itself is immutable after
/// [`crate::Builder::finish`], which is what lets analysis passes cache
/// indices freely.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) name: String,
    pub(crate) nets: Vec<Net>,
    pub(crate) cells: Vec<Cell>,
    pub(crate) ports: Vec<Port>,
    pub(crate) groups: Vec<String>,
}

impl Netlist {
    /// The design name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nets (including the two constant nets).
    #[must_use]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of cell instances.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of sequential cells (flip-flops).
    #[must_use]
    pub fn num_seq_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.kind.is_sequential()).count()
    }

    /// The constant-0 net (always net 0).
    #[must_use]
    pub fn const0(&self) -> NetId {
        NetId(0)
    }

    /// The constant-1 net (always net 1).
    #[must_use]
    pub fn const1(&self) -> NetId {
        NetId(1)
    }

    /// Looks up a net.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Looks up a cell.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// Iterates over all cells with their ids.
    pub fn cells(&self) -> impl Iterator<Item = (CellId, &Cell)> {
        self.cells.iter().enumerate().map(|(i, c)| (CellId(i as u32), c))
    }

    /// Iterates over all nets with their ids.
    pub fn nets(&self) -> impl Iterator<Item = (NetId, &Net)> {
        self.nets.iter().enumerate().map(|(i, n)| (NetId(i as u32), n))
    }

    /// All ports in declaration order.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Input ports in declaration order.
    pub fn input_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Input)
    }

    /// Output ports in declaration order.
    pub fn output_ports(&self) -> impl Iterator<Item = &Port> {
        self.ports.iter().filter(|p| p.dir == PortDir::Output)
    }

    /// Finds a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// The names of all architectural groups (index = [`GroupId`]).
    #[must_use]
    pub fn group_names(&self) -> &[String] {
        &self.groups
    }

    /// Name of one group.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn group_name(&self, id: GroupId) -> &str {
        &self.groups[id.index()]
    }

    /// Cell count per kind.
    #[must_use]
    pub fn count_by_kind(&self) -> BTreeMap<CellKind, usize> {
        let mut m = BTreeMap::new();
        for c in &self.cells {
            *m.entry(c.kind).or_insert(0) += 1;
        }
        m
    }

    /// Cell count per architectural group.
    #[must_use]
    pub fn count_by_group(&self) -> BTreeMap<GroupId, usize> {
        let mut m = BTreeMap::new();
        for c in &self.cells {
            *m.entry(c.group).or_insert(0) += 1;
        }
        m
    }

    /// Checks structural invariants: pin arities, single drivers, no
    /// undriven nets, acyclic combinational core, and resolvable ports.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        // Arity.
        for (i, c) in self.cells.iter().enumerate() {
            if c.inputs.len() != c.kind.arity() {
                return Err(NetlistError::ArityMismatch {
                    cell: CellId(i as u32),
                    kind: c.kind,
                    got: c.inputs.len(),
                });
            }
        }
        // Single driver per net, and consistency of the driver back-pointer.
        let mut seen = vec![false; self.nets.len()];
        for (i, c) in self.cells.iter().enumerate() {
            let out = c.output.index();
            if seen[out] {
                return Err(NetlistError::MultipleDrivers(c.output));
            }
            seen[out] = true;
            if self.nets[out].driver != Driver::Cell(CellId(i as u32)) {
                return Err(NetlistError::MultipleDrivers(c.output));
            }
        }
        // Every referenced net must have a driver.
        for c in &self.cells {
            for &inp in &c.inputs {
                if matches!(self.nets[inp.index()].driver, Driver::Cell(_)) && !seen[inp.index()] {
                    return Err(NetlistError::Undriven(inp));
                }
            }
        }
        for p in &self.ports {
            for &b in &p.bits {
                if b.index() >= self.nets.len() {
                    return Err(NetlistError::DanglingPort(p.name.clone()));
                }
            }
        }
        // Acyclicity of the combinational core.
        crate::graph::topo_order(self).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn ids_expose_dense_indices() {
        assert_eq!(NetId(7).index(), 7);
        assert_eq!(CellId(3).index(), 3);
        assert_eq!(GroupId(2).index(), 2);
        assert_eq!(GroupId::DEFAULT.index(), 0);
    }

    #[test]
    fn stats_and_lookup() {
        let mut b = Builder::new("t");
        let a = b.input("a");
        let c = b.input("b");
        let x = b.xor2(a, c);
        let y = b.and2(a, c);
        let q = b.dff(x, false);
        b.output("x", x);
        b.output("y", y);
        b.output("q", q);
        let nl = b.finish();
        assert_eq!(nl.num_cells(), 3);
        assert_eq!(nl.num_seq_cells(), 1);
        let kinds = nl.count_by_kind();
        assert_eq!(kinds[&CellKind::Xor2], 1);
        assert_eq!(kinds[&CellKind::And2], 1);
        assert_eq!(kinds[&CellKind::Dff], 1);
        assert_eq!(nl.port("x").unwrap().width(), 1);
        assert!(nl.port("nope").is_none());
        assert_eq!(nl.input_ports().count(), 2);
        assert_eq!(nl.output_ports().count(), 3);
        nl.validate().unwrap();
    }

    #[test]
    fn error_display() {
        let e = NetlistError::ArityMismatch { cell: CellId(4), kind: CellKind::Mux2, got: 2 };
        assert!(e.to_string().contains("mux2"));
        assert!(e.to_string().contains('3'));
        assert!(NetlistError::MultipleDrivers(NetId(9)).to_string().contains("n9"));
        assert!(NetlistError::CombinationalCycle(CellId(1)).to_string().contains("c1"));
        assert!(NetlistError::DanglingPort("p".into()).to_string().contains('p'));
        assert!(NetlistError::Undriven(NetId(2)).to_string().contains("undriven"));
    }

    #[test]
    fn const_nets_are_first() {
        let b = Builder::new("c");
        let nl = b.finish();
        assert_eq!(nl.const0(), NetId(0));
        assert_eq!(nl.const1(), NetId(1));
        assert_eq!(nl.net(nl.const0()).driver(), Driver::Const(false));
        assert_eq!(nl.net(nl.const1()).driver(), Driver::Const(true));
    }
}
