//! Structural-Verilog import.
//!
//! Parses the gate-level subset emitted by [`crate::verilog::to_verilog`]
//! back into a [`Netlist`], enabling round-trip flows (export → external
//! tool → re-import) and letting users bring hand-written flat netlists into
//! the analysis passes. The grammar is exactly the emitted subset: scalar /
//! bus ports, `wire`/`reg` declarations, `assign` statements over the cell
//! vocabulary's operator forms, and `always @(posedge clk)` registers.

use crate::build::Builder;
use crate::netlist::{NetId, Netlist};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Errors from Verilog import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseVerilogError {
    /// 1-based line of the offending construct (0 = file level).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseVerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verilog parse error on line {}: {}", self.line, self.message)
    }
}

impl Error for ParseVerilogError {}

fn err(line: usize, message: impl Into<String>) -> ParseVerilogError {
    ParseVerilogError { line, message: message.into() }
}

#[derive(Debug, Default)]
struct PendingReg {
    init: bool,
    d: Option<String>,
    en: Option<String>,
    q_expr: Option<String>,
}

/// Parses structural Verilog (the emitted subset) into a netlist.
///
/// # Errors
///
/// Returns a [`ParseVerilogError`] describing the first unsupported or
/// malformed construct.
pub fn from_verilog(text: &str) -> Result<Netlist, ParseVerilogError> {
    let mut name = String::from("imported");
    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    // RHS expression for every assigned identifier, with its line number.
    let mut assigns: Vec<(String, String, usize)> = Vec::new();
    // reg name -> pending register info.
    let mut regs: HashMap<String, PendingReg> = HashMap::new();
    let mut reg_order: Vec<String> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let lno = lineno + 1;
        if line.is_empty() || line.starts_with("//") || line == "endmodule" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("module ") {
            let open = rest.find('(').ok_or_else(|| err(lno, "missing port list"))?;
            name = rest[..open].trim().to_owned();
            continue;
        }
        if line.starts_with("wire ") {
            continue; // wires are implied by assignments
        }
        if let Some(rest) = line.strip_prefix("input ") {
            if let Some((port, width)) = parse_port_decl(rest) {
                if port != "clk" {
                    inputs.push((port, width));
                }
                continue;
            }
            return Err(err(lno, "malformed input declaration"));
        }
        if let Some(rest) = line.strip_prefix("output ") {
            if let Some((port, width)) = parse_port_decl(rest) {
                outputs.push((port, width));
                continue;
            }
            return Err(err(lno, "malformed output declaration"));
        }
        if let Some(rest) = line.strip_prefix("reg ") {
            // `reg r12; // init=1`
            let semi = rest.find(';').ok_or_else(|| err(lno, "missing semicolon"))?;
            let rname = rest[..semi].trim().to_owned();
            let init = rest.contains("init=1");
            regs.entry(rname.clone()).or_default().init = init;
            reg_order.push(rname);
            continue;
        }
        if let Some(rest) = line.strip_prefix("always @(posedge clk) ") {
            // `rX <= d;`  or  `if (en) rX <= d;`
            let (en, body) = match rest.strip_prefix("if (") {
                Some(r) => {
                    let close = r.find(')').ok_or_else(|| err(lno, "missing ) in enable"))?;
                    (Some(r[..close].trim().to_owned()), r[close + 1..].trim())
                }
                None => (None, rest),
            };
            let arrow = body.find("<=").ok_or_else(|| err(lno, "missing <= in always"))?;
            let rname = body[..arrow].trim().to_owned();
            let d = body[arrow + 2..].trim().trim_end_matches(';').trim().to_owned();
            let slot = regs.entry(rname).or_default();
            slot.d = Some(d);
            slot.en = en;
            continue;
        }
        if let Some(rest) = line.strip_prefix("assign ") {
            let eq = rest.find('=').ok_or_else(|| err(lno, "missing = in assign"))?;
            let lhs = rest[..eq].trim().to_owned();
            let rhs = rest[eq + 1..].trim().trim_end_matches(';').trim().to_owned();
            // Register output plumbing `assign nK = rX;` is recorded on the reg.
            if rhs.starts_with('r') && rhs[1..].chars().all(|c| c.is_ascii_digit()) {
                if let Some(slot) = regs.get_mut(&rhs) {
                    slot.q_expr = Some(lhs);
                    continue;
                }
            }
            assigns.push((lhs, rhs, lno));
            continue;
        }
        return Err(err(lno, format!("unsupported construct: {line}")));
    }

    // ---- Build. ------------------------------------------------------------
    let mut b = Builder::new(name);
    let mut env: HashMap<String, NetId> = HashMap::new();
    for (port, width) in &inputs {
        if *width == 1 {
            let n = b.input(port.clone());
            env.insert(port.clone(), n);
        } else {
            let ns = b.input_bus(port.clone(), *width);
            for (i, n) in ns.iter().enumerate() {
                env.insert(format!("{port}[{i}]"), *n);
            }
        }
    }
    // Registers first (their q feeds combinational logic), deferred.
    let mut handles = Vec::new();
    for rname in &reg_order {
        let info = regs.get(rname).expect("collected");
        let q_name = info
            .q_expr
            .clone()
            .ok_or_else(|| err(0, format!("register {rname} has no output assign")))?;
        let placeholder = b.constant(false);
        let (q, h) = match &info.en {
            Some(_) => b.dffe_deferred(placeholder, info.init),
            None => b.dff_deferred(info.init),
        };
        env.insert(q_name, q);
        handles.push((rname.clone(), h));
    }
    // Combinational assigns: iterate until all are resolvable (they are a DAG,
    // so a fixed number of passes suffices; detect no-progress for errors).
    let mut remaining = assigns;
    while !remaining.is_empty() {
        let before = remaining.len();
        let mut next = Vec::new();
        for (lhs, rhs, lno) in remaining {
            match eval_expr(&mut b, &env, &rhs) {
                Some(net) => {
                    env.insert(lhs, net);
                }
                None => next.push((lhs, rhs, lno)),
            }
        }
        if next.len() == before {
            let (_, rhs, lno) = &next[0];
            return Err(err(*lno, format!("unresolvable expression: {rhs}")));
        }
        remaining = next;
    }
    // Connect registers.
    for (rname, h) in handles {
        let info = &regs[&rname];
        let d_expr =
            info.d.clone().ok_or_else(|| err(0, format!("register {rname} never driven")))?;
        let d = eval_expr(&mut b, &env, &d_expr)
            .ok_or_else(|| err(0, format!("register {rname} data {d_expr} unresolved")))?;
        match &info.en {
            Some(en_expr) => {
                let en = eval_expr(&mut b, &env, en_expr)
                    .ok_or_else(|| err(0, format!("enable {en_expr} unresolved")))?;
                b.connect_dffe(h, d, en);
            }
            None => b.connect_dff(h, d),
        }
    }
    // Output ports read from env; bits named `port[i]` or scalar `port`.
    for (port, width) in &outputs {
        if *width == 1 {
            let n =
                *env.get(port).ok_or_else(|| err(0, format!("output {port} never assigned")))?;
            b.output(port.clone(), n);
        } else {
            let bits: Result<Vec<NetId>, _> = (0..*width)
                .map(|i| {
                    env.get(&format!("{port}[{i}]"))
                        .copied()
                        .ok_or_else(|| err(0, format!("output {port}[{i}] never assigned")))
                })
                .collect();
            b.output_bus(port.clone(), &bits?);
        }
    }
    Ok(b.finish())
}

fn parse_port_decl(rest: &str) -> Option<(String, usize)> {
    let rest = rest.trim().trim_end_matches(';').trim();
    if let Some(r) = rest.strip_prefix('[') {
        // `[W-1:0] name`
        let close = r.find(']')?;
        let range = &r[..close];
        let msb: usize = range.split(':').next()?.trim().parse().ok()?;
        let name = r[close + 1..].trim().to_owned();
        Some((name, msb + 1))
    } else {
        Some((rest.to_owned(), 1))
    }
}

/// Resolves an atomic operand: a literal, an identifier, or a bus bit.
fn atom(b: &Builder, env: &HashMap<String, NetId>, token: &str) -> Option<NetId> {
    match token {
        "1'b0" => Some(b.constant(false)),
        "1'b1" => Some(b.constant(true)),
        t => env.get(t).copied(),
    }
}

/// Evaluates one right-hand side in the emitted grammar. Returns `None` when
/// an operand is not yet defined (caller retries after other assigns).
fn eval_expr(b: &mut Builder, env: &HashMap<String, NetId>, rhs: &str) -> Option<NetId> {
    let rhs = rhs.trim();
    // Majority form: (a & b) | (a & c) | (b & c)
    if rhs.starts_with('(') && rhs.matches('&').count() == 3 && rhs.matches('|').count() == 2 {
        let parts: Vec<&str> = rhs.split('|').map(str::trim).collect();
        if parts.len() == 3 && parts.iter().all(|p| p.starts_with('(') && p.ends_with(')')) {
            let first = &parts[0][1..parts[0].len() - 1];
            let ops: Vec<&str> = first.split('&').map(str::trim).collect();
            let second = &parts[1][1..parts[1].len() - 1];
            let ops2: Vec<&str> = second.split('&').map(str::trim).collect();
            if ops.len() == 2 && ops2.len() == 2 {
                let a = atom(b, env, ops[0])?;
                let x = atom(b, env, ops[1])?;
                let c = atom(b, env, ops2[1])?;
                return Some(b.maj3(a, x, c));
            }
        }
    }
    // Mux: `s ? x : y`
    if let Some(q) = rhs.find('?') {
        let c = rhs.find(':')?;
        let sel = atom(b, env, rhs[..q].trim())?;
        let x = atom(b, env, rhs[q + 1..c].trim())?;
        let y = atom(b, env, rhs[c + 1..].trim())?;
        return Some(b.mux2(y, x, sel));
    }
    // Inverted group: `~(...)`
    if let Some(inner) = rhs.strip_prefix("~(").and_then(|r| r.strip_suffix(')')) {
        let n = eval_binary(b, env, inner)?;
        return Some(b.inv(n));
    }
    // Plain inverter: `~a`
    if let Some(t) = rhs.strip_prefix('~') {
        let n = atom(b, env, t.trim())?;
        return Some(b.inv(n));
    }
    // Binary / ternary and-or chains or a bare atom.
    eval_binary(b, env, rhs)
}

fn eval_binary(b: &mut Builder, env: &HashMap<String, NetId>, expr: &str) -> Option<NetId> {
    let expr = expr.trim();
    for (op, is_and) in [(" & ", true), (" | ", false)] {
        if expr.contains(op) {
            let parts: Vec<&str> = expr.split(op).map(str::trim).collect();
            let mut acc = atom(b, env, parts[0])?;
            for p in &parts[1..] {
                let n = atom(b, env, p)?;
                acc = if is_and { b.and2(acc, n) } else { b.or2(acc, n) };
            }
            return Some(acc);
        }
    }
    if expr.contains(" ^ ") {
        let parts: Vec<&str> = expr.split(" ^ ").map(str::trim).collect();
        let mut acc = atom(b, env, parts[0])?;
        for p in &parts[1..] {
            let n = atom(b, env, p)?;
            acc = b.xor2(acc, n);
        }
        return Some(acc);
    }
    atom(b, env, expr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::to_verilog;
    use crate::Builder;

    #[test]
    fn round_trips_a_half_adder() {
        let mut b = Builder::new("ha");
        let x = b.input("a");
        let y = b.input("b");
        let s = b.xor2(x, y);
        let c = b.and2(x, y);
        b.output("sum", s);
        b.output("carry", c);
        let original = b.finish();
        let text = to_verilog(&original);
        let imported = from_verilog(&text).unwrap();
        imported.validate().unwrap();
        assert_eq!(imported.name(), "ha");
        assert_eq!(imported.num_cells(), original.num_cells());
        assert_eq!(imported.input_ports().count(), 2);
        assert_eq!(imported.output_ports().count(), 2);
    }

    #[test]
    fn round_trips_registers_with_init_and_enable() {
        let mut b = Builder::new("regs");
        let d = b.input("d");
        let en = b.input("en");
        let q1 = b.dff(d, true);
        let q2 = b.dffe(d, en, false);
        let o = b.xor2(q1, q2);
        b.output("o", o);
        let original = b.finish();
        let imported = from_verilog(&to_verilog(&original)).unwrap();
        imported.validate().unwrap();
        assert_eq!(imported.num_seq_cells(), 2);
        let inits: Vec<bool> = imported
            .cells()
            .filter(|(_, c)| c.kind().is_sequential())
            .map(|(_, c)| c.init())
            .collect();
        assert!(inits.contains(&true) && inits.contains(&false));
    }

    #[test]
    fn round_trips_buses_and_mux() {
        let mut b = Builder::new("busmux");
        let xs = b.input_bus("x", 3);
        let sel = b.input("sel");
        let m = b.mux2(xs[0], xs[1], sel);
        let mj = b.maj3(xs[0], xs[1], xs[2]);
        b.output_bus("y", &[m, mj]);
        let original = b.finish();
        let imported = from_verilog(&to_verilog(&original)).unwrap();
        imported.validate().unwrap();
        assert_eq!(imported.port("x").unwrap().width(), 3);
        assert_eq!(imported.port("y").unwrap().width(), 2);
    }

    #[test]
    fn rejects_unsupported_constructs() {
        let e = from_verilog("module m (a);\n  initial begin end\nendmodule\n");
        assert!(e.is_err());
        let msg = e.unwrap_err().to_string();
        assert!(msg.contains("line 2"), "{msg}");
    }

    #[test]
    fn error_type_is_well_behaved() {
        let e = err(3, "boom");
        assert!(e.to_string().contains("line 3"));
        fn takes<E: std::error::Error>(_: E) {}
        takes(e);
    }
}
