//! Graph algorithms over netlists: topological ordering, levelization,
//! fanout analysis and logic-cone extraction.
//!
//! Sequential cells cut the graph: a flip-flop's output is treated as a
//! source and its input as a sink, so "the combinational core" is a DAG whose
//! sources are primary inputs, constants and register outputs.

use crate::kind::CellKind;
use crate::netlist::{CellId, Driver, NetId, Netlist, NetlistError};

/// Topologically orders the **combinational** cells (flip-flops excluded)
/// such that every cell appears after the drivers of all its inputs.
///
/// # Errors
///
/// Returns [`NetlistError::CombinationalCycle`] if the combinational core is
/// cyclic.
pub fn topo_order(nl: &Netlist) -> Result<Vec<CellId>, NetlistError> {
    let n = nl.num_cells();
    // in-degree over combinational cells only
    let mut indeg = vec![0u32; n];
    let mut is_comb = vec![false; n];
    for (id, cell) in nl.cells() {
        if !cell.kind().is_sequential() {
            is_comb[id.index()] = true;
            for &inp in cell.inputs() {
                if let Driver::Cell(src) = nl.net(inp).driver() {
                    if !nl.cell(src).kind().is_sequential() {
                        indeg[id.index()] += 1;
                    }
                }
            }
        }
    }
    // Fanout adjacency from combinational cell -> combinational cell.
    let mut fanout: Vec<Vec<CellId>> = vec![Vec::new(); n];
    for (id, cell) in nl.cells() {
        if !is_comb[id.index()] {
            continue;
        }
        for &inp in cell.inputs() {
            if let Driver::Cell(src) = nl.net(inp).driver() {
                if is_comb[src.index()] {
                    fanout[src.index()].push(id);
                }
            }
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<CellId> =
        (0..n).filter(|&i| is_comb[i] && indeg[i] == 0).map(|i| CellId(i as u32)).collect();
    while let Some(c) = queue.pop() {
        order.push(c);
        for &next in &fanout[c.index()] {
            indeg[next.index()] -= 1;
            if indeg[next.index()] == 0 {
                queue.push(next);
            }
        }
    }
    let comb_total = is_comb.iter().filter(|&&b| b).count();
    if order.len() != comb_total {
        // Find one cell stuck in a cycle for the error message.
        let stuck = (0..n)
            .find(|&i| is_comb[i] && indeg[i] > 0)
            .map(|i| CellId(i as u32))
            .expect("cycle implies a stuck cell");
        return Err(NetlistError::CombinationalCycle(stuck));
    }
    Ok(order)
}

/// Per-cell logic depth: the number of combinational cells on the longest
/// path from any source (input, constant or register output) up to and
/// including the cell. Registers have depth 0.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn levelize(nl: &Netlist) -> Result<Vec<u32>, NetlistError> {
    let order = topo_order(nl)?;
    let mut depth = vec![0u32; nl.num_cells()];
    for c in order {
        let cell = nl.cell(c);
        let mut d = 0;
        for &inp in cell.inputs() {
            if let Driver::Cell(src) = nl.net(inp).driver() {
                if !nl.cell(src).kind().is_sequential() {
                    d = d.max(depth[src.index()]);
                }
            }
        }
        depth[c.index()] = d + 1;
    }
    Ok(depth)
}

/// Maximum combinational depth of the design (0 for an empty / purely
/// sequential design).
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn max_depth(nl: &Netlist) -> Result<u32, NetlistError> {
    Ok(levelize(nl)?.into_iter().max().unwrap_or(0))
}

/// Number of cell input pins each net drives (its fanout). Indexed by
/// [`NetId::index`]. Port connections are not counted.
#[must_use]
pub fn fanout_counts(nl: &Netlist) -> Vec<u32> {
    let mut counts = vec![0u32; nl.num_nets()];
    for (_, cell) in nl.cells() {
        for &inp in cell.inputs() {
            counts[inp.index()] += 1;
        }
    }
    counts
}

/// The set of cells in the transitive fan-in cone of `net`, stopping at
/// sequential cells (their cone is not entered, but the register itself is
/// included).
#[must_use]
pub fn fanin_cone(nl: &Netlist, net: NetId) -> Vec<CellId> {
    let mut visited = vec![false; nl.num_cells()];
    let mut stack = vec![net];
    let mut cone = Vec::new();
    while let Some(n) = stack.pop() {
        if let Driver::Cell(c) = nl.net(n).driver() {
            if visited[c.index()] {
                continue;
            }
            visited[c.index()] = true;
            cone.push(c);
            if !nl.cell(c).kind().is_sequential() {
                for &inp in nl.cell(c).inputs() {
                    stack.push(inp);
                }
            }
        }
    }
    cone
}

/// Precomputed net → sink-cell adjacency for fanout-cone extraction: which
/// cells read each net, over **all** cells (combinational and sequential).
///
/// Built once per netlist and reused across many [`FanoutCones::cone`]
/// queries — fault campaigns ask for the union cone of every chunk of
/// pinned sites, so the adjacency scan must not be repeated per chunk.
#[derive(Debug, Clone)]
pub struct FanoutCones {
    /// `sinks[net.index()]` = cells with `net` on an input pin.
    sinks: Vec<Vec<CellId>>,
}

impl FanoutCones {
    /// Scans the netlist's cell input pins into a net-indexed sink table.
    #[must_use]
    pub fn new(nl: &Netlist) -> Self {
        let mut sinks: Vec<Vec<CellId>> = vec![Vec::new(); nl.num_nets()];
        for (id, cell) in nl.cells() {
            for &inp in cell.inputs() {
                let s = &mut sinks[inp.index()];
                if s.last() != Some(&id) {
                    s.push(id);
                }
            }
        }
        FanoutCones { sinks }
    }

    /// The cells reading `net` (each sink cell listed once per distinct
    /// cell, even when `net` feeds several of its pins).
    #[must_use]
    pub fn sinks_of(&self, net: NetId) -> &[CellId] {
        &self.sinks[net.index()]
    }

    /// Transitive fanout cone of a set of root nets: a cell-indexed
    /// membership vector where `cone[cell.index()]` is true iff the cell's
    /// output can be affected by some root net.
    ///
    /// Sequential cells do **not** cut the traversal: reaching a flip-flop's
    /// data (or enable) pin puts the flip-flop in the cone and continues
    /// from its output net, which closes register feedback loops — a fault
    /// feeding a register can corrupt state that re-enters the
    /// combinational core on the next cycle, possibly back upstream of the
    /// fault site itself. The BFS visits each cell once, so cyclic feedback
    /// terminates.
    #[must_use]
    pub fn cone(&self, nl: &Netlist, roots: &[NetId]) -> Vec<bool> {
        let mut in_cone = vec![false; nl.num_cells()];
        let mut queued = vec![false; nl.num_nets()];
        let mut frontier: Vec<NetId> = Vec::new();
        for &r in roots {
            if !queued[r.index()] {
                queued[r.index()] = true;
                frontier.push(r);
            }
        }
        while let Some(n) = frontier.pop() {
            for &c in self.sinks_of(n) {
                if in_cone[c.index()] {
                    continue;
                }
                in_cone[c.index()] = true;
                let out = nl.cell(c).output();
                if !queued[out.index()] {
                    queued[out.index()] = true;
                    frontier.push(out);
                }
            }
        }
        in_cone
    }
}

/// Cells whose outputs reach neither a primary output nor a flip-flop data
/// pin: dead logic that a synthesis sweep would remove. The builder's
/// folding usually prevents these, but approximation passes can orphan
/// cells.
#[must_use]
pub fn dead_cells(nl: &Netlist) -> Vec<CellId> {
    let mut live = vec![false; nl.num_cells()];
    let mut stack: Vec<NetId> = Vec::new();
    for p in nl.output_ports() {
        stack.extend(p.bits().iter().copied());
    }
    // Register inputs keep their cones alive (the register feeds state).
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            stack.extend(cell.inputs().iter().copied());
        }
    }
    while let Some(n) = stack.pop() {
        if let Driver::Cell(c) = nl.net(n).driver() {
            if live[c.index()] {
                continue;
            }
            live[c.index()] = true;
            for &inp in nl.cell(c).inputs() {
                stack.push(inp);
            }
        }
    }
    (0..nl.num_cells())
        .filter(|&i| {
            !live[i] && !matches!(nl.cell(CellId(i as u32)).kind(), CellKind::Dff | CellKind::DffE)
        })
        .map(|i| CellId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn topo_order_respects_dependencies() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.or2(g1, x);
        let g3 = b.xor2(g2, g1);
        b.output("o", g3);
        let nl = b.finish();
        let order = topo_order(&nl).unwrap();
        assert_eq!(order.len(), 3);
        let pos = |c: CellId| order.iter().position(|&o| o == c).unwrap();
        // g1 < g2 < g3 by construction: map nets back to cells via drivers.
        let cell_of = |n: NetId| match nl.net(n).driver() {
            Driver::Cell(c) => c,
            _ => panic!(),
        };
        assert!(pos(cell_of(g1)) < pos(cell_of(g2)));
        assert!(pos(cell_of(g2)) < pos(cell_of(g3)));
    }

    #[test]
    fn levelize_depths() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.or2(g1, x);
        let g3 = b.xor2(g2, g1);
        b.output("o", g3);
        let nl = b.finish();
        assert_eq!(max_depth(&nl).unwrap(), 3);
        let cell_of = |n: NetId| match nl.net(n).driver() {
            Driver::Cell(c) => c,
            _ => panic!(),
        };
        let depth = levelize(&nl).unwrap();
        assert_eq!(depth[cell_of(g1).index()], 1);
        assert_eq!(depth[cell_of(g2).index()], 2);
        assert_eq!(depth[cell_of(g3).index()], 3);
    }

    #[test]
    fn registers_break_paths() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let g1 = b.inv(x);
        let q = b.dff(g1, false);
        let g2 = b.inv(q);
        b.output("o", g2);
        let nl = b.finish();
        // Both inverters are depth 1: the register cuts the path.
        assert_eq!(max_depth(&nl).unwrap(), 1);
    }

    #[test]
    fn register_feedback_loop_is_legal() {
        // A toggle flip-flop: q' = !q. Cyclic through the register, which is
        // fine; only combinational cycles are errors.
        let mut b = Builder::new("t");
        let placeholder = b.input("seed");
        let q = b.dff(placeholder, false);
        let nq = b.inv(q);
        b.output("o", nq);
        let nl = b.finish();
        assert!(topo_order(&nl).is_ok());
    }

    #[test]
    fn fanout_counts_pins() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.or2(g1, x);
        let _g3 = b.xor2(g2, g1);
        let nl = b.finish();
        let counts = fanout_counts(&nl);
        assert_eq!(counts[x.index()], 2); // and2 + or2
        assert_eq!(counts[g1.index()], 2); // or2 + xor2
    }

    #[test]
    fn fanin_cone_stops_at_registers() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let q = b.dff(g1, false);
        let g2 = b.or2(q, x);
        b.output("o", g2);
        let nl = b.finish();
        let cone = fanin_cone(&nl, g2);
        // or2 + dff, but not the and2 behind the register.
        assert_eq!(cone.len(), 2);
    }

    #[test]
    fn fanout_cone_reaches_transitive_sinks_only() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.or2(g1, x);
        let g3 = b.xor2(g2, g1);
        let side = b.inv(y); // not downstream of g1
        b.output("o", g3);
        b.output("s", side);
        let nl = b.finish();
        let cones = FanoutCones::new(&nl);
        let cell_of = |n: NetId| match nl.net(n).driver() {
            Driver::Cell(c) => c,
            _ => panic!(),
        };
        let cone = cones.cone(&nl, &[g1]);
        assert!(!cone[cell_of(g1).index()], "the root's own driver is upstream, not in the cone");
        assert!(cone[cell_of(g2).index()]);
        assert!(cone[cell_of(g3).index()]);
        assert!(!cone[cell_of(side).index()]);
        // A multi-root query unions the cones.
        let both = cones.cone(&nl, &[g1, y]);
        assert!(both[cell_of(side).index()]);
        assert!(both[cell_of(g1).index()], "y feeds the and2 directly");
    }

    #[test]
    fn fanout_cone_closes_register_feedback() {
        // q feeds logic that feeds q's own data pin: the cone of the
        // feedback net must include the register *and* everything its
        // output reaches, wrapping around the cycle exactly once.
        let mut b = Builder::new("t");
        let x = b.input("x");
        let (q, h) = b.dff_deferred(false);
        let fb = b.xor2(q, x);
        b.connect_dff(h, fb);
        let downstream = b.inv(q);
        b.output("o", downstream);
        let nl = b.finish();
        let cones = FanoutCones::new(&nl);
        let cell_of = |n: NetId| match nl.net(n).driver() {
            Driver::Cell(c) => c,
            _ => panic!(),
        };
        let cone = cones.cone(&nl, &[fb]);
        assert!(cone[cell_of(q).index()], "register captures the faulted feedback net");
        assert!(cone[cell_of(downstream).index()], "and its output cone follows");
        assert!(cone[cell_of(fb).index()], "feedback wraps back through the xor");
    }

    #[test]
    fn fanout_sinks_dedup_multi_pin_cells() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.mux2(x, y, x); // x on two pins of one cell
        b.output("o", g);
        let nl = b.finish();
        let cones = FanoutCones::new(&nl);
        assert_eq!(cones.sinks_of(x).len(), 1, "one cell, even with x on two pins");
    }

    #[test]
    fn dead_cell_detection() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let live = b.and2(x, y);
        let _dead = b.xor2(x, y); // never used by any output
        b.output("o", live);
        let nl = b.finish();
        let dead = dead_cells(&nl);
        assert_eq!(dead.len(), 1);
    }

    #[test]
    fn empty_design() {
        let nl = Builder::new("empty").finish();
        assert_eq!(max_depth(&nl).unwrap(), 0);
        assert!(topo_order(&nl).unwrap().is_empty());
        assert!(dead_cells(&nl).is_empty());
    }
}
