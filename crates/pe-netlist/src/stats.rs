//! Netlist statistics: depth profiles, fanout histograms and structural
//! summaries used by reports and by calibration sanity checks.

use crate::graph;
use crate::netlist::{Netlist, NetlistError};
use std::collections::BTreeMap;

/// A structural summary of a netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct NetlistStats {
    /// Total cells.
    pub cells: usize,
    /// Sequential cells.
    pub flip_flops: usize,
    /// Nets (including constants).
    pub nets: usize,
    /// Maximum combinational depth.
    pub max_depth: u32,
    /// Mean combinational depth over cells.
    pub mean_depth: f64,
    /// Maximum fanout of any net.
    pub max_fanout: u32,
    /// Mean fanout over cell-driven nets.
    pub mean_fanout: f64,
    /// Cell count per depth level (index = depth).
    pub depth_histogram: Vec<usize>,
    /// Cell count per kind name.
    pub kind_histogram: BTreeMap<String, usize>,
}

/// Computes a [`NetlistStats`] summary.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`].
pub fn summarize(nl: &Netlist) -> Result<NetlistStats, NetlistError> {
    let depths = graph::levelize(nl)?;
    let fanouts = graph::fanout_counts(nl);
    let max_depth = depths.iter().copied().max().unwrap_or(0);
    let comb_cells: Vec<u32> = nl
        .cells()
        .filter(|(_, c)| !c.kind().is_sequential())
        .map(|(id, _)| depths[id.index()])
        .collect();
    let mean_depth = if comb_cells.is_empty() {
        0.0
    } else {
        comb_cells.iter().map(|&d| f64::from(d)).sum::<f64>() / comb_cells.len() as f64
    };
    let mut depth_histogram = vec![0usize; max_depth as usize + 1];
    for &d in &comb_cells {
        depth_histogram[d as usize] += 1;
    }
    let driven: Vec<u32> = nl.cells().map(|(_, c)| fanouts[c.output().index()]).collect();
    let max_fanout = driven.iter().copied().max().unwrap_or(0);
    let mean_fanout = if driven.is_empty() {
        0.0
    } else {
        driven.iter().map(|&f| f64::from(f)).sum::<f64>() / driven.len() as f64
    };
    let mut kind_histogram = BTreeMap::new();
    for (_, c) in nl.cells() {
        *kind_histogram.entry(c.kind().name().to_owned()).or_insert(0) += 1;
    }
    Ok(NetlistStats {
        cells: nl.num_cells(),
        flip_flops: nl.num_seq_cells(),
        nets: nl.num_nets(),
        max_depth,
        mean_depth,
        max_fanout,
        mean_fanout,
        depth_histogram,
        kind_histogram,
    })
}

impl NetlistStats {
    /// A compact human-readable rendering.
    #[must_use]
    pub fn to_table(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "cells      : {} ({} flip-flops)", self.cells, self.flip_flops);
        let _ = writeln!(s, "nets       : {}", self.nets);
        let _ = writeln!(s, "depth      : max {} / mean {:.1}", self.max_depth, self.mean_depth);
        let _ = writeln!(s, "fanout     : max {} / mean {:.1}", self.max_fanout, self.mean_fanout);
        let _ = writeln!(s, "kinds      :");
        for (k, n) in &self.kind_histogram {
            let _ = writeln!(s, "  {k:<8} {n}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    fn sample() -> Netlist {
        let mut b = Builder::new("s");
        let x = b.input("x");
        let y = b.input("y");
        let g1 = b.and2(x, y);
        let g2 = b.xor2(g1, x);
        let g3 = b.or2(g2, g1);
        let q = b.dff(g3, false);
        b.output("q", q);
        b.finish()
    }

    #[test]
    fn summary_counts_are_consistent() {
        let nl = sample();
        let s = summarize(&nl).unwrap();
        assert_eq!(s.cells, 4);
        assert_eq!(s.flip_flops, 1);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.depth_histogram.iter().sum::<usize>(), 3); // comb cells only
        assert_eq!(s.kind_histogram["and2"], 1);
        assert_eq!(s.kind_histogram["dff"], 1);
        assert!(s.mean_depth > 1.0 && s.mean_depth <= 3.0);
        assert!(s.max_fanout >= 2); // g1 feeds xor and or
    }

    #[test]
    fn table_rendering_mentions_everything() {
        let nl = sample();
        let t = summarize(&nl).unwrap().to_table();
        assert!(t.contains("cells"));
        assert!(t.contains("and2"));
        assert!(t.contains("flip-flops"));
    }

    #[test]
    fn empty_design_summary() {
        let nl = Builder::new("e").finish();
        let s = summarize(&nl).unwrap();
        assert_eq!(s.cells, 0);
        assert_eq!(s.max_depth, 0);
        assert_eq!(s.mean_fanout, 0.0);
    }
}
