//! Seeded random netlist generation and raw (unchecked) netlist
//! construction for fuzz- and adversarial-style testing.
//!
//! Downstream crates (and this crate's own property tests) use
//! [`random_netlist`] to throw arbitrary-but-valid designs at exporters,
//! parsers, optimizers and simulators. The generator only produces legal
//! structures (acyclic combinational cores, registered feedback, connected
//! ports), so any failure in a consumer is a real bug.
//!
//! [`RawNetlistBuilder`] is the opposite tool: it assembles a [`Netlist`]
//! with **no folding, CSE or invariant checking**, so validation and lint
//! passes can be tested against deliberately broken structures (multi-driven
//! nets, floating inputs, non-register combinational loops, dead cones) that
//! the safe [`Builder`] makes unconstructable by design.

use crate::build::Builder;
use crate::kind::CellKind;
use crate::netlist::{Cell, CellId, Driver, GroupId, Net, NetId, Netlist, Port, PortDir};

/// Shape parameters for [`random_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetlistSpec {
    /// Primary input count (1-bit each).
    pub inputs: usize,
    /// Combinational gates to attempt (folding may reduce the final count).
    pub gates: usize,
    /// Flip-flops to sprinkle in (with feedback).
    pub registers: usize,
    /// Primary outputs to expose.
    pub outputs: usize,
    /// Name prefix of the input ports (`"i"` yields `i0, i1, …`). Simulator
    /// batch tests use `"x"` to match the `x{j}` convention of
    /// `Simulator::run_batch`.
    pub input_prefix: &'static str,
}

impl Default for RandomNetlistSpec {
    fn default() -> Self {
        RandomNetlistSpec { inputs: 4, gates: 30, registers: 2, outputs: 3, input_prefix: "i" }
    }
}

/// A tiny deterministic PRNG (xorshift64*) so this module needs no
/// dependencies and generation is reproducible across platforms.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Generates a random, always-valid netlist.
///
/// # Panics
///
/// Panics if `spec.inputs` or `spec.outputs` is zero.
#[must_use]
pub fn random_netlist(spec: &RandomNetlistSpec, seed: u64) -> Netlist {
    assert!(spec.inputs >= 1, "need at least one input");
    assert!(spec.outputs >= 1, "need at least one output");
    let mut rng = XorShift::new(seed);
    let mut b = Builder::new(format!("fuzz_{seed:x}"));
    let mut pool: Vec<NetId> =
        (0..spec.inputs).map(|i| b.input(format!("{}{i}", spec.input_prefix))).collect();
    // Deferred registers give sequential feedback: their data comes from
    // nets created later.
    let mut handles = Vec::new();
    for _ in 0..spec.registers {
        let (q, h) = b.dff_deferred(rng.next() & 1 == 1);
        pool.push(q);
        handles.push(h);
    }
    for _ in 0..spec.gates {
        let a = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let d = pool[rng.below(pool.len())];
        let out = match rng.below(10) {
            0 => b.inv(a),
            1 => b.and2(a, c),
            2 => b.or2(a, c),
            3 => b.xor2(a, c),
            4 => b.nand2(a, c),
            5 => b.nor2(a, c),
            6 => b.xnor2(a, c),
            7 => b.mux2(a, c, d),
            8 => b.maj3(a, c, d),
            _ => {
                let t = b.and2(a, c);
                b.or2(t, d)
            }
        };
        pool.push(out);
    }
    for h in handles {
        let d = pool[rng.below(pool.len())];
        b.connect_dff(h, d);
    }
    for k in 0..spec.outputs {
        let n = pool[pool.len() - 1 - rng.below(pool.len().min(8))];
        b.output(format!("o{k}"), n);
        let _ = n;
    }
    b.finish()
}

/// Assembles a [`Netlist`] directly from nets, cells and ports with **no**
/// invariant enforcement — the construction escape hatch for testing
/// [`Netlist::validate`] and the `pe-lint` passes against pathological
/// structures the folding [`Builder`] cannot produce.
///
/// Nothing here folds, shares or checks: a cell's output claim simply
/// overwrites the net's driver (so two cells can contend for one net), nets
/// can reference drivers that never materialize, and input pins can point at
/// out-of-range net ids via [`RawNetlistBuilder::phantom_net`].
#[derive(Debug)]
pub struct RawNetlistBuilder {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    ports: Vec<Port>,
}

impl RawNetlistBuilder {
    /// An empty raw design holding only the two constant nets (net 0 =
    /// const0, net 1 = const1), matching [`Builder`]'s layout.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        RawNetlistBuilder {
            name: name.into(),
            nets: vec![
                Net { name: Some("const0".into()), driver: Driver::Const(false) },
                Net { name: Some("const1".into()), driver: Driver::Const(true) },
            ],
            cells: Vec::new(),
            ports: Vec::new(),
        }
    }

    /// A fresh net with an explicit driver record — including dangling
    /// claims like `Driver::Cell(c)` for a cell that drives something else
    /// (an *undriven* net in validation terms).
    pub fn net(&mut self, driver: Driver) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: None, driver });
        id
    }

    /// A fresh primary-input net plus its scalar input port.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = self.net(Driver::Input);
        self.nets[id.index()].name = Some(name.clone());
        self.ports.push(Port { name, dir: PortDir::Input, bits: vec![id] });
        id
    }

    /// A [`NetId`] with an arbitrary raw index — possibly out of range, for
    /// floating-pin and dangling-port tests.
    #[must_use]
    pub fn phantom_net(&self, raw: u32) -> NetId {
        NetId(raw)
    }

    /// Adds a cell with the given pins, claiming `output`'s driver record
    /// (overwriting any previous claim — that is how multi-driven nets are
    /// built). Pin counts and net ranges are deliberately unchecked.
    pub fn cell(&mut self, kind: CellKind, inputs: &[NetId], output: NetId) -> CellId {
        self.cell_with_init(kind, inputs, output, false)
    }

    /// [`RawNetlistBuilder::cell`] with an explicit power-on value for
    /// sequential kinds.
    pub fn cell_with_init(
        &mut self,
        kind: CellKind,
        inputs: &[NetId],
        output: NetId,
        init: bool,
    ) -> CellId {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell {
            kind,
            inputs: inputs.to_vec(),
            output,
            group: GroupId::DEFAULT,
            init,
        });
        if output.index() < self.nets.len() {
            self.nets[output.index()].driver = Driver::Cell(id);
        }
        id
    }

    /// Overwrites a net's driver record after the fact (e.g. to fabricate an
    /// undriven net whose record points at a cell driving something else).
    pub fn set_driver(&mut self, net: NetId, driver: Driver) {
        self.nets[net.index()].driver = driver;
    }

    /// Declares a (possibly dangling) output port over the given bits.
    pub fn output(&mut self, name: impl Into<String>, bits: &[NetId]) {
        self.ports.push(Port { name: name.into(), dir: PortDir::Output, bits: bits.to_vec() });
    }

    /// The assembled netlist, exactly as specified — run
    /// [`Netlist::validate`] or a lint pass to find out what is wrong
    /// with it.
    #[must_use]
    pub fn finish(self) -> Netlist {
        Netlist {
            name: self.name,
            nets: self.nets,
            cells: self.cells,
            ports: self.ports,
            groups: vec!["top".into()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_netlists_always_validate() {
        for seed in 0..40 {
            let nl = random_netlist(&RandomNetlistSpec::default(), seed);
            nl.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = RandomNetlistSpec {
            inputs: 3,
            gates: 20,
            registers: 1,
            outputs: 2,
            ..RandomNetlistSpec::default()
        };
        let a = random_netlist(&spec, 9);
        let c = random_netlist(&spec, 9);
        assert_eq!(a.num_cells(), c.num_cells());
        assert_eq!(a.num_nets(), c.num_nets());
    }

    #[test]
    fn raw_builder_expresses_structures_validate_rejects() {
        use crate::netlist::NetlistError;
        // Multi-driven: two AND gates claiming one output net.
        let mut rb = RawNetlistBuilder::new("multi");
        let a = rb.input("a");
        let b = rb.input("b");
        let y = rb.net(Driver::Input);
        rb.cell(CellKind::And2, &[a, b], y);
        rb.cell(CellKind::Or2, &[a, b], y);
        rb.output("y", &[y]);
        let nl = rb.finish();
        assert!(matches!(nl.validate(), Err(NetlistError::MultipleDrivers(n)) if n == y));

        // Non-register combinational loop: two inverters feeding each other.
        let mut rb = RawNetlistBuilder::new("loop");
        let n1 = rb.net(Driver::Input);
        let n2 = rb.net(Driver::Input);
        rb.cell(CellKind::Inv, &[n2], n1);
        rb.cell(CellKind::Inv, &[n1], n2);
        rb.output("o", &[n1]);
        let nl = rb.finish();
        assert!(matches!(nl.validate(), Err(NetlistError::CombinationalCycle(_))));

        // Undriven: a net claiming a cell that actually drives another net.
        let mut rb = RawNetlistBuilder::new("undriven");
        let a = rb.input("a");
        let y = rb.net(Driver::Input);
        let c = rb.cell(CellKind::Inv, &[a], y);
        let ghost = rb.net(Driver::Cell(c));
        let z = rb.net(Driver::Input);
        rb.cell(CellKind::Inv, &[ghost], z);
        rb.output("z", &[z]);
        let nl = rb.finish();
        assert!(matches!(nl.validate(), Err(NetlistError::Undriven(n)) if n == ghost));
    }

    #[test]
    fn raw_builder_can_build_clean_netlists_too() {
        let mut rb = RawNetlistBuilder::new("clean");
        let a = rb.input("a");
        let b = rb.input("b");
        let y = rb.net(Driver::Input);
        rb.cell(CellKind::Xor2, &[a, b], y);
        rb.output("y", &[y]);
        let nl = rb.finish();
        nl.validate().unwrap();
        assert_eq!(nl.num_cells(), 1);
    }

    #[test]
    fn respects_shape_parameters() {
        let spec = RandomNetlistSpec {
            inputs: 5,
            gates: 50,
            registers: 3,
            outputs: 4,
            ..RandomNetlistSpec::default()
        };
        let nl = random_netlist(&spec, 3);
        assert_eq!(nl.input_ports().count(), 5);
        assert_eq!(nl.output_ports().count(), 4);
        assert_eq!(nl.num_seq_cells(), 3);
        assert!(nl.num_cells() <= 50 + 3 + 50 /* composite gates */);
    }
}
