//! Seeded random netlist generation for fuzz-style testing.
//!
//! Downstream crates (and this crate's own property tests) use
//! [`random_netlist`] to throw arbitrary-but-valid designs at exporters,
//! parsers, optimizers and simulators. The generator only produces legal
//! structures (acyclic combinational cores, registered feedback, connected
//! ports), so any failure in a consumer is a real bug.

use crate::build::Builder;
use crate::netlist::{NetId, Netlist};

/// Shape parameters for [`random_netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomNetlistSpec {
    /// Primary input count (1-bit each).
    pub inputs: usize,
    /// Combinational gates to attempt (folding may reduce the final count).
    pub gates: usize,
    /// Flip-flops to sprinkle in (with feedback).
    pub registers: usize,
    /// Primary outputs to expose.
    pub outputs: usize,
    /// Name prefix of the input ports (`"i"` yields `i0, i1, …`). Simulator
    /// batch tests use `"x"` to match the `x{j}` convention of
    /// `Simulator::run_batch`.
    pub input_prefix: &'static str,
}

impl Default for RandomNetlistSpec {
    fn default() -> Self {
        RandomNetlistSpec { inputs: 4, gates: 30, registers: 2, outputs: 3, input_prefix: "i" }
    }
}

/// A tiny deterministic PRNG (xorshift64*) so this module needs no
/// dependencies and generation is reproducible across platforms.
#[derive(Debug, Clone)]
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Generates a random, always-valid netlist.
///
/// # Panics
///
/// Panics if `spec.inputs` or `spec.outputs` is zero.
#[must_use]
pub fn random_netlist(spec: &RandomNetlistSpec, seed: u64) -> Netlist {
    assert!(spec.inputs >= 1, "need at least one input");
    assert!(spec.outputs >= 1, "need at least one output");
    let mut rng = XorShift::new(seed);
    let mut b = Builder::new(format!("fuzz_{seed:x}"));
    let mut pool: Vec<NetId> =
        (0..spec.inputs).map(|i| b.input(format!("{}{i}", spec.input_prefix))).collect();
    // Deferred registers give sequential feedback: their data comes from
    // nets created later.
    let mut handles = Vec::new();
    for _ in 0..spec.registers {
        let (q, h) = b.dff_deferred(rng.next() & 1 == 1);
        pool.push(q);
        handles.push(h);
    }
    for _ in 0..spec.gates {
        let a = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let d = pool[rng.below(pool.len())];
        let out = match rng.below(10) {
            0 => b.inv(a),
            1 => b.and2(a, c),
            2 => b.or2(a, c),
            3 => b.xor2(a, c),
            4 => b.nand2(a, c),
            5 => b.nor2(a, c),
            6 => b.xnor2(a, c),
            7 => b.mux2(a, c, d),
            8 => b.maj3(a, c, d),
            _ => {
                let t = b.and2(a, c);
                b.or2(t, d)
            }
        };
        pool.push(out);
    }
    for h in handles {
        let d = pool[rng.below(pool.len())];
        b.connect_dff(h, d);
    }
    for k in 0..spec.outputs {
        let n = pool[pool.len() - 1 - rng.below(pool.len().min(8))];
        b.output(format!("o{k}"), n);
        let _ = n;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_netlists_always_validate() {
        for seed in 0..40 {
            let nl = random_netlist(&RandomNetlistSpec::default(), seed);
            nl.validate().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = RandomNetlistSpec {
            inputs: 3,
            gates: 20,
            registers: 1,
            outputs: 2,
            ..RandomNetlistSpec::default()
        };
        let a = random_netlist(&spec, 9);
        let c = random_netlist(&spec, 9);
        assert_eq!(a.num_cells(), c.num_cells());
        assert_eq!(a.num_nets(), c.num_nets());
    }

    #[test]
    fn respects_shape_parameters() {
        let spec = RandomNetlistSpec {
            inputs: 5,
            gates: 50,
            registers: 3,
            outputs: 4,
            ..RandomNetlistSpec::default()
        };
        let nl = random_netlist(&spec, 3);
        assert_eq!(nl.input_ports().count(), 5);
        assert_eq!(nl.output_ports().count(), 4);
        assert_eq!(nl.num_seq_cells(), 3);
        assert!(nl.num_cells() <= 50 + 3 + 50 /* composite gates */);
    }
}
