//! Netlist construction with on-the-fly logic optimization.
//!
//! [`Builder`] is the single way to create a [`Netlist`]. Every gate-creation
//! call goes through two peephole layers:
//!
//! 1. **Constant folding** — gates fed by the constant nets are simplified
//!    away. Because bespoke printed classifiers hardwire coefficients to
//!    constants, this layer is what turns a generic MUX-ROM or multiplier
//!    into the pruned "bespoke" structure the papers report.
//! 2. **Structural hashing (CSE)** — a gate whose kind and (canonicalized)
//!    inputs already exist returns the existing output net.
//!
//! The builder also tracks *architectural groups* so that downstream area and
//! power reports can be broken down by the paper's Fig. 1 blocks.

use crate::kind::CellKind;
use crate::netlist::{Cell, CellId, Driver, GroupId, Net, NetId, Netlist, Port, PortDir};
use std::collections::HashMap;

/// Incremental netlist builder with constant folding and structural hashing.
///
/// See the [module documentation](self) for the optimization model.
#[derive(Debug)]
pub struct Builder {
    name: String,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    ports: Vec<Port>,
    groups: Vec<String>,
    current_group: GroupId,
    cse: HashMap<(CellKind, Vec<NetId>), NetId>,
    pending_dffs: usize,
}

impl Builder {
    /// Creates an empty design. Nets 0 and 1 are the constant-0/1 nets.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Builder {
            name: name.into(),
            nets: vec![
                Net { name: Some("const0".into()), driver: Driver::Const(false) },
                Net { name: Some("const1".into()), driver: Driver::Const(true) },
            ],
            cells: Vec::new(),
            ports: Vec::new(),
            groups: vec!["top".into()],
            current_group: GroupId::DEFAULT,
            cse: HashMap::new(),
            pending_dffs: 0,
        }
    }

    /// The constant net carrying `value`.
    #[must_use]
    pub fn constant(&self, value: bool) -> NetId {
        if value {
            NetId(1)
        } else {
            NetId(0)
        }
    }

    /// Returns `Some(value)` if `net` is one of the constant nets.
    #[must_use]
    pub fn as_const(&self, net: NetId) -> Option<bool> {
        match self.nets[net.index()].driver {
            Driver::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Gets or creates the architectural group `name` and makes it current:
    /// cells created afterwards belong to it.
    pub fn group(&mut self, name: &str) -> GroupId {
        if let Some(i) = self.groups.iter().position(|g| g == name) {
            let id = GroupId(i as u16);
            self.current_group = id;
            return id;
        }
        let id = GroupId(self.groups.len() as u16);
        self.groups.push(name.to_owned());
        self.current_group = id;
        id
    }

    /// Switches back to a previously created group.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this builder.
    pub fn set_group(&mut self, id: GroupId) {
        assert!(id.index() < self.groups.len(), "unknown group {id:?}");
        self.current_group = id;
    }

    /// The group new cells currently belong to.
    #[must_use]
    pub fn current_group(&self) -> GroupId {
        self.current_group
    }

    /// Declares a 1-bit primary input.
    pub fn input(&mut self, name: impl Into<String>) -> NetId {
        let name = name.into();
        let id = self.fresh_net(Some(name.clone()), Driver::Input);
        self.ports.push(Port { name, dir: PortDir::Input, bits: vec![id] });
        id
    }

    /// Declares a multi-bit primary input (LSB first).
    pub fn input_bus(&mut self, name: impl Into<String>, width: usize) -> Vec<NetId> {
        let name = name.into();
        let bits: Vec<NetId> = (0..width)
            .map(|i| self.fresh_net(Some(format!("{name}[{i}]")), Driver::Input))
            .collect();
        self.ports.push(Port { name, dir: PortDir::Input, bits: bits.clone() });
        bits
    }

    /// Declares a 1-bit primary output driven by `net`.
    pub fn output(&mut self, name: impl Into<String>, net: NetId) {
        self.ports.push(Port { name: name.into(), dir: PortDir::Output, bits: vec![net] });
    }

    /// Declares a multi-bit primary output (LSB first).
    pub fn output_bus(&mut self, name: impl Into<String>, bits: &[NetId]) {
        self.ports.push(Port { name: name.into(), dir: PortDir::Output, bits: bits.to_vec() });
    }

    /// Attaches a debug name to a net (keeps any existing name).
    pub fn name_net(&mut self, net: NetId, name: impl Into<String>) {
        let slot = &mut self.nets[net.index()].name;
        if slot.is_none() {
            *slot = Some(name.into());
        }
    }

    fn fresh_net(&mut self, name: Option<String>, driver: Driver) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name, driver });
        id
    }

    /// If `net` has a cheap complement (it is a constant, or it is the output
    /// of an inverter, or an inverter of it already exists), returns it.
    fn known_complement(&self, net: NetId) -> Option<NetId> {
        match self.nets[net.index()].driver {
            Driver::Const(v) => Some(self.constant(!v)),
            Driver::Cell(c) => {
                let cell = &self.cells[c.index()];
                if cell.kind == CellKind::Inv {
                    Some(cell.inputs[0])
                } else {
                    self.cse.get(&(CellKind::Inv, vec![net])).copied()
                }
            }
            Driver::Input => self.cse.get(&(CellKind::Inv, vec![net])).copied(),
        }
    }

    fn are_complements(&self, a: NetId, b: NetId) -> bool {
        self.known_complement(a) == Some(b) || self.known_complement(b) == Some(a)
    }

    /// Creates a raw cell without folding (but with CSE for combinational
    /// cells). All public gate helpers funnel through here after folding.
    fn emit(&mut self, kind: CellKind, inputs: Vec<NetId>, init: bool) -> NetId {
        debug_assert_eq!(inputs.len(), kind.arity());
        let key_inputs = if kind.is_commutative() {
            let mut k = inputs.clone();
            k.sort_unstable();
            k
        } else {
            inputs.clone()
        };
        if !kind.is_sequential() {
            if let Some(&existing) = self.cse.get(&(kind, key_inputs.clone())) {
                return existing;
            }
        }
        let cell_id = CellId(self.cells.len() as u32);
        let out = self.fresh_net(None, Driver::Cell(cell_id));
        self.cells.push(Cell { kind, inputs, output: out, group: self.current_group, init });
        if !kind.is_sequential() {
            self.cse.insert((kind, key_inputs), out);
        }
        out
    }

    /// Inverter with folding: `inv(const) -> const`, `inv(inv(x)) -> x`.
    pub fn inv(&mut self, a: NetId) -> NetId {
        if let Some(v) = self.as_const(a) {
            return self.constant(!v);
        }
        if let Driver::Cell(c) = self.nets[a.index()].driver {
            if self.cells[c.index()].kind == CellKind::Inv {
                return self.cells[c.index()].inputs[0];
            }
        }
        self.emit(CellKind::Inv, vec![a], false)
    }

    /// Buffer. Folds to the input itself (buffers are only materialized by
    /// explicit fanout-repair passes, not by datapath construction).
    pub fn buf(&mut self, a: NetId) -> NetId {
        a
    }

    /// 2-input AND with folding.
    pub fn and2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(false),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.are_complements(a, b) {
            return self.constant(false);
        }
        self.emit(CellKind::And2, vec![a, b], false)
    }

    /// 2-input OR with folding.
    pub fn or2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(true),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        if self.are_complements(a, b) {
            return self.constant(true);
        }
        self.emit(CellKind::Or2, vec![a, b], false)
    }

    /// 2-input NAND with folding.
    pub fn nand2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.constant(true),
            (Some(true), _) => return self.inv(b),
            (_, Some(true)) => return self.inv(a),
            _ => {}
        }
        if a == b {
            return self.inv(a);
        }
        if self.are_complements(a, b) {
            return self.constant(true);
        }
        self.emit(CellKind::Nand2, vec![a, b], false)
    }

    /// 2-input NOR with folding.
    pub fn nor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.constant(false),
            (Some(false), _) => return self.inv(b),
            (_, Some(false)) => return self.inv(a),
            _ => {}
        }
        if a == b {
            return self.inv(a);
        }
        if self.are_complements(a, b) {
            return self.constant(false);
        }
        self.emit(CellKind::Nor2, vec![a, b], false)
    }

    /// 2-input XOR with folding.
    pub fn xor2(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.inv(b),
            (_, Some(true)) => return self.inv(a),
            _ => {}
        }
        if a == b {
            return self.constant(false);
        }
        if self.are_complements(a, b) {
            return self.constant(true);
        }
        self.emit(CellKind::Xor2, vec![a, b], false)
    }

    /// 2-input XNOR with folding.
    pub fn xnor2(&mut self, a: NetId, b: NetId) -> NetId {
        let x = self.xor2(a, b);
        self.inv(x)
    }

    /// 3-input AND (decomposes constants, emits `And3` otherwise).
    pub fn and3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let consts = [self.as_const(a), self.as_const(b), self.as_const(c)];
        if consts.contains(&Some(false)) {
            return self.constant(false);
        }
        if consts.iter().any(|v| v.is_some()) || a == b || b == c || a == c {
            let x = self.and2(a, b);
            return self.and2(x, c);
        }
        self.emit(CellKind::And3, vec![a, b, c], false)
    }

    /// 3-input OR (decomposes constants, emits `Or3` otherwise).
    pub fn or3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        let consts = [self.as_const(a), self.as_const(b), self.as_const(c)];
        if consts.contains(&Some(true)) {
            return self.constant(true);
        }
        if consts.iter().any(|v| v.is_some()) || a == b || b == c || a == c {
            let x = self.or2(a, b);
            return self.or2(x, c);
        }
        self.emit(CellKind::Or3, vec![a, b, c], false)
    }

    /// Majority of three (the full-adder carry function) with folding.
    pub fn maj3(&mut self, a: NetId, b: NetId, c: NetId) -> NetId {
        // maj(a, b, 0) = a & b ; maj(a, b, 1) = a | b ; maj with two equal
        // inputs is that input.
        let fold2 = |this: &mut Self, x: NetId, y: NetId, v: bool| {
            if v {
                this.or2(x, y)
            } else {
                this.and2(x, y)
            }
        };
        if let Some(v) = self.as_const(a) {
            return fold2(self, b, c, v);
        }
        if let Some(v) = self.as_const(b) {
            return fold2(self, a, c, v);
        }
        if let Some(v) = self.as_const(c) {
            return fold2(self, a, b, v);
        }
        if a == b {
            return a;
        }
        if b == c {
            return b;
        }
        if a == c {
            return a;
        }
        if self.are_complements(a, b) {
            return c;
        }
        if self.are_complements(b, c) {
            return a;
        }
        if self.are_complements(a, c) {
            return b;
        }
        self.emit(CellKind::Maj3, vec![a, b, c], false)
    }

    /// 2:1 MUX `sel ? b : a` with the folding rules that implement bespoke
    /// MUX-ROM pruning (constant data inputs collapse to AND/OR/INV/wire).
    pub fn mux2(&mut self, a: NetId, b: NetId, sel: NetId) -> NetId {
        if let Some(s) = self.as_const(sel) {
            return if s { b } else { a };
        }
        if a == b {
            return a;
        }
        match (self.as_const(a), self.as_const(b)) {
            (Some(false), Some(true)) => return sel,
            (Some(true), Some(false)) => return self.inv(sel),
            // sel ? b : 0  =  sel & b
            (Some(false), None) => return self.and2(sel, b),
            // sel ? 1 : a  =  sel | a
            (None, Some(true)) => return self.or2(sel, a),
            // sel ? 0 : a  =  !sel & a
            (None, Some(false)) => {
                let ns = self.inv(sel);
                return self.and2(ns, a);
            }
            // sel ? b : 1  =  !sel | b
            (Some(true), None) => {
                let ns = self.inv(sel);
                return self.or2(ns, b);
            }
            _ => {}
        }
        if self.are_complements(a, b) {
            // sel ? !a : a = sel ^ a
            return self.xor2(sel, a);
        }
        self.emit(CellKind::Mux2, vec![a, b, sel], false)
    }

    /// D flip-flop with power-on value `init`.
    pub fn dff(&mut self, d: NetId, init: bool) -> NetId {
        self.emit(CellKind::Dff, vec![d], init)
    }

    /// Enabled D flip-flop (`q' = en ? d : q`) with power-on value `init`.
    /// Folds to a plain DFF when `en` is constant-1 and to a constant when
    /// `en` is constant-0 (the register can then never leave `init`).
    pub fn dffe(&mut self, d: NetId, en: NetId, init: bool) -> NetId {
        match self.as_const(en) {
            Some(true) => self.dff(d, init),
            Some(false) => self.constant(init),
            None => self.emit(CellKind::DffE, vec![d, en], init),
        }
    }

    /// Creates a flip-flop whose data input is connected later, enabling
    /// feedback structures (counters, accumulators). Returns the register's
    /// output net and a one-shot handle for [`Builder::connect_dff`].
    ///
    /// The flip-flop temporarily reads constant-0; [`Builder::finish`]
    /// panics if any deferred register is left unconnected.
    pub fn dff_deferred(&mut self, init: bool) -> (NetId, DeferredDff) {
        let placeholder = self.constant(false);
        let q = self.emit(CellKind::Dff, vec![placeholder], init);
        let cell = match self.nets[q.index()].driver {
            Driver::Cell(c) => c,
            _ => unreachable!("dff output is cell-driven"),
        };
        self.pending_dffs += 1;
        (q, DeferredDff { cell })
    }

    /// Like [`Builder::dff_deferred`] but with a clock enable.
    pub fn dffe_deferred(&mut self, en: NetId, init: bool) -> (NetId, DeferredDff) {
        let placeholder = self.constant(false);
        let q = self.emit(CellKind::DffE, vec![placeholder, en], init);
        let cell = match self.nets[q.index()].driver {
            Driver::Cell(c) => c,
            _ => unreachable!("dffe output is cell-driven"),
        };
        self.pending_dffs += 1;
        (q, DeferredDff { cell })
    }

    /// Connects the data input of a deferred flip-flop.
    pub fn connect_dff(&mut self, handle: DeferredDff, d: NetId) {
        self.cells[handle.cell.index()].inputs[0] = d;
        self.pending_dffs -= 1;
    }

    /// Connects both the data and the enable pin of a deferred enabled
    /// flip-flop (created with [`Builder::dffe_deferred`]).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not refer to a `DffE` cell.
    pub fn connect_dffe(&mut self, handle: DeferredDff, d: NetId, en: NetId) {
        let cell = handle.cell;
        assert_eq!(
            self.cells[cell.index()].kind,
            CellKind::DffE,
            "connect_dffe requires a DffE register"
        );
        self.cells[cell.index()].inputs[0] = d;
        self.cells[cell.index()].inputs[1] = en;
        self.pending_dffs -= 1;
    }

    /// Finalizes the design.
    ///
    /// # Panics
    ///
    /// Panics if any register created with [`Builder::dff_deferred`] was
    /// never connected.
    #[must_use]
    pub fn finish(self) -> Netlist {
        assert_eq!(
            self.pending_dffs, 0,
            "{} deferred flip-flop(s) left unconnected",
            self.pending_dffs
        );
        Netlist {
            name: self.name,
            nets: self.nets,
            cells: self.cells,
            ports: self.ports,
            groups: self.groups,
        }
    }
}

/// One-shot handle to the data pin of a deferred flip-flop.
///
/// Obtained from [`Builder::dff_deferred`]; consumed by
/// [`Builder::connect_dff`]. Not `Clone`/`Copy`, so a register can only be
/// connected once.
#[derive(Debug)]
pub struct DeferredDff {
    cell: CellId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_inputs() -> (Builder, NetId, NetId) {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        (b, x, y)
    }

    #[test]
    fn constant_folding_and2() {
        let (mut b, x, _) = two_inputs();
        let c0 = b.constant(false);
        let c1 = b.constant(true);
        assert_eq!(b.and2(x, c0), c0);
        assert_eq!(b.and2(c1, x), x);
        assert_eq!(b.and2(x, x), x);
        assert_eq!(b.finish().num_cells(), 0);
    }

    #[test]
    fn complement_detection() {
        let (mut b, x, _) = two_inputs();
        let nx = b.inv(x);
        assert_eq!(b.and2(x, nx), b.constant(false));
        assert_eq!(b.or2(x, nx), b.constant(true));
        assert_eq!(b.xor2(x, nx), b.constant(true));
        assert_eq!(b.maj3(x, nx, x), x);
        // Only the inverter itself was materialized.
        assert_eq!(b.finish().num_cells(), 1);
    }

    #[test]
    fn double_inversion_cancels() {
        let (mut b, x, _) = two_inputs();
        let nx = b.inv(x);
        let nnx = b.inv(nx);
        assert_eq!(nnx, x);
    }

    #[test]
    fn structural_hashing_shares_gates() {
        let (mut b, x, y) = two_inputs();
        let g1 = b.and2(x, y);
        let g2 = b.and2(y, x); // commutative: same gate
        assert_eq!(g1, g2);
        let g3 = b.xor2(x, y);
        let g4 = b.xor2(x, y);
        assert_eq!(g3, g4);
        assert_eq!(b.finish().num_cells(), 2);
    }

    #[test]
    fn mux_bespoke_pruning() {
        let (mut b, a, _) = two_inputs();
        let sel = b.input("sel");
        let c0 = b.constant(false);
        let c1 = b.constant(true);
        // ROM bit patterns collapse:
        assert_eq!(b.mux2(c0, c1, sel), sel);
        let m = b.mux2(c1, c0, sel); // = !sel
        assert_eq!(b.inv(sel), m);
        // sel ? a : 0 -> and2
        let g = b.mux2(c0, a, sel);
        let nl_cells_before = b.cells.len();
        let g2 = b.and2(sel, a);
        assert_eq!(g, g2);
        assert_eq!(b.cells.len(), nl_cells_before);
    }

    #[test]
    fn mux_identical_data_folds() {
        let (mut b, a, _) = two_inputs();
        let sel = b.input("sel");
        assert_eq!(b.mux2(a, a, sel), a);
    }

    #[test]
    fn mux_constant_select_folds() {
        let (mut b, a, y) = two_inputs();
        let c1 = b.constant(true);
        let c0 = b.constant(false);
        assert_eq!(b.mux2(a, y, c1), y);
        assert_eq!(b.mux2(a, y, c0), a);
    }

    #[test]
    fn xnor_is_inverted_xor() {
        let (mut b, x, y) = two_inputs();
        let xn = b.xnor2(x, y);
        let x2 = b.xor2(x, y);
        let inv = b.inv(x2);
        assert_eq!(xn, inv);
    }

    #[test]
    fn nand_nor_folding() {
        let (mut b, x, _) = two_inputs();
        let c0 = b.constant(false);
        let c1 = b.constant(true);
        assert_eq!(b.nand2(x, c0), c1);
        let inv_x = b.inv(x);
        assert_eq!(b.nand2(x, c1), inv_x);
        assert_eq!(b.nor2(x, c1), c0);
        assert_eq!(b.nor2(x, c0), inv_x);
        assert_eq!(b.nand2(x, x), inv_x);
    }

    #[test]
    fn and3_or3_fold_constants() {
        let mut b = Builder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let c1 = b.constant(true);
        let c0 = b.constant(false);
        assert_eq!(b.and3(x, c0, y), c0);
        let a = b.and3(x, c1, y);
        let a2 = b.and2(x, y);
        assert_eq!(a, a2);
        assert_eq!(b.or3(x, c1, y), c1);
        let real = b.and3(x, y, z);
        let nl = b.finish();
        assert_eq!(
            nl.cell(match nl.net(real).driver() {
                crate::netlist::Driver::Cell(c) => c,
                _ => panic!(),
            })
            .kind(),
            CellKind::And3
        );
    }

    #[test]
    fn dffe_folding() {
        let (mut b, d, _) = two_inputs();
        let c1 = b.constant(true);
        let c0 = b.constant(false);
        let q = b.dffe(d, c1, false);
        // folded to plain dff
        if let Driver::Cell(c) = b.nets[q.index()].driver {
            assert_eq!(b.cells[c.index()].kind, CellKind::Dff);
        } else {
            panic!("expected cell driver");
        }
        assert_eq!(b.dffe(d, c0, true), c1);
        assert_eq!(b.dffe(d, c0, false), c0);
    }

    #[test]
    fn dffs_are_never_shared() {
        let (mut b, d, _) = two_inputs();
        let q1 = b.dff(d, false);
        let q2 = b.dff(d, false);
        assert_ne!(q1, q2);
    }

    #[test]
    fn groups_partition_cells() {
        let (mut b, x, y) = two_inputs();
        let storage = b.group("storage");
        let g1 = b.and2(x, y);
        b.group("voter");
        let g2 = b.or2(x, y);
        b.set_group(storage);
        let g3 = b.xor2(x, y);
        b.output("a", g1);
        b.output("b", g2);
        b.output("c", g3);
        let nl = b.finish();
        let by_group = nl.count_by_group();
        // group 0 "top" empty, storage has 2, voter has 1
        assert_eq!(by_group.get(&GroupId(1)), Some(&2));
        assert_eq!(by_group.get(&GroupId(2)), Some(&1));
        assert_eq!(nl.group_name(GroupId(1)), "storage");
        assert_eq!(nl.group_names().len(), 3);
    }

    #[test]
    fn net_naming_keeps_first() {
        let (mut b, x, y) = two_inputs();
        let g = b.and2(x, y);
        b.name_net(g, "first");
        b.name_net(g, "second");
        let nl = b.finish();
        assert_eq!(nl.net(g).name(), Some("first"));
    }

    #[test]
    fn input_bus_is_lsb_first() {
        let mut b = Builder::new("t");
        let bus = b.input_bus("data", 4);
        assert_eq!(bus.len(), 4);
        let nl = b.finish();
        let p = nl.port("data").unwrap();
        assert_eq!(p.width(), 4);
        assert_eq!(p.bits()[0], bus[0]);
        assert_eq!(nl.net(bus[0]).name(), Some("data[0]"));
        assert_eq!(nl.net(bus[3]).name(), Some("data[3]"));
    }

    #[test]
    fn deferred_dff_builds_counter_feedback() {
        let mut b = Builder::new("t");
        let (q, handle) = b.dff_deferred(false);
        let nq = b.inv(q);
        b.connect_dff(handle, nq);
        b.output("q", q);
        let nl = b.finish();
        nl.validate().unwrap();
        assert_eq!(nl.num_seq_cells(), 1);
    }

    #[test]
    #[should_panic(expected = "unconnected")]
    fn unconnected_deferred_dff_panics() {
        let mut b = Builder::new("t");
        let (_q, _handle) = b.dff_deferred(false);
        let _ = b.finish();
    }

    #[test]
    fn deferred_dffe_keeps_enable() {
        let mut b = Builder::new("t");
        let en = b.input("en");
        let (q, handle) = b.dffe_deferred(en, true);
        let nq = b.inv(q);
        b.connect_dff(handle, nq);
        b.output("q", q);
        let nl = b.finish();
        nl.validate().unwrap();
        let (_, cell) = nl.cells().find(|(_, c)| c.kind() == CellKind::DffE).unwrap();
        assert_eq!(cell.inputs()[1], en);
        assert!(cell.init());
    }
}
