//! Graphviz DOT export for small netlists (documentation figures and
//! debugging; classifier-scale netlists are better served by [`crate::stats`]).

use crate::netlist::{Driver, Netlist, PortDir};
use std::fmt::Write as _;

/// Renders the netlist as a Graphviz digraph. Cells become boxes, ports
/// become ellipses, constant nets are omitted (they would connect to
/// everything).
#[must_use]
pub fn to_dot(nl: &Netlist) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {} {{", sanitize(nl.name()));
    let _ = writeln!(s, "  rankdir=LR;");
    for p in nl.ports() {
        let shape = match p.dir() {
            PortDir::Input => "ellipse",
            PortDir::Output => "doubleoctagon",
        };
        let _ = writeln!(s, "  \"{}\" [shape={shape}];", sanitize(p.name()));
    }
    for (id, cell) in nl.cells() {
        let _ = writeln!(
            s,
            "  c{} [shape=box,label=\"{}\\n({})\"];",
            id.index(),
            cell.kind().name(),
            nl.group_name(cell.group())
        );
    }
    // Edges: driver -> sink cell.
    for (id, cell) in nl.cells() {
        for &inp in cell.inputs() {
            match nl.net(inp).driver() {
                Driver::Cell(src) => {
                    let _ = writeln!(s, "  c{} -> c{};", src.index(), id.index());
                }
                Driver::Input => {
                    if let Some(port) = nl.input_ports().find(|p| p.bits().contains(&inp)) {
                        let _ = writeln!(s, "  \"{}\" -> c{};", sanitize(port.name()), id.index());
                    }
                }
                Driver::Const(_) => {}
            }
        }
    }
    for p in nl.output_ports() {
        for &b in p.bits() {
            if let Driver::Cell(src) = nl.net(b).driver() {
                let _ = writeln!(s, "  c{} -> \"{}\";", src.index(), sanitize(p.name()));
            }
        }
    }
    let _ = writeln!(s, "}}");
    s
}

fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = Builder::new("half adder");
        let x = b.input("a");
        let y = b.input("b");
        let s1 = b.xor2(x, y);
        let c1 = b.and2(x, y);
        b.output("sum", s1);
        b.output("carry", c1);
        let dot = to_dot(&b.finish());
        assert!(dot.starts_with("digraph half_adder {"));
        assert!(dot.contains("xor2"));
        assert!(dot.contains("\"a\" -> c0") || dot.contains("\"a\" -> c1"));
        assert!(dot.contains("-> \"sum\""));
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn groups_appear_in_labels() {
        let mut b = Builder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.group("voter");
        let o = b.and2(x, y);
        b.output("o", o);
        let dot = to_dot(&b.finish());
        assert!(dot.contains("voter"));
    }
}
