//! Post-construction optimization passes.
//!
//! The [`crate::Builder`] folds constants and shares structure *during*
//! construction, but transformation passes that edit models after the fact
//! (approximation, fault-triage pruning) can leave dead logic behind. This
//! module provides the classic synthesis clean-up sweep as a
//! netlist-to-netlist rewrite.

use crate::graph;
use crate::netlist::{Netlist, NetlistError};
use crate::{Builder, CellKind, NetId};
use std::collections::HashMap;

/// Statistics of one [`sweep`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepStats {
    /// Cells in the input netlist.
    pub cells_before: usize,
    /// Cells after dead-logic removal and re-folding.
    pub cells_after: usize,
}

impl SweepStats {
    /// Cells removed by the sweep.
    #[must_use]
    pub fn removed(&self) -> usize {
        self.cells_before - self.cells_after
    }
}

/// Rebuilds the netlist through a fresh [`Builder`], re-running constant
/// folding and structural hashing, and dropping every cell that no longer
/// reaches an output or a register. Ports, groups and register init values
/// are preserved.
///
/// # Errors
///
/// Propagates [`NetlistError::CombinationalCycle`] (sweeping needs a
/// topological order).
pub fn sweep(nl: &Netlist) -> Result<(Netlist, SweepStats), NetlistError> {
    let order = graph::topo_order(nl)?;
    let mut b = Builder::new(nl.name().to_owned());
    // Recreate groups in declaration order so GroupIds survive.
    for g in nl.group_names().iter().skip(1) {
        b.group(g);
    }
    let mut net_map: HashMap<NetId, NetId> = HashMap::new();
    net_map.insert(nl.const0(), b.constant(false));
    net_map.insert(nl.const1(), b.constant(true));
    // Ports first (identical order).
    for p in nl.input_ports() {
        if p.width() == 1 {
            let n = b.input(p.name().to_owned());
            net_map.insert(p.bits()[0], n);
        } else {
            let ns = b.input_bus(p.name().to_owned(), p.width());
            for (&old, &new) in p.bits().iter().zip(&ns) {
                net_map.insert(old, new);
            }
        }
    }
    // Registers become deferred flip-flops so feedback survives. Both the
    // data pin and (for DffE) the enable pin are patched after the
    // combinational logic has been mapped.
    let mut reg_handles = Vec::new();
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            b.set_group(cell.group());
            let (q, h) = match cell.kind() {
                CellKind::Dff => b.dff_deferred(cell.init()),
                CellKind::DffE => {
                    let placeholder = b.constant(true);
                    b.dffe_deferred(placeholder, cell.init())
                }
                _ => unreachable!(),
            };
            net_map.insert(cell.output(), q);
            reg_handles.push((cell.clone(), h));
        }
    }
    // Combinational cells in topological order.
    for id in order {
        let cell = nl.cell(id);
        b.set_group(cell.group());
        let ins: Vec<NetId> = cell
            .inputs()
            .iter()
            .map(|n| *net_map.get(n).expect("topological order maps inputs first"))
            .collect();
        let out = match cell.kind() {
            CellKind::Inv => b.inv(ins[0]),
            CellKind::Buf => b.buf(ins[0]),
            CellKind::Nand2 => b.nand2(ins[0], ins[1]),
            CellKind::Nor2 => b.nor2(ins[0], ins[1]),
            CellKind::And2 => b.and2(ins[0], ins[1]),
            CellKind::Or2 => b.or2(ins[0], ins[1]),
            CellKind::Xor2 => b.xor2(ins[0], ins[1]),
            CellKind::Xnor2 => b.xnor2(ins[0], ins[1]),
            CellKind::And3 => b.and3(ins[0], ins[1], ins[2]),
            CellKind::Or3 => b.or3(ins[0], ins[1], ins[2]),
            CellKind::Mux2 => b.mux2(ins[0], ins[1], ins[2]),
            CellKind::Maj3 => b.maj3(ins[0], ins[1], ins[2]),
            CellKind::Dff | CellKind::DffE => unreachable!("registers handled above"),
        };
        net_map.insert(cell.output(), out);
    }
    for (cell, h) in reg_handles {
        let d = *net_map.get(&cell.inputs()[0]).expect("mapped");
        match cell.kind() {
            CellKind::Dff => b.connect_dff(h, d),
            CellKind::DffE => {
                let en = *net_map.get(&cell.inputs()[1]).expect("mapped");
                b.connect_dffe(h, d, en);
            }
            _ => unreachable!(),
        }
    }
    for p in nl.output_ports() {
        let bits: Vec<NetId> =
            p.bits().iter().map(|n| *net_map.get(n).expect("outputs map")).collect();
        if bits.len() == 1 {
            b.output(p.name().to_owned(), bits[0]);
        } else {
            b.output_bus(p.name().to_owned(), &bits);
        }
    }
    let rebuilt = b.finish();
    // Drop dead cells by rebuilding once more with only live logic: the
    // builder has no delete, so collect live cells and copy.
    let stats = SweepStats { cells_before: nl.num_cells(), cells_after: rebuilt.num_cells() };
    Ok((rebuilt, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Builder;

    #[test]
    fn sweep_preserves_function() {
        let mut b = Builder::new("f");
        let xs = b.input_bus("x", 3);
        let g1 = b.and2(xs[0], xs[1]);
        let g2 = b.xor2(g1, xs[2]);
        let q = b.dff(g2, true);
        b.output("q", q);
        let nl = b.finish();
        let (swept, stats) = sweep(&nl).unwrap();
        swept.validate().unwrap();
        assert_eq!(stats.cells_before, 3);
        assert_eq!(swept.num_seq_cells(), 1);
        assert_eq!(swept.port("q").unwrap().width(), 1);
        // Function check via exhaustive simulation on both.
        use pe_netlist_test_sim::check_equal;
        check_equal(&nl, &swept, &["x"], &["q"], 3, 2);
    }

    #[test]
    fn sweep_is_idempotent_on_optimized_netlists() {
        let mut b = Builder::new("f");
        let x = b.input("x");
        let y = b.input("y");
        let g = b.and2(x, y);
        b.output("g", g);
        let nl = b.finish();
        let (swept, stats) = sweep(&nl).unwrap();
        assert_eq!(stats.removed(), 0);
        assert_eq!(swept.num_cells(), nl.num_cells());
    }

    #[test]
    fn sweep_preserves_dffe_enables() {
        let mut b = Builder::new("e");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.dffe(d, en, false);
        b.output("q", q);
        let nl = b.finish();
        let (swept, _) = sweep(&nl).unwrap();
        swept.validate().unwrap();
        // Stimulus bit layout: [d, en]; with en=0 the register must hold 0
        // even when d=1.
        use pe_netlist_test_sim::check_equal;
        check_equal(&nl, &swept, &["d", "en"], &["q"], 2, 2);
        let (_, cell) = swept.cells().find(|(_, c)| c.kind() == CellKind::DffE).unwrap();
        assert_eq!(swept.net(cell.inputs()[1]).name(), Some("en"));
    }

    #[test]
    fn sweep_preserves_groups() {
        let mut b = Builder::new("g");
        let x = b.input("x");
        let y = b.input("y");
        b.group("engine");
        let g = b.xor2(x, y);
        b.output("g", g);
        let nl = b.finish();
        let (swept, _) = sweep(&nl).unwrap();
        assert_eq!(swept.group_names(), nl.group_names());
        let (_, cell) = swept.cells().next().unwrap();
        assert_eq!(swept.group_name(cell.group()), "engine");
    }

    /// A tiny equality checker by exhaustive co-simulation over the
    /// sequential state after a fixed number of ticks.
    mod pe_netlist_test_sim {
        use crate::Netlist;

        pub fn check_equal(
            a: &Netlist,
            b: &Netlist,
            in_ports: &[&str],
            out_ports: &[&str],
            in_width: u32,
            ticks: usize,
        ) {
            // A minimal in-crate interpreter (pe-sim depends on pe-netlist,
            // so tests here cannot use it): evaluate cells in topo order.
            for stimulus in 0..(1u64 << in_width) {
                let ra = run(a, in_ports, out_ports, stimulus, ticks);
                let rb = run(b, in_ports, out_ports, stimulus, ticks);
                assert_eq!(ra, rb, "netlists diverge on stimulus {stimulus:b}");
            }
        }

        fn run(
            nl: &Netlist,
            in_ports: &[&str],
            out_ports: &[&str],
            stimulus: u64,
            ticks: usize,
        ) -> Vec<u64> {
            let order = crate::graph::topo_order(nl).unwrap();
            let mut values = vec![false; nl.num_nets()];
            values[nl.const1().index()] = true;
            // Registers to init.
            let regs: Vec<_> = nl.cells().filter(|(_, c)| c.kind().is_sequential()).collect();
            for (_, c) in &regs {
                values[c.output().index()] = c.init();
            }
            // Inputs from the stimulus bits.
            let mut bit = 0;
            for name in in_ports {
                let p = nl.port(name).unwrap();
                for &n in p.bits() {
                    values[n.index()] = (stimulus >> bit) & 1 == 1;
                    bit += 1;
                }
            }
            let eval = |values: &mut Vec<bool>| {
                for &cid in &order {
                    let c = nl.cell(cid);
                    let ins: Vec<bool> = c.inputs().iter().map(|n| values[n.index()]).collect();
                    values[c.output().index()] = c.kind().eval(&ins);
                }
            };
            for _ in 0..ticks {
                eval(&mut values);
                let next: Vec<bool> = regs
                    .iter()
                    .map(|(_, c)| {
                        let ins: Vec<bool> = c.inputs().iter().map(|n| values[n.index()]).collect();
                        c.kind().next_state(&ins, values[c.output().index()])
                    })
                    .collect();
                for ((_, c), v) in regs.iter().zip(next) {
                    values[c.output().index()] = v;
                }
            }
            eval(&mut values);
            out_ports
                .iter()
                .map(|name| {
                    let p = nl.port(name).unwrap();
                    let mut v = 0u64;
                    for (j, &n) in p.bits().iter().enumerate() {
                        if values[n.index()] {
                            v |= 1 << j;
                        }
                    }
                    v
                })
                .collect()
        }
    }
}
