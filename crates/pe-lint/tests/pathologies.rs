//! The lint catalog exercised end to end: one deliberately pathological
//! netlist per lint, each asserting its stable code, severity and locus
//! fire exactly once — plus a Verilog-imported netlist, since `pe-lint`
//! must accept whatever `pe_netlist::verilog_parse` produces.
//!
//! Fixtures use [`RawNetlistBuilder`]: the checked `Builder` folds inverter
//! chains and refuses the malformed structures these tests need, so the
//! raw builder is the only way to construct them.

use pe_lint::{lint_netlist, Diagnostic, Lint, Severity};
use pe_netlist::testing::RawNetlistBuilder;
use pe_netlist::{CellKind, Driver, NetId, Netlist};

/// The single diagnostic of `lint` in `nl`'s report, asserting exactly one
/// fired and that its severity matches the catalog.
fn the_one(nl: &Netlist, lint: Lint) -> Diagnostic {
    let report = lint_netlist(nl);
    let hits: Vec<&Diagnostic> = report.of(lint).collect();
    assert_eq!(
        hits.len(),
        1,
        "{} should fire exactly once on {}, report:\n{report}",
        lint.code(),
        nl.name()
    );
    assert_eq!(hits[0].severity(), lint.severity());
    hits[0].clone()
}

#[test]
fn combinational_cycle_pl0001() {
    let mut rb = RawNetlistBuilder::new("cyclic");
    let x = rb.input("x0");
    let n1 = rb.net(Driver::Input);
    let n2 = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, n2], n1);
    rb.cell(CellKind::Or2, &[n1, x], n2);
    rb.output("o0", &[n2]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::CombinationalCycle);
    assert_eq!(d.severity(), Severity::Error);
    // Anchored to the lowest cell id in the cyclic component.
    assert_eq!(d.cell.map(|c| c.index()), Some(0));
}

#[test]
fn multi_driven_net_pl0002() {
    let mut rb = RawNetlistBuilder::new("contended");
    let x = rb.input("x0");
    let n = rb.net(Driver::Input);
    rb.cell(CellKind::Inv, &[x], n);
    rb.cell(CellKind::Buf, &[x], n);
    rb.output("o0", &[n]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::MultiDrivenNet);
    assert_eq!(d.net, Some(n));
    // Error-severity reports suppress the reachability/constprop passes:
    // the contention is the report's only finding.
    assert_eq!(lint_netlist(&nl).len(), 1);
}

#[test]
fn undriven_net_pl0003() {
    let mut rb = RawNetlistBuilder::new("undriven");
    let x = rb.input("x0");
    let n1 = rb.net(Driver::Input);
    let inv = rb.cell(CellKind::Inv, &[x], n1);
    // A net whose record claims `inv` drives it, though `inv` drives n1 —
    // undriven in validation terms, and something reads it.
    let ghost = rb.net(Driver::Cell(inv));
    let n3 = rb.net(Driver::Input);
    rb.cell(CellKind::Buf, &[ghost], n3);
    rb.output("o0", &[n3]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::UndrivenNet);
    assert_eq!(d.net, Some(ghost));
}

#[test]
fn arity_mismatch_pl0004() {
    let mut rb = RawNetlistBuilder::new("arity");
    let x = rb.input("x0");
    let n = rb.net(Driver::Input);
    let c = rb.cell(CellKind::And2, &[x], n); // And2 wants 2 pins, gets 1
    rb.output("o0", &[n]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::ArityMismatch);
    assert_eq!(d.cell, Some(c));
}

#[test]
fn dangling_port_pl0005() {
    let mut rb = RawNetlistBuilder::new("dangling");
    let x = rb.input("x0");
    let n = rb.net(Driver::Input);
    rb.cell(CellKind::Buf, &[x], n);
    let ghost = rb.phantom_net(999);
    rb.output("o0", &[n]);
    rb.output("o1", &[ghost]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::DanglingPort);
    assert!(d.message.contains("o1"));
}

#[test]
fn floating_input_pl0006() {
    let mut rb = RawNetlistBuilder::new("floating");
    let x = rb.input("x0");
    let ghost = rb.phantom_net(999);
    let n = rb.net(Driver::Input);
    let c = rb.cell(CellKind::And2, &[x, ghost], n);
    rb.output("o0", &[n]);
    let nl = rb.finish();
    let d = the_one(&nl, Lint::FloatingInput);
    assert_eq!(d.cell, Some(c));
}

#[test]
fn dead_cell_pl0101() {
    let mut rb = RawNetlistBuilder::new("dead");
    let x = rb.input("x0");
    let y = rb.input("x1");
    let live = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, y], live);
    let dead = rb.net(Driver::Input);
    let dead_cell = rb.cell(CellKind::Xor2, &[x, y], dead);
    rb.output("o0", &[live]);
    let nl = rb.finish();
    nl.validate().unwrap();
    let d = the_one(&nl, Lint::DeadCell);
    assert_eq!(d.cell, Some(dead_cell));
    assert_eq!(d.net, Some(dead));
    // The dead cone is the report's only finding on this netlist.
    assert_eq!(lint_netlist(&nl).len(), 1);
}

#[test]
fn unused_input_pl0102() {
    let mut rb = RawNetlistBuilder::new("unused");
    let x = rb.input("x0");
    let y = rb.input("x1");
    let z = rb.input("x2"); // read by nothing
    let n = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, y], n);
    rb.output("o0", &[n]);
    let nl = rb.finish();
    nl.validate().unwrap();
    let d = the_one(&nl, Lint::UnusedInput);
    assert_eq!(d.net, Some(z));
}

#[test]
fn unobservable_register_pl0103() {
    let mut rb = RawNetlistBuilder::new("blind_reg");
    let x = rb.input("x0");
    let q: NetId = rb.net(Driver::Input);
    let reg = rb.cell(CellKind::Dff, &[x], q); // q feeds nothing
    let n = rb.net(Driver::Input);
    rb.cell(CellKind::And2, &[x, x], n);
    rb.output("o0", &[n]);
    let nl = rb.finish();
    nl.validate().unwrap();
    let d = the_one(&nl, Lint::UnobservableRegister);
    assert_eq!(d.cell, Some(reg));
    assert_eq!(d.net, Some(q));
}

/// One constant-fed fixture covers the three constprop lints: a gate anded
/// with const0 has a provably-constant output (`PL0201`) that pins its
/// output-port bit (`PL0202`), and a live gate reading that constant net is
/// a foldable partial constant (`PL0204`).
#[test]
fn constant_lints_pl0201_pl0202_pl0204() {
    let mut rb = RawNetlistBuilder::new("stuck");
    let x = rb.input("x0");
    let y = rb.input("x1");
    let const0 = rb.phantom_net(0); // net 0 is the constant-0 net
    let g = rb.net(Driver::Input);
    let gate = rb.cell(CellKind::And2, &[x, const0], g);
    let n2 = rb.net(Driver::Input);
    let live = rb.cell(CellKind::Or2, &[g, y], n2); // = y, not constant
    rb.output("o0", &[g]);
    rb.output("o1", &[n2]);
    let nl = rb.finish();
    nl.validate().unwrap();

    let net = the_one(&nl, Lint::ConstantNet);
    assert_eq!(net.cell, Some(gate));
    assert_eq!(net.net, Some(g));
    assert!(net.message.contains("always 0"));

    let out = the_one(&nl, Lint::ConstantOutput);
    assert_eq!(out.net, Some(g));
    assert!(out.message.contains("stuck at 0"));

    let fed = the_one(&nl, Lint::ConstantFedGate);
    assert_eq!(fed.cell, Some(live));
    assert_eq!(fed.net, Some(g));
    assert_eq!(fed.severity(), Severity::Info);
}

#[test]
fn constant_register_pl0203() {
    let mut rb = RawNetlistBuilder::new("frozen");
    let x = rb.input("x0");
    let const0 = rb.phantom_net(0);
    let q = rb.net(Driver::Input);
    let reg = rb.cell(CellKind::Dff, &[const0], q); // init 0, d = const0
    let n = rb.net(Driver::Input);
    rb.cell(CellKind::Xor2, &[q, x], n);
    rb.output("o0", &[n]);
    let nl = rb.finish();
    nl.validate().unwrap();
    let d = the_one(&nl, Lint::ConstantRegister);
    assert_eq!(d.cell, Some(reg));
    assert_eq!(d.net, Some(q));
}

/// Imported structural Verilog feeds the same passes: a module with an
/// input no logic reads lints to the same stable code as a built netlist,
/// and stays admission-clean (no Errors).
#[test]
fn verilog_imported_netlists_lint() {
    let src = "module imported(x, y, o);\n\
               input x;\n\
               input y;\n\
               output o;\n\
               assign o = ~x;\n\
               endmodule\n";
    let nl = pe_netlist::verilog_parse::from_verilog(src).unwrap();
    nl.validate().unwrap();
    let report = lint_netlist(&nl);
    assert!(!report.has_errors(), "imported netlist must admit:\n{report}");
    assert_eq!(report.of(Lint::UnusedInput).count(), 1, "y is read by nothing:\n{report}");
}
