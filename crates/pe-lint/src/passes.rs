//! The structural and reachability lint passes.
//!
//! [`structural`] re-derives everything [`pe_netlist::Netlist::validate`]
//! checks — but reports **every** violation instead of the first, never
//! panics on malformed input (out-of-range ids are themselves findings), and
//! anchors each finding to its cell/net locus. [`reachability`] assumes a
//! structurally clean netlist and reports logic that cannot matter: dead
//! cells, unused inputs, and registers whose state never reaches an output.

use crate::diag::{Diagnostic, Lint};
use pe_netlist::graph::{dead_cells, fanout_counts, FanoutCones};
use pe_netlist::{CellId, Driver, NetId, Netlist, PortDir};

/// Structural lints: arity, pin/port ranges, driver consistency, and
/// combinational cycles (`PL0001`–`PL0006`). Safe on arbitrary garbage.
#[must_use]
pub fn structural(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let num_nets = nl.num_nets();

    // PL0004 / PL0006: per-cell pin checks.
    for (id, cell) in nl.cells() {
        if cell.inputs().len() != cell.kind().arity() {
            out.push(
                Diagnostic::new(
                    Lint::ArityMismatch,
                    format!(
                        "cell c{} of kind {} has {} inputs, expected {}",
                        id.index(),
                        cell.kind().name(),
                        cell.inputs().len(),
                        cell.kind().arity()
                    ),
                )
                .with_cell(id),
            );
        }
        for (pin, &inp) in cell.inputs().iter().enumerate() {
            if inp.index() >= num_nets {
                out.push(
                    Diagnostic::new(
                        Lint::FloatingInput,
                        format!(
                            "cell c{} pin {} references missing net n{}",
                            id.index(),
                            pin,
                            inp.index()
                        ),
                    )
                    .with_cell(id),
                );
            }
        }
        if cell.output().index() >= num_nets {
            out.push(
                Diagnostic::new(
                    Lint::FloatingInput,
                    format!(
                        "cell c{} output references missing net n{}",
                        id.index(),
                        cell.output().index()
                    ),
                )
                .with_cell(id),
            );
        }
    }

    // PL0005: port bits must resolve.
    for p in nl.ports() {
        if p.bits().iter().any(|b| b.index() >= num_nets) {
            out.push(Diagnostic::new(
                Lint::DanglingPort,
                format!("port {} references a missing net", p.name()),
            ));
        }
    }

    // Driver census: how many cells actually drive each net.
    let mut driver_count = vec![0u32; num_nets];
    let mut driving_cell: Vec<Option<CellId>> = vec![None; num_nets];
    for (id, cell) in nl.cells() {
        let o = cell.output().index();
        if o < num_nets {
            driver_count[o] += 1;
            driving_cell[o] = Some(id);
        }
    }
    // PL0002: contended or inconsistent driver records, once per net.
    for (id, net) in nl.nets() {
        let i = id.index();
        if driver_count[i] > 1 {
            out.push(
                Diagnostic::new(
                    Lint::MultiDrivenNet,
                    format!("net n{i} is driven by {} cells", driver_count[i]),
                )
                .with_net(id),
            );
        } else if driver_count[i] == 1 && net.driver() != Driver::Cell(driving_cell[i].unwrap()) {
            out.push(
                Diagnostic::new(
                    Lint::MultiDrivenNet,
                    format!(
                        "net n{i} is driven by cell c{} but its driver record disagrees",
                        driving_cell[i].unwrap().index()
                    ),
                )
                .with_net(id),
            );
        }
    }
    // PL0003: a net whose record claims a cell driver that never materializes,
    // reported when something actually reads it (a cell pin or a port).
    let mut referenced = vec![false; num_nets];
    for (_, cell) in nl.cells() {
        for &inp in cell.inputs() {
            if inp.index() < num_nets {
                referenced[inp.index()] = true;
            }
        }
    }
    for p in nl.ports() {
        for &b in p.bits() {
            if b.index() < num_nets {
                referenced[b.index()] = true;
            }
        }
    }
    for (id, net) in nl.nets() {
        if let Driver::Cell(c) = net.driver() {
            let dangling = c.index() >= nl.num_cells() || nl.cell(c).output() != id;
            if dangling && driver_count[id.index()] == 0 && referenced[id.index()] {
                out.push(
                    Diagnostic::new(Lint::UndrivenNet, format!("net n{} is undriven", id.index()))
                        .with_net(id),
                );
            }
        }
    }

    out.extend(combinational_cycles(nl));
    out
}

/// PL0001: one diagnostic per combinational strongly-connected component
/// that is actually cyclic (size > 1, or a cell reading its own output),
/// anchored to the lowest cell id in the component. Registers cut the graph,
/// exactly as in [`pe_netlist::graph::topo_order`]; out-of-range pins are
/// skipped (they are `PL0006` findings, not edges).
fn combinational_cycles(nl: &Netlist) -> Vec<Diagnostic> {
    let n = nl.num_cells();
    let num_nets = nl.num_nets();
    let mut is_comb = vec![false; n];
    for (id, cell) in nl.cells() {
        is_comb[id.index()] = !cell.kind().is_sequential();
    }
    // Edges comb-cell -> comb-cell through in-range nets.
    let mut succ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (id, cell) in nl.cells() {
        if !is_comb[id.index()] {
            continue;
        }
        for &inp in cell.inputs() {
            if inp.index() >= num_nets {
                continue;
            }
            if let Driver::Cell(src) = nl.net(inp).driver() {
                if src.index() < n && is_comb[src.index()] {
                    succ[src.index()].push(id.index() as u32);
                }
            }
        }
    }
    // Iterative Tarjan SCC.
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut sccs: Vec<Vec<u32>> = Vec::new();
    // Explicit DFS frames: (node, next child position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for start in 0..n {
        if !is_comb[start] || index[start] != UNSEEN {
            continue;
        }
        frames.push((start as u32, 0));
        index[start] = next_index;
        low[start] = next_index;
        next_index += 1;
        stack.push(start as u32);
        on_stack[start] = true;
        while let Some(&mut (v, ref mut child)) = frames.last_mut() {
            let vi = v as usize;
            if *child < succ[vi].len() {
                let w = succ[vi][*child] as usize;
                *child += 1;
                if index[w] == UNSEEN {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    frames.push((w as u32, 0));
                } else if on_stack[w] {
                    low[vi] = low[vi].min(index[w]);
                }
            } else {
                if low[vi] == index[vi] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        comp.push(w);
                        if w == v {
                            break;
                        }
                    }
                    sccs.push(comp);
                }
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    let p = parent as usize;
                    low[p] = low[p].min(low[vi]);
                }
            }
        }
    }
    let ids: Vec<CellId> = nl.cells().map(|(id, _)| id).collect();
    let mut out = Vec::new();
    for comp in sccs {
        let cyclic = comp.len() > 1 || succ[comp[0] as usize].contains(&comp[0]);
        if cyclic {
            let lowest = *comp.iter().min().expect("non-empty SCC");
            out.push(
                Diagnostic::new(
                    Lint::CombinationalCycle,
                    format!("combinational cycle through {} cell(s), e.g. c{}", comp.len(), lowest),
                )
                .with_cell(ids[lowest as usize]),
            );
        }
    }
    out.sort_by_key(|d| d.cell);
    out
}

/// Reachability lints (`PL0101`–`PL0103`): dead cells via
/// [`pe_netlist::graph::dead_cells`], unused primary inputs via fanout
/// counts, and unobservable registers via a [`FanoutCones`] query closed
/// over register feedback.
///
/// Assumes a structurally clean netlist (run [`structural`] first; the
/// driver only calls this when no Error fired).
#[must_use]
pub fn reachability(nl: &Netlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // PL0101: dead cells (the graph pass excludes registers by contract).
    for c in dead_cells(nl) {
        out.push(
            Diagnostic::new(
                Lint::DeadCell,
                format!(
                    "cell c{} ({}) reaches no primary output or register",
                    c.index(),
                    nl.cell(c).kind().name()
                ),
            )
            .with_cell(c)
            .with_net(nl.cell(c).output()),
        );
    }
    // PL0102: input port bits nothing reads.
    let fanout = fanout_counts(nl);
    let mut port_bit = vec![false; nl.num_nets()];
    for p in nl.output_ports() {
        for &b in p.bits() {
            port_bit[b.index()] = true;
        }
    }
    for p in nl.ports() {
        if p.dir() != PortDir::Input {
            continue;
        }
        for (i, &b) in p.bits().iter().enumerate() {
            if fanout[b.index()] == 0 && !port_bit[b.index()] {
                out.push(
                    Diagnostic::new(
                        Lint::UnusedInput,
                        format!("input {}[{i}] is read by nothing", p.name()),
                    )
                    .with_net(b),
                );
            }
        }
    }
    // PL0103: registers whose state cannot reach any output port. The cone
    // query follows register feedback, so state observed only after further
    // clocking still counts as observable.
    let cones = FanoutCones::new(nl);
    let seq: Vec<NetId> =
        nl.cells().filter(|(_, c)| c.kind().is_sequential()).map(|(_, c)| c.output()).collect();
    for q in seq {
        if port_bit[q.index()] {
            continue;
        }
        let cone = cones.cone(nl, &[q]);
        let observable = nl.cells().any(|(id, c)| cone[id.index()] && port_bit[c.output().index()]);
        if !observable {
            let Driver::Cell(reg) = nl.net(q).driver() else {
                continue;
            };
            out.push(
                Diagnostic::new(
                    Lint::UnobservableRegister,
                    format!("register c{} state never reaches an output port", reg.index()),
                )
                .with_cell(reg)
                .with_net(q),
            );
        }
    }
    out
}
