//! The diagnostic framework: the lint catalog, severities, and the
//! [`Diagnostic`] / [`LintReport`] types every pass reports through.

use pe_netlist::{CellId, NetId};
use std::fmt;

/// How bad a diagnostic is.
///
/// Ordered `Info < Warn < Error` so `max()` over a report gives its worst
/// finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: worth knowing, never wrong by itself.
    Info,
    /// Suspicious structure that simulates fine but wastes area or hints at
    /// a generator bug (dead logic, constant nets, unused inputs).
    Warn,
    /// Structurally broken: the netlist cannot be scheduled or simulated
    /// meaningfully. The serving registry refuses models carrying these.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// The lint catalog. Codes are stable: tools and CI match on them.
///
/// | code | lint | severity |
/// |---|---|---|
/// | `PL0001` | combinational cycle through non-register cells | error |
/// | `PL0002` | net with multiple drivers | error |
/// | `PL0003` | undriven net (dangling driver record) | error |
/// | `PL0004` | cell pin-count / kind arity mismatch | error |
/// | `PL0005` | port references a missing net | error |
/// | `PL0006` | cell pin references a missing net | error |
/// | `PL0101` | dead cell (reaches no output or register) | warn |
/// | `PL0102` | unused primary input bit | warn |
/// | `PL0103` | unobservable register (state never reaches an output) | warn |
/// | `PL0201` | combinational output provably constant | warn |
/// | `PL0202` | output port bit stuck at a constant | warn |
/// | `PL0203` | register provably never leaves its power-on value | warn |
/// | `PL0204` | gate fed by a provably-constant net (foldable) | info |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lint {
    /// `PL0001`: a combinational cycle through non-register cells.
    CombinationalCycle,
    /// `PL0002`: two or more cells drive one net.
    MultiDrivenNet,
    /// `PL0003`: a net whose driver record points at a cell that does not
    /// drive it.
    UndrivenNet,
    /// `PL0004`: a cell has the wrong number of input pins for its kind.
    ArityMismatch,
    /// `PL0005`: a port bit references a net that does not exist.
    DanglingPort,
    /// `PL0006`: a cell pin references a net that does not exist.
    FloatingInput,
    /// `PL0101`: a combinational cell whose output reaches neither a primary
    /// output nor a flip-flop data/enable pin.
    DeadCell,
    /// `PL0102`: a primary input bit no cell reads and no output exposes.
    UnusedInput,
    /// `PL0103`: a register whose state can never reach a primary output.
    UnobservableRegister,
    /// `PL0201`: a combinational cell output that X-propagation proves
    /// constant.
    ConstantNet,
    /// `PL0202`: an output port bit stuck at a constant for every input.
    ConstantOutput,
    /// `PL0203`: a register that provably never leaves its power-on value.
    ConstantRegister,
    /// `PL0204`: a cell reading a provably-constant net (a synthesis sweep
    /// would fold it).
    ConstantFedGate,
}

impl Lint {
    /// Every lint in the catalog, in code order.
    pub const ALL: [Lint; 13] = [
        Lint::CombinationalCycle,
        Lint::MultiDrivenNet,
        Lint::UndrivenNet,
        Lint::ArityMismatch,
        Lint::DanglingPort,
        Lint::FloatingInput,
        Lint::DeadCell,
        Lint::UnusedInput,
        Lint::UnobservableRegister,
        Lint::ConstantNet,
        Lint::ConstantOutput,
        Lint::ConstantRegister,
        Lint::ConstantFedGate,
    ];

    /// The stable diagnostic code (`PL....`).
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            Lint::CombinationalCycle => "PL0001",
            Lint::MultiDrivenNet => "PL0002",
            Lint::UndrivenNet => "PL0003",
            Lint::ArityMismatch => "PL0004",
            Lint::DanglingPort => "PL0005",
            Lint::FloatingInput => "PL0006",
            Lint::DeadCell => "PL0101",
            Lint::UnusedInput => "PL0102",
            Lint::UnobservableRegister => "PL0103",
            Lint::ConstantNet => "PL0201",
            Lint::ConstantOutput => "PL0202",
            Lint::ConstantRegister => "PL0203",
            Lint::ConstantFedGate => "PL0204",
        }
    }

    /// The fixed severity this lint reports at.
    #[must_use]
    pub fn severity(&self) -> Severity {
        match self {
            Lint::CombinationalCycle
            | Lint::MultiDrivenNet
            | Lint::UndrivenNet
            | Lint::ArityMismatch
            | Lint::DanglingPort
            | Lint::FloatingInput => Severity::Error,
            Lint::DeadCell
            | Lint::UnusedInput
            | Lint::UnobservableRegister
            | Lint::ConstantNet
            | Lint::ConstantOutput
            | Lint::ConstantRegister => Severity::Warn,
            Lint::ConstantFedGate => Severity::Info,
        }
    }

    /// A short human title.
    #[must_use]
    pub fn title(&self) -> &'static str {
        match self {
            Lint::CombinationalCycle => "combinational cycle",
            Lint::MultiDrivenNet => "multi-driven net",
            Lint::UndrivenNet => "undriven net",
            Lint::ArityMismatch => "arity mismatch",
            Lint::DanglingPort => "dangling port",
            Lint::FloatingInput => "floating cell pin",
            Lint::DeadCell => "dead cell",
            Lint::UnusedInput => "unused input",
            Lint::UnobservableRegister => "unobservable register",
            Lint::ConstantNet => "constant net",
            Lint::ConstantOutput => "constant output",
            Lint::ConstantRegister => "constant register",
            Lint::ConstantFedGate => "constant-fed gate",
        }
    }
}

/// One finding: a lint instance anchored to a cell and/or net locus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub lint: Lint,
    /// The offending cell, when the finding anchors to one.
    pub cell: Option<CellId>,
    /// The offending net, when the finding anchors to one.
    pub net: Option<NetId>,
    /// Human-readable description of this specific instance.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic with no locus (e.g. a dangling port, whose net does not
    /// exist).
    #[must_use]
    pub fn new(lint: Lint, message: impl Into<String>) -> Self {
        Diagnostic { lint, cell: None, net: None, message: message.into() }
    }

    /// Anchors the diagnostic to a cell.
    #[must_use]
    pub fn with_cell(mut self, cell: CellId) -> Self {
        self.cell = Some(cell);
        self
    }

    /// Anchors the diagnostic to a net.
    #[must_use]
    pub fn with_net(mut self, net: NetId) -> Self {
        self.net = Some(net);
        self
    }

    /// The severity (fixed per lint).
    #[must_use]
    pub fn severity(&self) -> Severity {
        self.lint.severity()
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} [{}]", self.lint.code(), self.severity(), self.lint.title())?;
        match (self.cell, self.net) {
            (Some(c), Some(n)) => write!(f, " c{}/n{}", c.index(), n.index())?,
            (Some(c), None) => write!(f, " c{}", c.index())?,
            (None, Some(n)) => write!(f, " n{}", n.index())?,
            (None, None) => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// All findings of one lint run over one netlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintReport {
    diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Appends many findings.
    pub fn extend(&mut self, ds: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(ds);
    }

    /// Every finding, in pass order.
    #[must_use]
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Number of findings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.diagnostics.len()
    }

    /// True when nothing fired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings at one severity.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity() == severity).count()
    }

    /// Findings of one lint.
    pub fn of(&self, lint: Lint) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.lint == lint)
    }

    /// True when any Error-severity finding is present — the registry's
    /// rejection predicate.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity() == Severity::Error)
    }

    /// The worst severity present, or `None` for a clean report.
    #[must_use]
    pub fn worst(&self) -> Option<Severity> {
        self.diagnostics.iter().map(Diagnostic::severity).max()
    }

    /// An aligned text table of every finding (empty string when clean).
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            let locus = match (d.cell, d.net) {
                (Some(c), Some(n)) => format!("c{}/n{}", c.index(), n.index()),
                (Some(c), None) => format!("c{}", c.index()),
                (None, Some(n)) => format!("n{}", n.index()),
                (None, None) => "-".to_owned(),
            };
            out.push_str(&format!(
                "{:<7} {:<5} {:<22} {:<10} {}\n",
                d.lint.code(),
                d.severity(),
                d.lint.title(),
                locus,
                d.message
            ));
        }
        out
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_info_warn_error() {
        assert!(Severity::Info < Severity::Warn);
        assert!(Severity::Warn < Severity::Error);
    }

    #[test]
    fn codes_are_unique_and_stable() {
        let codes: Vec<&str> = Lint::ALL.iter().map(Lint::code).collect();
        let mut dedup = codes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), codes.len(), "duplicate lint code");
        assert_eq!(Lint::CombinationalCycle.code(), "PL0001");
        assert_eq!(Lint::ConstantFedGate.code(), "PL0204");
    }

    #[test]
    fn report_accounting() {
        let mut r = LintReport::new();
        assert!(r.is_empty() && !r.has_errors() && r.worst().is_none());
        r.push(Diagnostic::new(Lint::DeadCell, "d"));
        r.push(Diagnostic::new(Lint::MultiDrivenNet, "m"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.count(Severity::Error), 1);
        assert!(r.has_errors());
        assert_eq!(r.worst(), Some(Severity::Error));
        assert_eq!(r.of(Lint::DeadCell).count(), 1);
        assert!(r.to_table().contains("PL0002"));
    }
}
