//! Static netlist analysis for printed bespoke classifiers: structural
//! lints, constant propagation, and stuck-at fault collapsing.
//!
//! This crate is the design-rule checker of the workspace. It consumes a
//! [`pe_netlist::Netlist`] — whether built by the generators, parsed back
//! from Verilog, or assembled raw by a test — and produces a [`LintReport`]
//! of coded, severity-ranked [`Diagnostic`]s:
//!
//! * **structural** (`PL00xx`, error): combinational cycles, multi-driven and
//!   undriven nets, arity mismatches, dangling port/pin references — anything
//!   that makes the design unschedulable. Unlike
//!   [`pe_netlist::Netlist::validate`] (which stops at the first violation),
//!   the lint pass reports them all, with cell/net loci, and never panics on
//!   malformed input.
//! * **reachability** (`PL01xx`, warn): dead cells, unused inputs,
//!   unobservable registers — logic that simulates fine but cannot matter.
//! * **constant propagation** (`PL02xx`, warn/info): ternary X-propagation
//!   with init-seeded register widening proves nets stuck at constants —
//!   constant gate outputs, stuck output ports, registers that never leave
//!   their power-on value, foldable constant-fed gates.
//!
//! The [`collapse`] module reuses the same structural view for **fault
//! collapsing**: equivalence classes (and a reported dominance relation)
//! over stuck-at sites, which `pe-sim` uses to run fault campaigns on class
//! representatives only and expand verdicts back bit-for-bit.
//!
//! # Example
//!
//! ```
//! use pe_netlist::Builder;
//!
//! let mut b = Builder::new("half_adder");
//! let a = b.input("a");
//! let c = b.input("b");
//! let s = b.xor2(a, c);
//! b.output("sum", s);
//! let nl = b.finish();
//! let report = pe_lint::lint_netlist(&nl);
//! assert!(!report.has_errors());
//! ```

pub mod collapse;
pub mod constprop;
pub mod diag;
pub mod passes;

pub use collapse::{collapse_fault_sites, collapse_sites, CollapsedSites, StuckAt};
pub use diag::{Diagnostic, Lint, LintReport, Severity};

use pe_netlist::Netlist;

/// Runs the full lint pipeline over a netlist.
///
/// The structural pass always runs and is safe on arbitrary garbage. The
/// reachability and constant-propagation passes assume a well-formed design,
/// so they are skipped whenever a structural Error fired — the report then
/// carries the structural findings alone.
#[must_use]
pub fn lint_netlist(nl: &Netlist) -> LintReport {
    let mut report = LintReport::new();
    report.extend(passes::structural(nl));
    if !report.has_errors() {
        report.extend(passes::reachability(nl));
        report.extend(constprop::constprop(nl));
    }
    report
}
