//! Static stuck-at fault collapsing: equivalence classes, observability
//! pruning, and dominance relations over the stuck-at fault sites of a
//! netlist.
//!
//! Three verdict-preserving reductions shrink a fault-simulation campaign:
//!
//! 1. **Equivalence.** Two faults are equivalent when no test can
//!    distinguish them — e.g. on an AND gate whose input `a` fans out
//!    nowhere else, `a` stuck-at-0 and the output stuck-at-0 produce
//!    identical circuits. A campaign needs one representative per class;
//!    verdicts expand back to the full list bit-for-bit
//!    ([`CollapsedSites::expand_verdicts`]).
//! 2. **Observability pruning.** A fault on a net whose structural fanout
//!    cone (closed over register feedback) contains no output-port bit can
//!    never diverge an observed value: the class is *statically benign* and
//!    is not simulated at all. Bespoke classifiers carry real dead logic
//!    (dropped carry MSBs, folded compare chains — the `PL0101`/`PL0103`
//!    lints), so this prunes a substantial slice of the site list.
//! 3. **Dominance** (reported, never pruned). Fault `F` dominates `G` when
//!    every test for `G` also detects `F`, so a detection-oriented test set
//!    may drop `F`. Dominance is one-directional — *not* verdict-preserving
//!    for criticality campaigns — so it is surfaced as a statistic only.
//!
//! Equivalence rules are local-gate classics, applied only when the gate is
//! the sole reader of the input net (pin fanout 1, not exposed on a port —
//! otherwise the fault is observable around the gate):
//!
//! | gate | equivalent | dominated → dominator |
//! |---|---|---|
//! | `Buf`  | `(a,v) ≡ (y,v)` | — |
//! | `Inv`  | `(a,v) ≡ (y,!v)` | — |
//! | `And*` | `(a,0) ≡ (y,0)` | `(a,1) → (y,1)` |
//! | `Or*`  | `(a,1) ≡ (y,1)` | `(a,0) → (y,0)` |
//! | `Nand2`| `(a,0) ≡ (y,1)` | `(a,1) → (y,0)` |
//! | `Nor2` | `(a,1) ≡ (y,0)` | `(a,0) → (y,1)` |
//! | `Dff`/`DffE` | `(d,init) ≡ (q,init)` | — |
//!
//! The register rule holds because forcing `d` to the power-on value pins
//! `q` there from reset onward — exactly what `q` stuck at `init` does
//! (enable gating can only hold `q` at a value it already has).
//! `Xor`/`Xnor`/`Mux2`/`Maj3` admit no local structural collapse, and the
//! opposite-polarity register faults never merge: a `q` fault is visible at
//! cycle 0 (the power-on value), a `d` fault only one clock later.

use pe_netlist::graph::fanout_counts;
use pe_netlist::{CellKind, Driver, NetId, Netlist};

/// One stuck-at fault site: `net` permanently forced to `stuck_at`.
///
/// Field-compatible with `pe-sim`'s `FaultSite`; kept separate so the lint
/// crate stays dependency-light.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StuckAt {
    /// The faulted net.
    pub net: NetId,
    /// The value the net is stuck at.
    pub stuck_at: bool,
}

/// The canonical stuck-at site list of a netlist: every cell-driven net in
/// ascending id order, stuck-at-0 then stuck-at-1 adjacent.
///
/// Matches `pe_sim::faults::enumerate_fault_sites` element-for-element
/// (`pe-sim` pins this with a differential test).
#[must_use]
pub fn enumerate_sites(nl: &Netlist) -> Vec<StuckAt> {
    let mut sites = Vec::new();
    for (id, net) in nl.nets() {
        if matches!(net.driver(), Driver::Cell(_)) {
            sites.push(StuckAt { net: id, stuck_at: false });
            sites.push(StuckAt { net: id, stuck_at: true });
        }
    }
    sites
}

/// Per-net structural observability: `true` iff the net's fanout cone
/// (closed over register feedback) contains an output-port bit. A fault on
/// an unobservable net can never change any observed value.
#[must_use]
pub fn observable_nets(nl: &Netlist) -> Vec<bool> {
    let mut obs = vec![false; nl.num_nets()];
    for p in nl.output_ports() {
        for &b in p.bits() {
            obs[b.index()] = true;
        }
    }
    // Backward closure: a net is observable when some cell reading it has an
    // observable output. Cells are stored roughly topologically, so sweeping
    // them in reverse converges in one pass plus one per register stage.
    loop {
        let mut changed = false;
        for (_, cell) in nl.cells().collect::<Vec<_>>().into_iter().rev() {
            if obs[cell.output().index()] {
                for &i in cell.inputs() {
                    if !obs[i.index()] {
                        obs[i.index()] = true;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            return obs;
        }
    }
}

/// A site list partitioned into equivalence classes, split into simulated
/// and statically-benign classes, plus the dominance relation between class
/// representatives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollapsedSites {
    /// The full site list, in the order it was given.
    pub sites: Vec<StuckAt>,
    /// For every index into `sites`, the index of its class representative
    /// (the first site of the class; representatives map to themselves).
    pub rep_of: Vec<usize>,
    /// Every class representative, ascending.
    pub representatives: Vec<usize>,
    /// The representatives a campaign actually simulates: classes with at
    /// least one observable member. Subset of `representatives`, ascending.
    pub simulate: Vec<usize>,
    /// Representatives of statically-benign classes (no member can reach an
    /// output port): their whole class is benign without simulation.
    pub static_benign: Vec<usize>,
    /// `(dominated, dominator)` pairs as representative indices. Reporting
    /// only — see the module docs for why campaigns must not prune by these.
    pub dominance: Vec<(usize, usize)>,
}

impl CollapsedSites {
    /// Number of sites in the full list.
    #[must_use]
    pub fn num_sites(&self) -> usize {
        self.sites.len()
    }

    /// Number of equivalence-class representatives.
    #[must_use]
    pub fn num_representatives(&self) -> usize {
        self.representatives.len()
    }

    /// Number of sites a campaign simulates (one per observable class).
    #[must_use]
    pub fn num_simulated(&self) -> usize {
        self.simulate.len()
    }

    /// Fraction of sites a campaign no longer simulates — equivalence
    /// collapsing and observability pruning combined (0.0 for an empty
    /// list).
    #[must_use]
    pub fn reduction(&self) -> f64 {
        if self.sites.is_empty() {
            0.0
        } else {
            1.0 - self.simulate.len() as f64 / self.sites.len() as f64
        }
    }

    /// Distinct representatives a detection-oriented test set could
    /// additionally drop as dominators. An upper bound, for reporting.
    #[must_use]
    pub fn dominance_prunable(&self) -> usize {
        let mut doms: Vec<usize> = self.dominance.iter().map(|&(_, f)| f).collect();
        doms.sort_unstable();
        doms.dedup();
        doms.len()
    }

    /// Expands per-simulated-representative verdicts back to the full site
    /// list: `simulated[i]` is the verdict for `simulate[i]`, every member
    /// of a simulated class receives its representative's verdict, and every
    /// member of a statically-benign class receives `benign`.
    ///
    /// # Panics
    ///
    /// Panics if `simulated.len() != self.simulate.len()`.
    #[must_use]
    pub fn expand_verdicts<T: Copy>(&self, simulated: &[T], benign: T) -> Vec<T> {
        assert_eq!(simulated.len(), self.simulate.len());
        let mut value = vec![benign; self.sites.len()];
        for (i, &r) in self.simulate.iter().enumerate() {
            value[r] = simulated[i];
        }
        self.rep_of.iter().map(|&r| value[r]).collect()
    }
}

/// Union-find over fault nodes with path halving; roots are the smallest
/// member so class representatives are deterministic.
struct UnionFind(Vec<u32>);

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind((0..n as u32).collect())
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.0[x as usize] != x {
            let parent = self.0[x as usize];
            self.0[x as usize] = self.0[parent as usize];
            x = self.0[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.0[ra.max(rb) as usize] = ra.min(rb);
        }
    }
}

/// Collapses the canonical site list of `nl` ([`enumerate_sites`]).
#[must_use]
pub fn collapse_fault_sites(nl: &Netlist) -> CollapsedSites {
    let sites = enumerate_sites(nl);
    collapse_sites(nl, &sites)
}

/// Collapses an arbitrary site list (e.g. a sampled subset) against the
/// structure of `nl`. Classes are computed on the whole netlist; each class's
/// representative is its first member *within the given list*, so a subset
/// campaign never simulates a site outside the subset.
#[must_use]
pub fn collapse_sites(nl: &Netlist, sites: &[StuckAt]) -> CollapsedSites {
    let num_nets = nl.num_nets();
    let node = |s: StuckAt| (2 * s.net.index() + usize::from(s.stuck_at)) as u32;
    let fanout = fanout_counts(nl);
    let mut port_bit = vec![false; num_nets];
    for p in nl.ports() {
        for &b in p.bits() {
            port_bit[b.index()] = true;
        }
    }

    let mut uf = UnionFind::new(2 * num_nets);
    // Raw dominance pairs as (dominated node, dominator node).
    let mut dom_nodes: Vec<(u32, u32)> = Vec::new();
    for (_, cell) in nl.cells() {
        let y = cell.output();
        let sole_reader = |a: NetId| {
            matches!(nl.net(a).driver(), Driver::Cell(_))
                && fanout[a.index()] == 1
                && !port_bit[a.index()]
        };
        let n = |net: NetId, v: bool| node(StuckAt { net, stuck_at: v });
        match cell.kind() {
            CellKind::Buf | CellKind::Inv => {
                let a = cell.inputs()[0];
                if sole_reader(a) {
                    let flip = cell.kind() == CellKind::Inv;
                    uf.union(n(a, false), n(y, flip));
                    uf.union(n(a, true), n(y, !flip));
                }
            }
            CellKind::And2 | CellKind::And3 => {
                for &a in cell.inputs() {
                    if sole_reader(a) {
                        uf.union(n(a, false), n(y, false));
                        dom_nodes.push((n(a, true), n(y, true)));
                    }
                }
            }
            CellKind::Or2 | CellKind::Or3 => {
                for &a in cell.inputs() {
                    if sole_reader(a) {
                        uf.union(n(a, true), n(y, true));
                        dom_nodes.push((n(a, false), n(y, false)));
                    }
                }
            }
            CellKind::Nand2 => {
                for &a in cell.inputs() {
                    if sole_reader(a) {
                        uf.union(n(a, false), n(y, true));
                        dom_nodes.push((n(a, true), n(y, false)));
                    }
                }
            }
            CellKind::Nor2 => {
                for &a in cell.inputs() {
                    if sole_reader(a) {
                        uf.union(n(a, true), n(y, false));
                        dom_nodes.push((n(a, false), n(y, true)));
                    }
                }
            }
            CellKind::Dff | CellKind::DffE => {
                // Forcing d to the power-on value pins q there from reset
                // onward — indistinguishable from q stuck at init.
                let d = cell.inputs()[0];
                if sole_reader(d) {
                    uf.union(n(d, cell.init()), n(y, cell.init()));
                }
            }
            CellKind::Xor2 | CellKind::Xnor2 | CellKind::Mux2 | CellKind::Maj3 => {}
        }
    }

    // First site of each class (in list order) becomes its representative.
    let mut first_of_root = vec![usize::MAX; 2 * num_nets];
    let mut rep_of = vec![0usize; sites.len()];
    let mut representatives = Vec::new();
    for (i, &s) in sites.iter().enumerate() {
        let root = uf.find(node(s)) as usize;
        if first_of_root[root] == usize::MAX {
            first_of_root[root] = i;
            representatives.push(i);
        }
        rep_of[i] = first_of_root[root];
    }

    // A class is simulated iff any member sits on an observable net;
    // otherwise no member can diverge an output and the class is benign by
    // construction. (Sole-reader chains give all members identical cones,
    // but "any member" keeps the split conservative for exotic lists.)
    let obs = observable_nets(nl);
    let mut class_observable = vec![false; sites.len()];
    for (i, &s) in sites.iter().enumerate() {
        if obs[s.net.index()] {
            class_observable[rep_of[i]] = true;
        }
    }
    let (simulate, static_benign): (Vec<usize>, Vec<usize>) =
        representatives.iter().partition(|&&r| class_observable[r]);

    // Lift dominance onto representatives present in the list.
    let mut dominance: Vec<(usize, usize)> = dom_nodes
        .into_iter()
        .filter_map(|(g, f)| {
            let g = first_of_root[uf.find(g) as usize];
            let f = first_of_root[uf.find(f) as usize];
            (g != usize::MAX && f != usize::MAX && g != f).then_some((g, f))
        })
        .collect();
    dominance.sort_unstable();
    dominance.dedup();

    CollapsedSites {
        sites: sites.to_vec(),
        rep_of,
        representatives,
        simulate,
        static_benign,
        dominance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_netlist::testing::RawNetlistBuilder;
    use pe_netlist::{Builder, Driver};

    /// `x -> inv^n -> y` without the Builder's double-inversion folding.
    fn inv_chain(len: usize) -> (Netlist, Vec<NetId>) {
        let mut rb = RawNetlistBuilder::new("chain");
        let mut cur = rb.input("x");
        let mut nets = Vec::new();
        for _ in 0..len {
            let next = rb.net(Driver::Input);
            rb.cell(CellKind::Inv, &[cur], next);
            nets.push(next);
            cur = next;
        }
        rb.output("y", &[cur]);
        let nl = rb.finish();
        nl.validate().unwrap();
        (nl, nets)
    }

    #[test]
    fn inverter_chain_collapses_to_one_class_per_polarity() {
        // x -> inv -> inv -> inv -> y: all 6 sites fold into 2 classes.
        let (nl, _) = inv_chain(3);
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_sites(), 6);
        assert_eq!(c.num_representatives(), 2);
        assert_eq!(c.num_simulated(), 2, "everything reaches the output");
        assert!((c.reduction() - 2.0 / 3.0).abs() < 1e-12);
        // Expansion hands every site its class representative's verdict.
        let expanded = c.expand_verdicts(&[10u32, 20u32], 0);
        assert_eq!(expanded.len(), 6);
        assert_eq!(expanded.iter().filter(|&&v| v == 10).count(), 3);
        assert!(!expanded.contains(&0));
    }

    #[test]
    fn and_gate_merges_sa0_and_reports_dominance() {
        let mut b = Builder::new("and");
        let x = b.input("x");
        let y = b.input("y");
        let z = b.and2(x, y);
        b.output("z", z);
        let nl = b.finish();
        // Only z is cell-driven: inputs are primary, so 2 sites, no merge...
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_sites(), 2);
        assert_eq!(c.num_representatives(), 2);
        // ...but behind an inverter the AND's input becomes a site.
        let mut b = Builder::new("and2");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.inv(x);
        let z = b.and2(nx, y);
        b.output("z", z);
        let nl = b.finish();
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_sites(), 4);
        // (nx,0) ≡ (z,0) merges; (nx,1) and (z,1) stay separate but dominate.
        assert_eq!(c.num_representatives(), 3);
        assert_eq!(c.dominance.len(), 1);
        assert_eq!(c.dominance_prunable(), 1);
    }

    #[test]
    fn fanout_blocks_collapsing() {
        // The inverter output feeds two gates: its faults are observable on
        // two paths, so nothing may merge through either gate.
        let mut b = Builder::new("fan");
        let x = b.input("x");
        let y = b.input("y");
        let nx = b.inv(x);
        let a = b.and2(nx, y);
        let o = b.or2(nx, y);
        b.output("a", a);
        b.output("o", o);
        let nl = b.finish();
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_representatives(), c.num_sites());
        assert_eq!(c.num_simulated(), c.num_sites());
    }

    #[test]
    fn unobservable_cone_is_statically_benign() {
        // A dead xor cone hanging off the inputs: its sites never simulate.
        let mut rb = RawNetlistBuilder::new("deadcone");
        let x = rb.input("x");
        let y = rb.input("y");
        let live = rb.net(Driver::Input);
        rb.cell(CellKind::And2, &[x, y], live);
        let dead1 = rb.net(Driver::Input);
        rb.cell(CellKind::Xor2, &[x, y], dead1);
        let dead2 = rb.net(Driver::Input);
        rb.cell(CellKind::Xor2, &[dead1, y], dead2);
        rb.output("z", &[live]);
        let nl = rb.finish();
        nl.validate().unwrap();
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_sites(), 6);
        assert_eq!(c.num_simulated(), 2, "only the live AND's sites simulate");
        assert_eq!(c.static_benign.len() + c.num_simulated(), c.num_representatives());
        // Expansion marks the dead cone benign without any verdict input.
        let expanded = c.expand_verdicts(&[true, true], false);
        assert_eq!(expanded.iter().filter(|&&v| v).count(), 2);
    }

    #[test]
    fn register_init_fault_merges_with_data_pin() {
        // inv -> dff(init=0) -> output: (d,0) ≡ (q,0), polarity 1 stays.
        let mut b = Builder::new("reg");
        let x = b.input("x");
        let (q, h) = b.dff_deferred(false);
        let nx = b.inv(x);
        b.connect_dff(h, nx);
        b.output("q", q);
        let nl = b.finish();
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.num_sites(), 4);
        // (nx,0)~(q,0) merge; (nx,1), (q,1) separate.
        assert_eq!(c.num_representatives(), 3);
    }

    #[test]
    fn subset_collapsing_picks_subset_representatives() {
        let (nl, nets) = inv_chain(2);
        let (n1, n2) = (nets[0], nets[1]);
        let all = enumerate_sites(&nl);
        // Drop the first net's sites: representatives must come from what
        // remains, never from outside the list.
        let subset: Vec<StuckAt> = all.iter().copied().filter(|s| s.net != n1).collect();
        let c = collapse_sites(&nl, &subset);
        assert_eq!(c.num_sites(), 2);
        assert_eq!(c.num_representatives(), 2);
        for &r in &c.representatives {
            assert_eq!(c.sites[r].net, n2);
        }
    }
}
