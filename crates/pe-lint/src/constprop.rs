//! Ternary constant propagation (X-propagation) over a netlist.
//!
//! Values are `Option<bool>`: `Some(v)` means *provably `v` for every input
//! vector and every cycle*, `None` means unknown (X). Primary inputs start at
//! X; registers start at their explicit power-on value (this IR has no
//! uninitialized state — the paper's reset protocol restores `init` exactly),
//! and are widened with the join `definite ⊔ different = X` each clock until
//! the abstraction reaches a fixpoint. The result is a sound per-net verdict:
//! anything reported constant really is stuck at that value in simulation.
//!
//! The pass powers the `PL0201`–`PL0204` lints and assumes a structurally
//! clean netlist (the [`crate::lint_netlist`] driver gates it on zero
//! Error-severity findings).

use crate::diag::{Diagnostic, Lint};
use pe_netlist::graph::topo_order;
use pe_netlist::{CellKind, Driver, Netlist, PortDir};

/// Join of two ternary values: agreeing definites survive, anything else
/// widens to X.
fn join(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    if a == b {
        a
    } else {
        None
    }
}

/// Evaluates a combinational cell over ternary inputs by brute force: every
/// assignment of the X inputs is tried (arity ≤ 3, so at most 8), and the
/// output is definite only when all assignments agree.
///
/// # Panics
///
/// Panics if `kind` is sequential or `ins` has the wrong arity.
#[must_use]
pub fn ternary_eval(kind: CellKind, ins: &[Option<bool>]) -> Option<bool> {
    assert!(!kind.is_sequential(), "ternary_eval is combinational-only");
    assert_eq!(ins.len(), kind.arity());
    let unknown: Vec<usize> =
        ins.iter().enumerate().filter(|(_, v)| v.is_none()).map(|(i, _)| i).collect();
    let mut concrete: Vec<bool> = ins.iter().map(|v| v.unwrap_or(false)).collect();
    let mut result = None;
    for combo in 0..(1u32 << unknown.len()) {
        for (bit, &pos) in unknown.iter().enumerate() {
            concrete[pos] = combo >> bit & 1 == 1;
        }
        let v = kind.eval(&concrete);
        match result {
            None => result = Some(v),
            Some(prev) if prev != v => return None,
            Some(_) => {}
        }
    }
    result
}

/// The per-net fixpoint of ternary constant propagation: `values[n]` is
/// `Some(v)` iff net `n` provably holds `v` on every cycle of every run.
///
/// Returns an all-X vector if the netlist has no topological order (cyclic
/// or malformed designs are the structural pass's problem, not ours).
#[must_use]
pub fn net_constants(nl: &Netlist) -> Vec<Option<bool>> {
    let mut values: Vec<Option<bool>> = vec![None; nl.num_nets()];
    let Ok(order) = topo_order(nl) else {
        return values;
    };
    for (id, net) in nl.nets() {
        if let Driver::Const(v) = net.driver() {
            values[id.index()] = Some(v);
        }
    }
    // Registers enter the lattice at their power-on value.
    for (_, cell) in nl.cells() {
        if cell.kind().is_sequential() {
            values[cell.output().index()] = Some(cell.init());
        }
    }
    // Each iteration: settle the combinational fabric, then clock every
    // register once under the join. A register's value only ever moves
    // definite → X, so this terminates within #registers + 1 iterations.
    loop {
        for &c in &order {
            let cell = nl.cell(c);
            if cell.kind().is_sequential() {
                continue;
            }
            let ins: Vec<Option<bool>> = cell.inputs().iter().map(|n| values[n.index()]).collect();
            values[cell.output().index()] = ternary_eval(cell.kind(), &ins);
        }
        let mut changed = false;
        for (_, cell) in nl.cells() {
            if !cell.kind().is_sequential() {
                continue;
            }
            let q = cell.output().index();
            let cur = values[q];
            let d = values[cell.inputs()[0].index()];
            let next = match cell.kind() {
                CellKind::Dff => d,
                CellKind::DffE => match values[cell.inputs()[1].index()] {
                    Some(true) => d,
                    Some(false) => cur,
                    None => join(cur, d),
                },
                _ => unreachable!("sequential kinds are Dff/DffE"),
            };
            let widened = join(cur, next);
            if widened != cur {
                values[q] = widened;
                changed = true;
            }
        }
        if !changed {
            return values;
        }
    }
}

/// Constant-propagation lints (`PL0201`–`PL0204`) over the
/// [`net_constants`] fixpoint:
///
/// * `PL0201` — a combinational cell whose output is provably constant;
/// * `PL0202` — an output port bit stuck at a constant (including direct
///   constant ties);
/// * `PL0203` — a register that provably never leaves its power-on value;
/// * `PL0204` (info) — a cell reading a provably-constant net whose own
///   output is *not* constant: a partial fold a synthesis sweep would take.
#[must_use]
pub fn constprop(nl: &Netlist) -> Vec<Diagnostic> {
    let values = net_constants(nl);
    let mut out = Vec::new();
    for (id, cell) in nl.cells() {
        let y = cell.output();
        if cell.kind().is_sequential() {
            if let Some(v) = values[y.index()] {
                out.push(
                    Diagnostic::new(
                        Lint::ConstantRegister,
                        format!(
                            "register c{} never leaves its power-on value {}",
                            id.index(),
                            u8::from(v)
                        ),
                    )
                    .with_cell(id)
                    .with_net(y),
                );
            }
        } else if let Some(v) = values[y.index()] {
            out.push(
                Diagnostic::new(
                    Lint::ConstantNet,
                    format!(
                        "cell c{} ({}) output is always {}",
                        id.index(),
                        cell.kind().name(),
                        u8::from(v)
                    ),
                )
                .with_cell(id)
                .with_net(y),
            );
        }
        if values[y.index()].is_none() {
            if let Some(&pin) = cell.inputs().iter().find(|n| values[n.index()].is_some()) {
                out.push(
                    Diagnostic::new(
                        Lint::ConstantFedGate,
                        format!(
                            "cell c{} ({}) reads constant net n{} — foldable",
                            id.index(),
                            cell.kind().name(),
                            pin.index()
                        ),
                    )
                    .with_cell(id)
                    .with_net(pin),
                );
            }
        }
    }
    for p in nl.ports() {
        if p.dir() != PortDir::Output {
            continue;
        }
        for (i, &b) in p.bits().iter().enumerate() {
            if let Some(v) = values[b.index()] {
                out.push(
                    Diagnostic::new(
                        Lint::ConstantOutput,
                        format!("output {}[{i}] is stuck at {}", p.name(), u8::from(v)),
                    )
                    .with_net(b),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_eval_matches_concrete_and_widens() {
        assert_eq!(ternary_eval(CellKind::And2, &[Some(false), None]), Some(false));
        assert_eq!(ternary_eval(CellKind::And2, &[Some(true), None]), None);
        assert_eq!(ternary_eval(CellKind::Or2, &[None, Some(true)]), Some(true));
        assert_eq!(ternary_eval(CellKind::Xor2, &[Some(true), Some(true)]), Some(false));
        // Mux with constant select collapses to the selected leg.
        assert_eq!(ternary_eval(CellKind::Mux2, &[Some(true), None, Some(false)]), Some(true));
        // Mux with both legs equal ignores an unknown select.
        assert_eq!(ternary_eval(CellKind::Mux2, &[Some(true), Some(true), None]), Some(true));
    }

    #[test]
    fn register_feedback_reaches_a_sound_fixpoint() {
        use pe_netlist::Builder;
        // q' = q xor x: the register genuinely toggles, so q must widen to X.
        let mut b = Builder::new("toggle");
        let x = b.input("x");
        let (q, h) = b.dff_deferred(false);
        let d = b.xor2(q, x);
        b.connect_dff(h, d);
        b.output("q", q);
        let nl = b.finish();
        let vals = net_constants(&nl);
        assert_eq!(vals[q.index()], None);
        assert!(constprop(&nl).iter().all(|d| d.lint != Lint::ConstantRegister));
    }
}
