//! The serving torture suite: adversarial byte streams against the
//! non-blocking front end's partial-line state machines.
//!
//! Every test drives a real [`pe_serve::Server`] over loopback with traffic
//! shaped to break line framing — writes split at every byte boundary,
//! oversized lines, interleaved pipelined bursts, invalid UTF-8, and abrupt
//! mid-request disconnects — and asserts the contract the front end
//! promises: no hangs, no leaked connection slots (checked through the
//! `pe_conn_open` gauge from a live observer connection), and a clean
//! one-line error reply for every malformed request with the connection
//! still usable afterwards.
//!
//! Models run in [`ServeMode::Int`]: framing torture is about bytes, not
//! gates, and the integer path keeps the suite fast. The `cardio:seq`
//! model is trained once for the whole suite.

use pe_core::pipeline::RunOptions;
use pe_serve::protocol::MAX_LINE;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Server, Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

fn registry() -> Arc<ModelRegistry> {
    static REGISTRY: OnceLock<Arc<ModelRegistry>> = OnceLock::new();
    Arc::clone(REGISTRY.get_or_init(|| {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let _ = registry.get(key()); // train once for every test in the suite
        registry
    }))
}

fn key() -> ModelKey {
    ModelKey::parse("cardio:seq").unwrap()
}

/// Spawns a service + server pair on an ephemeral port; the returned guard
/// shuts the server down (deterministic drain) when dropped.
struct Harness {
    addr: std::net::SocketAddr,
    service: Arc<Service>,
    thread: Option<std::thread::JoinHandle<usize>>,
}

fn start() -> Harness {
    let service = Service::start(
        registry(),
        ServiceConfig { mode: ServeMode::Int, ..ServiceConfig::default() },
    );
    let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
    let addr = server.local_addr();
    Harness { addr, service, thread: Some(std::thread::spawn(move || server.run())) }
}

impl Drop for Harness {
    fn drop(&mut self) {
        let mut conn = TcpStream::connect(self.addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "shutdown"), "bye");
        self.thread.take().unwrap().join().unwrap();
        assert!(self.service.is_stopped());
    }
}

fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    writeln!(stream, "{line}").unwrap();
    read_reply(reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut reply = String::new();
    assert!(reader.read_line(&mut reply).unwrap() > 0, "connection closed before reply");
    reply.trim_end().to_owned()
}

/// A well-formed classify request line (no trailing newline) and its
/// expected `ok` reply.
fn classify_line() -> (String, String) {
    let registry = registry();
    let entry = registry.get(key());
    let (x, _) = entry.prepared.test.sample(0);
    let want = entry.predict_int(&entry.quantize_input(x));
    (pe_serve::protocol::format_classify(key(), x), format!("ok {want}"))
}

/// Reads the unlabeled `pe_conn_open` gauge through a fresh observer
/// connection (which itself counts as one open connection).
fn conn_open(addr: std::net::SocketAddr) -> u64 {
    let mut conn = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    writeln!(conn, "metrics").unwrap();
    loop {
        let line = read_reply(&mut reader);
        if let Some(v) = line.strip_prefix("pe_conn_open ") {
            return v.trim().parse().unwrap();
        }
        assert_ne!(line, "# EOF", "metrics reply had no pe_conn_open series");
    }
}

/// Polls `pe_conn_open` until it reaches `want` (the observer's own
/// connection included) or a deadline expires — slot reclamation is
/// asynchronous to the client's close, but must always happen.
fn wait_conn_open(addr: std::net::SocketAddr, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let open = conn_open(addr);
        if open == want {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "pe_conn_open stuck at {open}, want {want}: leaked connection slots"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn writes_split_at_every_byte_boundary_parse_identically() {
    let h = start();
    let (line, want) = classify_line();
    let bytes = format!("{line}\nping\n").into_bytes();
    let mut conn = TcpStream::connect(h.addr).unwrap();
    conn.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for split in 1..bytes.len() {
        conn.write_all(&bytes[..split]).unwrap();
        conn.flush().unwrap();
        // Let the front end observe (and buffer) the partial line alone.
        std::thread::sleep(Duration::from_millis(1));
        conn.write_all(&bytes[split..]).unwrap();
        assert_eq!(read_reply(&mut reader), want, "split at byte {split}");
        assert_eq!(read_reply(&mut reader), "pong", "split at byte {split}");
    }
}

#[test]
fn oversized_lines_get_an_error_and_the_connection_recovers() {
    let h = start();
    let mut conn = TcpStream::connect(h.addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // A line that never ends: the reader must reply (and enter discard
    // mode) as soon as the buffered prefix exceeds MAX_LINE, well before
    // any newline shows up.
    conn.write_all(&vec![b'x'; MAX_LINE + 100]).unwrap();
    assert_eq!(read_reply(&mut reader), "err line too long");
    // Everything up to the newline is discarded, including bytes arriving
    // after the error reply; the next line parses normally.
    conn.write_all(b"more garbage\n").unwrap();
    assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

    // A complete newline-terminated line just over the cap gets the same
    // error, same recovery.
    let mut big = vec![b'y'; MAX_LINE + 1];
    big.push(b'\n');
    conn.write_all(&big).unwrap();
    assert_eq!(read_reply(&mut reader), "err line too long");
    assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

    let (line, want) = classify_line();
    assert_eq!(send(&mut conn, &mut reader, &line), want);
}

#[test]
fn invalid_utf8_gets_a_clean_error_and_the_connection_recovers() {
    let h = start();
    let mut conn = TcpStream::connect(h.addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    conn.write_all(&[0xff, 0xfe, 0x80, b'\n']).unwrap();
    assert_eq!(read_reply(&mut reader), "err invalid utf-8");
    assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");
}

#[test]
fn interleaved_pipelined_requests_reply_in_order() {
    let h = start();
    let (line, want) = classify_line();
    // One write carrying a burst of mixed requests — classifications that
    // go through the async service ticket path, instant replies (ping),
    // stats, and malformed lines — replies must come back in request
    // order, errors included, nothing dropped.
    let burst = format!("{line}\nping\nnonsense\n{line}\nstats\nclassify cardio seq 0.5\nping\n");
    let mut conn = TcpStream::connect(h.addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    conn.write_all(burst.as_bytes()).unwrap();
    assert_eq!(read_reply(&mut reader), want);
    assert_eq!(read_reply(&mut reader), "pong");
    assert!(read_reply(&mut reader).starts_with("err "), "bad command must reply in order");
    assert_eq!(read_reply(&mut reader), want);
    assert!(read_reply(&mut reader).starts_with("stats "), "stats must reply in order");
    assert_eq!(read_reply(&mut reader), "err expected 21 features, got 1");
    assert_eq!(read_reply(&mut reader), "pong");

    // A pipelined burst split mid-burst at an arbitrary byte boundary.
    let bytes = burst.as_bytes();
    let split = line.len() + 3; // inside "ping"
    conn.write_all(&bytes[..split]).unwrap();
    conn.flush().unwrap();
    std::thread::sleep(Duration::from_millis(1));
    conn.write_all(&bytes[split..]).unwrap();
    for (i, expect) in
        [&want, "pong", "err ", &want, "stats ", "err expected 21 features, got 1", "pong"]
            .iter()
            .enumerate()
    {
        let reply = read_reply(&mut reader);
        assert!(reply.starts_with(*expect), "burst reply {i}: {reply:?}");
    }
}

#[test]
fn abrupt_disconnects_leak_no_connection_slots() {
    let h = start();
    let (line, _) = classify_line();
    // A mix of rude clients: drop mid-line, drop right after a full
    // request without reading the reply, drop after half a pipelined
    // burst. Every slot must come back; the server must keep serving.
    for round in 0..3 {
        let mut rude = Vec::new();
        for i in 0..12 {
            let mut conn = TcpStream::connect(h.addr).unwrap();
            conn.set_nodelay(true).unwrap();
            match i % 3 {
                0 => {
                    // Mid-line: bytes buffered, no newline ever.
                    conn.write_all(&line.as_bytes()[..line.len() / 2]).unwrap();
                }
                1 => {
                    // Full request submitted, reply never read.
                    conn.write_all(format!("{line}\n").as_bytes()).unwrap();
                }
                _ => {
                    // Half a pipelined burst, cut inside the second line.
                    conn.write_all(format!("{line}\n{line}").as_bytes()).unwrap();
                }
            }
            conn.flush().unwrap();
            rude.push(conn);
        }
        // Give the front end a chance to buffer the fragments, then
        // vanish without so much as a FIN handshake completion.
        std::thread::sleep(Duration::from_millis(10));
        drop(rude);
        // Only the observer's own connection may remain.
        wait_conn_open(h.addr, 1);
        // The server is still fully alive for polite clients.
        let mut conn = TcpStream::connect(h.addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "ping"), "pong", "round {round}");
    }
    let metrics = {
        let mut conn = TcpStream::connect(h.addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        writeln!(conn, "metrics").unwrap();
        let mut text = String::new();
        loop {
            let l = read_reply(&mut reader);
            let done = l == "# EOF";
            text.push_str(&l);
            text.push('\n');
            if done {
                break text;
            }
        }
    };
    // 36 rude clients + per-round ping conns + observers all came and went.
    let accepted: u64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("pe_conn_accepted_total "))
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert!(accepted >= 36, "accepted only {accepted} connections");
}

#[test]
fn a_half_open_connection_with_a_buffered_request_still_gets_served_state_drained() {
    let h = start();
    let (line, want) = classify_line();
    // Client shuts down its write half after a full pipelined request but
    // keeps reading: the server must drain the buffered request and
    // deliver the reply even though the read side already hit EOF.
    let conn = TcpStream::connect(h.addr).unwrap();
    let mut writer = conn.try_clone().unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    writer.write_all(format!("{line}\nping\n").as_bytes()).unwrap();
    writer.flush().unwrap();
    conn.shutdown(std::net::Shutdown::Write).unwrap();
    assert_eq!(read_reply(&mut reader), want);
    assert_eq!(read_reply(&mut reader), "pong");
    // After the replies, the server closes its half too: clean EOF.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "unexpected trailing bytes {rest:?}");
    wait_conn_open(h.addr, 1);
}
