//! The serving-path equivalence suite: for **every** cell of the paper's
//! Table-I grid, the integer fast path (`predict_int`) and the gate-level
//! simulated path must agree bit for bit through the service — including
//! ragged batch sizes around the 64-lane word boundary (1/63/64/65), which
//! exercise the bit-sliced engine's lane masking and chunk streaming.
//!
//! This is the serving twin of `pe-sim`'s differential suite: that one pins
//! the fast simulator to the scalar oracle; this one pins the whole
//! coalescing service (quantize → batch → simulate → reply) to the integer
//! golden model.

use pe_core::engine::NullSink;
use pe_core::pipeline::RunOptions;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Batch sizes around the word boundary: a singleton, one short of a full
/// word, exactly one word, and one into the second chunk.
const RAGGED_SIZES: [usize; 4] = [1, 63, 64, 65];

#[test]
fn predict_int_matches_gate_level_across_the_table1_grid() {
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let keys = ModelKey::table1_grid();
    assert_eq!(keys.len(), 20, "5 datasets x 4 styles");
    // Train every cell up front, in parallel (the suite's dominant cost).
    registry.warm(&keys, pe_core::engine::default_threads(keys.len()), &mut NullSink);
    assert_eq!(registry.trainings(), 20);

    let service = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Verify,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    let mut served = 0u64;
    for &key in &keys {
        let entry = registry.get(key);
        for size in RAGGED_SIZES {
            let xs = entry.sample_requests(size);
            let replies = service.classify_batch(key, &xs);
            for (i, (reply, x)) in replies.iter().zip(&xs).enumerate() {
                let want = entry.predict_int(&entry.quantize_input(x));
                assert_eq!(
                    *reply,
                    Ok(want),
                    "{} batch size {size} sample {i}: gate-level reply diverged",
                    key.token()
                );
            }
            served += size as u64;
        }
    }
    let m = service.metrics();
    assert_eq!(m.verify_mismatches, 0, "per-batch verify must never fire");
    assert_eq!(m.served, served);
    assert!(m.batches >= 20 * RAGGED_SIZES.len() as u64, "batches {}", m.batches);
    service.shutdown();
    assert!(service.is_stopped());
}
