//! The serving-path equivalence suite: for **every** cell of the paper's
//! Table-I grid, the integer fast path (`predict_int`) and the gate-level
//! simulated path must agree bit for bit through the service — including
//! ragged batch sizes around the 64-lane word boundary (1/63/64/65), which
//! exercise the bit-sliced engine's lane masking and chunk streaming.
//!
//! This is the serving twin of `pe-sim`'s differential suite: that one pins
//! the fast simulator to the scalar oracle; this one pins the whole
//! coalescing service (quantize → batch → simulate → reply) to the integer
//! golden model.
//!
//! The low-activity tests cover the event-driven (dirty-cell worklist)
//! sweep mode on its target traffic shape — repeated and near-constant
//! feature rows — asserting zero verify mismatches through the service and
//! bit-identical [`pe_sim::ToggleCounters`] against the full sweep.

use pe_core::engine::NullSink;
use pe_core::pipeline::RunOptions;
use pe_obs::HistSnapshot;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use pe_sim::LaneWidth;
use std::sync::Arc;
use std::time::Duration;

/// Batch sizes around the word boundary: a singleton, one short of a full
/// word, exactly one word, and one into the second chunk.
const RAGGED_SIZES: [usize; 4] = [1, 63, 64, 65];

#[test]
fn predict_int_matches_gate_level_across_the_table1_grid() {
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let keys = ModelKey::table1_grid();
    assert_eq!(keys.len(), 20, "5 datasets x 4 styles");
    // Train every cell up front, in parallel (the suite's dominant cost).
    registry.warm(&keys, pe_core::engine::default_threads(keys.len()), &mut NullSink);
    assert_eq!(registry.trainings(), 20);

    let service = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Verify,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    let mut served = 0u64;
    for &key in &keys {
        let entry = registry.get(key);
        for size in RAGGED_SIZES {
            let xs = entry.sample_requests(size);
            let replies = service.classify_batch(key, &xs);
            for (i, (reply, x)) in replies.iter().zip(&xs).enumerate() {
                let want = entry.predict_int(&entry.quantize_input(x));
                assert_eq!(
                    *reply,
                    Ok(want),
                    "{} batch size {size} sample {i}: gate-level reply diverged",
                    key.token()
                );
            }
            served += size as u64;
        }
    }
    let m = service.metrics();
    assert_eq!(m.verify_mismatches, 0, "per-batch verify must never fire");
    assert_eq!(m.served, served);
    assert!(m.batches >= 20 * RAGGED_SIZES.len() as u64, "batches {}", m.batches);
    service.shutdown();
    assert!(service.is_stopped());
}

/// `n` low-activity request rows: one held-out sample repeated, with a
/// single feature nudged every `period`-th row so the batch is *near*-
/// constant rather than perfectly constant (both edges of the worklist's
/// best case).
fn low_activity_rows(entry: &pe_serve::ModelEntry, n: usize, period: usize) -> Vec<Vec<f64>> {
    let base = entry.sample_requests(1).remove(0);
    (0..n)
        .map(|i| {
            let mut x = base.clone();
            if i % period == 0 {
                let j = (i / period) % x.len();
                x[j] = 1.0 - x[j];
            }
            x
        })
        .collect()
}

#[test]
fn event_driven_service_matches_full_sweep_on_low_activity_batches() {
    // Two Verify-mode services over the same registry — one event-driven,
    // one full-sweep — fed repeated / near-constant rows: replies must
    // match the integer model on both, with zero verify mismatches.
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let keys = [ModelKey::parse("cardio:seq").unwrap(), ModelKey::parse("cardio:par").unwrap()];
    registry.warm(&keys, pe_core::engine::default_threads(keys.len()), &mut NullSink);
    let base = ServiceConfig {
        mode: ServeMode::Verify,
        batch_deadline: Duration::from_millis(1),
        ..ServiceConfig::default()
    };
    let full = Service::start(Arc::clone(&registry), base.clone());
    let events =
        Service::start(Arc::clone(&registry), ServiceConfig { event_driven: true, ..base });
    for &key in &keys {
        let entry = registry.get(key);
        for size in RAGGED_SIZES {
            let xs = low_activity_rows(&entry, size, 17);
            let want: Vec<_> =
                xs.iter().map(|x| Ok(entry.predict_int(&entry.quantize_input(x)))).collect();
            assert_eq!(full.classify_batch(key, &xs), want, "{} full sweep", key.token());
            assert_eq!(events.classify_batch(key, &xs), want, "{} event-driven", key.token());
        }
    }
    assert_eq!(full.metrics().verify_mismatches, 0);
    assert_eq!(events.metrics().verify_mismatches, 0, "event-driven verify must never fire");
    full.shutdown();
    events.shutdown();
}

#[test]
fn concurrent_model_shards_stay_disjoint_and_merge_into_the_aggregate() {
    // The observability satellite: two model keys hammered from many
    // threads at once. Each metric shard must account exactly its own
    // key's traffic (disjoint histograms), the aggregate snapshot must be
    // the bucket-wise merge of the shards, and the `metrics` exposition
    // must parse back field-for-field against the shard snapshots.
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let keys = [ModelKey::parse("cardio:seq").unwrap(), ModelKey::parse("cardio:par").unwrap()];
    registry.warm(&keys, pe_core::engine::default_threads(keys.len()), &mut NullSink);
    let service = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Verify,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    const THREADS: usize = 8;
    const ROUNDS: usize = 6; // even, so every thread hits both keys equally
    const BATCH: usize = 5;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let service = Arc::clone(&service);
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            for r in 0..ROUNDS {
                let key = keys[(t + r) % keys.len()];
                let entry = registry.get(key);
                let xs = entry.sample_requests(BATCH);
                let replies = service.classify_batch(key, &xs);
                for (i, (reply, x)) in replies.iter().zip(&xs).enumerate() {
                    let want = entry.predict_int(&entry.quantize_input(x));
                    assert_eq!(*reply, Ok(want), "{} round {r} sample {i}", key.token());
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let per_key = (THREADS * ROUNDS / keys.len() * BATCH) as u64;

    let batch_max = service.config().batch_max;
    let shards = service.metrics_store().model_snapshots(batch_max);
    assert_eq!(shards.len(), keys.len(), "one shard per model key");
    for (key, s) in &shards {
        assert_eq!(s.submitted, per_key, "{} submitted", key.token());
        assert_eq!(s.served, per_key, "{} served", key.token());
        assert_eq!(s.verify_mismatches, 0, "{}", key.token());
        // Disjoint histograms: each shard holds exactly its own key's
        // samples, with no bleed from the other model's traffic.
        assert_eq!(s.queue_wait.count(), per_key, "{} queue-wait samples", key.token());
        assert_eq!(s.service_time.count(), per_key, "{} service-time samples", key.token());
        assert_eq!(s.latency.count(), per_key, "{} latency samples", key.token());
        assert!(s.batches >= 1, "{} ran batches", key.token());
        assert!(s.lane_width >= 1, "{} ran gate-level", key.token());
        // Verify mode runs the simulator with the shard's profile installed.
        assert!(s.profile.batches >= 1, "{} sim profile fed", key.token());
        assert!(s.profile.cell_evals > 0, "{} sim profile cell evals", key.token());
    }

    // The aggregate is the merge of the shards: counters sum, the width is
    // the max, quantiles come from the bucket-wise merged histograms.
    let agg = service.metrics();
    assert_eq!(agg.submitted, per_key * keys.len() as u64);
    assert_eq!(agg.served, per_key * keys.len() as u64);
    assert_eq!(agg.batches, shards.iter().map(|(_, s)| s.batches).sum::<u64>());
    assert_eq!(agg.gate_cycles, shards.iter().map(|(_, s)| s.gate_cycles).sum::<u64>());
    assert_eq!(agg.sweeps, shards.iter().map(|(_, s)| s.sweeps).sum::<u64>());
    assert_eq!(agg.lane_width, shards.iter().map(|(_, s)| s.lane_width).max().unwrap());
    let mut latency = HistSnapshot::default();
    let mut queue_wait = HistSnapshot::default();
    let mut service_time = HistSnapshot::default();
    for (_, s) in &shards {
        latency.merge(&s.latency);
        queue_wait.merge(&s.queue_wait);
        service_time.merge(&s.service_time);
    }
    assert_eq!(agg.p50, latency.quantile(0.50));
    assert_eq!(agg.p99, latency.quantile(0.99));
    assert_eq!(agg.queue_p50, queue_wait.quantile(0.50));
    assert_eq!(agg.queue_p99, queue_wait.quantile(0.99));
    assert_eq!(agg.service_p50, service_time.quantile(0.50));
    assert_eq!(agg.service_p99, service_time.quantile(0.99));

    // The wire exposition parses back field-for-field against the shards.
    let text = service.metrics_text();
    assert!(text.ends_with("# EOF\n"), "{text}");
    for (key, s) in &shards {
        let m = key.token();
        for (series, want) in [
            ("pe_submitted_total", s.submitted),
            ("pe_served_total", s.served),
            ("pe_rejected_total", s.rejected),
            ("pe_verify_mismatches_total", s.verify_mismatches),
            ("pe_batches_total", s.batches),
            ("pe_gate_cycles_total", s.gate_cycles),
            ("pe_lane_width_words", s.lane_width),
            ("pe_sweeps_total", s.sweeps),
            ("pe_sim_batches_total", s.profile.batches),
            ("pe_sim_sweeps_total", s.profile.sweeps),
            ("pe_sim_cycles_total", s.profile.cycles),
            ("pe_sim_cell_evals_total", s.profile.cell_evals),
        ] {
            let line = format!("{series}{{model=\"{m}\"}} {want}");
            assert!(text.contains(&line), "exposition missing {line:?}");
        }
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        for (name, h) in [
            ("pe_queue_wait_us", &s.queue_wait),
            ("pe_service_time_us", &s.service_time),
            ("pe_latency_us", &s.latency),
        ] {
            for (q, tag) in [(0.5, "0.5"), (0.99, "0.99")] {
                let line =
                    format!("{name}{{model=\"{m}\",quantile=\"{tag}\"}} {:.1}", us(h.quantile(q)));
                assert!(text.contains(&line), "exposition missing {line:?}");
            }
            let line = format!("{name}_count{{model=\"{m}\"}} {}", h.count());
            assert!(text.contains(&line), "exposition missing {line:?}");
        }
    }
    service.shutdown();
}

#[test]
fn warm_event_driven_stream_is_bit_identical_at_every_lane_width() {
    // The warm-state equivalence satellite: an affinity worker's
    // `WarmSimulator` carries event-driven dirty state *across* batches, so
    // a long repeated-request stream must stay bit-identical — predictions
    // AND toggle counters — to the same warm stream run dense, at every
    // `LaneWidth`. Predictions are additionally pinned to fresh dense
    // per-batch simulation and the integer golden model (a fresh engine
    // starts from power-on reset, so its per-batch toggle *deltas* are the
    // one thing that legitimately differs from a warm engine; see the
    // `pe_sim::warm` module docs for the contract). The event-driven warm
    // engine must also do strictly less work: fewer cell evaluations than
    // its dense twin, which is the whole point of carrying dirty state.
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let key = ModelKey::parse("cardio:seq").unwrap();
    let entry = registry.get(key);
    // Ragged batch sizes around the word boundary, as the batcher coalesces
    // them: repeated/near-constant rows, quantized once up front.
    let batches: Vec<Vec<Vec<i64>>> = [64usize, 1, 63, 65, 64, 32]
        .iter()
        .map(|&n| {
            low_activity_rows(&entry, n, 17).iter().map(|x| entry.quantize_input(x)).collect()
        })
        .collect();

    for width in [LaneWidth::W1, LaneWidth::W2, LaneWidth::W4, LaneWidth::W8] {
        let mut warm_pair = [true, false].map(|events| {
            let mut sim = entry.simulator();
            sim.set_lane_width(width);
            sim.set_event_driven(events);
            sim.enable_activity();
            sim.warm()
        });
        let [ref mut warm_ev, ref mut warm_dense] = warm_pair;
        for (b, vectors) in batches.iter().enumerate() {
            let got = warm_ev.run_batch(&entry.netlist, vectors, entry.cycles_per_vector, "class");
            let dense =
                warm_dense.run_batch(&entry.netlist, vectors, entry.cycles_per_vector, "class");
            assert_eq!(
                got, dense,
                "{width:?} batch {b}: warm event-driven diverged from warm dense"
            );
            // Fresh dense per-batch simulation and the integer golden model
            // agree on every prediction.
            let fresh = {
                let mut sim = entry.simulator();
                sim.set_lane_width(width);
                sim.run_batch(vectors, entry.cycles_per_vector, "class")
            };
            assert_eq!(
                got.outputs, fresh.outputs,
                "{width:?} batch {b}: warm predictions diverged from fresh dense"
            );
            for (i, (y, x)) in got.outputs.iter().zip(vectors).enumerate() {
                assert_eq!(*y, entry.predict_int(x) as i64, "{width:?} batch {b} sample {i}");
            }
            // Carried-state equivalence after every batch, not just at the
            // end: toggle counters over the worker's whole serving history.
            assert_eq!(
                warm_ev.activity(),
                warm_dense.activity(),
                "{width:?} batch {b}: warm toggle counters diverged"
            );
        }
        assert_eq!(warm_ev.batches(), batches.len() as u64);
        assert!(
            warm_ev.cell_evals() < warm_dense.cell_evals(),
            "{width:?}: event-driven carry-over must skip work ({} vs {} cell evals)",
            warm_ev.cell_evals(),
            warm_dense.cell_evals()
        );
    }
}

#[test]
fn event_driven_toggle_counters_match_full_sweep_on_low_activity_batches() {
    // The service doesn't surface per-net toggle counters, so the parity
    // claim — event-driven sweeps keep the *activity accounting* of the
    // dense sweep bit-identical, not just the classifications — is pinned
    // on the entry's own simulator, over the exact batches the service
    // would coalesce.
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let keys = [ModelKey::parse("cardio:seq").unwrap(), ModelKey::parse("cardio:par").unwrap()];
    registry.warm(&keys, pe_core::engine::default_threads(keys.len()), &mut NullSink);
    for &key in &keys {
        let entry = registry.get(key);
        for (size, period) in [(64usize, 64), (130, 17), (65, 1)] {
            let vectors: Vec<Vec<i64>> = low_activity_rows(&entry, size, period)
                .iter()
                .map(|x| entry.quantize_input(x))
                .collect();
            let mut full = entry.simulator();
            full.enable_activity();
            let want = full.run_batch(&vectors, entry.cycles_per_vector, "class");
            let mut ev = entry.simulator();
            ev.set_event_driven(true);
            ev.enable_activity();
            let got = ev.run_batch(&vectors, entry.cycles_per_vector, "class");
            assert_eq!(got, want, "{} size {size} outputs diverged", key.token());
            assert_eq!(
                ev.activity(),
                full.activity(),
                "{} size {size}: event-driven toggle counters diverged",
                key.token()
            );
        }
    }
}
