//! The fairness regression suite: a `pendigits:par` flood must not starve
//! a `cardio:seq` trickle.
//!
//! The scenario from the issue that motivated weighted-fair admission: a
//! burst of requests for the big model fills the queue, then a handful of
//! small-model requests arrive *behind* the entire flood. Under FIFO
//! drain the trickle's queue wait would be the whole flood's drain time;
//! under weighted-fair admission the scheduler interleaves the trickle
//! after at most a batch or two.
//!
//! Every assertion is **relational on one run** — trickle quantiles
//! against flood quantiles from the same per-model metric shards — so the
//! test measures scheduling order, not machine speed, and stays
//! deterministic on loaded CI boxes. The fine-grained virtual-time
//! properties (exact interleave positions, weight scaling, affinity
//! stealing) are pinned by the deterministic unit tests in
//! `pe_serve::service`; this suite checks the same policy end to end
//! through real worker threads and metric shards.

use pe_core::engine::NullSink;
use pe_core::pipeline::RunOptions;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn a_trickle_is_not_starved_behind_a_flood() {
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let flood_key = ModelKey::parse("pendigits:par").unwrap();
    let trickle_key = ModelKey::parse("cardio:seq").unwrap();
    registry.warm(&[flood_key, trickle_key], 2, &mut NullSink);

    // One worker, small batches, no deadline dawdling: the flood needs
    // many serial batch drains, which is exactly the window where FIFO
    // would pin the trickle at the back of the line. Int mode keeps each
    // batch cheap — the test is about queueing, not gate evaluation.
    let service = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Int,
            workers: 1,
            batch_max: 64,
            batch_deadline: Duration::ZERO,
            queue_capacity: 4096,
            ..ServiceConfig::default()
        },
    );

    const FLOOD: usize = 1024; // 16 serial batches of 64
    const TRICKLE: usize = 16;
    let flood_xs = registry.get(flood_key).sample_requests(FLOOD);
    let trickle_xs = registry.get(trickle_key).sample_requests(TRICKLE);

    // The whole flood is queued first; the trickle arrives strictly after.
    let flood_tickets = service.submit_many(flood_key, &flood_xs);
    let trickle_tickets = service.submit_many(trickle_key, &trickle_xs);
    for t in flood_tickets {
        t.unwrap().wait().unwrap();
    }
    for t in trickle_tickets {
        t.unwrap().wait().unwrap();
    }

    let shards = service.metrics_store().model_snapshots(service.config().batch_max);
    let shard = |key: ModelKey| {
        shards.iter().find(|(k, _)| *k == key).map(|(_, s)| s).unwrap_or_else(|| {
            panic!("no metric shard for {}", key.token());
        })
    };
    let flood = shard(flood_key);
    let trickle = shard(trickle_key);
    assert_eq!(flood.served, FLOOD as u64);
    assert_eq!(trickle.served, TRICKLE as u64);
    assert!(flood.batches >= 16, "flood must drain in many serial batches, got {}", flood.batches);

    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let (flood_p99, trickle_p99) =
        (flood.queue_wait.quantile(0.99), trickle.queue_wait.quantile(0.99));
    // Arriving behind 16 batches' worth of flood, FIFO would give the
    // trickle a queue wait at (or past) the flood's own p99. Fair
    // admission interleaves it after at most a couple of drains, so even
    // with the histogram's power-of-two bucket granularity the trickle's
    // p99 must sit well under the flood's.
    assert!(
        trickle_p99.as_nanos() <= flood_p99.as_nanos() / 2,
        "trickle queue-wait p99 {:.1}us not bounded under flood p99 {:.1}us: starved",
        us(trickle_p99),
        us(flood_p99)
    );

    service.shutdown();
    assert!(service.is_stopped());
}
