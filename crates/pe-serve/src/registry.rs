//! The model registry: prepared models, elaborated netlists and reusable
//! simulator schedules, memoized per `(dataset, style)`.
//!
//! Serving a classification request needs everything `pe-core`'s pipeline
//! produces *before* the per-request work: a trained-and-quantized model
//! (the integer golden reference), its bespoke netlist, and the netlist's
//! topological [`Schedule`]. All three are immutable once built, so the
//! registry computes them exactly once per key — the same
//! `Mutex<HashMap<_, Arc<OnceLock<_>>>>` discipline as
//! `pe_core::engine`'s model cache, which keeps concurrent first requests
//! for the *same* key serialized while distinct keys train in parallel —
//! and hands out [`Arc`]s that workers hold for the lifetime of a batch.
//!
//! Admission is gated on static analysis: every netlist is linted
//! ([`pe_lint::lint_netlist`]) before it is scheduled, and a netlist
//! carrying any Error-severity diagnostic (combinational cycle,
//! multi-driven net, …) is refused — [`ModelRegistry::try_get`] returns the
//! [`LintReport`] instead of an entry, and the refusal is memoized like a
//! success so a broken generator cannot retrain on every request.

use pe_core::engine::{parallel_map, ProgressSink};
use pe_core::pipeline::{
    build_netlist, cycles_per_inference, prepare_model, Prepared, PreparedModel, RunOptions,
};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use pe_lint::{lint_netlist, LintReport};
use pe_sim::{LaneWidth, Schedule, Simulator};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Which model a request addresses: one cell of the paper's Table-I grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Dataset profile.
    pub profile: UciProfile,
    /// Design style.
    pub style: DesignStyle,
}

impl ModelKey {
    /// Creates a key.
    #[must_use]
    pub fn new(profile: UciProfile, style: DesignStyle) -> Self {
        ModelKey { profile, style }
    }

    /// Every key of the paper's 5 × 4 evaluation grid, in Table-I order.
    #[must_use]
    pub fn table1_grid() -> Vec<ModelKey> {
        UciProfile::all()
            .into_iter()
            .flat_map(|p| DesignStyle::all().into_iter().map(move |s| ModelKey::new(p, s)))
            .collect()
    }

    /// The wire token for this key: `profile:style`, e.g. `cardio:seq`.
    #[must_use]
    pub fn token(&self) -> String {
        format!("{}:{}", profile_token(self.profile), style_token(self.style))
    }

    /// Parses a `profile:style` token (the inverse of [`ModelKey::token`]).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on unknown profiles or styles.
    pub fn parse(s: &str) -> Result<ModelKey, String> {
        let (p, st) =
            s.split_once(':').ok_or_else(|| format!("expected profile:style, got {s:?}"))?;
        Ok(ModelKey::new(parse_profile(p)?, parse_style(st)?))
    }
}

/// The wire token of a dataset profile (lowercase Table-I name).
#[must_use]
pub fn profile_token(profile: UciProfile) -> &'static str {
    match profile {
        UciProfile::Cardio => "cardio",
        UciProfile::Dermatology => "dermatology",
        UciProfile::PenDigits => "pendigits",
        UciProfile::RedWine => "redwine",
        UciProfile::WhiteWine => "whitewine",
    }
}

/// The wire token of a design style.
#[must_use]
pub fn style_token(style: DesignStyle) -> &'static str {
    match style {
        DesignStyle::SequentialSvm => "seq",
        DesignStyle::ParallelSvm => "par",
        DesignStyle::ApproxParallelSvm => "approx",
        DesignStyle::ParallelMlp => "mlp",
    }
}

/// Parses a dataset-profile token (case-insensitive).
///
/// # Errors
///
/// Returns a message listing the valid tokens on failure.
pub fn parse_profile(tok: &str) -> Result<UciProfile, String> {
    match tok.to_ascii_lowercase().as_str() {
        "cardio" => Ok(UciProfile::Cardio),
        "dermatology" => Ok(UciProfile::Dermatology),
        "pendigits" => Ok(UciProfile::PenDigits),
        "redwine" => Ok(UciProfile::RedWine),
        "whitewine" => Ok(UciProfile::WhiteWine),
        other => Err(format!(
            "unknown profile {other:?} (expected cardio|dermatology|pendigits|redwine|whitewine)"
        )),
    }
}

/// Parses a design-style token (case-insensitive; long names accepted).
///
/// # Errors
///
/// Returns a message listing the valid tokens on failure.
pub fn parse_style(tok: &str) -> Result<DesignStyle, String> {
    match tok.to_ascii_lowercase().as_str() {
        "seq" | "sequential" => Ok(DesignStyle::SequentialSvm),
        "par" | "parallel" => Ok(DesignStyle::ParallelSvm),
        "approx" => Ok(DesignStyle::ApproxParallelSvm),
        "mlp" => Ok(DesignStyle::ParallelMlp),
        other => Err(format!("unknown style {other:?} (expected seq|par|approx|mlp)")),
    }
}

/// Everything the serving path needs for one model, built once and shared.
#[derive(Debug)]
pub struct ModelEntry {
    /// The key this entry was built for.
    pub key: ModelKey,
    /// The trained-and-quantized model plus its held-out test set (the
    /// integer golden reference the gate-level path is verified against).
    pub prepared: Prepared,
    /// The elaborated bespoke netlist.
    pub netlist: pe_netlist::Netlist,
    /// The netlist's topological schedule, computed once; workers stamp out
    /// per-batch simulators from it without re-levelizing.
    pub schedule: Schedule,
    /// `run_batch` cycles per vector: the class count for the sequential
    /// style, 0 (combinational settle) for the parallel styles.
    pub cycles_per_vector: u64,
    /// The bit-sliced slab width batches over this model run at: the
    /// registry's [`RunOptions::lane_width`] override when set, else the
    /// per-model default ([`LaneWidth::auto_for_netlist`] — printed
    /// classifiers are small enough that this is almost always the full
    /// 8-word slab, 512 lanes per sweep).
    pub lane_width: LaneWidth,
}

/// Statically lints a netlist at admission time.
///
/// # Errors
///
/// Returns the full [`LintReport`] when the netlist carries any
/// Error-severity diagnostic — such a design must not be scheduled, let
/// alone served. Warn/Info diagnostics (dead cells, constant outputs) are
/// admission-clean: the generated Table-I designs legitimately carry them.
pub fn admit_netlist(nl: &pe_netlist::Netlist) -> Result<(), LintReport> {
    let report = lint_netlist(nl);
    if report.has_errors() {
        Err(report)
    } else {
        Ok(())
    }
}

impl ModelEntry {
    fn build(key: ModelKey, opts: &RunOptions) -> Result<Self, LintReport> {
        let prepared = prepare_model(key.profile, key.style, opts);
        let netlist = build_netlist(key.style, &prepared);
        admit_netlist(&netlist)?;
        let schedule = Schedule::new(&netlist).expect("linted designs are acyclic");
        let cycles_per_vector = if key.style == DesignStyle::SequentialSvm {
            cycles_per_inference(key.style, &prepared)
        } else {
            0
        };
        let lane_width = opts.lane_width.unwrap_or_else(|| LaneWidth::auto_for_netlist(&netlist));
        Ok(ModelEntry { key, prepared, netlist, schedule, cycles_per_vector, lane_width })
    }

    /// A fresh gate-level simulator over this entry's netlist, constructed
    /// from the cached schedule (no levelization) and set to the entry's
    /// slab width.
    #[must_use]
    pub fn simulator(&self) -> Simulator<'_> {
        let mut sim = Simulator::with_schedule(&self.netlist, &self.schedule);
        sim.set_lane_width(self.lane_width);
        sim
    }

    /// Number of input features a request must carry.
    #[must_use]
    pub fn num_features(&self) -> usize {
        match &self.prepared.model {
            PreparedModel::Svm(q) => q.num_features(),
            PreparedModel::Mlp(q) => q.w1_q()[0].len(),
        }
    }

    /// Quantizes a normalized (`[0,1]`) sample to the model's input grid.
    #[must_use]
    pub fn quantize_input(&self, x: &[f64]) -> Vec<i64> {
        match &self.prepared.model {
            PreparedModel::Svm(q) => q.quantize_input(x),
            PreparedModel::Mlp(q) => q.quantize_input(x),
        }
    }

    /// The integer golden-model prediction — the serving fast path.
    #[must_use]
    pub fn predict_int(&self, x_q: &[i64]) -> usize {
        match &self.prepared.model {
            PreparedModel::Svm(q) => q.predict_int(x_q),
            PreparedModel::Mlp(q) => q.predict_int(x_q),
        }
    }

    /// `n` normalized request vectors cycled from the held-out test set —
    /// the shared request source for benches, load generation and tests.
    #[must_use]
    pub fn sample_requests(&self, n: usize) -> Vec<Vec<f64>> {
        let test = &self.prepared.test;
        (0..n).map(|i| test.sample(i % test.len()).0.to_vec()).collect()
    }
}

/// Loads and memoizes [`ModelEntry`]s per key. Safe for concurrent use;
/// each key is built exactly once even under simultaneous first requests.
#[derive(Debug)]
pub struct ModelRegistry {
    opts: RunOptions,
    entries: Mutex<HashMap<ModelKey, Arc<OnceLock<AdmitResult>>>>,
    trainings: AtomicUsize,
}

/// What one admission attempt produced: a servable entry, or the lint
/// report that refused it. Memoized either way.
type AdmitResult = Result<Arc<ModelEntry>, Arc<LintReport>>;

impl ModelRegistry {
    /// A registry preparing models under the given pipeline options.
    #[must_use]
    pub fn new(opts: RunOptions) -> Self {
        ModelRegistry { opts, entries: Mutex::new(HashMap::new()), trainings: AtomicUsize::new(0) }
    }

    /// The pipeline options models are prepared under.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// The entry for `key`, training, elaborating and linting it on first
    /// request.
    ///
    /// # Errors
    ///
    /// Returns the memoized [`LintReport`] when the elaborated netlist was
    /// refused admission (Error-severity diagnostics).
    pub fn try_get(&self, key: ModelKey) -> AdmitResult {
        let slot = {
            let mut map = self.entries.lock().expect("registry poisoned");
            Arc::clone(map.entry(key).or_default())
        };
        // Build outside the map lock; OnceLock serializes per key so other
        // keys keep building in parallel.
        slot.get_or_init(|| {
            self.trainings.fetch_add(1, Ordering::Relaxed);
            ModelEntry::build(key, &self.opts).map(Arc::new).map_err(Arc::new)
        })
        .clone()
    }

    /// [`ModelRegistry::try_get`] for callers that treat refusal as fatal.
    ///
    /// # Panics
    ///
    /// Panics with the lint report when the model was refused admission —
    /// the generated Table-I designs always admit, so serving binaries use
    /// this directly.
    #[must_use]
    pub fn get(&self, key: ModelKey) -> Arc<ModelEntry> {
        self.try_get(key)
            .unwrap_or_else(|report| panic!("model {} refused admission:\n{report}", key.token()))
    }

    /// Pre-builds the entries for `keys` on `threads` workers, narrating
    /// each finished model through `progress` (the engine's shared
    /// [`ProgressSink`], so binaries reuse one progress printer).
    pub fn warm(&self, keys: &[ModelKey], threads: usize, progress: &mut dyn ProgressSink) {
        let progress = Mutex::new(progress);
        parallel_map(keys, threads, |&key| {
            let t0 = Instant::now();
            let entry = self.get(key);
            let line = format!(
                "warmed {:<18} {} cells, {} features, {:.0} ms",
                key.token(),
                entry.netlist.num_cells(),
                entry.num_features(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            progress.lock().expect("progress poisoned").note(&line);
        });
    }

    /// How many entries were actually built (memoization accounting).
    #[must_use]
    pub fn trainings(&self) -> usize {
        self.trainings.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_tokens_round_trip() {
        for key in ModelKey::table1_grid() {
            assert_eq!(ModelKey::parse(&key.token()).unwrap(), key);
        }
        assert!(ModelKey::parse("cardio").is_err());
        assert!(ModelKey::parse("cardio:nope").is_err());
        assert!(ModelKey::parse("nope:seq").is_err());
        assert_eq!(
            ModelKey::parse("CARDIO:Sequential").unwrap(),
            ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm)
        );
    }

    #[test]
    fn entries_build_once_and_serve_predictions() {
        let reg = ModelRegistry::new(RunOptions::default());
        let key = ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm);
        let a = reg.get(key);
        let b = reg.get(key);
        assert_eq!(reg.trainings(), 1, "second get must hit the cache");
        assert!(Arc::ptr_eq(&a, &b));
        let (x, _) = a.prepared.test.sample(0);
        let x_q = a.quantize_input(x);
        assert_eq!(x_q.len(), a.num_features());
        let class = a.predict_int(&x_q);
        assert!(class < 3, "Cardio has 3 classes");
        // The cached schedule stamps out working simulators.
        let mut sim = a.simulator();
        let r = sim.run_batch(&[x_q], a.cycles_per_vector, "class");
        assert_eq!(r.outputs[0] as usize, class, "gate level must match the golden model");
    }

    #[test]
    fn admission_accepts_table1_designs_and_refuses_broken_netlists() {
        use pe_netlist::testing::RawNetlistBuilder;
        use pe_netlist::{CellKind, Driver};

        // A representative grid cell admits (Warn-severity diagnostics like
        // dead cells are fine; Errors are not).
        let reg = ModelRegistry::new(RunOptions::default());
        let key = ModelKey::new(UciProfile::Cardio, DesignStyle::ParallelSvm);
        assert!(reg.try_get(key).is_ok());

        // A multi-driven net is an Error: the netlist must be refused.
        let mut rb = RawNetlistBuilder::new("contended");
        let x = rb.input("x0");
        let n = rb.net(Driver::Input);
        rb.cell(CellKind::Inv, &[x], n);
        rb.cell(CellKind::Buf, &[x], n);
        rb.output("o0", &[n]);
        let broken = rb.finish();
        let report = admit_netlist(&broken).expect_err("multi-driven nets must be refused");
        assert!(report.has_errors());
    }

    #[test]
    fn warm_narrates_progress() {
        struct Lines(Vec<String>);
        impl ProgressSink for Lines {
            fn note(&mut self, line: &str) {
                self.0.push(line.to_owned());
            }
        }
        let reg = ModelRegistry::new(RunOptions::default());
        let keys = [
            ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm),
            ModelKey::new(UciProfile::Cardio, DesignStyle::ParallelSvm),
        ];
        let mut sink = Lines(Vec::new());
        reg.warm(&keys, 2, &mut sink);
        assert_eq!(sink.0.len(), 2);
        assert_eq!(reg.trainings(), 2);
        assert!(sink.0.iter().any(|l| l.contains("cardio:seq")));
    }
}
