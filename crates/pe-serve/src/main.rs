//! The `pe-serve` binary: a TCP classification server over the bit-sliced
//! gate-level simulator.
//!
//! ```text
//! pe-serve [--addr HOST:PORT] [--mode gate|int|verify] [--batch-max N]
//!          [--width 1|2|4|8] [--events] [--deadline-us N] [--workers N]
//!          [--capacity N] [--warm key,key,... | --warm-grid]
//!          [--cold] [--weight key=W ...] [--max-conns N]
//!          [--trace-capacity N] [--trace-slow-us N] [--no-sim-profile]
//! ```
//!
//! Keys are `profile:style` tokens (`cardio:seq`, `pendigits:mlp`, …; see
//! the protocol docs). Warmed models train before the listener opens, so
//! the first request never pays training latency. See
//! [`pe_serve::protocol`] for the wire format.

use pe_core::engine::{ProgressSink, StderrProgress};
use pe_core::pipeline::RunOptions;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Server, Service, ServiceConfig};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

struct Args {
    addr: String,
    cfg: ServiceConfig,
    warm: Vec<ModelKey>,
    max_conns: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: pe-serve [--addr HOST:PORT] [--mode gate|int|verify] [--batch-max N]\n\
         \x20               [--width 1|2|4|8] [--events] [--deadline-us N] [--workers N]\n\
         \x20               [--capacity N] [--warm key,key,... | --warm-grid]\n\
         \x20               [--cold] [--weight key=W ...] [--max-conns N]\n\
         \x20               [--trace-capacity N] [--trace-slow-us N] [--no-sim-profile]\n\
         --width forces the bit-sliced slab width in words (64-512 lanes per\n\
         sweep; lane counts accepted); default: per-model auto\n\
         --events enables event-driven sweeps (dirty-cell worklist; identical\n\
         predictions, fewer cell evaluations on low-activity batches)\n\
         --cold disables warm per-worker simulators (every batch stamps a\n\
         fresh all-dirty engine; the pre-affinity behavior, for comparison)\n\
         --weight sets a model's weighted-fair admission share (repeatable;\n\
         e.g. --weight cardio:seq=2 gives it twice the default share)\n\
         --max-conns caps concurrent connections (default 16384)\n\
         --trace-capacity sizes the request trace ring (`trace` command;\n\
         0 disables tracing; default 256)\n\
         --trace-slow-us only traces batches whose oldest request waited at\n\
         least this long end to end (default 0: trace every batch)\n\
         --no-sim-profile skips the simulator's per-batch phase clocks\n\
         (the pe_sim_* series of the `metrics` command read zero)"
    );
    std::process::exit(2)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_owned(),
        cfg: ServiceConfig::default(),
        warm: vec![ModelKey::parse("cardio:seq").expect("default key parses")],
        max_conns: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--mode" => args.cfg.mode = ServeMode::parse(&value("--mode")?)?,
            "--batch-max" => {
                args.cfg.batch_max =
                    value("--batch-max")?.parse().map_err(|_| "bad --batch-max".to_owned())?;
            }
            "--width" => {
                let spec = value("--width")?;
                args.cfg.lane_width = Some(
                    pe_sim::LaneWidth::parse(&spec)
                        .ok_or(format!("bad --width {spec:?} (expected 1|2|4|8 words)"))?,
                );
            }
            "--events" => args.cfg.event_driven = true,
            "--deadline-us" => {
                let us: u64 =
                    value("--deadline-us")?.parse().map_err(|_| "bad --deadline-us".to_owned())?;
                args.cfg.batch_deadline = Duration::from_micros(us);
            }
            "--workers" => {
                args.cfg.workers =
                    value("--workers")?.parse().map_err(|_| "bad --workers".to_owned())?;
            }
            "--capacity" => {
                args.cfg.queue_capacity =
                    value("--capacity")?.parse().map_err(|_| "bad --capacity".to_owned())?;
            }
            "--trace-capacity" => {
                args.cfg.trace_capacity = value("--trace-capacity")?
                    .parse()
                    .map_err(|_| "bad --trace-capacity".to_owned())?;
            }
            "--trace-slow-us" => {
                let us: u64 = value("--trace-slow-us")?
                    .parse()
                    .map_err(|_| "bad --trace-slow-us".to_owned())?;
                args.cfg.trace_slow = Duration::from_micros(us);
            }
            "--no-sim-profile" => args.cfg.sim_profile = false,
            "--cold" => args.cfg.warm = false,
            "--weight" => {
                let spec = value("--weight")?;
                let (key, w) =
                    spec.split_once('=').ok_or(format!("bad --weight {spec:?} (key=W)"))?;
                let key = ModelKey::parse(key)?;
                let w: f64 = w.parse().map_err(|_| format!("bad --weight value {w:?}"))?;
                if !(w.is_finite() && w > 0.0) {
                    return Err(format!("--weight must be positive, got {w}"));
                }
                args.cfg.weights.push((key, w));
            }
            "--max-conns" => {
                args.max_conns =
                    Some(value("--max-conns")?.parse().map_err(|_| "bad --max-conns".to_owned())?);
            }
            "--warm" => {
                args.warm =
                    value("--warm")?.split(',').map(ModelKey::parse).collect::<Result<_, _>>()?;
            }
            "--warm-grid" => args.warm = ModelKey::table1_grid(),
            "--help" | "-h" => usage(),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("pe-serve: {msg}");
            return ExitCode::from(2);
        }
    };
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let mut progress = StderrProgress;
    if !args.warm.is_empty() {
        progress.note(&format!("warming {} model(s)...", args.warm.len()));
        let threads = pe_core::engine::default_threads(args.warm.len());
        registry.warm(&args.warm, threads, &mut progress);
    }
    let service = Service::start(Arc::clone(&registry), args.cfg);
    let mut server = match Server::bind(&args.addr, Arc::clone(&service)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pe-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    if let Some(max) = args.max_conns {
        server.set_max_conns(max);
    }
    let cfg = service.config();
    let width = cfg.lane_width.map_or("auto".to_owned(), |w| w.to_string());
    eprintln!(
        "pe-serve listening on {} (mode {:?}, batch_max {}, width {}, sweeps {}, deadline {:?}, \
         workers {}, {} engines)",
        server.local_addr(),
        cfg.mode,
        cfg.batch_max,
        width,
        if cfg.event_driven { "event-driven" } else { "full" },
        cfg.batch_deadline,
        cfg.workers,
        if cfg.warm { "warm" } else { "cold" }
    );
    let connections = server.run();
    eprintln!("pe-serve: clean shutdown after {connections} connection(s)");
    eprintln!("{}", service.metrics());
    ExitCode::SUCCESS
}
