//! The TCP front end: a non-blocking, readiness-driven line server over
//! [`Service`], speaking the [`protocol`](crate::protocol).
//!
//! # Architecture
//!
//! One event-loop thread multiplexes every connection (the previous front
//! end spawned a thread per connection, which topped out around the OS
//! thread limit and made shutdown join semantics fragile). All sockets run
//! in nonblocking mode; each pass the loop:
//!
//! 1. **accepts** a bounded burst of new connections into a slot table
//!    (capped by [`Server::set_max_conns`]; over-limit connections get a
//!    best-effort `err server full` and are dropped),
//! 2. **scans** every open connection with a one-byte peek
//!    ([`poller::read_readiness`](crate::poller::read_readiness)) — dead
//!    peers are reaped even when the server is not willing to read from
//!    them — and reads readable ones into a per-connection buffer,
//! 3. **parses** complete lines through a partial-line state machine
//!    (bytes accumulate across passes; lines longer than
//!    [`protocol::MAX_LINE`](crate::protocol::MAX_LINE) are answered with
//!    an error and discarded up to the next newline),
//! 4. **pumps** each connection's pipelined reply FIFO — classify requests
//!    become [`Ticket`](crate::Ticket)s polled with `try_wait`, immediate
//!    replies (`ping`, `stats`, …) queue behind them so replies always come
//!    back in request order — and
//! 5. **flushes** write buffers as far as the sockets accept.
//!
//! A pass that makes no progress pays an adaptive pause
//! ([`poller::Backoff`](crate::poller::Backoff)): the loop polls flat out
//! under load and converges to ~1 wakeup/ms when idle.
//!
//! **Backpressure** is per-connection and lossless: when the service queue
//! is full (`try_submit` returns `Busy`) the request is *parked* and the
//! connection stops being read until the park clears, so a flooding client
//! throttles itself instead of crashing the server or losing requests.
//!
//! **Shutdown** is a deterministic drain, not a heuristic: a `shutdown`
//! request queues its `bye`, the loop stops accepting and reading,
//! [`Service::shutdown`] runs (answering every queued request), then the
//! loop keeps pumping tickets and flushing until every connection's
//! pipeline is empty (or [`DRAIN_DEADLINE`] passes). No throwaway
//! self-connection is needed to wake an accept loop — nothing blocks.

use crate::metrics::FrontendStats;
use crate::poller::{read_readiness, Backoff, Readiness};
use crate::protocol::{parse_request, Request, MAX_LINE};
use crate::service::{ServeError, Service, Ticket};
use crate::ModelKey;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// New connections accepted per event-loop pass (keeps one accept flood
/// from starving established connections).
const ACCEPT_BURST: usize = 256;

/// Bytes read from one connection per pass (fairness under floods).
const READ_BUDGET: usize = 16 * 1024;

/// Unanswered pipelined requests per connection before its reads pause.
const PIPELINE_MAX: usize = 256;

/// Compact the write buffer once this many flushed bytes accumulate.
const WBUF_COMPACT: usize = 8 * 1024;

/// How long the shutdown drain keeps flushing before abandoning
/// connections that will not take their replies.
const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Default connection-slot cap (see [`Server::set_max_conns`]).
const DEFAULT_MAX_CONNS: usize = 16 * 1024;

/// A bound-but-not-yet-running TCP front end.
#[derive(Debug)]
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    max_conns: usize,
    stop: Arc<AtomicBool>,
}

/// One request's slot in a connection's in-order reply FIFO.
#[derive(Debug)]
enum Reply {
    /// Already rendered (immediate replies, and resolved tickets).
    Ready(String),
    /// A classify request still queued or running in the service.
    Pending(Ticket),
}

/// Per-connection state: buffers, the partial-line machine, the pipelined
/// reply FIFO and the park slot.
#[derive(Debug)]
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet parsed (may end mid-line).
    rbuf: Vec<u8>,
    /// Rendered replies not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Flushed prefix of `wbuf` (compacted lazily).
    wpos: usize,
    /// Replies owed to the client, in request order.
    inflight: VecDeque<Reply>,
    /// A classify request the service refused with `Busy`; retried every
    /// pass, and while present the connection is not read (backpressure).
    parked: Option<(ModelKey, Vec<f64>)>,
    /// Discarding an oversized line up to its terminating newline.
    discarding: bool,
    /// Peer sent EOF (or the read side errored); replies still flush.
    read_closed: bool,
    /// The write side failed — the connection is reaped unconditionally.
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            inflight: VecDeque::new(),
            parked: None,
            discarding: false,
            read_closed: false,
            dead: false,
        }
    }

    /// One full pass over this connection. Returns `true` if any progress
    /// was made; sets `*shutdown_req` when a `shutdown` line was parsed.
    fn pass(
        &mut self,
        service: &Service,
        fe: &FrontendStats,
        draining: bool,
        ready_now: &mut u64,
        shutdown_req: &mut bool,
    ) -> bool {
        let mut progressed = false;
        // Retry the parked request first: the park must clear before any
        // more of this connection's bytes are even looked at.
        if let Some((key, x)) = self.parked.take() {
            match service.try_submit(key, &x) {
                Ok(t) => {
                    self.inflight.push_back(Reply::Pending(t));
                    progressed = true;
                }
                Err(ServeError::Busy) => self.parked = Some((key, x)),
                Err(e) => {
                    self.inflight.push_back(Reply::Ready(format!("err {e}\n")));
                    progressed = true;
                }
            }
        }
        if !self.read_closed {
            match read_readiness(&self.stream) {
                Readiness::Readable => {
                    *ready_now += 1;
                    let can_read =
                        !draining && self.parked.is_none() && self.inflight.len() < PIPELINE_MAX;
                    if can_read {
                        progressed |= self.fill_rbuf();
                        progressed |= self.parse_lines(service, fe, shutdown_req);
                    }
                }
                Readiness::Closed => {
                    // Abrupt disconnect: a partial line dies with the peer.
                    self.read_closed = true;
                    self.rbuf.clear();
                    self.discarding = false;
                    self.parked = None;
                    progressed = true;
                }
                Readiness::NotReady => {}
            }
        }
        progressed |= self.pump_replies();
        progressed |= self.flush();
        progressed
    }

    /// Drains the socket into `rbuf` up to the per-pass budget.
    fn fill_rbuf(&mut self) -> bool {
        let mut buf = [0u8; 4096];
        let mut total = 0usize;
        while total < READ_BUDGET {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.read_closed = true;
                    break;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&buf[..n]);
                    total += n;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.read_closed = true;
                    break;
                }
            }
        }
        total > 0
    }

    /// Parses every complete line in `rbuf`, stopping on backpressure
    /// (park, pipeline cap) or a `shutdown` request.
    fn parse_lines(
        &mut self,
        service: &Service,
        fe: &FrontendStats,
        shutdown_req: &mut bool,
    ) -> bool {
        let mut progressed = false;
        loop {
            if self.parked.is_some() || self.inflight.len() >= PIPELINE_MAX {
                break;
            }
            let newline = self.rbuf.iter().position(|&b| b == b'\n');
            if self.discarding {
                // Drop the rest of an oversized line; its error reply is
                // already queued.
                match newline {
                    Some(i) => {
                        self.rbuf.drain(..=i);
                        self.discarding = false;
                        continue;
                    }
                    None => {
                        self.rbuf.clear();
                        break;
                    }
                }
            }
            let Some(i) = newline else {
                if self.rbuf.len() > MAX_LINE {
                    fe.oversized.inc();
                    self.rbuf.clear();
                    self.discarding = true;
                    self.inflight.push_back(Reply::Ready("err line too long\n".to_owned()));
                    progressed = true;
                    continue;
                }
                break;
            };
            let line: Vec<u8> = self.rbuf.drain(..=i).collect();
            if line.len() > MAX_LINE + 1 {
                fe.oversized.inc();
                self.inflight.push_back(Reply::Ready("err line too long\n".to_owned()));
                progressed = true;
                continue;
            }
            let Ok(text) = std::str::from_utf8(&line) else {
                self.inflight.push_back(Reply::Ready("err invalid utf-8\n".to_owned()));
                progressed = true;
                continue;
            };
            if text.trim().is_empty() {
                continue;
            }
            progressed = true;
            match parse_request(text) {
                Ok(Request::Classify { key, features }) => {
                    match service.try_submit(key, &features) {
                        Ok(t) => self.inflight.push_back(Reply::Pending(t)),
                        Err(ServeError::Busy) => {
                            fe.parked.inc();
                            self.parked = Some((key, features));
                        }
                        Err(e) => self.inflight.push_back(Reply::Ready(format!("err {e}\n"))),
                    }
                }
                Ok(Request::Stats) => {
                    self.inflight.push_back(Reply::Ready(format!(
                        "stats {}\n",
                        service.metrics().to_line()
                    )));
                }
                Ok(Request::Metrics) => {
                    // Multi-line reply; metrics_text ends with `# EOF\n`.
                    self.inflight.push_back(Reply::Ready(service.metrics_text()));
                }
                Ok(Request::Trace { limit }) => {
                    let now = Instant::now();
                    let mut text = String::new();
                    for t in service.traces(limit) {
                        text.push_str(&t.to_line(now));
                        text.push('\n');
                    }
                    // `recorded` counts every trace ever offered, including
                    // ones that have since wrapped away.
                    text.push_str(&format!(
                        "# recorded={} dropped={}\n# EOF\n",
                        service.traces_recorded(),
                        service.traces_dropped()
                    ));
                    self.inflight.push_back(Reply::Ready(text));
                }
                Ok(Request::Ping) => self.inflight.push_back(Reply::Ready("pong\n".to_owned())),
                Ok(Request::Shutdown) => {
                    self.inflight.push_back(Reply::Ready("bye\n".to_owned()));
                    *shutdown_req = true;
                    break;
                }
                Err(msg) => self.inflight.push_back(Reply::Ready(format!("err {msg}\n"))),
            }
        }
        progressed
    }

    /// Moves resolved replies (in request order) into the write buffer.
    fn pump_replies(&mut self) -> bool {
        let mut progressed = false;
        while let Some(front) = self.inflight.front_mut() {
            let rendered = match front {
                Reply::Ready(s) => std::mem::take(s),
                Reply::Pending(t) => match t.try_wait() {
                    Some(Ok(class)) => format!("ok {class}\n"),
                    Some(Err(e)) => format!("err {e}\n"),
                    None => break, // later replies must wait their turn
                },
            };
            self.wbuf.extend_from_slice(rendered.as_bytes());
            self.inflight.pop_front();
            progressed = true;
        }
        progressed
    }

    /// Writes as much of `wbuf` as the socket accepts right now.
    fn flush(&mut self) -> bool {
        let mut progressed = false;
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos >= WBUF_COMPACT {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        progressed
    }

    /// Whether this connection's slot can be reclaimed.
    fn finished(&self, draining: bool) -> bool {
        if self.dead {
            return true;
        }
        let idle =
            self.inflight.is_empty() && self.parked.is_none() && self.wpos == self.wbuf.len();
        // After EOF the pipeline still drains (half-closed clients read
        // their replies); during shutdown every connection closes once its
        // pipeline is empty.
        idle && (self.read_closed || draining)
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, service: Arc<Service>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            service,
            listener,
            max_conns: DEFAULT_MAX_CONNS,
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read (never happens
    /// for a successfully bound socket).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Caps concurrent connections (default 16384). Connections over the
    /// cap are answered `err server full` best-effort and dropped.
    pub fn set_max_conns(&mut self, max: usize) {
        self.max_conns = max.max(1);
    }

    /// A flag that, once set, makes [`Server::run`] drain and return as if
    /// a `shutdown` request had arrived — the external-stop hook for tests
    /// and supervisors. No wake-up connection is needed: the event loop
    /// never blocks, so it observes the flag within one backoff pause.
    #[must_use]
    pub fn stop_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.stop)
    }

    /// Runs the event loop on the calling thread until a `shutdown` request
    /// (or the [stop handle](Server::stop_handle)) arrives, then drains:
    /// every queued request is answered and flushed before the loop exits.
    /// Returns the number of connections accepted.
    ///
    /// # Panics
    ///
    /// Panics if the listener cannot be switched to nonblocking mode.
    pub fn run(self) -> usize {
        self.listener.set_nonblocking(true).expect("listener supports nonblocking mode");
        let fe = self.service.metrics_store().frontend();
        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut accepted = 0usize;
        let mut backoff = Backoff::new();
        // `Some(t0)` once shutdown was requested; the service is already
        // drained by then and t0 bounds the flush grace.
        let mut draining: Option<Instant> = None;
        loop {
            fe.poll_passes.inc();
            let mut progressed = false;
            if draining.is_none() && self.stop.load(Ordering::Acquire) {
                self.service.shutdown();
                draining = Some(Instant::now());
                progressed = true;
            }
            if draining.is_none() {
                progressed |= self.accept_burst(&mut conns, &mut free, &mut accepted, fe);
            }
            let mut ready_now = 0u64;
            for i in 0..conns.len() {
                let Some(conn) = conns[i].as_mut() else { continue };
                let mut shutdown_req = false;
                progressed |= conn.pass(
                    &self.service,
                    fe,
                    draining.is_some(),
                    &mut ready_now,
                    &mut shutdown_req,
                );
                if shutdown_req && draining.is_none() {
                    // Drain the service synchronously: every ticket already
                    // in the queue resolves before this returns, so the
                    // remaining passes just pump and flush.
                    self.service.shutdown();
                    draining = Some(Instant::now());
                    progressed = true;
                }
                if conn.finished(draining.is_some()) {
                    conns[i] = None;
                    free.push(i);
                    fe.conns_open.dec();
                    progressed = true;
                }
            }
            fe.conns_ready.set(ready_now);
            if let Some(t0) = draining {
                let open = conns.iter().filter(|c| c.is_some()).count();
                if open == 0 || t0.elapsed() > DRAIN_DEADLINE {
                    // Account abandoned connections before dropping them.
                    for _ in 0..open {
                        fe.conns_open.dec();
                    }
                    break;
                }
            }
            if progressed {
                backoff.reset();
            } else {
                fe.poll_idle.inc();
                backoff.idle();
            }
        }
        if draining.is_none() {
            self.service.shutdown();
        }
        accepted
    }

    /// Accepts up to [`ACCEPT_BURST`] connections into the slot table.
    fn accept_burst(
        &self,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        accepted: &mut usize,
        fe: &FrontendStats,
    ) -> bool {
        let mut progressed = false;
        for _ in 0..ACCEPT_BURST {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let open = conns.len() - free.len();
                    if open >= self.max_conns {
                        fe.rejected.inc();
                        let mut stream = stream;
                        let _ = stream.write(b"err server full\n");
                        continue; // dropped
                    }
                    *accepted += 1;
                    fe.accepted.inc();
                    fe.conns_open.inc();
                    let conn = Conn::new(stream);
                    match free.pop() {
                        Some(i) => conns[i] = Some(conn),
                        None => conns.push(Some(conn)),
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        progressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelKey, ModelRegistry};
    use crate::service::{ServeMode, ServiceConfig};
    use pe_core::pipeline::RunOptions;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;
    use std::io::{BufRead, BufReader};

    fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_owned()
    }

    /// Sends a multi-line request (`metrics` / `trace`) and reads until the
    /// `# EOF` sentinel line — the client side of the multi-line framing.
    fn send_multi(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut text = String::new();
        loop {
            let mut reply = String::new();
            assert!(reader.read_line(&mut reply).unwrap() > 0, "EOF before sentinel:\n{text}");
            let done = reply.trim_end() == "# EOF";
            text.push_str(&reply);
            if done {
                return text;
            }
        }
    }

    #[test]
    fn tcp_round_trip_classify_stats_shutdown() {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let key = ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm);
        let entry = registry.get(key);
        let service = Service::start(
            Arc::clone(&registry),
            ServiceConfig { mode: ServeMode::Verify, ..ServiceConfig::default() },
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

        let (x, _) = entry.prepared.test.sample(0);
        let want = entry.predict_int(&entry.quantize_input(x));
        let line = crate::protocol::format_classify(key, x);
        assert_eq!(send(&mut conn, &mut reader, &line), format!("ok {want}"));

        let stats = send(&mut conn, &mut reader, "stats");
        assert!(stats.starts_with("stats "), "{stats}");
        assert!(stats.contains("mismatches=0"), "{stats}");

        // The multi-line observability replies, read to the `# EOF` sentinel
        // on the same connection — the next one-line request still works.
        let metrics = send_multi(&mut conn, &mut reader, "metrics");
        assert!(metrics.contains("pe_served_total{model=\"cardio:seq\"} 1"), "{metrics}");
        assert!(
            metrics.contains("pe_queue_wait_us{model=\"cardio:seq\",quantile=\"0.5\"}"),
            "{metrics}"
        );
        assert!(metrics.contains("pe_sim_batches_total{model=\"cardio:seq\"}"), "{metrics}");
        // The non-blocking front end's own gauges are live.
        assert!(metrics.contains("pe_conn_open 1"), "{metrics}");
        assert!(metrics.contains("pe_conn_accepted_total 1"), "{metrics}");
        let trace = send_multi(&mut conn, &mut reader, "trace 8");
        assert!(trace.contains("model=cardio:seq"), "{trace}");
        assert!(trace.contains("# recorded="), "{trace}");
        assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

        assert_eq!(
            send(&mut conn, &mut reader, "classify cardio seq 0.5"),
            "err expected 21 features, got 1"
        );
        assert!(send(&mut conn, &mut reader, "nonsense").starts_with("err "));

        assert_eq!(send(&mut conn, &mut reader, "shutdown"), "bye");
        drop(conn);
        let connections = server_thread.join().unwrap();
        assert!(connections >= 1);
        assert!(service.is_stopped(), "shutdown must drain the service");
    }

    #[test]
    fn idle_connection_does_not_hang_shutdown() {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());

        // A client that connects and never sends anything...
        let idle = TcpStream::connect(addr).unwrap();
        // ...must not pin the drain when another client shuts down.
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "shutdown"), "bye");
        let t0 = std::time::Instant::now();
        let _ = server_thread.join().unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "shutdown waited on an idle connection"
        );
        assert!(service.is_stopped());
        drop(idle);
    }

    #[test]
    fn shutdown_drains_pipelined_requests_before_bye() {
        // The drain pin: a burst of pipelined classifies followed by
        // `shutdown` in the same write must yield every reply, in order,
        // with `bye` last — no dropped requests, no reordering, and the
        // loop exits without any wake-up connection.
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let key = ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm);
        let entry = registry.get(key);
        let service = Service::start(
            Arc::clone(&registry),
            ServiceConfig { mode: ServeMode::Verify, ..ServiceConfig::default() },
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());

        let (x, _) = entry.prepared.test.sample(0);
        let want = entry.predict_int(&entry.quantize_input(x));
        let mut burst = String::new();
        let n = 32;
        for _ in 0..n {
            burst.push_str(&crate::protocol::format_classify(key, x));
            burst.push('\n');
        }
        burst.push_str("shutdown\n");

        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(burst.as_bytes()).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut replies = Vec::new();
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap() == 0 {
                break;
            }
            replies.push(line.trim_end().to_owned());
        }
        assert_eq!(replies.len(), n + 1, "{replies:?}");
        assert!(replies[..n].iter().all(|r| r == &format!("ok {want}")), "{replies:?}");
        assert_eq!(replies[n], "bye");
        let _ = server_thread.join().unwrap();
        assert!(service.is_stopped());
    }

    #[test]
    fn stop_handle_drains_without_a_request() {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let stop = server.stop_handle();
        let server_thread = std::thread::spawn(move || server.run());
        std::thread::sleep(Duration::from_millis(20));
        stop.store(true, Ordering::Release);
        let t0 = Instant::now();
        let accepted = server_thread.join().unwrap();
        assert_eq!(accepted, 0);
        assert!(t0.elapsed() < Duration::from_secs(10));
        assert!(service.is_stopped());
    }
}
