//! The TCP front end: a thread-per-connection line server over
//! [`Service`], speaking the [`protocol`](crate::protocol).
//!
//! The server is deliberately boring: `accept` on the caller's thread, one
//! handler thread per connection, blocking I/O everywhere. Concurrency and
//! batching live in the [`Service`] behind it — any number of connections
//! feed the same coalescing queue, so 64 independent clients still fill
//! 64-lane batches. A `shutdown` request stops the accept loop, drains the
//! service (every queued request is still answered) and joins the handler
//! threads of already-disconnected clients.

use crate::protocol::{parse_request, Request};
use crate::service::Service;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A bound-but-not-yet-running TCP front end.
#[derive(Debug)]
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port 0 picks a free port).
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind(addr: &str, service: Arc<Service>) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server { service, listener, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (useful after binding port 0).
    ///
    /// # Panics
    ///
    /// Panics if the listener's local address cannot be read (never happens
    /// for a successfully bound socket).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has an address")
    }

    /// Runs the accept loop on the calling thread until a `shutdown`
    /// request arrives, then drains the service and joins connection
    /// handlers. Returns the number of connections served.
    pub fn run(self) -> usize {
        let addr = self.local_addr();
        let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut connections = 0usize;
        for stream in self.listener.incoming() {
            if self.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = stream else { continue };
            connections += 1;
            let service = Arc::clone(&self.service);
            let stop = Arc::clone(&self.stop);
            handles.retain(|h| !h.is_finished());
            handles
                .push(std::thread::spawn(move || handle_connection(stream, &service, &stop, addr)));
        }
        for h in handles {
            let _ = h.join();
        }
        self.service.shutdown();
        connections
    }
}

/// How often a blocked connection handler re-checks the stop flag. Idle
/// clients must not pin shutdown, so reads time out and poll.
const READ_POLL: std::time::Duration = std::time::Duration::from_millis(250);

/// Serves one connection until EOF, `shutdown`, or server stop.
fn handle_connection(stream: TcpStream, service: &Service, stop: &AtomicBool, addr: SocketAddr) {
    // Timed reads/writes so neither an idle connection nor a client that
    // stopped reading pins the server's handler join on shutdown.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_write_timeout(Some(READ_POLL));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    let mut line = String::new();
    loop {
        // Checked between requests too, so a client streaming lines
        // back-to-back (never hitting a read timeout) cannot outlive a
        // shutdown.
        if stop.load(Ordering::Acquire) {
            return;
        }
        line.clear();
        // A timeout can deliver a partial line into `line`; keep reading
        // (without clearing) until the newline arrives or the server stops.
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return, // EOF
                Ok(_) => break,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if stop.load(Ordering::Acquire) {
                        return;
                    }
                }
                Err(_) => return, // connection reset
            }
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match parse_request(&line) {
            Ok(Request::Classify { key, features }) => match service.classify(key, &features) {
                Ok(class) => format!("ok {class}"),
                Err(e) => format!("err {e}"),
            },
            Ok(Request::Stats) => format!("stats {}", service.metrics().to_line()),
            Ok(Request::Metrics) => {
                // Multi-line reply, `# EOF`-terminated (metrics_text ends
                // with the sentinel and a newline already).
                let text = service.metrics_text();
                if writer.write_all(text.as_bytes()).is_err() {
                    return;
                }
                continue;
            }
            Ok(Request::Trace { limit }) => {
                let now = std::time::Instant::now();
                let mut text = String::new();
                for t in service.traces(limit) {
                    text.push_str(&t.to_line(now));
                    text.push('\n');
                }
                // `recorded` counts every trace ever offered, including
                // ones that have since wrapped away.
                text.push_str(&format!(
                    "# recorded={} dropped={}\n# EOF\n",
                    service.traces_recorded(),
                    service.traces_dropped()
                ));
                if writer.write_all(text.as_bytes()).is_err() {
                    return;
                }
                continue;
            }
            Ok(Request::Ping) => "pong".to_owned(),
            Ok(Request::Shutdown) => {
                let _ = writeln!(writer, "bye");
                stop.store(true, Ordering::Release);
                // Wake the accept loop with a throwaway connection so it
                // observes the stop flag without waiting for a real client.
                // A wildcard bind (0.0.0.0 / ::) is not connectable on some
                // stacks; reach it through the matching loopback instead.
                let wake = if addr.ip().is_unspecified() {
                    let loopback: std::net::IpAddr = if addr.is_ipv4() {
                        std::net::Ipv4Addr::LOCALHOST.into()
                    } else {
                        std::net::Ipv6Addr::LOCALHOST.into()
                    };
                    SocketAddr::new(loopback, addr.port())
                } else {
                    addr
                };
                let _ = TcpStream::connect(wake);
                return;
            }
            Err(msg) => format!("err {msg}"),
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelKey, ModelRegistry};
    use crate::service::{ServeMode, ServiceConfig};
    use pe_core::pipeline::RunOptions;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;
    use std::io::BufRead;

    fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_owned()
    }

    /// Sends a multi-line request (`metrics` / `trace`) and reads until the
    /// `# EOF` sentinel line — the client side of the multi-line framing.
    fn send_multi(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
        writeln!(stream, "{line}").unwrap();
        let mut text = String::new();
        loop {
            let mut reply = String::new();
            assert!(reader.read_line(&mut reply).unwrap() > 0, "EOF before sentinel:\n{text}");
            let done = reply.trim_end() == "# EOF";
            text.push_str(&reply);
            if done {
                return text;
            }
        }
    }

    #[test]
    fn tcp_round_trip_classify_stats_shutdown() {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let key = ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm);
        let entry = registry.get(key);
        let service = Service::start(
            Arc::clone(&registry),
            ServiceConfig { mode: ServeMode::Verify, ..ServiceConfig::default() },
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());

        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

        let (x, _) = entry.prepared.test.sample(0);
        let want = entry.predict_int(&entry.quantize_input(x));
        let line = crate::protocol::format_classify(key, x);
        assert_eq!(send(&mut conn, &mut reader, &line), format!("ok {want}"));

        let stats = send(&mut conn, &mut reader, "stats");
        assert!(stats.starts_with("stats "), "{stats}");
        assert!(stats.contains("mismatches=0"), "{stats}");

        // The multi-line observability replies, read to the `# EOF` sentinel
        // on the same connection — the next one-line request still works.
        let metrics = send_multi(&mut conn, &mut reader, "metrics");
        assert!(metrics.contains("pe_served_total{model=\"cardio:seq\"} 1"), "{metrics}");
        assert!(
            metrics.contains("pe_queue_wait_us{model=\"cardio:seq\",quantile=\"0.5\"}"),
            "{metrics}"
        );
        assert!(metrics.contains("pe_sim_batches_total{model=\"cardio:seq\"}"), "{metrics}");
        let trace = send_multi(&mut conn, &mut reader, "trace 8");
        assert!(trace.contains("model=cardio:seq"), "{trace}");
        assert!(trace.contains("# recorded="), "{trace}");
        assert_eq!(send(&mut conn, &mut reader, "ping"), "pong");

        assert_eq!(
            send(&mut conn, &mut reader, "classify cardio seq 0.5"),
            "err expected 21 features, got 1"
        );
        assert!(send(&mut conn, &mut reader, "nonsense").starts_with("err "));

        assert_eq!(send(&mut conn, &mut reader, "shutdown"), "bye");
        drop(conn);
        let connections = server_thread.join().unwrap();
        assert!(connections >= 1);
        assert!(service.is_stopped(), "shutdown must drain the service");
    }

    #[test]
    fn idle_connection_does_not_hang_shutdown() {
        let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
        let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).unwrap();
        let addr = server.local_addr();
        let server_thread = std::thread::spawn(move || server.run());

        // A client that connects and never sends anything...
        let idle = TcpStream::connect(addr).unwrap();
        // ...must not pin the handler join when another client shuts down.
        let mut conn = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        assert_eq!(send(&mut conn, &mut reader, "shutdown"), "bye");
        let t0 = std::time::Instant::now();
        let _ = server_thread.join().unwrap();
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(10),
            "shutdown waited on an idle connection"
        );
        assert!(service.is_stopped());
        drop(idle);
    }
}
