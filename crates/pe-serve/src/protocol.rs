//! The line-oriented wire protocol of the `pe-serve` front end.
//!
//! One request per `\n`-terminated line, one reply line per request, all
//! ASCII — trivially driven by `nc`, a load generator, or a test:
//!
//! ```text
//! classify <profile> <style> <f0> <f1> ... <fn>   -> ok <class> | err <msg>
//! stats                                           -> stats <key=value ...>
//! metrics                                         -> <exposition lines> ... # EOF
//! trace [limit]                                   -> <trace lines> ... # EOF
//! ping                                            -> pong
//! shutdown                                        -> bye   (server drains and exits)
//! ```
//!
//! `metrics` and `trace` are the only **multi-line** replies: one series /
//! trace per line, terminated by a literal `# EOF` line, so a line-oriented
//! client reads until that sentinel. `metrics` is the Prometheus-style
//! per-model exposition ([`Metrics::prometheus`](crate::Metrics::prometheus));
//! `trace` dumps the most recent request span traces, newest first
//! (default limit 16).
//!
//! Features are the model's normalized `[0,1]` inputs; profile/style tokens
//! are those of [`ModelKey::token`](crate::ModelKey::token) (e.g.
//! `classify cardio seq 0.5 0.25 ...`). Keywords are case-insensitive.

use crate::registry::{parse_profile, parse_style, ModelKey};

/// The longest request line the server will buffer, in bytes. A 16-feature
/// `classify` line is well under 1 KiB even with full-precision floats;
/// 16 KiB leaves generous headroom while bounding per-connection memory.
/// The front end answers longer lines with `err line too long` and discards
/// input up to the next newline, keeping the connection usable.
pub const MAX_LINE: usize = 16 * 1024;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Classify one feature vector on one model.
    Classify {
        /// The addressed model.
        key: ModelKey,
        /// Normalized feature vector.
        features: Vec<f64>,
    },
    /// Report a one-line aggregate metrics snapshot.
    Stats,
    /// Report the multi-line per-model metrics exposition (`# EOF` ends it).
    Metrics,
    /// Dump the most recent request span traces (`# EOF` ends it).
    Trace {
        /// Maximum traces to return, newest first.
        limit: usize,
    },
    /// Liveness probe.
    Ping,
    /// Drain and stop the server.
    Shutdown,
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message (the payload of an `err` reply) on
/// empty lines, unknown verbs, bad tokens or non-numeric features.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let mut toks = line.split_whitespace();
    let verb = toks.next().ok_or_else(|| "empty request".to_owned())?;
    match verb.to_ascii_lowercase().as_str() {
        "classify" => {
            let profile = parse_profile(toks.next().ok_or("missing profile")?)?;
            let style = parse_style(toks.next().ok_or("missing style")?)?;
            let features: Vec<f64> = toks
                .map(|t| {
                    let f = t.parse::<f64>().map_err(|_| format!("bad feature {t:?}"))?;
                    // NaN/±inf would flow straight into input quantization;
                    // reject them at the parse boundary instead.
                    if f.is_finite() {
                        Ok(f)
                    } else {
                        Err(format!("non-finite feature {t:?}"))
                    }
                })
                .collect::<Result<_, _>>()?;
            if features.is_empty() {
                return Err("missing features".to_owned());
            }
            Ok(Request::Classify { key: ModelKey::new(profile, style), features })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "trace" => {
            let limit = match toks.next() {
                None => 16,
                Some(t) => t.parse::<usize>().map_err(|_| format!("bad trace limit {t:?}"))?,
            };
            Ok(Request::Trace { limit })
        }
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!(
            "unknown verb {other:?} (expected classify|stats|metrics|trace|ping|shutdown)"
        )),
    }
}

/// Formats a `classify` request line (the client side of the protocol).
#[must_use]
pub fn format_classify(key: ModelKey, features: &[f64]) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "classify {} {}",
        crate::registry::profile_token(key.profile),
        crate::registry::style_token(key.style)
    );
    for f in features {
        let _ = write!(line, " {f}");
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;

    #[test]
    fn classify_round_trips() {
        let key = ModelKey::new(UciProfile::Dermatology, DesignStyle::ParallelSvm);
        let line = format_classify(key, &[0.0, 0.5, 1.0]);
        assert_eq!(line, "classify dermatology par 0 0.5 1");
        let req = parse_request(&line).unwrap();
        assert_eq!(req, Request::Classify { key, features: vec![0.0, 0.5, 1.0] });
    }

    #[test]
    fn verbs_are_case_insensitive() {
        assert_eq!(parse_request("PING").unwrap(), Request::Ping);
        assert_eq!(parse_request("Stats").unwrap(), Request::Stats);
        assert_eq!(parse_request("shutdown").unwrap(), Request::Shutdown);
        assert_eq!(parse_request("METRICS").unwrap(), Request::Metrics);
        assert_eq!(parse_request("trace").unwrap(), Request::Trace { limit: 16 });
        assert_eq!(parse_request("Trace 5").unwrap(), Request::Trace { limit: 5 });
        assert!(parse_request("trace five").unwrap_err().contains("bad trace limit"));
    }

    #[test]
    fn malformed_lines_are_rejected_with_messages() {
        assert!(parse_request("").unwrap_err().contains("empty"));
        assert!(parse_request("frobnicate").unwrap_err().contains("unknown verb"));
        assert!(parse_request("classify").unwrap_err().contains("missing profile"));
        assert!(parse_request("classify cardio").unwrap_err().contains("missing style"));
        assert!(parse_request("classify cardio seq").unwrap_err().contains("missing features"));
        assert!(parse_request("classify cardio seq 0.5 x").unwrap_err().contains("bad feature"));
        assert!(parse_request("classify mars seq 0.5").unwrap_err().contains("unknown profile"));
    }

    #[test]
    fn non_finite_features_are_rejected() {
        for tok in ["NaN", "nan", "inf", "-inf", "infinity", "-Infinity"] {
            let line = format!("classify cardio seq 0.5 {tok}");
            let err = parse_request(&line).unwrap_err();
            assert!(err.contains("non-finite"), "{tok} must be rejected, got {err:?}");
        }
        // Finite edge values still parse.
        let req = parse_request("classify cardio seq 0 1 1e-300").unwrap();
        assert!(matches!(req, Request::Classify { ref features, .. } if features.len() == 3));
    }
}
