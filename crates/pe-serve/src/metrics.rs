//! Service metrics: counters, batch-fill accounting and a lock-free
//! log-scale latency histogram with p50/p99 estimation.
//!
//! Every figure is an atomic, updated by submitters and batch workers
//! without any shared lock, and read by [`Metrics::snapshot`] at any time.
//! Latencies land in power-of-two nanosecond buckets, so quantiles are
//! estimates with at most 2× resolution error — plenty for spotting the
//! knee of a latency curve, and immune to coordinated omission caused by a
//! locked histogram.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Number of log-scale latency buckets (covers 1 ns .. ~2^63 ns).
const BUCKETS: usize = 64;

/// The bucket covering a duration: `floor(log2(ns))`, with sub-nanosecond
/// samples landing in bucket 0 and everything from 2^63 ns up saturating
/// into the last bucket. [`bucket_value`] is the inverse mapping; keeping
/// them adjacent is what guarantees `record` and `quantile` agree on every
/// bucket, the top one included.
fn bucket_index(d: Duration) -> usize {
    let ns = (d.as_nanos() as u64).max(1);
    (ns.ilog2() as usize).min(BUCKETS - 1)
}

/// The representative duration of bucket `i`: the arithmetic midpoint
/// `1.5 * 2^i` of the covered range `[2^i, 2^(i+1))`. For the top bucket
/// (`i = 63`) the midpoint still fits a `u64` nanosecond count.
fn bucket_value(i: usize) -> Duration {
    let lo = 1u64 << i;
    Duration::from_nanos(lo + lo / 2)
}

/// A lock-free histogram over power-of-two nanosecond buckets.
#[derive(Debug)]
struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
}

impl LatencyHistogram {
    fn new() -> Self {
        LatencyHistogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn record(&self, d: Duration) {
        self.buckets[bucket_index(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// The `q`-quantile as the arithmetic midpoint of the covering bucket
    /// ([`bucket_value`]; zero when nothing was recorded).
    fn quantile(&self, q: f64) -> Duration {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64 - 1.0) * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return bucket_value(i);
            }
        }
        Duration::ZERO
    }
}

/// Live counters for one [`Service`](crate::Service).
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    submitted: AtomicU64,
    served: AtomicU64,
    rejected: AtomicU64,
    verify_mismatches: AtomicU64,
    batches: AtomicU64,
    batch_lanes: AtomicU64,
    sweeps: AtomicU64,
    sweep_capacity: AtomicU64,
    lane_words: AtomicU64,
    gate_cycles: AtomicU64,
    latency: LatencyHistogram,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            served: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            verify_mismatches: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_lanes: AtomicU64::new(0),
            sweeps: AtomicU64::new(0),
            sweep_capacity: AtomicU64::new(0),
            lane_words: AtomicU64::new(0),
            gate_cycles: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    pub(crate) fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Accounts one executed batch. `lane_words` is the slab width (in
    /// words) the gate-level simulator ran at — 0 for integer-only batches,
    /// which do no sweeps. Sweep occupancy is accounted against the
    /// **effective** lane capacity `64 * lane_words`, not a hardcoded 64.
    pub(crate) fn on_batch(
        &self,
        lanes: usize,
        lane_words: usize,
        gate_cycles: u64,
        mismatches: usize,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_lanes.fetch_add(lanes as u64, Ordering::Relaxed);
        if lane_words > 0 && lanes > 0 {
            let capacity = (lane_words * 64) as u64;
            let sweeps = (lanes as u64).div_ceil(capacity);
            self.sweeps.fetch_add(sweeps, Ordering::Relaxed);
            self.sweep_capacity.fetch_add(sweeps * capacity, Ordering::Relaxed);
            self.lane_words.store(lane_words as u64, Ordering::Relaxed);
        }
        self.gate_cycles.fetch_add(gate_cycles, Ordering::Relaxed);
        if mismatches > 0 {
            self.verify_mismatches.fetch_add(mismatches as u64, Ordering::Relaxed);
        }
    }

    pub(crate) fn on_served(&self, latency: Duration) {
        self.served.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
    }

    /// A consistent-enough point-in-time view (counters are read
    /// individually; they may straddle an in-flight batch by a request or
    /// two, which is fine for monitoring).
    #[must_use]
    pub fn snapshot(&self, batch_max: usize, queue_depth: usize) -> MetricsSnapshot {
        let served = self.served.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let lanes = self.batch_lanes.load(Ordering::Relaxed);
        let sweeps = self.sweeps.load(Ordering::Relaxed);
        let sweep_capacity = self.sweep_capacity.load(Ordering::Relaxed);
        let elapsed = self.started.elapsed();
        MetricsSnapshot {
            submitted: self.submitted.load(Ordering::Relaxed),
            served,
            rejected: self.rejected.load(Ordering::Relaxed),
            verify_mismatches: self.verify_mismatches.load(Ordering::Relaxed),
            batches,
            gate_cycles: self.gate_cycles.load(Ordering::Relaxed),
            batch_fill: if batches == 0 {
                0.0
            } else {
                lanes as f64 / (batches as f64 * batch_max.max(1) as f64)
            },
            lane_width: self.lane_words.load(Ordering::Relaxed),
            sweeps,
            lane_fill: if sweep_capacity == 0 { 0.0 } else { lanes as f64 / sweep_capacity as f64 },
            p50: self.latency.quantile(0.50),
            p99: self.latency.quantile(0.99),
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                served as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            queue_depth,
        }
    }
}

/// A point-in-time metrics view (see [`Metrics::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered.
    pub served: u64,
    /// Requests rejected for backpressure (`try_submit` on a full queue).
    pub rejected: u64,
    /// Integer-vs-gate-level disagreements seen by verify mode (must stay 0).
    pub verify_mismatches: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Gate-level clock cycles simulated.
    pub gate_cycles: u64,
    /// Mean fraction of `batch_max` a batch actually filled.
    pub batch_fill: f64,
    /// Slab width (in 64-lane words) of the most recent gate-level batch:
    /// how many packed vectors one topological sweep carries, divided
    /// by 64. Zero until a gate-level batch ran (e.g. in `int` mode).
    pub lane_width: u64,
    /// Bit-sliced sweeps executed (one sweep evaluates up to
    /// `64 * lane_width` requests in lockstep).
    pub sweeps: u64,
    /// Mean fraction of the **effective** lane capacity (`64 * lane_width`,
    /// not a hardcoded 64) the executed sweeps actually filled.
    pub lane_fill: f64,
    /// Median request latency (enqueue to reply; 2× bucket resolution).
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Served requests per second since service start.
    pub throughput_rps: f64,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
}

impl MetricsSnapshot {
    /// One parse-friendly `key=value` line (the `STATS` wire format).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "submitted={} served={} rejected={} mismatches={} batches={} gate_cycles={} \
             fill={:.3} lane_width={} sweeps={} lane_fill={:.3} p50_us={:.1} p99_us={:.1} \
             rps={:.1} qdepth={}",
            self.submitted,
            self.served,
            self.rejected,
            self.verify_mismatches,
            self.batches,
            self.gate_cycles,
            self.batch_fill,
            self.lane_width,
            self.sweeps,
            self.lane_fill,
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.throughput_rps,
            self.queue_depth
        )
    }

    /// Reads one field out of a [`MetricsSnapshot::to_line`] string.
    #[must_use]
    pub fn field(line: &str, key: &str) -> Option<f64> {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
            .and_then(|v| v.parse().ok())
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} / submitted {} (rejected {}, queued {})",
            self.served, self.submitted, self.rejected, self.queue_depth
        )?;
        writeln!(
            f,
            "batches {} (mean fill {:.1}%), {} sweeps at width {} ({:.1}% of {} lanes), \
             gate cycles {}",
            self.batches,
            self.batch_fill * 100.0,
            self.sweeps,
            self.lane_width,
            self.lane_fill * 100.0,
            self.lane_width * 64,
            self.gate_cycles
        )?;
        writeln!(
            f,
            "latency p50 {:.1} µs, p99 {:.1} µs; throughput {:.1} req/s",
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.throughput_rps
        )?;
        write!(f, "verify mismatches {}", self.verify_mismatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_recorded_values() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket [65.5, 131] µs
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(64) && p50 <= Duration::from_micros(200), "{p50:?}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(8) && p99 <= Duration::from_millis(25), "{p99:?}");
        assert_eq!(LatencyHistogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn top_bucket_samples_are_not_misreported() {
        // The satellite bug: record() saturated into bucket 63 but
        // quantile() capped the exponent at 62, so a top-bucket sample
        // reported a quarter of its actual magnitude.
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(u64::MAX)); // bucket 63
        let q = h.quantile(0.5);
        assert_eq!(q, bucket_value(63));
        assert!(q >= Duration::from_nanos(1u64 << 63), "{q:?} must be in the top bucket");
    }

    #[test]
    fn bucket_mapping_round_trips() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_value(i)), i, "bucket {i} must map to itself");
        }
        // Edges: sub-ns clamps to bucket 0, the 2^(i+1) boundary belongs to
        // the next bucket.
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_nanos(1)), 0);
        assert_eq!(bucket_index(Duration::from_nanos(2)), 1);
        assert_eq!(bucket_index(Duration::from_nanos((1 << 10) - 1)), 9);
        assert_eq!(bucket_index(Duration::from_nanos(1 << 10)), 10);
    }

    #[test]
    fn snapshot_line_round_trips_fields() {
        let m = Metrics::new();
        m.on_submit();
        m.on_batch(32, 1, 96, 0);
        m.on_served(Duration::from_micros(500));
        let snap = m.snapshot(64, 0);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.served, 1);
        assert!((snap.batch_fill - 0.5).abs() < 1e-9);
        assert_eq!(snap.lane_width, 1);
        assert_eq!(snap.sweeps, 1);
        assert!((snap.lane_fill - 0.5).abs() < 1e-9);
        let line = snap.to_line();
        assert_eq!(MetricsSnapshot::field(&line, "served"), Some(1.0));
        assert_eq!(MetricsSnapshot::field(&line, "mismatches"), Some(0.0));
        assert_eq!(MetricsSnapshot::field(&line, "gate_cycles"), Some(96.0));
        assert_eq!(MetricsSnapshot::field(&line, "lane_width"), Some(1.0));
        assert_eq!(MetricsSnapshot::field(&line, "nope"), None);
        // Display renders without panicking and mentions the key figures.
        let text = snap.to_string();
        assert!(text.contains("verify mismatches 0"));
    }

    #[test]
    fn lane_fill_accounts_against_effective_capacity() {
        // 300 requests in one batch at an 8-word slab (512-lane sweeps): one
        // sweep, 300/512 full. The old hardcoded-64 accounting would report
        // five "batches" worth of lanes instead.
        let m = Metrics::new();
        m.on_batch(300, 8, 0, 0);
        let snap = m.snapshot(512, 0);
        assert_eq!(snap.lane_width, 8);
        assert_eq!(snap.sweeps, 1);
        assert!((snap.lane_fill - 300.0 / 512.0).abs() < 1e-9, "lane_fill {}", snap.lane_fill);
        // Integer-only batches do no sweeps and leave lane accounting alone.
        let int_only = Metrics::new();
        int_only.on_batch(10, 0, 0, 0);
        let snap = int_only.snapshot(64, 0);
        assert_eq!(snap.lane_width, 0);
        assert_eq!(snap.sweeps, 0);
        assert_eq!(snap.lane_fill, 0.0);
    }
}
