//! Service metrics on the [`pe_obs`] kit: per-model-key shards of lock-free
//! counters and log-scale histograms, with an aggregate snapshot, a
//! windowed throughput rate and a Prometheus-style text exposition.
//!
//! Every model key served gets its own [`ModelMetrics`] shard — counters,
//! a **queue-wait** histogram (submission until a worker drained the
//! request's batch), a **service-time** histogram (drain until reply), the
//! total-latency histogram, and a [`ProfileRecorder`] fed by the gate-level
//! simulator's [`SimProfile`](pe_obs::SimProfile) hook. Sharding is what
//! makes `lane_width` honest under mixed-model traffic: each model reports
//! the slab width *it* ran at, instead of whichever model's batch happened
//! to land last. The aggregate snapshot reports the **maximum** width
//! across shards (documented on [`MetricsSnapshot::lane_width`]).
//!
//! Two throughput figures: [`MetricsSnapshot::throughput_rps`] is the rate
//! over the interval since the previous snapshot (a [`RateWindow`]), so a
//! long warm-up no longer deflates the number forever;
//! [`MetricsSnapshot::lifetime_rps`] keeps the since-start figure.

use crate::registry::ModelKey;
use pe_obs::{
    Counter, Gauge, HistSnapshot, Histogram, ProfileRecorder, ProfileSnapshot, RateWindow,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// One model key's metric shard. All figures are atomics; submitters and
/// batch workers update them without any shared lock.
#[derive(Debug)]
pub struct ModelMetrics {
    submitted: Counter,
    served: Counter,
    rejected: Counter,
    verify_mismatches: Counter,
    batches: Counter,
    batch_lanes: Counter,
    sweeps: Counter,
    sweep_capacity: Counter,
    /// Slab width (words) of this model's most recent gate-level batch —
    /// honest per key, unlike the old single global cell.
    lane_words: AtomicU64,
    gate_cycles: Counter,
    queue_wait: Histogram,
    service_time: Histogram,
    latency: Histogram,
    profile: Arc<ProfileRecorder>,
}

impl ModelMetrics {
    fn new() -> Self {
        ModelMetrics {
            submitted: Counter::new(),
            served: Counter::new(),
            rejected: Counter::new(),
            verify_mismatches: Counter::new(),
            batches: Counter::new(),
            batch_lanes: Counter::new(),
            sweeps: Counter::new(),
            sweep_capacity: Counter::new(),
            lane_words: AtomicU64::new(0),
            gate_cycles: Counter::new(),
            queue_wait: Histogram::new(),
            service_time: Histogram::new(),
            latency: Histogram::new(),
            profile: Arc::new(ProfileRecorder::new()),
        }
    }

    /// The simulator-profile recorder workers install on this model's
    /// batches ([`pe_sim::Simulator::set_profile`]).
    #[must_use]
    pub fn profile(&self) -> &Arc<ProfileRecorder> {
        &self.profile
    }

    /// Accounts one executed batch. `lane_words` is the slab width (in
    /// words) the gate-level simulator ran at — 0 for integer-only batches,
    /// which do no sweeps. Sweep occupancy is accounted against the
    /// **effective** lane capacity `64 * lane_words`, not a hardcoded 64.
    pub(crate) fn on_batch(
        &self,
        lanes: usize,
        lane_words: usize,
        gate_cycles: u64,
        mismatches: usize,
    ) {
        self.batches.inc();
        self.batch_lanes.add(lanes as u64);
        if lane_words > 0 && lanes > 0 {
            let capacity = (lane_words * 64) as u64;
            let sweeps = (lanes as u64).div_ceil(capacity);
            self.sweeps.add(sweeps);
            self.sweep_capacity.add(sweeps * capacity);
            self.lane_words.store(lane_words as u64, Ordering::Relaxed);
        }
        self.gate_cycles.add(gate_cycles);
        if mismatches > 0 {
            self.verify_mismatches.add(mismatches as u64);
        }
    }

    /// Accounts one answered request with its latency decomposition.
    pub(crate) fn on_served(&self, queue_wait: Duration, service: Duration) {
        self.served.inc();
        self.queue_wait.record(queue_wait);
        self.service_time.record(service);
        self.latency.record(queue_wait + service);
    }

    /// A point-in-time copy of this shard.
    #[must_use]
    pub fn snapshot(&self, batch_max: usize) -> ModelMetricsSnapshot {
        let served = self.served.get();
        let batches = self.batches.get();
        let lanes = self.batch_lanes.get();
        let sweeps = self.sweeps.get();
        let sweep_capacity = self.sweep_capacity.get();
        let queue_wait = self.queue_wait.snapshot();
        let service_time = self.service_time.snapshot();
        let latency = self.latency.snapshot();
        ModelMetricsSnapshot {
            submitted: self.submitted.get(),
            served,
            rejected: self.rejected.get(),
            verify_mismatches: self.verify_mismatches.get(),
            batches,
            gate_cycles: self.gate_cycles.get(),
            batch_fill: if batches == 0 {
                0.0
            } else {
                lanes as f64 / (batches as f64 * batch_max.max(1) as f64)
            },
            lane_width: self.lane_words.load(Ordering::Relaxed),
            sweeps,
            lane_fill: if sweep_capacity == 0 { 0.0 } else { lanes as f64 / sweep_capacity as f64 },
            batch_lanes: lanes,
            sweep_capacity,
            queue_wait,
            service_time,
            latency,
            profile: self.profile.snapshot(),
        }
    }
}

/// A point-in-time copy of one model shard (see [`ModelMetrics::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ModelMetricsSnapshot {
    /// Requests accepted into the queue for this model.
    pub submitted: u64,
    /// Requests answered.
    pub served: u64,
    /// Requests rejected for backpressure.
    pub rejected: u64,
    /// Integer-vs-gate-level disagreements (must stay 0).
    pub verify_mismatches: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Gate-level clock cycles simulated.
    pub gate_cycles: u64,
    /// Mean fraction of `batch_max` a batch actually filled.
    pub batch_fill: f64,
    /// Slab width (words) of this model's most recent gate-level batch.
    pub lane_width: u64,
    /// Bit-sliced sweeps executed.
    pub sweeps: u64,
    /// Mean fraction of the effective lane capacity the sweeps filled.
    pub lane_fill: f64,
    /// Raw lanes (requests) across all batches — the exact numerator the
    /// fill ratios derive from (lets the aggregate merge without float
    /// reconstruction).
    pub batch_lanes: u64,
    /// Raw lane capacity across all executed sweeps.
    pub sweep_capacity: u64,
    /// Queue-wait histogram (submission → batch drained).
    pub queue_wait: HistSnapshot,
    /// Service-time histogram (batch drained → reply).
    pub service_time: HistSnapshot,
    /// Total-latency histogram (submission → reply).
    pub latency: HistSnapshot,
    /// Simulator profile totals (phase ns, sweeps, cell evals, event-driven
    /// work) fed through [`pe_obs::SimProfile`].
    pub profile: ProfileSnapshot,
}

/// Connection and readiness gauges for the non-blocking TCP front end.
///
/// Owned by [`Metrics`] (so the `metrics` wire command exposes them without
/// any registration dance) and written by the [`Server`](crate::Server)
/// event loop. All figures stay zero when the service runs without a TCP
/// front end (in-process use, tests).
#[derive(Debug, Default)]
pub struct FrontendStats {
    /// Connections currently open (level) and the high-water mark (peak).
    pub conns_open: Gauge,
    /// Connections accepted over the server's lifetime.
    pub accepted: Counter,
    /// Connections refused because the slot table was full.
    pub rejected: Counter,
    /// Requests discarded for exceeding the line-length cap.
    pub oversized: Counter,
    /// Classify requests parked for service backpressure (queue full) and
    /// retried on a later pass instead of being dropped.
    pub parked: Counter,
    /// Connections found readable on the most recent scan (level) and the
    /// busiest single pass (peak).
    pub conns_ready: Gauge,
    /// Event-loop scan passes.
    pub poll_passes: Counter,
    /// Scan passes that made no progress (accept/read/write/reply) and paid
    /// an idle pause instead.
    pub poll_idle: Counter,
}

/// Live metrics for one [`Service`](crate::Service): per-model shards plus
/// the windowed throughput clock.
#[derive(Debug)]
pub struct Metrics {
    started: Instant,
    shards: RwLock<HashMap<ModelKey, Arc<ModelMetrics>>>,
    /// Interval clock for the windowed `rps` figure; ticked by
    /// [`Metrics::snapshot`].
    rate: Mutex<RateWindow>,
    /// TCP front-end gauges (zero without a [`Server`](crate::Server)).
    frontend: FrontendStats,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Metrics {
            started: Instant::now(),
            shards: RwLock::new(HashMap::new()),
            rate: Mutex::new(RateWindow::new(0)),
            frontend: FrontendStats::default(),
        }
    }

    /// The TCP front end's connection/readiness instruments.
    #[must_use]
    pub fn frontend(&self) -> &FrontendStats {
        &self.frontend
    }

    /// The shard for `key`, created on first use.
    #[must_use]
    pub fn shard(&self, key: ModelKey) -> Arc<ModelMetrics> {
        if let Some(s) = self.shards.read().expect("metrics shards poisoned").get(&key) {
            return Arc::clone(s);
        }
        let mut w = self.shards.write().expect("metrics shards poisoned");
        Arc::clone(w.entry(key).or_insert_with(|| Arc::new(ModelMetrics::new())))
    }

    pub(crate) fn on_submit(&self, key: ModelKey) {
        self.shard(key).submitted.inc();
    }

    pub(crate) fn on_reject(&self, key: ModelKey) {
        self.shard(key).rejected.inc();
    }

    /// Every shard's snapshot, sorted by model token (stable output for the
    /// exposition and tests).
    #[must_use]
    pub fn model_snapshots(&self, batch_max: usize) -> Vec<(ModelKey, ModelMetricsSnapshot)> {
        let mut out: Vec<(ModelKey, ModelMetricsSnapshot)> = self
            .shards
            .read()
            .expect("metrics shards poisoned")
            .iter()
            .map(|(k, s)| (*k, s.snapshot(batch_max)))
            .collect();
        out.sort_by_key(|(k, _)| k.token());
        out
    }

    /// A consistent-enough point-in-time aggregate over every shard
    /// (counters are read individually; they may straddle an in-flight
    /// batch by a request or two, which is fine for monitoring).
    ///
    /// Ticks the interval clock: `throughput_rps` is the rate since the
    /// previous `snapshot` call (all callers share one window).
    #[must_use]
    pub fn snapshot(&self, batch_max: usize, queue_depth: usize) -> MetricsSnapshot {
        let shards = self.model_snapshots(batch_max);
        let mut agg = MetricsSnapshot {
            submitted: 0,
            served: 0,
            rejected: 0,
            verify_mismatches: 0,
            batches: 0,
            gate_cycles: 0,
            batch_fill: 0.0,
            lane_width: 0,
            sweeps: 0,
            lane_fill: 0.0,
            p50: Duration::ZERO,
            p99: Duration::ZERO,
            queue_p50: Duration::ZERO,
            queue_p99: Duration::ZERO,
            service_p50: Duration::ZERO,
            service_p99: Duration::ZERO,
            throughput_rps: 0.0,
            lifetime_rps: 0.0,
            queue_depth,
        };
        let mut lanes = 0u64;
        let mut sweep_capacity = 0u64;
        let mut latency = HistSnapshot::default();
        let mut queue_wait = HistSnapshot::default();
        let mut service_time = HistSnapshot::default();
        for (_, s) in &shards {
            agg.submitted += s.submitted;
            agg.served += s.served;
            agg.rejected += s.rejected;
            agg.verify_mismatches += s.verify_mismatches;
            agg.batches += s.batches;
            agg.gate_cycles += s.gate_cycles;
            agg.lane_width = agg.lane_width.max(s.lane_width);
            agg.sweeps += s.sweeps;
            lanes += s.batch_lanes;
            sweep_capacity += s.sweep_capacity;
            latency.merge(&s.latency);
            queue_wait.merge(&s.queue_wait);
            service_time.merge(&s.service_time);
        }
        agg.batch_fill = if agg.batches == 0 {
            0.0
        } else {
            lanes as f64 / (agg.batches as f64 * batch_max.max(1) as f64)
        };
        agg.lane_fill =
            if sweep_capacity == 0 { 0.0 } else { lanes as f64 / sweep_capacity as f64 };
        agg.p50 = latency.quantile(0.50);
        agg.p99 = latency.quantile(0.99);
        agg.queue_p50 = queue_wait.quantile(0.50);
        agg.queue_p99 = queue_wait.quantile(0.99);
        agg.service_p50 = service_time.quantile(0.50);
        agg.service_p99 = service_time.quantile(0.99);
        let (rate, _window) = self.rate.lock().expect("metrics rate poisoned").tick(agg.served);
        agg.throughput_rps = rate;
        let elapsed = self.started.elapsed();
        agg.lifetime_rps = if elapsed.as_secs_f64() > 0.0 {
            agg.served as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
        agg
    }

    /// Prometheus-style text exposition: one line per series, `model=`
    /// labels, terminated by `# EOF` (the `metrics` wire reply). Gauges
    /// carry the aggregate queue depth, both throughput figures and the
    /// front end's connection/readiness instruments (`pe_conn_*`,
    /// `pe_poll_*` — zero without a TCP server);
    /// per-model series carry the shard counters, the queue-wait /
    /// service-time / latency quantiles, and the simulator profile series
    /// (phase nanoseconds, sweeps, cell evaluations, event-driven work,
    /// cone-campaign counters).
    #[must_use]
    pub fn prometheus(&self, batch_max: usize, queue_depth: usize) -> String {
        use std::fmt::Write as _;
        let shards = self.model_snapshots(batch_max);
        let mut out = String::new();
        let elapsed = self.started.elapsed().as_secs_f64();
        let served: u64 = shards.iter().map(|(_, s)| s.served).sum();
        let _ = writeln!(out, "pe_queue_depth {queue_depth}");
        let _ = writeln!(
            out,
            "pe_lifetime_rps {:.3}",
            if elapsed > 0.0 { served as f64 / elapsed } else { 0.0 }
        );
        let fe = &self.frontend;
        let _ = writeln!(out, "pe_conn_open {}", fe.conns_open.get());
        let _ = writeln!(out, "pe_conn_open_peak {}", fe.conns_open.peak());
        let _ = writeln!(out, "pe_conn_accepted_total {}", fe.accepted.get());
        let _ = writeln!(out, "pe_conn_rejected_total {}", fe.rejected.get());
        let _ = writeln!(out, "pe_conn_oversized_total {}", fe.oversized.get());
        let _ = writeln!(out, "pe_conn_parked_total {}", fe.parked.get());
        let _ = writeln!(out, "pe_conn_ready {}", fe.conns_ready.get());
        let _ = writeln!(out, "pe_conn_ready_peak {}", fe.conns_ready.peak());
        let _ = writeln!(out, "pe_poll_passes_total {}", fe.poll_passes.get());
        let _ = writeln!(out, "pe_poll_idle_total {}", fe.poll_idle.get());
        for (key, s) in &shards {
            let m = key.token();
            let us = |d: Duration| d.as_secs_f64() * 1e6;
            let _ = writeln!(out, "pe_submitted_total{{model=\"{m}\"}} {}", s.submitted);
            let _ = writeln!(out, "pe_served_total{{model=\"{m}\"}} {}", s.served);
            let _ = writeln!(out, "pe_rejected_total{{model=\"{m}\"}} {}", s.rejected);
            let _ = writeln!(
                out,
                "pe_verify_mismatches_total{{model=\"{m}\"}} {}",
                s.verify_mismatches
            );
            let _ = writeln!(out, "pe_batches_total{{model=\"{m}\"}} {}", s.batches);
            let _ = writeln!(out, "pe_gate_cycles_total{{model=\"{m}\"}} {}", s.gate_cycles);
            let _ = writeln!(out, "pe_batch_fill{{model=\"{m}\"}} {:.4}", s.batch_fill);
            let _ = writeln!(out, "pe_lane_width_words{{model=\"{m}\"}} {}", s.lane_width);
            let _ = writeln!(out, "pe_sweeps_total{{model=\"{m}\"}} {}", s.sweeps);
            let _ = writeln!(out, "pe_lane_fill{{model=\"{m}\"}} {:.4}", s.lane_fill);
            for (name, h) in [
                ("pe_queue_wait_us", &s.queue_wait),
                ("pe_service_time_us", &s.service_time),
                ("pe_latency_us", &s.latency),
            ] {
                let _ = writeln!(
                    out,
                    "{name}{{model=\"{m}\",quantile=\"0.5\"}} {:.1}",
                    us(h.quantile(0.5))
                );
                let _ = writeln!(
                    out,
                    "{name}{{model=\"{m}\",quantile=\"0.99\"}} {:.1}",
                    us(h.quantile(0.99))
                );
                let _ = writeln!(out, "{name}_count{{model=\"{m}\"}} {}", h.count());
            }
            let p = &s.profile;
            let _ = writeln!(out, "pe_sim_batches_total{{model=\"{m}\"}} {}", p.batches);
            let _ = writeln!(out, "pe_sim_lanes_total{{model=\"{m}\"}} {}", p.lanes);
            let _ = writeln!(out, "pe_sim_sweeps_total{{model=\"{m}\"}} {}", p.sweeps);
            let _ = writeln!(out, "pe_sim_cycles_total{{model=\"{m}\"}} {}", p.cycles);
            let _ = writeln!(out, "pe_sim_cell_evals_total{{model=\"{m}\"}} {}", p.cell_evals);
            let _ = writeln!(out, "pe_sim_drive_ns_total{{model=\"{m}\"}} {}", p.drive_ns);
            let _ = writeln!(out, "pe_sim_eval_ns_total{{model=\"{m}\"}} {}", p.eval_ns);
            let _ = writeln!(out, "pe_sim_readout_ns_total{{model=\"{m}\"}} {}", p.readout_ns);
            let _ =
                writeln!(out, "pe_sim_event_batches_total{{model=\"{m}\"}} {}", p.event_batches);
            let _ = writeln!(
                out,
                "pe_sim_event_cell_evals_total{{model=\"{m}\"}} {}",
                p.event_cell_evals
            );
            let _ = writeln!(out, "pe_sim_cone_chunks_total{{model=\"{m}\"}} {}", p.cone_chunks);
            let _ = writeln!(
                out,
                "pe_sim_fallback_chunks_total{{model=\"{m}\"}} {}",
                p.fallback_chunks
            );
        }
        out.push_str("# EOF\n");
        out
    }
}

/// A point-in-time aggregate metrics view (see [`Metrics::snapshot`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests answered.
    pub served: u64,
    /// Requests rejected for backpressure (`try_submit` on a full queue).
    pub rejected: u64,
    /// Integer-vs-gate-level disagreements seen by verify mode (must stay 0).
    pub verify_mismatches: u64,
    /// `run_batch` calls issued.
    pub batches: u64,
    /// Gate-level clock cycles simulated.
    pub gate_cycles: u64,
    /// Mean fraction of `batch_max` a batch actually filled.
    pub batch_fill: f64,
    /// Largest slab width (in 64-lane words) any model's most recent
    /// gate-level batch ran at. Mixed-model traffic serves different widths
    /// concurrently; the per-model figure lives in the `metrics` exposition
    /// ([`Metrics::prometheus`]) — the aggregate reports the maximum, not
    /// whichever batch happened to land last. Zero until a gate-level batch
    /// ran (e.g. in `int` mode).
    pub lane_width: u64,
    /// Bit-sliced sweeps executed (one sweep evaluates up to
    /// `64 * lane_width` requests in lockstep).
    pub sweeps: u64,
    /// Mean fraction of the **effective** lane capacity (`64 * lane_width`,
    /// not a hardcoded 64) the executed sweeps actually filled.
    pub lane_fill: f64,
    /// Median request latency (enqueue to reply; 2× bucket resolution).
    pub p50: Duration,
    /// 99th-percentile request latency.
    pub p99: Duration,
    /// Median queue wait (submission until a worker drained the batch).
    pub queue_p50: Duration,
    /// 99th-percentile queue wait.
    pub queue_p99: Duration,
    /// Median service time (batch drained until reply).
    pub service_p50: Duration,
    /// 99th-percentile service time.
    pub service_p99: Duration,
    /// Served requests per second over the interval since the **previous**
    /// snapshot (windowed — a long warm-up no longer deflates it; all
    /// snapshot callers share one window). Zero on the first snapshot.
    pub throughput_rps: f64,
    /// Served requests per second since service start (the old figure).
    pub lifetime_rps: f64,
    /// Requests queued at snapshot time.
    pub queue_depth: usize,
}

impl MetricsSnapshot {
    /// One parse-friendly `key=value` line (the `STATS` wire format).
    #[must_use]
    pub fn to_line(&self) -> String {
        format!(
            "submitted={} served={} rejected={} mismatches={} batches={} gate_cycles={} \
             fill={:.3} lane_width={} sweeps={} lane_fill={:.3} p50_us={:.1} p99_us={:.1} \
             queue_p50_us={:.1} queue_p99_us={:.1} svc_p50_us={:.1} svc_p99_us={:.1} \
             rps={:.1} rps_life={:.1} qdepth={}",
            self.submitted,
            self.served,
            self.rejected,
            self.verify_mismatches,
            self.batches,
            self.gate_cycles,
            self.batch_fill,
            self.lane_width,
            self.sweeps,
            self.lane_fill,
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.queue_p50.as_secs_f64() * 1e6,
            self.queue_p99.as_secs_f64() * 1e6,
            self.service_p50.as_secs_f64() * 1e6,
            self.service_p99.as_secs_f64() * 1e6,
            self.throughput_rps,
            self.lifetime_rps,
            self.queue_depth
        )
    }

    /// Reads one field out of a [`MetricsSnapshot::to_line`] string.
    #[must_use]
    pub fn field(line: &str, key: &str) -> Option<f64> {
        line.split_whitespace()
            .find_map(|kv| kv.strip_prefix(key).and_then(|rest| rest.strip_prefix('=')))
            .and_then(|v| v.parse().ok())
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "served {} / submitted {} (rejected {}, queued {})",
            self.served, self.submitted, self.rejected, self.queue_depth
        )?;
        writeln!(
            f,
            "batches {} (mean fill {:.1}%), {} sweeps at width {} ({:.1}% of {} lanes), \
             gate cycles {}",
            self.batches,
            self.batch_fill * 100.0,
            self.sweeps,
            self.lane_width,
            self.lane_fill * 100.0,
            self.lane_width * 64,
            self.gate_cycles
        )?;
        writeln!(
            f,
            "latency p50 {:.1} µs, p99 {:.1} µs (queue {:.1}/{:.1} µs, service {:.1}/{:.1} µs); \
             throughput {:.1} req/s lifetime",
            self.p50.as_secs_f64() * 1e6,
            self.p99.as_secs_f64() * 1e6,
            self.queue_p50.as_secs_f64() * 1e6,
            self.queue_p99.as_secs_f64() * 1e6,
            self.service_p50.as_secs_f64() * 1e6,
            self.service_p99.as_secs_f64() * 1e6,
            self.lifetime_rps
        )?;
        write!(f, "verify mismatches {}", self.verify_mismatches)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;

    fn cardio() -> ModelKey {
        ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm)
    }

    fn pendigits() -> ModelKey {
        ModelKey::new(UciProfile::PenDigits, DesignStyle::SequentialSvm)
    }

    #[test]
    fn snapshot_line_round_trips_fields() {
        let m = Metrics::new();
        m.on_submit(cardio());
        let shard = m.shard(cardio());
        shard.on_batch(32, 1, 96, 0);
        shard.on_served(Duration::from_micros(400), Duration::from_micros(100));
        let snap = m.snapshot(64, 0);
        assert_eq!(snap.submitted, 1);
        assert_eq!(snap.served, 1);
        assert!((snap.batch_fill - 0.5).abs() < 1e-9);
        assert_eq!(snap.lane_width, 1);
        assert_eq!(snap.sweeps, 1);
        assert!((snap.lane_fill - 0.5).abs() < 1e-9);
        assert!(snap.queue_p50 > Duration::ZERO);
        assert!(snap.service_p50 > Duration::ZERO);
        let line = snap.to_line();
        assert_eq!(MetricsSnapshot::field(&line, "served"), Some(1.0));
        assert_eq!(MetricsSnapshot::field(&line, "mismatches"), Some(0.0));
        assert_eq!(MetricsSnapshot::field(&line, "gate_cycles"), Some(96.0));
        assert_eq!(MetricsSnapshot::field(&line, "lane_width"), Some(1.0));
        assert!(MetricsSnapshot::field(&line, "queue_p50_us").is_some());
        assert!(MetricsSnapshot::field(&line, "svc_p99_us").is_some());
        assert!(MetricsSnapshot::field(&line, "rps_life").is_some());
        assert_eq!(MetricsSnapshot::field(&line, "nope"), None);
        // Display renders without panicking and mentions the key figures.
        let text = snap.to_string();
        assert!(text.contains("verify mismatches 0"));
    }

    #[test]
    fn lane_fill_accounts_against_effective_capacity() {
        // 300 requests in one batch at an 8-word slab (512-lane sweeps): one
        // sweep, 300/512 full. The old hardcoded-64 accounting would report
        // five "batches" worth of lanes instead.
        let m = Metrics::new();
        m.shard(cardio()).on_batch(300, 8, 0, 0);
        let snap = m.snapshot(512, 0);
        assert_eq!(snap.lane_width, 8);
        assert_eq!(snap.sweeps, 1);
        assert!((snap.lane_fill - 300.0 / 512.0).abs() < 1e-9, "lane_fill {}", snap.lane_fill);
        // Integer-only batches do no sweeps and leave lane accounting alone.
        let int_only = Metrics::new();
        int_only.shard(cardio()).on_batch(10, 0, 0, 0);
        let snap = int_only.snapshot(64, 0);
        assert_eq!(snap.lane_width, 0);
        assert_eq!(snap.sweeps, 0);
        assert_eq!(snap.lane_fill, 0.0);
    }

    #[test]
    fn per_model_lane_width_survives_mixed_traffic() {
        // The satellite bug: a single global `lane_words` cell meant the
        // last model's batch overwrote every other model's width. Shards
        // keep each model honest; the aggregate reports the max.
        let m = Metrics::new();
        m.shard(cardio()).on_batch(300, 8, 0, 0);
        m.shard(pendigits()).on_batch(10, 1, 0, 0);
        let per_model = m.model_snapshots(512);
        let widths: HashMap<String, u64> =
            per_model.iter().map(|(k, s)| (k.token(), s.lane_width)).collect();
        assert_eq!(widths["cardio:seq"], 8);
        assert_eq!(widths["pendigits:seq"], 1);
        assert_eq!(m.snapshot(512, 0).lane_width, 8, "aggregate reports the max width");
    }

    #[test]
    fn windowed_rps_recovers_after_warmup_lifetime_does_not() {
        let m = Metrics::new();
        // Simulate a long dead warm-up: the first snapshot's window opens
        // at Metrics::new(); serve everything "now" and snapshot twice.
        let shard = m.shard(cardio());
        let first = m.snapshot(64, 0);
        assert_eq!(first.served, 0);
        for _ in 0..100 {
            shard.on_served(Duration::from_micros(10), Duration::from_micros(10));
        }
        std::thread::sleep(Duration::from_millis(20));
        let snap = m.snapshot(64, 0);
        assert_eq!(snap.served, 100);
        assert!(snap.throughput_rps > 0.0, "windowed rate must see the interval's serves");
        assert!(
            snap.throughput_rps >= snap.lifetime_rps,
            "interval rate {} must not be deflated below the lifetime figure {}",
            snap.throughput_rps,
            snap.lifetime_rps
        );
    }

    #[test]
    fn prometheus_exposition_is_per_model_and_eof_terminated() {
        let m = Metrics::new();
        let c = m.shard(cardio());
        c.on_batch(32, 1, 96, 0);
        c.on_served(Duration::from_micros(100), Duration::from_micros(50));
        m.shard(pendigits()).on_batch(10, 2, 40, 0);
        let text = m.prometheus(64, 3);
        assert!(text.ends_with("# EOF\n"), "{text}");
        assert!(text.contains("pe_queue_depth 3"), "{text}");
        // Front-end gauges are always exposed; without a TCP server they
        // read zero except what we poke here.
        m.frontend().conns_open.add(5);
        m.frontend().conns_open.sub(2);
        m.frontend().accepted.add(5);
        let text = m.prometheus(64, 3);
        assert!(text.contains("pe_conn_open 3"), "{text}");
        assert!(text.contains("pe_conn_open_peak 5"), "{text}");
        assert!(text.contains("pe_conn_accepted_total 5"), "{text}");
        assert!(text.contains("pe_poll_passes_total 0"), "{text}");
        assert!(text.contains("pe_served_total{model=\"cardio:seq\"} 1"), "{text}");
        assert!(text.contains("pe_lane_width_words{model=\"pendigits:seq\"} 2"), "{text}");
        assert!(text.contains("pe_queue_wait_us{model=\"cardio:seq\",quantile=\"0.5\"}"), "{text}");
        assert!(text.contains("pe_service_time_us{model=\"cardio:seq\",quantile=\"0.99\"}"));
        assert!(text.contains("pe_sim_cell_evals_total{model=\"cardio:seq\"} 0"));
        // Every non-comment line is `name{labels} value` or `name value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "unparseable value in {line:?}");
            assert!(parts.next().is_some(), "no series name in {line:?}");
        }
    }
}
