//! Readiness primitives for the non-blocking front end.
//!
//! The workspace forbids `unsafe`, so there is no `epoll`/`kqueue` here —
//! the [`Server`](crate::Server) event loop instead scans its nonblocking
//! sockets each pass. This module holds the two pieces that make the scan
//! honest and cheap:
//!
//! * [`read_readiness`] — a one-byte `MSG_PEEK` probe classifying a socket
//!   as [`Readable`](Readiness::Readable), [`Closed`](Readiness::Closed)
//!   (EOF or reset) or [`NotReady`](Readiness::NotReady), without consuming
//!   stream bytes. Unlike a plain `read`, it distinguishes "peer hung up"
//!   from "nothing yet" on connections the server is *not* currently
//!   willing to read from (write-backlogged, parked for backpressure, or
//!   draining), so dead connections are reaped instead of leaking slots.
//! * [`Backoff`] — adaptive idle pacing for the scan loop. A pass that
//!   makes progress resets it; consecutive idle passes first spin-yield,
//!   then sleep with exponential growth up to [`Backoff::MAX_SLEEP`]. Under
//!   load the loop polls flat out; a quiet server converges to ~1 wakeup
//!   per millisecond instead of burning a core.
//!
//! Write readiness needs no probe: the loop just writes and treats
//! `WouldBlock` as "not ready", keeping the unsent tail buffered.

use std::io::ErrorKind;
use std::net::TcpStream;
use std::time::Duration;

/// What a one-byte peek says about a connection's read side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Readiness {
    /// No bytes buffered; the connection is alive.
    NotReady,
    /// At least one byte can be read without blocking.
    Readable,
    /// The peer closed (orderly EOF) or the connection errored/reset.
    Closed,
}

/// Probes `stream` (which must be in nonblocking mode) without consuming
/// any bytes.
#[must_use]
pub fn read_readiness(stream: &TcpStream) -> Readiness {
    let mut probe = [0u8; 1];
    match stream.peek(&mut probe) {
        Ok(0) => Readiness::Closed,
        Ok(_) => Readiness::Readable,
        Err(e) if e.kind() == ErrorKind::WouldBlock => Readiness::NotReady,
        Err(e) if e.kind() == ErrorKind::Interrupted => Readiness::NotReady,
        Err(_) => Readiness::Closed,
    }
}

/// Adaptive pacing for a readiness scan loop: spin briefly, then sleep with
/// exponential backoff while nothing happens.
#[derive(Debug)]
pub struct Backoff {
    /// Consecutive idle passes since the last productive one.
    idle_passes: u32,
    /// Current sleep, `None` while still in the spin phase.
    sleep: Option<Duration>,
}

impl Backoff {
    /// Idle passes that merely `yield_now` before sleeping starts.
    pub const SPIN_PASSES: u32 = 16;
    /// First sleep after the spin phase.
    pub const FIRST_SLEEP: Duration = Duration::from_micros(50);
    /// Sleep ceiling — bounds worst-case reaction latency when idle.
    pub const MAX_SLEEP: Duration = Duration::from_millis(1);

    /// A fresh (reset) backoff.
    #[must_use]
    pub fn new() -> Backoff {
        Backoff { idle_passes: 0, sleep: None }
    }

    /// The pass made progress: next idle stretch starts from a hot spin.
    pub fn reset(&mut self) {
        self.idle_passes = 0;
        self.sleep = None;
    }

    /// The pass found nothing to do: yield or sleep, growing the pause.
    pub fn idle(&mut self) {
        self.idle_passes = self.idle_passes.saturating_add(1);
        if self.idle_passes <= Self::SPIN_PASSES {
            std::thread::yield_now();
            return;
        }
        let next = match self.sleep {
            None => Self::FIRST_SLEEP,
            Some(cur) => (cur * 2).min(Self::MAX_SLEEP),
        };
        self.sleep = Some(next);
        std::thread::sleep(next);
    }

    /// The sleep the *next* idle pass would take (`None` while spinning).
    /// Exposed for tests and the `pe_poll_*` gauges.
    #[must_use]
    pub fn current_sleep(&self) -> Option<Duration> {
        if self.idle_passes < Self::SPIN_PASSES {
            return None;
        }
        Some(match self.sleep {
            None => Self::FIRST_SLEEP,
            Some(cur) => (cur * 2).min(Self::MAX_SLEEP),
        })
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::TcpListener;

    /// A connected nonblocking localhost socket pair.
    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    /// Polls `stream` until `want` (data/EOF take a moment to propagate
    /// through loopback) — but NotReady must hold immediately.
    fn wait_for(stream: &TcpStream, want: Readiness) {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let got = read_readiness(stream);
            if got == want {
                return;
            }
            assert!(std::time::Instant::now() < deadline, "still {got:?}, want {want:?}");
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    #[test]
    fn peek_classifies_idle_data_and_eof() {
        let (mut client, server) = pair();
        assert_eq!(read_readiness(&server), Readiness::NotReady);
        client.write_all(b"x").unwrap();
        wait_for(&server, Readiness::Readable);
        // The probe must not consume: still readable on the next pass.
        assert_eq!(read_readiness(&server), Readiness::Readable);
        drop(client);
        // Buffered bytes outlive the peer: the connection stays Readable
        // until drained (the server must not drop undelivered requests),
        // and only then reports Closed.
        wait_for(&server, Readiness::Readable);
        let mut byte = [0u8; 1];
        use std::io::Read as _;
        assert_eq!((&server).read(&mut byte).unwrap(), 1);
        wait_for(&server, Readiness::Closed);
    }

    #[test]
    fn eof_without_buffered_data_reports_closed() {
        let (client, server) = pair();
        drop(client);
        wait_for(&server, Readiness::Closed);
    }

    #[test]
    fn backoff_spins_then_sleeps_then_resets() {
        let mut b = Backoff::new();
        assert_eq!(b.current_sleep(), None);
        for _ in 0..Backoff::SPIN_PASSES {
            b.idle();
        }
        // Spin phase exhausted: the next pauses sleep, doubling to the cap.
        assert_eq!(b.current_sleep(), Some(Backoff::FIRST_SLEEP));
        b.idle();
        assert_eq!(b.current_sleep(), Some(Backoff::FIRST_SLEEP * 2));
        for _ in 0..16 {
            b.idle();
        }
        assert_eq!(b.current_sleep(), Some(Backoff::MAX_SLEEP), "sleep must cap");
        b.reset();
        assert_eq!(b.current_sleep(), None, "progress rearms the spin phase");
    }
}
