//! `pe-serve` — a batch-coalescing classification service over the
//! bit-sliced gate-level simulator.
//!
//! The paper's sequential SVMs exist to classify *streams* of sensor
//! samples; this crate turns the reproduction into the corresponding
//! server. The economics come straight from `pe-sim`'s word-parallel
//! engine: one [`run_batch`](pe_sim::Simulator::run_batch) call evaluates
//! up to 64 packed requests with a single bitwise op per gate, so a batch
//! of 64 coalesced requests costs roughly what one request costs served
//! alone. The service's whole job is to keep those lanes full without
//! letting tail latency run away.
//!
//! # Pieces
//!
//! * [`ModelRegistry`] — trains, quantizes and elaborates each
//!   `(dataset, style)` model exactly once (the engine-style memoization
//!   from `pe-core`), caching the netlist plus its reusable
//!   [`Schedule`](pe_sim::Schedule) so workers stamp out simulators
//!   without re-levelizing.
//! * [`Service`] — the batcher and hand-rolled worker pool: a bounded
//!   pending queue with blocking backpressure, per-key coalescing into
//!   ≤64-lane batches, and a batch deadline so ragged batches still flush
//!   at low load. Modes: gate-level serving (default), the integer fast
//!   path, or verify — both paths cross-checked bit-for-bit per batch.
//! * [`Metrics`] — per-model-key shards of lock-free counters and
//!   log-scale histograms (built on [`pe_obs`]): throughput (windowed and
//!   lifetime), queue-wait vs. service-time latency split, batch-fill
//!   ratio, verify mismatches, and the simulator's per-batch profile; plus
//!   a Prometheus-style text exposition and a per-request span trace ring.
//! * [`protocol`] / [`Server`] — a line-oriented TCP front end (the
//!   `pe-serve` binary) for driving the service from outside the process.
//!   `stats` returns one aggregate line; `metrics` and `trace` return
//!   multi-line observability dumps terminated by `# EOF`.
//!
//! # Example
//!
//! ```no_run
//! use pe_core::pipeline::RunOptions;
//! use pe_serve::{ModelKey, ModelRegistry, Service, ServiceConfig};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
//! let service = Service::start(Arc::clone(&registry), ServiceConfig::default());
//! let key = ModelKey::parse("cardio:seq").unwrap();
//! let entry = registry.get(key);
//! let (x, _) = entry.prepared.test.sample(0);
//! let class = service.classify(key, x).unwrap();
//! println!("class {class}; {}", service.metrics());
//! ```

pub mod metrics;
pub mod poller;
pub mod protocol;
pub mod registry;
pub mod server;
pub mod service;

pub use metrics::{FrontendStats, Metrics, MetricsSnapshot, ModelMetrics, ModelMetricsSnapshot};
pub use registry::{ModelEntry, ModelKey, ModelRegistry};
pub use server::Server;
pub use service::{ServeError, ServeMode, Service, ServiceConfig, Ticket};
