//! The batch-coalescing classification service.
//!
//! Requests are submitted per [`ModelKey`] and coalesced into lanes of one
//! word-parallel [`run_batch`](pe_sim::Simulator::run_batch) call: the
//! bit-sliced engine evaluates up to `64 * W` requests (64–512, the slab
//! width `W` per-model auto-picked or forced via
//! [`ServiceConfig::lane_width`]) with `W` bitwise ops per gate, which is
//! the entire economic argument for batching. A batch is
//! flushed when it reaches [`ServiceConfig::batch_max`] lanes **or** when
//! its oldest request has waited [`ServiceConfig::batch_deadline`] — ragged
//! batches still flush promptly at low load, full batches flush immediately
//! at saturation.
//!
//! The worker pool is hand-rolled on `std` primitives: one bounded pending
//! queue (a `Mutex` + two condvars, [`ServiceConfig::queue_capacity`]
//! requests across all keys), [`Service::submit`] blocking for space —
//! backpressure, not unbounded buffering — and [`Service::try_submit`]
//! rejecting instead for callers that must not block.
//!
//! Three serving modes ([`ServeMode`]):
//!
//! * [`Gate`](ServeMode::Gate) — classify on the gate-level simulator (the
//!   default: this service exists to put traffic through the hardware).
//! * [`Int`](ServeMode::Int) — the integer golden model only
//!   ([`QuantizedSvm::predict_int`](pe_ml::QuantizedSvm::predict_int)-class
//!   fast path, no simulation).
//! * [`Verify`](ServeMode::Verify) — both per batch, cross-checked
//!   bit-for-bit; disagreements are counted in
//!   [`MetricsSnapshot::verify_mismatches`] and must stay zero.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{ModelKey, ModelRegistry};
use pe_obs::{RequestTrace, SimProfile, TraceRing};
use pe_sim::bitslice::LANES;
use pe_sim::LaneWidth;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which path answers classification requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Gate-level simulation of the bespoke netlist (the default).
    #[default]
    Gate,
    /// Integer golden model only — the fast path, no simulation.
    Int,
    /// Gate-level **and** integer paths, cross-checked per batch.
    Verify,
}

impl ServeMode {
    /// Parses a mode token (`gate`, `int`, `verify`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid tokens on failure.
    pub fn parse(tok: &str) -> Result<Self, String> {
        match tok.to_ascii_lowercase().as_str() {
            "gate" => Ok(ServeMode::Gate),
            "int" => Ok(ServeMode::Int),
            "verify" => Ok(ServeMode::Verify),
            other => Err(format!("unknown mode {other:?} (expected gate|int|verify)")),
        }
    }
}

/// Tunables of one [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Which path answers requests.
    pub mode: ServeMode,
    /// Requests per `run_batch` call, clamped to `1..=1024`. Values above
    /// the slab's `64 * W` lane capacity run as several sweeps inside
    /// **one** call, amortizing simulator construction further; 1
    /// degenerates to one-request-per-`run_batch` serving (the loadgen
    /// baseline). At the default 8-word slab a batch of 512 is a single
    /// sweep — no splitting.
    pub batch_max: usize,
    /// Bit-sliced slab width override. `None` (the default) uses each
    /// model's auto-picked width ([`ModelEntry::lane_width`]); `Some`
    /// forces every gate-level batch to this width.
    ///
    /// [`ModelEntry::lane_width`]: crate::registry::ModelEntry::lane_width
    pub lane_width: Option<LaneWidth>,
    /// Event-driven sweeps for gate-level batches: the slab engine only
    /// re-evaluates cells whose input slabs changed, which pays off on
    /// low-activity batches (repeated or near-constant feature rows) and is
    /// bit-identical to the full-sweep default — predictions *and* toggle
    /// accounting.
    pub event_driven: bool,
    /// How long the oldest queued request may wait before its (possibly
    /// ragged) batch is flushed anyway.
    pub batch_deadline: Duration,
    /// Bound on queued requests across all keys; beyond it `submit` blocks
    /// and `try_submit` rejects.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Capacity of the request trace ring ([`Service::traces`], the `trace`
    /// wire command). Each executed batch records one span trace for its
    /// **oldest** request — the worst queue wait of the batch. 0 disables
    /// tracing entirely (the instrumentation-off baseline).
    pub trace_capacity: usize,
    /// Only record traces whose total latency is at least this long. The
    /// default [`Duration::ZERO`] traces every batch's oldest request;
    /// raising it turns the ring into a slow-request sampler.
    pub trace_slow: Duration,
    /// Feed each model's [`pe_obs::ProfileRecorder`] from the gate-level
    /// simulator (per-batch phase timings, sweep and cell-evaluation
    /// counts — the `pe_sim_*` series of the `metrics` exposition). Off
    /// skips every phase clock read inside `run_batch`.
    pub sim_profile: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            mode: ServeMode::default(),
            batch_max: LANES,
            lane_width: None,
            event_driven: false,
            batch_deadline: Duration::from_millis(2),
            queue_capacity: 4096,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8),
            trace_capacity: 256,
            trace_slow: Duration::ZERO,
            sim_profile: true,
        }
    }
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The feature vector had the wrong arity for the addressed model.
    WrongArity {
        /// Features the model expects.
        expected: usize,
        /// Features the request carried.
        got: usize,
    },
    /// The queue was full (`try_submit` only; `submit` blocks instead).
    Busy,
    /// The service is shutting down.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WrongArity { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ServeError::Busy => write!(f, "queue full"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// A pending reply: wait on it to get the predicted class.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<usize, ServeError>>,
}

impl Ticket {
    /// Blocks until the batch containing this request was executed.
    pub fn wait(self) -> Result<usize, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }
}

/// The sending half of one request's reply channel.
type ReplyTx = mpsc::Sender<Result<usize, ServeError>>;

struct Pending {
    x_q: Vec<i64>,
    enqueued: Instant,
    tx: ReplyTx,
}

#[derive(Default)]
struct QueueState {
    pending: HashMap<ModelKey, VecDeque<Pending>>,
    total: usize,
    stopping: bool,
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: ServiceConfig,
    metrics: Metrics,
    traces: TraceRing,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    space_ready: Condvar,
    stopped: AtomicBool,
}

/// The in-process classification service. See the [module docs](self).
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts the worker pool. Models are built lazily on first request per
    /// key; call [`ModelRegistry::warm`] first to front-load training.
    #[must_use]
    pub fn start(registry: Arc<ModelRegistry>, mut cfg: ServiceConfig) -> Arc<Service> {
        cfg.batch_max = cfg.batch_max.clamp(1, 16 * LANES);
        cfg.workers = cfg.workers.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            registry,
            traces: TraceRing::new(cfg.trace_capacity),
            cfg,
            metrics: Metrics::new(),
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            stopped: AtomicBool::new(false),
        });
        let workers = (0..shared.cfg.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Arc::new(Service { shared, workers: Mutex::new(workers) })
    }

    /// The registry serving this service's models.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// The effective (clamped) configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// Enqueues one request, blocking while the queue is full
    /// (backpressure). The returned [`Ticket`] resolves when the batch
    /// containing the request was executed.
    ///
    /// `x` is a normalized (`[0,1]`) feature vector; quantization to the
    /// model's input grid happens here, on the submitter's thread.
    pub fn submit(&self, key: ModelKey, x: &[f64]) -> Result<Ticket, ServeError> {
        self.submit_inner(key, x, true)
    }

    /// Like [`Service::submit`] but returns [`ServeError::Busy`] instead of
    /// blocking when the queue is full.
    pub fn try_submit(&self, key: ModelKey, x: &[f64]) -> Result<Ticket, ServeError> {
        self.submit_inner(key, x, false)
    }

    fn submit_inner(&self, key: ModelKey, x: &[f64], block: bool) -> Result<Ticket, ServeError> {
        // Resolve the model outside the queue lock: the first request for a
        // key pays its training cost here, not under the lock.
        let entry = self.shared.registry.get(key);
        if x.len() != entry.num_features() {
            return Err(ServeError::WrongArity { expected: entry.num_features(), got: x.len() });
        }
        let x_q = entry.quantize_input(x);
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().expect("service queue poisoned");
        loop {
            if st.stopping {
                return Err(ServeError::ShuttingDown);
            }
            if st.total < self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                self.shared.metrics.on_reject(key);
                return Err(ServeError::Busy);
            }
            st = self.shared.space_ready.wait(st).expect("service queue poisoned");
        }
        st.pending.entry(key).or_default().push_back(Pending { x_q, enqueued: Instant::now(), tx });
        st.total += 1;
        self.shared.metrics.on_submit(key);
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit-and-wait for one request.
    pub fn classify(&self, key: ModelKey, x: &[f64]) -> Result<usize, ServeError> {
        self.submit(key, x)?.wait()
    }

    /// Bulk intake: enqueues a whole slice of requests under **one** queue
    /// lock acquisition (blocking for space as needed), with one registry
    /// resolve and one worker wake-up for the slice. This is the
    /// high-throughput front door — per-request locking is what caps
    /// [`Service::submit`] at saturation.
    pub fn submit_many(&self, key: ModelKey, xs: &[Vec<f64>]) -> Vec<Result<Ticket, ServeError>> {
        let entry = self.shared.registry.get(key);
        // Validate and quantize outside the lock.
        let mut out: Vec<Result<Ticket, ServeError>> = Vec::with_capacity(xs.len());
        let mut ready: Vec<(usize, Vec<i64>, ReplyTx)> = Vec::with_capacity(xs.len());
        for (i, x) in xs.iter().enumerate() {
            if x.len() == entry.num_features() {
                let (tx, rx) = mpsc::channel();
                out.push(Ok(Ticket { rx }));
                ready.push((i, entry.quantize_input(x), tx));
            } else {
                out.push(Err(ServeError::WrongArity {
                    expected: entry.num_features(),
                    got: x.len(),
                }));
            }
        }
        let mut st = self.shared.state.lock().expect("service queue poisoned");
        for (i, x_q, tx) in ready {
            // Wait for space before pushing. Workers may not have been woken
            // for the requests that filled the queue yet, so wake them
            // before sleeping — or no one ever frees space.
            while !st.stopping && st.total >= self.shared.cfg.queue_capacity {
                self.shared.work_ready.notify_all();
                st = self.shared.space_ready.wait(st).expect("service queue poisoned");
            }
            if st.stopping {
                out[i] = Err(ServeError::ShuttingDown);
                continue;
            }
            st.pending.entry(key).or_default().push_back(Pending {
                x_q,
                enqueued: Instant::now(),
                tx,
            });
            st.total += 1;
            self.shared.metrics.on_submit(key);
        }
        drop(st);
        self.shared.work_ready.notify_all();
        out
    }

    /// Submits a whole slice of requests before waiting on any of them, so
    /// they coalesce into as few batches as the configuration allows.
    #[must_use]
    pub fn classify_batch(&self, key: ModelKey, xs: &[Vec<f64>]) -> Vec<Result<usize, ServeError>> {
        self.submit_many(key, xs).into_iter().map(|t| t.and_then(Ticket::wait)).collect()
    }

    /// Requests queued right now (all keys).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("service queue poisoned").total
    }

    /// A point-in-time aggregate metrics view. Ticks the interval clock:
    /// [`MetricsSnapshot::throughput_rps`] covers the span since the
    /// previous `metrics()` call.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cfg.batch_max, self.queue_depth())
    }

    /// The live metrics store: per-model shards, snapshots and the
    /// Prometheus-style exposition.
    #[must_use]
    pub fn metrics_store(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The Prometheus-style text exposition over every model shard (the
    /// `metrics` wire reply), `# EOF`-terminated.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.prometheus(self.shared.cfg.batch_max, self.queue_depth())
    }

    /// The most recent `limit` request traces, newest first (the `trace`
    /// wire reply). Empty when [`ServiceConfig::trace_capacity`] is 0.
    #[must_use]
    pub fn traces(&self, limit: usize) -> Vec<RequestTrace> {
        self.shared.traces.recent(limit)
    }

    /// Traces dropped to ring-slot contention (never blocks the hot path).
    #[must_use]
    pub fn traces_dropped(&self) -> u64 {
        self.shared.traces.dropped()
    }

    /// Traces ever offered to the ring (accepted + dropped), including ones
    /// that have since wrapped away.
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.shared.traces.recorded()
    }

    /// Stops accepting requests, drains every queued batch (deadlines are
    /// ignored — everything flushes), answers the stragglers and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("service queue poisoned");
            st.stopping = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for w in workers {
            let _ = w.join();
        }
        self.shared.stopped.store(true, Ordering::Release);
    }

    /// Whether [`Service::shutdown`] has completed.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::Acquire)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.shared.cfg)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

/// Picks a key whose batch should flush now: any full batch first, else —
/// when stopping — any non-empty batch, else the key whose oldest request
/// has exceeded the deadline.
fn pick_ready_key(st: &QueueState, cfg: &ServiceConfig, now: Instant) -> Option<ModelKey> {
    let mut expired: Option<(ModelKey, Instant)> = None;
    for (&key, q) in &st.pending {
        if q.len() >= cfg.batch_max {
            return Some(key);
        }
        if let Some(front) = q.front() {
            if st.stopping {
                return Some(key);
            }
            if now.duration_since(front.enqueued) >= cfg.batch_deadline
                && expired.map_or(true, |(_, oldest)| front.enqueued < oldest)
            {
                expired = Some((key, front.enqueued));
            }
        }
    }
    expired.map(|(key, _)| key)
}

/// The next deadline any queued request will hit (for the worker's timed
/// wait).
fn earliest_deadline(st: &QueueState, deadline: Duration) -> Option<Instant> {
    st.pending.values().filter_map(|q| q.front()).map(|p| p.enqueued + deadline).min()
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("service queue poisoned");
            loop {
                let now = Instant::now();
                if let Some(key) = pick_ready_key(&st, &shared.cfg, now) {
                    let q = st.pending.get_mut(&key).expect("picked key exists");
                    let n = q.len().min(shared.cfg.batch_max);
                    let reqs: Vec<Pending> = q.drain(..n).collect();
                    if q.is_empty() {
                        st.pending.remove(&key);
                    }
                    st.total -= n;
                    shared.space_ready.notify_all();
                    break Some((key, reqs));
                }
                if st.stopping {
                    debug_assert_eq!(st.total, 0, "stopping with no ready key means empty queues");
                    break None;
                }
                match earliest_deadline(&st, shared.cfg.batch_deadline) {
                    Some(when) => {
                        let wait = when.saturating_duration_since(Instant::now());
                        let (guard, _) = shared
                            .work_ready
                            .wait_timeout(st, wait)
                            .expect("service queue poisoned");
                        st = guard;
                    }
                    None => {
                        st = shared.work_ready.wait(st).expect("service queue poisoned");
                    }
                }
            }
        };
        let Some((key, reqs)) = batch else { return };
        run_one_batch(shared, key, reqs);
    }
}

/// Executes one coalesced batch and answers its requests, decomposing the
/// batch into the five trace spans (`queue_wait → setup → sweep → verify →
/// reply`; see [`pe_obs::trace`]) and feeding the model's metric shard.
fn run_one_batch(shared: &Shared, key: ModelKey, mut reqs: Vec<Pending>) {
    // `drained` splits every request's latency: submission → here is queue
    // wait (coalescing delay), here → reply is service time.
    let drained = Instant::now();
    let shard = shared.metrics.shard(key);
    let entry = shared.registry.get(key);
    let vectors: Vec<Vec<i64>> = reqs.iter_mut().map(|r| std::mem::take(&mut r.x_q)).collect();
    let int_preds: Vec<usize> = match shared.cfg.mode {
        ServeMode::Gate => Vec::new(),
        ServeMode::Int | ServeMode::Verify => {
            vectors.iter().map(|x_q| entry.predict_int(x_q)).collect()
        }
    };
    let mut sweep = Duration::ZERO;
    let mut verify = Duration::ZERO;
    let setup_end;
    let (preds, lane_words, gate_cycles, mismatches) = match shared.cfg.mode {
        ServeMode::Int => {
            setup_end = Instant::now();
            (int_preds, 0, 0, 0)
        }
        ServeMode::Gate | ServeMode::Verify => {
            let mut sim = entry.simulator();
            if let Some(w) = shared.cfg.lane_width {
                sim.set_lane_width(w);
            }
            sim.set_event_driven(shared.cfg.event_driven);
            if shared.cfg.sim_profile {
                let profile: Arc<dyn SimProfile> = Arc::clone(shard.profile()) as _;
                sim.set_profile(Some(profile));
            }
            let lane_words = sim.lane_width().words();
            setup_end = Instant::now();
            let result = sim.run_batch(&vectors, entry.cycles_per_vector, "class");
            let sweep_end = Instant::now();
            sweep = sweep_end.saturating_duration_since(setup_end);
            let gate: Vec<usize> = result.outputs.iter().map(|&v| v as usize).collect();
            let mismatches = if shared.cfg.mode == ServeMode::Verify {
                let n = gate.iter().zip(&int_preds).filter(|(g, i)| g != i).count();
                verify = sweep_end.elapsed();
                n
            } else {
                0
            };
            (gate, lane_words, result.cycles, mismatches)
        }
    };
    shard.on_batch(reqs.len(), lane_words, gate_cycles, mismatches);
    let lanes = reqs.len();
    let oldest = reqs.iter().map(|r| r.enqueued).min();
    let reply_start = Instant::now();
    for (req, pred) in reqs.into_iter().zip(preds) {
        let queue_wait = drained.saturating_duration_since(req.enqueued);
        let service = reply_start.saturating_duration_since(drained);
        shard.on_served(queue_wait, service);
        // A dropped ticket (caller gave up) is fine; ignore send errors.
        let _ = req.tx.send(Ok(pred));
    }
    if shared.traces.enabled() {
        // One trace per batch, for its oldest request — the worst queue
        // wait this batch inflicted.
        let now = Instant::now();
        let queue_wait =
            oldest.map_or(Duration::ZERO, |enq| drained.saturating_duration_since(enq));
        let total = oldest.map_or(Duration::ZERO, |enq| now.saturating_duration_since(enq));
        if total >= shared.cfg.trace_slow {
            shared.traces.record(RequestTrace {
                seq: 0,
                model: key.token(),
                batch_lanes: lanes,
                queue_wait,
                setup: setup_end.saturating_duration_since(drained),
                sweep,
                verify,
                reply: now.saturating_duration_since(reply_start),
                total,
                at: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::pipeline::RunOptions;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;

    fn cardio_seq() -> ModelKey {
        ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm)
    }

    fn test_registry() -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::new(RunOptions::default()))
    }

    fn samples(registry: &ModelRegistry, key: ModelKey, n: usize) -> Vec<Vec<f64>> {
        registry.get(key).sample_requests(n)
    }

    #[test]
    fn classify_matches_golden_model_in_every_mode() {
        let registry = test_registry();
        let key = cardio_seq();
        let entry = registry.get(key);
        let xs = samples(&registry, key, 5);
        for mode in [ServeMode::Gate, ServeMode::Int, ServeMode::Verify] {
            let svc = Service::start(
                Arc::clone(&registry),
                ServiceConfig { mode, ..ServiceConfig::default() },
            );
            for x in &xs {
                let want = entry.predict_int(&entry.quantize_input(x));
                assert_eq!(svc.classify(key, x), Ok(want), "mode {mode:?}");
            }
            let m = svc.metrics();
            assert_eq!(m.verify_mismatches, 0);
            assert_eq!(m.served, 5);
            svc.shutdown();
            assert!(svc.is_stopped());
        }
    }

    #[test]
    fn ragged_batch_flushes_at_the_deadline() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 3);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                batch_deadline: Duration::from_millis(5),
                ..ServiceConfig::default()
            },
        );
        let t0 = Instant::now();
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        // 3 requests never fill a 64-lane batch: only the deadline flushes
        // them. Generous upper bound to stay robust on loaded CI machines.
        assert!(t0.elapsed() >= Duration::from_millis(4), "flushed before the deadline");
        assert!(t0.elapsed() < Duration::from_secs(5));
        let m = svc.metrics();
        assert_eq!(m.served, 3);
        assert_eq!(m.batches, 1, "3 requests must coalesce into one ragged batch");
    }

    #[test]
    fn wrong_arity_is_rejected_at_submit() {
        let registry = test_registry();
        let svc = Service::start(Arc::clone(&registry), ServiceConfig::default());
        let err = svc.classify(cardio_seq(), &[0.5, 0.5]).unwrap_err();
        assert!(matches!(err, ServeError::WrongArity { expected: 21, got: 2 }), "{err:?}");
    }

    #[test]
    fn try_submit_rejects_when_full_and_submit_after_shutdown_errors() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 4);
        // One worker, capacity 2, a deadline long enough that nothing
        // flushes while we overfill.
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                batch_deadline: Duration::from_secs(5),
                ..ServiceConfig::default()
            },
        );
        let t1 = svc.try_submit(key, &xs[0]).expect("first fits");
        let t2 = svc.try_submit(key, &xs[1]).expect("second fits");
        let err = svc.try_submit(key, &xs[2]).unwrap_err();
        assert_eq!(err, ServeError::Busy);
        assert_eq!(svc.metrics().rejected, 1);
        // Shutdown drains the two queued requests and answers them.
        svc.shutdown();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert_eq!(svc.classify(key, &xs[3]), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn full_batches_coalesce_to_64_lanes() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 128);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                workers: 2,
                batch_deadline: Duration::from_millis(50),
                ..ServiceConfig::default()
            },
        );
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        let m = svc.metrics();
        assert_eq!(m.served, 128);
        assert_eq!(m.verify_mismatches, 0);
        assert!(m.batches <= 4, "128 requests should land in few batches, got {}", m.batches);
        assert!(m.batch_fill > 0.5, "fill {}", m.batch_fill);
    }

    #[test]
    fn widened_batch_max_serves_one_batch_in_one_sweep() {
        // batch_max beyond 64 used to split into several 64-lane chunks; at
        // an 8-word slab a 300-request batch is a single 512-lane sweep.
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 300);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                batch_max: 512,
                lane_width: Some(LaneWidth::W8),
                batch_deadline: Duration::from_millis(20),
                ..ServiceConfig::default()
            },
        );
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        let m = svc.metrics();
        assert_eq!(m.served, 300);
        assert_eq!(m.verify_mismatches, 0);
        assert_eq!(m.lane_width, 8, "stats must surface the slab width");
        assert!(m.batches <= 2, "300 requests at batch_max 512, got {} batches", m.batches);
        assert!(m.sweeps <= 2, "one 512-lane sweep should cover 300 lanes, got {}", m.sweeps);
        assert!(m.lane_fill > 0.5, "lane_fill {} must be against 512, not 64", m.lane_fill);
    }
}
