//! The batch-coalescing classification service.
//!
//! Requests are submitted per [`ModelKey`] and coalesced into lanes of one
//! word-parallel [`run_batch`](pe_sim::Simulator::run_batch) call: the
//! bit-sliced engine evaluates up to `64 * W` requests (64–512, the slab
//! width `W` per-model auto-picked or forced via
//! [`ServiceConfig::lane_width`]) with `W` bitwise ops per gate, which is
//! the entire economic argument for batching. A batch is
//! flushed when it reaches [`ServiceConfig::batch_max`] lanes **or** when
//! its oldest request has waited [`ServiceConfig::batch_deadline`] — ragged
//! batches still flush promptly at low load, full batches flush immediately
//! at saturation.
//!
//! The worker pool is hand-rolled on `std` primitives: one bounded pending
//! queue (a `Mutex` + two condvars, [`ServiceConfig::queue_capacity`]
//! requests across all keys), [`Service::submit`] blocking for space —
//! backpressure, not unbounded buffering — and [`Service::try_submit`]
//! rejecting instead for callers that must not block.
//!
//! # Sharding, affinity, and warm simulators
//!
//! Workers are **sharded by model key**: every key hashes to a preferred
//! worker ([`Service::preferred_worker`]), and each worker keeps a **warm**
//! [`pe_sim::WarmSimulator`] per key it has served — the slab engine's full
//! state (including the event-driven worklist's clean/dirty flags) carries
//! across batches instead of being stamped out all-dirty per batch. That is
//! what finally lets event-driven serving collect the >70% cell-eval
//! savings the fault campaigns get on low-activity streams. Affinity is
//! *soft*: a non-owner steals a key when its batch is full (at saturation
//! warmness matters less than idle workers), when the owner has let the
//! oldest request sit past **twice** the deadline, or during shutdown.
//! [`ServiceConfig::warm`] (default on) can be turned off to reproduce the
//! old fresh-simulator-per-batch behavior for comparison.
//!
//! # Weighted-fair admission
//!
//! Ready batches are picked by **virtual time**, not first-full-first:
//! each key accrues `lanes × cycles-per-vector / weight` of virtual time as
//! it is served, a key (re)joining the queue is clamped up to the global
//! virtual clock (no idle credit hoarding), and the scheduler serves the
//! eligible ready key with the *smallest* virtual time. A `pendigits:par`
//! flood therefore cannot starve a `cardio:seq` trickle: the trickle's
//! virtual time stays pinned at the clock and wins the next free worker,
//! while the flood's keeps advancing with the work it already got. Weights
//! ([`ServiceConfig::weights`], default 1.0) scale a key's share.
//!
//! Three serving modes ([`ServeMode`]):
//!
//! * [`Gate`](ServeMode::Gate) — classify on the gate-level simulator (the
//!   default: this service exists to put traffic through the hardware).
//! * [`Int`](ServeMode::Int) — the integer golden model only
//!   ([`QuantizedSvm::predict_int`](pe_ml::QuantizedSvm::predict_int)-class
//!   fast path, no simulation).
//! * [`Verify`](ServeMode::Verify) — both per batch, cross-checked
//!   bit-for-bit; disagreements are counted in
//!   [`MetricsSnapshot::verify_mismatches`] and must stay zero.

use crate::metrics::{Metrics, MetricsSnapshot};
use crate::registry::{ModelKey, ModelRegistry};
use pe_obs::{RequestTrace, SimProfile, TraceRing};
use pe_sim::bitslice::LANES;
use pe_sim::LaneWidth;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which path answers classification requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// Gate-level simulation of the bespoke netlist (the default).
    #[default]
    Gate,
    /// Integer golden model only — the fast path, no simulation.
    Int,
    /// Gate-level **and** integer paths, cross-checked per batch.
    Verify,
}

impl ServeMode {
    /// Parses a mode token (`gate`, `int`, `verify`).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid tokens on failure.
    pub fn parse(tok: &str) -> Result<Self, String> {
        match tok.to_ascii_lowercase().as_str() {
            "gate" => Ok(ServeMode::Gate),
            "int" => Ok(ServeMode::Int),
            "verify" => Ok(ServeMode::Verify),
            other => Err(format!("unknown mode {other:?} (expected gate|int|verify)")),
        }
    }
}

/// Tunables of one [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Which path answers requests.
    pub mode: ServeMode,
    /// Requests per `run_batch` call, clamped to `1..=1024`. Values above
    /// the slab's `64 * W` lane capacity run as several sweeps inside
    /// **one** call, amortizing simulator construction further; 1
    /// degenerates to one-request-per-`run_batch` serving (the loadgen
    /// baseline). At the default 8-word slab a batch of 512 is a single
    /// sweep — no splitting.
    pub batch_max: usize,
    /// Bit-sliced slab width override. `None` (the default) uses each
    /// model's auto-picked width ([`ModelEntry::lane_width`]); `Some`
    /// forces every gate-level batch to this width.
    ///
    /// [`ModelEntry::lane_width`]: crate::registry::ModelEntry::lane_width
    pub lane_width: Option<LaneWidth>,
    /// Event-driven sweeps for gate-level batches: the slab engine only
    /// re-evaluates cells whose input slabs changed, which pays off on
    /// low-activity batches (repeated or near-constant feature rows) and is
    /// bit-identical to the full-sweep default — predictions *and* toggle
    /// accounting.
    pub event_driven: bool,
    /// How long the oldest queued request may wait before its (possibly
    /// ragged) batch is flushed anyway.
    pub batch_deadline: Duration,
    /// Bound on queued requests across all keys; beyond it `submit` blocks
    /// and `try_submit` rejects.
    pub queue_capacity: usize,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Capacity of the request trace ring ([`Service::traces`], the `trace`
    /// wire command). Each executed batch records one span trace for its
    /// **oldest** request — the worst queue wait of the batch. 0 disables
    /// tracing entirely (the instrumentation-off baseline).
    pub trace_capacity: usize,
    /// Only record traces whose total latency is at least this long. The
    /// default [`Duration::ZERO`] traces every batch's oldest request;
    /// raising it turns the ring into a slow-request sampler.
    pub trace_slow: Duration,
    /// Feed each model's [`pe_obs::ProfileRecorder`] from the gate-level
    /// simulator (per-batch phase timings, sweep and cell-evaluation
    /// counts — the `pe_sim_*` series of the `metrics` exposition). Off
    /// skips every phase clock read inside `run_batch`.
    pub sim_profile: bool,
    /// Keep a warm [`pe_sim::WarmSimulator`] per (worker, key) instead of
    /// stamping out a fresh all-dirty simulator per batch (the default).
    /// Off reproduces the old cold path — useful for measuring exactly what
    /// warmth buys (`loadgen --cold`).
    pub warm: bool,
    /// Weighted-fair admission weights per key (default 1.0 for keys not
    /// listed). A key with weight 2.0 accrues virtual time half as fast and
    /// therefore gets twice the service share under contention.
    pub weights: Vec<(ModelKey, f64)>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            mode: ServeMode::default(),
            batch_max: LANES,
            lane_width: None,
            event_driven: false,
            batch_deadline: Duration::from_millis(2),
            queue_capacity: 4096,
            workers: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(2)
                .min(8),
            trace_capacity: 256,
            trace_slow: Duration::ZERO,
            sim_profile: true,
            warm: true,
            weights: Vec::new(),
        }
    }
}

impl ServiceConfig {
    /// The fair-admission weight of one key (1.0 unless overridden).
    #[must_use]
    pub fn weight(&self, key: ModelKey) -> f64 {
        self.weights
            .iter()
            .find(|(k, _)| *k == key)
            .map_or(1.0, |&(_, w)| if w > 0.0 { w } else { 1.0 })
    }
}

/// Why a request was not answered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The feature vector had the wrong arity for the addressed model.
    WrongArity {
        /// Features the model expects.
        expected: usize,
        /// Features the request carried.
        got: usize,
    },
    /// The queue was full (`try_submit` only; `submit` blocks instead).
    Busy,
    /// The service is shutting down.
    ShuttingDown,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::WrongArity { expected, got } => {
                write!(f, "expected {expected} features, got {got}")
            }
            ServeError::Busy => write!(f, "queue full"),
            ServeError::ShuttingDown => write!(f, "service shutting down"),
        }
    }
}

/// A pending reply: wait on it to get the predicted class.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<usize, ServeError>>,
}

impl Ticket {
    /// Blocks until the batch containing this request was executed.
    pub fn wait(self) -> Result<usize, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::ShuttingDown))
    }

    /// Non-blocking poll: `None` while the request is still queued or its
    /// batch is running. The non-blocking front end pumps pipelined tickets
    /// with this between readiness passes instead of parking a thread per
    /// request.
    pub fn try_wait(&self) -> Option<Result<usize, ServeError>> {
        match self.rx.try_recv() {
            Ok(reply) => Some(reply),
            Err(mpsc::TryRecvError::Empty) => None,
            Err(mpsc::TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// The sending half of one request's reply channel.
type ReplyTx = mpsc::Sender<Result<usize, ServeError>>;

struct Pending {
    x_q: Vec<i64>,
    enqueued: Instant,
    /// Virtual-time cost of this request: the model's cycles-per-vector
    /// (min 1), so a fair share is a share of *simulated work*, not of
    /// request count — a 26-cycle sequential inference is charged 26× a
    /// combinational one.
    cost: u64,
    tx: ReplyTx,
}

#[derive(Default)]
struct QueueState {
    pending: HashMap<ModelKey, VecDeque<Pending>>,
    total: usize,
    stopping: bool,
    /// Per-key virtual finish time of the weighted-fair scheduler.
    vt: HashMap<ModelKey, f64>,
    /// The global virtual clock: the virtual time of the last key served.
    /// A key (re)joining an empty queue is clamped **up** to this, so a key
    /// that idled cannot bank credit and later monopolize the workers.
    vclock: f64,
}

impl QueueState {
    /// Enqueues one request, clamping the key's virtual time to the clock
    /// when the key's queue was empty (its (re)join point).
    fn push(&mut self, key: ModelKey, req: Pending) {
        let q = self.pending.entry(key).or_default();
        if q.is_empty() {
            let vt = self.vt.entry(key).or_insert(0.0);
            *vt = vt.max(self.vclock);
        }
        q.push_back(req);
        self.total += 1;
    }

    /// Charges a drained batch to its key's virtual time and advances the
    /// global clock.
    fn charge(&mut self, key: ModelKey, cost: u64, weight: f64) {
        let vt = self.vt.entry(key).or_insert(self.vclock);
        *vt += cost as f64 / weight;
        self.vclock = self.vclock.max(*vt);
    }
}

struct Shared {
    registry: Arc<ModelRegistry>,
    cfg: ServiceConfig,
    metrics: Metrics,
    traces: TraceRing,
    state: Mutex<QueueState>,
    work_ready: Condvar,
    space_ready: Condvar,
    stopped: AtomicBool,
}

/// The in-process classification service. See the [module docs](self).
pub struct Service {
    shared: Arc<Shared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts the worker pool. Models are built lazily on first request per
    /// key; call [`ModelRegistry::warm`] first to front-load training.
    #[must_use]
    pub fn start(registry: Arc<ModelRegistry>, mut cfg: ServiceConfig) -> Arc<Service> {
        cfg.batch_max = cfg.batch_max.clamp(1, 16 * LANES);
        cfg.workers = cfg.workers.max(1);
        cfg.queue_capacity = cfg.queue_capacity.max(1);
        let shared = Arc::new(Shared {
            registry,
            traces: TraceRing::new(cfg.trace_capacity),
            cfg,
            metrics: Metrics::new(),
            state: Mutex::new(QueueState::default()),
            work_ready: Condvar::new(),
            space_ready: Condvar::new(),
            stopped: AtomicBool::new(false),
        });
        let workers = (0..shared.cfg.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, i))
            })
            .collect();
        Arc::new(Service { shared, workers: Mutex::new(workers) })
    }

    /// The registry serving this service's models.
    #[must_use]
    pub fn registry(&self) -> &ModelRegistry {
        &self.shared.registry
    }

    /// The effective (clamped) configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.shared.cfg
    }

    /// The soft-affinity owner of a key under this service's worker count:
    /// the worker whose warm simulator serves the key's batches unless it
    /// falls behind (see the [module docs](self)).
    #[must_use]
    pub fn preferred_worker(&self, key: ModelKey) -> usize {
        preferred_worker(key, self.shared.cfg.workers)
    }

    /// Enqueues one request, blocking while the queue is full
    /// (backpressure). The returned [`Ticket`] resolves when the batch
    /// containing the request was executed.
    ///
    /// `x` is a normalized (`[0,1]`) feature vector; quantization to the
    /// model's input grid happens here, on the submitter's thread.
    pub fn submit(&self, key: ModelKey, x: &[f64]) -> Result<Ticket, ServeError> {
        self.submit_inner(key, x, true)
    }

    /// Like [`Service::submit`] but returns [`ServeError::Busy`] instead of
    /// blocking when the queue is full.
    pub fn try_submit(&self, key: ModelKey, x: &[f64]) -> Result<Ticket, ServeError> {
        self.submit_inner(key, x, false)
    }

    fn submit_inner(&self, key: ModelKey, x: &[f64], block: bool) -> Result<Ticket, ServeError> {
        // Resolve the model outside the queue lock: the first request for a
        // key pays its training cost here, not under the lock.
        let entry = self.shared.registry.get(key);
        if x.len() != entry.num_features() {
            return Err(ServeError::WrongArity { expected: entry.num_features(), got: x.len() });
        }
        let x_q = entry.quantize_input(x);
        let (tx, rx) = mpsc::channel();
        let mut st = self.shared.state.lock().expect("service queue poisoned");
        loop {
            if st.stopping {
                return Err(ServeError::ShuttingDown);
            }
            if st.total < self.shared.cfg.queue_capacity {
                break;
            }
            if !block {
                self.shared.metrics.on_reject(key);
                return Err(ServeError::Busy);
            }
            st = self.shared.space_ready.wait(st).expect("service queue poisoned");
        }
        st.push(
            key,
            Pending { x_q, enqueued: Instant::now(), cost: entry.cycles_per_vector.max(1), tx },
        );
        self.shared.metrics.on_submit(key);
        drop(st);
        self.shared.work_ready.notify_one();
        Ok(Ticket { rx })
    }

    /// Submit-and-wait for one request.
    pub fn classify(&self, key: ModelKey, x: &[f64]) -> Result<usize, ServeError> {
        self.submit(key, x)?.wait()
    }

    /// Bulk intake: enqueues a whole slice of requests under **one** queue
    /// lock acquisition (blocking for space as needed), with one registry
    /// resolve and one worker wake-up for the slice. This is the
    /// high-throughput front door — per-request locking is what caps
    /// [`Service::submit`] at saturation.
    pub fn submit_many(&self, key: ModelKey, xs: &[Vec<f64>]) -> Vec<Result<Ticket, ServeError>> {
        let entry = self.shared.registry.get(key);
        // Validate and quantize outside the lock.
        let mut out: Vec<Result<Ticket, ServeError>> = Vec::with_capacity(xs.len());
        let mut ready: Vec<(usize, Vec<i64>, ReplyTx)> = Vec::with_capacity(xs.len());
        for (i, x) in xs.iter().enumerate() {
            if x.len() == entry.num_features() {
                let (tx, rx) = mpsc::channel();
                out.push(Ok(Ticket { rx }));
                ready.push((i, entry.quantize_input(x), tx));
            } else {
                out.push(Err(ServeError::WrongArity {
                    expected: entry.num_features(),
                    got: x.len(),
                }));
            }
        }
        let mut st = self.shared.state.lock().expect("service queue poisoned");
        for (i, x_q, tx) in ready {
            // Wait for space before pushing. Workers may not have been woken
            // for the requests that filled the queue yet, so wake them
            // before sleeping — or no one ever frees space.
            while !st.stopping && st.total >= self.shared.cfg.queue_capacity {
                self.shared.work_ready.notify_all();
                st = self.shared.space_ready.wait(st).expect("service queue poisoned");
            }
            if st.stopping {
                out[i] = Err(ServeError::ShuttingDown);
                continue;
            }
            st.push(
                key,
                Pending { x_q, enqueued: Instant::now(), cost: entry.cycles_per_vector.max(1), tx },
            );
            self.shared.metrics.on_submit(key);
        }
        drop(st);
        self.shared.work_ready.notify_all();
        out
    }

    /// Submits a whole slice of requests before waiting on any of them, so
    /// they coalesce into as few batches as the configuration allows.
    #[must_use]
    pub fn classify_batch(&self, key: ModelKey, xs: &[Vec<f64>]) -> Vec<Result<usize, ServeError>> {
        self.submit_many(key, xs).into_iter().map(|t| t.and_then(Ticket::wait)).collect()
    }

    /// Requests queued right now (all keys).
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.shared.state.lock().expect("service queue poisoned").total
    }

    /// A point-in-time aggregate metrics view. Ticks the interval clock:
    /// [`MetricsSnapshot::throughput_rps`] covers the span since the
    /// previous `metrics()` call.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot(self.shared.cfg.batch_max, self.queue_depth())
    }

    /// The live metrics store: per-model shards, snapshots and the
    /// Prometheus-style exposition.
    #[must_use]
    pub fn metrics_store(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The Prometheus-style text exposition over every model shard (the
    /// `metrics` wire reply), `# EOF`-terminated.
    #[must_use]
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.prometheus(self.shared.cfg.batch_max, self.queue_depth())
    }

    /// The most recent `limit` request traces, newest first (the `trace`
    /// wire reply). Empty when [`ServiceConfig::trace_capacity`] is 0.
    #[must_use]
    pub fn traces(&self, limit: usize) -> Vec<RequestTrace> {
        self.shared.traces.recent(limit)
    }

    /// Traces dropped to ring-slot contention (never blocks the hot path).
    #[must_use]
    pub fn traces_dropped(&self) -> u64 {
        self.shared.traces.dropped()
    }

    /// Traces ever offered to the ring (accepted + dropped), including ones
    /// that have since wrapped away.
    #[must_use]
    pub fn traces_recorded(&self) -> u64 {
        self.shared.traces.recorded()
    }

    /// Stops accepting requests, drains every queued batch (deadlines are
    /// ignored — everything flushes), answers the stragglers and joins the
    /// workers. Idempotent.
    pub fn shutdown(&self) {
        {
            let mut st = self.shared.state.lock().expect("service queue poisoned");
            st.stopping = true;
        }
        self.shared.work_ready.notify_all();
        self.shared.space_ready.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for w in workers {
            let _ = w.join();
        }
        self.shared.stopped.store(true, Ordering::Release);
    }

    /// Whether [`Service::shutdown`] has completed.
    #[must_use]
    pub fn is_stopped(&self) -> bool {
        self.shared.stopped.load(Ordering::Acquire)
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl fmt::Debug for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Service")
            .field("cfg", &self.shared.cfg)
            .field("queue_depth", &self.queue_depth())
            .finish_non_exhaustive()
    }
}

/// The soft-affinity owner of a key: a stable FNV-1a hash of its token,
/// modulo the worker count. (`HashMap`'s default hasher is
/// process-randomized — affinity must survive restarts and be testable, so
/// it gets its own fixed hash.)
fn preferred_worker(key: ModelKey, workers: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.token().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h % workers.max(1) as u64) as usize
}

/// How long past the deadline a non-owner lets a ragged batch sit before
/// stealing it (in multiples of [`ServiceConfig::batch_deadline`]): the
/// owner gets one extra deadline of first refusal, so low-rate traffic
/// stays on its warm simulator instead of bouncing between workers.
const STEAL_GRACE: u32 = 2;

/// Whether worker `worker` may take this ready queue now. Owners always
/// may; non-owners steal full batches (saturation — warmth matters less
/// than idle workers), anything during shutdown, and ragged batches whose
/// oldest request has sat past `STEAL_GRACE` deadlines (the owner is
/// presumably stuck in a long batch).
fn eligible(
    q: &VecDeque<Pending>,
    key: ModelKey,
    cfg: &ServiceConfig,
    stopping: bool,
    now: Instant,
    worker: usize,
    workers: usize,
) -> bool {
    if stopping || q.len() >= cfg.batch_max || preferred_worker(key, workers) == worker {
        return true;
    }
    q.front()
        .is_some_and(|front| now.duration_since(front.enqueued) >= cfg.batch_deadline * STEAL_GRACE)
}

/// Picks the key worker `worker` should flush now under weighted-fair
/// admission: among the **ready** queues (full batch, expired deadline, or
/// shutdown drain) this worker is eligible for, the one with the smallest
/// virtual time — ties broken by token so scheduling is deterministic
/// regardless of `HashMap` iteration order.
fn pick_ready_key(
    st: &QueueState,
    cfg: &ServiceConfig,
    now: Instant,
    worker: usize,
    workers: usize,
) -> Option<ModelKey> {
    let mut best: Option<(f64, String, ModelKey)> = None;
    for (&key, q) in &st.pending {
        let Some(front) = q.front() else { continue };
        let ready = st.stopping
            || q.len() >= cfg.batch_max
            || now.duration_since(front.enqueued) >= cfg.batch_deadline;
        if !ready || !eligible(q, key, cfg, st.stopping, now, worker, workers) {
            continue;
        }
        let vt = st.vt.get(&key).copied().unwrap_or(st.vclock);
        let better = match &best {
            None => true,
            Some((bvt, btok, _)) => {
                vt < *bvt || (vt == *bvt && key.token().as_str() < btok.as_str())
            }
        };
        if better {
            best = Some((vt, key.token(), key));
        }
    }
    best.map(|(_, _, key)| key)
}

/// The next instant any queued request becomes takeable by worker `worker`
/// (for its timed wait): its own keys' requests at one deadline, other
/// workers' at the steal grace.
fn earliest_wakeup(
    st: &QueueState,
    cfg: &ServiceConfig,
    worker: usize,
    workers: usize,
) -> Option<Instant> {
    st.pending
        .iter()
        .filter_map(|(&key, q)| {
            let front = q.front()?;
            let factor = if preferred_worker(key, workers) == worker { 1 } else { STEAL_GRACE };
            Some(front.enqueued + cfg.batch_deadline * factor)
        })
        .min()
}

fn worker_loop(shared: &Shared, worker: usize) {
    // The worker's warm-simulator cache: one engine per key this worker has
    // served, carrying slab state (and the event-driven worklist) across
    // batches. Dropped — and with it all carried state — when the worker
    // exits at shutdown.
    let mut warm_sims: HashMap<ModelKey, WarmEntry> = HashMap::new();
    let workers = shared.cfg.workers;
    loop {
        let batch = {
            let mut st = shared.state.lock().expect("service queue poisoned");
            loop {
                let now = Instant::now();
                if let Some(key) = pick_ready_key(&st, &shared.cfg, now, worker, workers) {
                    let q = st.pending.get_mut(&key).expect("picked key exists");
                    let n = q.len().min(shared.cfg.batch_max);
                    let reqs: Vec<Pending> = q.drain(..n).collect();
                    if q.is_empty() {
                        st.pending.remove(&key);
                    }
                    st.total -= n;
                    let cost: u64 = reqs.iter().map(|r| r.cost).sum();
                    st.charge(key, cost, shared.cfg.weight(key));
                    shared.space_ready.notify_all();
                    break Some((key, reqs));
                }
                if st.stopping {
                    debug_assert_eq!(st.total, 0, "stopping with no ready key means empty queues");
                    break None;
                }
                match earliest_wakeup(&st, &shared.cfg, worker, workers) {
                    Some(when) => {
                        let wait = when.saturating_duration_since(Instant::now());
                        let (guard, _) = shared
                            .work_ready
                            .wait_timeout(st, wait)
                            .expect("service queue poisoned");
                        st = guard;
                    }
                    None => {
                        st = shared.work_ready.wait(st).expect("service queue poisoned");
                    }
                }
            }
        };
        let Some((key, reqs)) = batch else { return };
        run_one_batch(shared, key, reqs, &mut warm_sims);
    }
}

/// One worker's warm engine for one key: the lifetime-free simulator next
/// to the `Arc` that owns the netlist it reattaches every batch.
struct WarmEntry {
    entry: Arc<crate::registry::ModelEntry>,
    sim: pe_sim::WarmSimulator,
}

/// Executes one coalesced batch and answers its requests, decomposing the
/// batch into the five trace spans (`queue_wait → setup → sweep → verify →
/// reply`; see [`pe_obs::trace`]) and feeding the model's metric shard.
fn run_one_batch(
    shared: &Shared,
    key: ModelKey,
    mut reqs: Vec<Pending>,
    warm_sims: &mut HashMap<ModelKey, WarmEntry>,
) {
    // `drained` splits every request's latency: submission → here is queue
    // wait (coalescing delay), here → reply is service time.
    let drained = Instant::now();
    let shard = shared.metrics.shard(key);
    let entry = shared.registry.get(key);
    let vectors: Vec<Vec<i64>> = reqs.iter_mut().map(|r| std::mem::take(&mut r.x_q)).collect();
    let int_preds: Vec<usize> = match shared.cfg.mode {
        ServeMode::Gate => Vec::new(),
        ServeMode::Int | ServeMode::Verify => {
            vectors.iter().map(|x_q| entry.predict_int(x_q)).collect()
        }
    };
    let mut sweep = Duration::ZERO;
    let mut verify = Duration::ZERO;
    let setup_end;
    let (preds, lane_words, gate_cycles, mismatches) = match shared.cfg.mode {
        ServeMode::Int => {
            setup_end = Instant::now();
            (int_preds, 0, 0, 0)
        }
        ServeMode::Gate | ServeMode::Verify => {
            let (lane_words, result);
            if shared.cfg.warm {
                // The warm path: reuse (or seed, first time) this worker's
                // long-lived slab engine for the key. Reattach is a pure
                // move — the per-batch setup cost the cold path pays in
                // simulator construction is gone, and the event-driven
                // worklist keeps its clean state from the previous batch.
                let warm = warm_sims.entry(key).or_insert_with(|| {
                    let mut sim = entry.simulator();
                    if let Some(w) = shared.cfg.lane_width {
                        sim.set_lane_width(w);
                    }
                    sim.set_event_driven(shared.cfg.event_driven);
                    if shared.cfg.sim_profile {
                        let profile: Arc<dyn SimProfile> = Arc::clone(shard.profile()) as _;
                        sim.set_profile(Some(profile));
                    }
                    WarmEntry { entry: Arc::clone(&entry), sim: sim.warm() }
                });
                lane_words = warm.sim.lane_width().words();
                setup_end = Instant::now();
                result = warm.sim.run_batch(
                    &warm.entry.netlist,
                    &vectors,
                    entry.cycles_per_vector,
                    "class",
                );
            } else {
                let mut sim = entry.simulator();
                if let Some(w) = shared.cfg.lane_width {
                    sim.set_lane_width(w);
                }
                sim.set_event_driven(shared.cfg.event_driven);
                if shared.cfg.sim_profile {
                    let profile: Arc<dyn SimProfile> = Arc::clone(shard.profile()) as _;
                    sim.set_profile(Some(profile));
                }
                lane_words = sim.lane_width().words();
                setup_end = Instant::now();
                result = sim.run_batch(&vectors, entry.cycles_per_vector, "class");
            }
            let sweep_end = Instant::now();
            sweep = sweep_end.saturating_duration_since(setup_end);
            let gate: Vec<usize> = result.outputs.iter().map(|&v| v as usize).collect();
            let mismatches = if shared.cfg.mode == ServeMode::Verify {
                let n = gate.iter().zip(&int_preds).filter(|(g, i)| g != i).count();
                verify = sweep_end.elapsed();
                n
            } else {
                0
            };
            (gate, lane_words, result.cycles, mismatches)
        }
    };
    shard.on_batch(reqs.len(), lane_words, gate_cycles, mismatches);
    let lanes = reqs.len();
    let oldest = reqs.iter().map(|r| r.enqueued).min();
    let reply_start = Instant::now();
    for (req, pred) in reqs.into_iter().zip(preds) {
        let queue_wait = drained.saturating_duration_since(req.enqueued);
        let service = reply_start.saturating_duration_since(drained);
        shard.on_served(queue_wait, service);
        // A dropped ticket (caller gave up) is fine; ignore send errors.
        let _ = req.tx.send(Ok(pred));
    }
    if shared.traces.enabled() {
        // One trace per batch, for its oldest request — the worst queue
        // wait this batch inflicted.
        let now = Instant::now();
        let queue_wait =
            oldest.map_or(Duration::ZERO, |enq| drained.saturating_duration_since(enq));
        let total = oldest.map_or(Duration::ZERO, |enq| now.saturating_duration_since(enq));
        if total >= shared.cfg.trace_slow {
            shared.traces.record(RequestTrace {
                seq: 0,
                model: key.token(),
                batch_lanes: lanes,
                queue_wait,
                setup: setup_end.saturating_duration_since(drained),
                sweep,
                verify,
                reply: now.saturating_duration_since(reply_start),
                total,
                at: now,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_core::pipeline::RunOptions;
    use pe_core::styles::DesignStyle;
    use pe_data::UciProfile;

    fn cardio_seq() -> ModelKey {
        ModelKey::new(UciProfile::Cardio, DesignStyle::SequentialSvm)
    }

    fn test_registry() -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::new(RunOptions::default()))
    }

    fn samples(registry: &ModelRegistry, key: ModelKey, n: usize) -> Vec<Vec<f64>> {
        registry.get(key).sample_requests(n)
    }

    #[test]
    fn classify_matches_golden_model_in_every_mode() {
        let registry = test_registry();
        let key = cardio_seq();
        let entry = registry.get(key);
        let xs = samples(&registry, key, 5);
        for mode in [ServeMode::Gate, ServeMode::Int, ServeMode::Verify] {
            let svc = Service::start(
                Arc::clone(&registry),
                ServiceConfig { mode, ..ServiceConfig::default() },
            );
            for x in &xs {
                let want = entry.predict_int(&entry.quantize_input(x));
                assert_eq!(svc.classify(key, x), Ok(want), "mode {mode:?}");
            }
            let m = svc.metrics();
            assert_eq!(m.verify_mismatches, 0);
            assert_eq!(m.served, 5);
            svc.shutdown();
            assert!(svc.is_stopped());
        }
    }

    #[test]
    fn ragged_batch_flushes_at_the_deadline() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 3);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                batch_deadline: Duration::from_millis(5),
                ..ServiceConfig::default()
            },
        );
        let t0 = Instant::now();
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        // 3 requests never fill a 64-lane batch: only the deadline flushes
        // them. Generous upper bound to stay robust on loaded CI machines.
        assert!(t0.elapsed() >= Duration::from_millis(4), "flushed before the deadline");
        assert!(t0.elapsed() < Duration::from_secs(5));
        let m = svc.metrics();
        assert_eq!(m.served, 3);
        assert_eq!(m.batches, 1, "3 requests must coalesce into one ragged batch");
    }

    #[test]
    fn wrong_arity_is_rejected_at_submit() {
        let registry = test_registry();
        let svc = Service::start(Arc::clone(&registry), ServiceConfig::default());
        let err = svc.classify(cardio_seq(), &[0.5, 0.5]).unwrap_err();
        assert!(matches!(err, ServeError::WrongArity { expected: 21, got: 2 }), "{err:?}");
    }

    #[test]
    fn try_submit_rejects_when_full_and_submit_after_shutdown_errors() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 4);
        // One worker, capacity 2, a deadline long enough that nothing
        // flushes while we overfill.
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                workers: 1,
                queue_capacity: 2,
                batch_deadline: Duration::from_secs(5),
                ..ServiceConfig::default()
            },
        );
        let t1 = svc.try_submit(key, &xs[0]).expect("first fits");
        let t2 = svc.try_submit(key, &xs[1]).expect("second fits");
        let err = svc.try_submit(key, &xs[2]).unwrap_err();
        assert_eq!(err, ServeError::Busy);
        assert_eq!(svc.metrics().rejected, 1);
        // Shutdown drains the two queued requests and answers them.
        svc.shutdown();
        assert!(t1.wait().is_ok());
        assert!(t2.wait().is_ok());
        assert_eq!(svc.classify(key, &xs[3]), Err(ServeError::ShuttingDown));
    }

    #[test]
    fn full_batches_coalesce_to_64_lanes() {
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 128);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                workers: 2,
                batch_deadline: Duration::from_millis(50),
                ..ServiceConfig::default()
            },
        );
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        let m = svc.metrics();
        assert_eq!(m.served, 128);
        assert_eq!(m.verify_mismatches, 0);
        assert!(m.batches <= 4, "128 requests should land in few batches, got {}", m.batches);
        assert!(m.batch_fill > 0.5, "fill {}", m.batch_fill);
    }

    /// A synthetic pending request for scheduler-level tests (no service,
    /// no registry — pure queue mechanics).
    fn synthetic(enqueued: Instant, cost: u64) -> Pending {
        let (tx, _rx) = mpsc::channel();
        Pending { x_q: Vec::new(), enqueued, cost, tx }
    }

    /// Drains one picked batch exactly like the worker loop does (without
    /// executing it) and returns the key, or None when nothing is ready.
    fn drain_one(st: &mut QueueState, cfg: &ServiceConfig, worker: usize) -> Option<ModelKey> {
        let key = pick_ready_key(st, cfg, Instant::now(), worker, cfg.workers)?;
        let q = st.pending.get_mut(&key).expect("picked key exists");
        let n = q.len().min(cfg.batch_max);
        let cost: u64 = q.drain(..n).map(|r| r.cost).sum();
        if q.is_empty() {
            st.pending.remove(&key);
        }
        st.total -= n;
        st.charge(key, cost, cfg.weight(key));
        Some(key)
    }

    #[test]
    fn fair_admission_interleaves_a_trickle_through_a_flood() {
        // The deterministic fairness harness: a pendigits:par flood deep
        // enough for 32 full batches, with a cardio:seq trickle joining
        // after the flood is queued. Under the old full-batch-first rule
        // the trickle waited out the whole flood; under virtual-time fair
        // admission it must be served within a couple of drains of joining,
        // every time it rejoins.
        let flood = ModelKey::parse("pendigits:par").unwrap();
        let trickle = ModelKey::parse("cardio:seq").unwrap();
        let cfg = ServiceConfig {
            batch_max: 4,
            batch_deadline: Duration::ZERO, // everything queued is ready
            workers: 1,
            ..ServiceConfig::default()
        };
        let mut st = QueueState::default();
        let now = Instant::now();
        for _ in 0..32 * cfg.batch_max {
            st.push(flood, synthetic(now, 1));
        }
        // The flood has already been served for a while before the trickle
        // joins — its virtual time is well ahead of the clock.
        for _ in 0..4 {
            assert_eq!(drain_one(&mut st, &cfg, 0), Some(flood));
        }
        let mut gaps = Vec::new();
        for _ in 0..8 {
            st.push(trickle, synthetic(Instant::now(), 1));
            let mut gap = 0;
            loop {
                let picked = drain_one(&mut st, &cfg, 0).expect("queues are non-empty");
                if picked == trickle {
                    break;
                }
                gap += 1;
                assert!(gap <= 2, "trickle starved behind the flood for {gap} drains");
            }
            gaps.push(gap);
        }
        // The rejoin clamp means the trickle never banks credit: it is
        // served promptly but cannot monopolize either.
        assert!(gaps.iter().all(|&g| g <= 2), "queue-wait in drains: {gaps:?}");
        assert!(!st.pending.contains_key(&trickle));
    }

    #[test]
    fn weights_scale_the_service_share() {
        let a = ModelKey::parse("cardio:par").unwrap();
        let b = ModelKey::parse("cardio:seq").unwrap();
        let cfg = ServiceConfig {
            batch_max: 4,
            batch_deadline: Duration::ZERO,
            workers: 1,
            weights: vec![(b, 2.0)],
            ..ServiceConfig::default()
        };
        assert_eq!(cfg.weight(a), 1.0);
        assert_eq!(cfg.weight(b), 2.0);
        let mut st = QueueState::default();
        let now = Instant::now();
        let total = 30 * cfg.batch_max;
        for _ in 0..total {
            st.push(a, synthetic(now, 1));
            st.push(b, synthetic(now, 1));
        }
        let (mut served_a, mut served_b) = (0, 0);
        // Sample mid-contention: while both floods are pending, the weight-2
        // key must get ~2x the drains of the weight-1 key.
        for _ in 0..30 {
            match drain_one(&mut st, &cfg, 0) {
                Some(k) if k == a => served_a += 1,
                Some(k) if k == b => served_b += 1,
                other => panic!("unexpected pick {other:?}"),
            }
        }
        assert!(
            served_b >= 2 * served_a - 1 && served_b <= 2 * served_a + 2,
            "weight 2.0 should double the share: a={served_a} b={served_b}"
        );
    }

    #[test]
    fn affinity_steals_full_batches_but_gives_ragged_ones_grace() {
        let key = cardio_seq();
        let cfg = ServiceConfig {
            batch_max: 4,
            batch_deadline: Duration::from_millis(10),
            workers: 4,
            ..ServiceConfig::default()
        };
        let owner = preferred_worker(key, cfg.workers);
        let thief = (owner + 1) % cfg.workers;
        let now = Instant::now();

        // A ragged batch past one deadline: the owner takes it, the thief
        // must wait for the steal grace.
        let expired = now.checked_sub(Duration::from_millis(11)).expect("clock has history");
        let mut st = QueueState::default();
        st.push(key, synthetic(expired, 1));
        assert_eq!(pick_ready_key(&st, &cfg, now, owner, cfg.workers), Some(key));
        assert_eq!(pick_ready_key(&st, &cfg, now, thief, cfg.workers), None);

        // Past STEAL_GRACE deadlines the thief is allowed in (owner stuck).
        let stale = now.checked_sub(Duration::from_millis(25)).expect("clock has history");
        let mut st = QueueState::default();
        st.push(key, synthetic(stale, 1));
        assert_eq!(pick_ready_key(&st, &cfg, now, thief, cfg.workers), Some(key));

        // A full batch is stealable immediately, fresh or not.
        let mut st = QueueState::default();
        for _ in 0..cfg.batch_max {
            st.push(key, synthetic(now, 1));
        }
        assert_eq!(pick_ready_key(&st, &cfg, now, thief, cfg.workers), Some(key));

        // Shutdown drains everything through anyone.
        let mut st = QueueState::default();
        st.push(key, synthetic(now, 1));
        st.stopping = true;
        assert_eq!(pick_ready_key(&st, &cfg, now, thief, cfg.workers), Some(key));
    }

    #[test]
    fn preferred_worker_is_stable_and_in_range() {
        for key in ModelKey::table1_grid() {
            let w = preferred_worker(key, 8);
            assert!(w < 8);
            assert_eq!(w, preferred_worker(key, 8), "affinity must be deterministic");
        }
        assert_eq!(preferred_worker(cardio_seq(), 1), 0);
    }

    #[test]
    fn warm_and_cold_serving_agree_with_the_golden_model() {
        // The same repeated low-activity stream through a warm event-driven
        // service and a cold dense one: replies identical to the integer
        // model on both, zero verify mismatches, and the warm service must
        // have actually reused its engines (fewer sim batches than served
        // requests is implied by coalescing; the real warm pin — identical
        // toggle accounting — lives in the serving_equivalence suite).
        let registry = test_registry();
        let key = cardio_seq();
        let entry = registry.get(key);
        let base = entry.sample_requests(1).remove(0);
        let xs: Vec<Vec<f64>> = (0..96).map(|_| base.clone()).collect();
        let want: Vec<_> =
            xs.iter().map(|x| Ok(entry.predict_int(&entry.quantize_input(x)))).collect();
        for (warm, event_driven) in [(true, true), (true, false), (false, false)] {
            let svc = Service::start(
                Arc::clone(&registry),
                ServiceConfig {
                    mode: ServeMode::Verify,
                    warm,
                    event_driven,
                    workers: 1,
                    batch_deadline: Duration::from_millis(1),
                    ..ServiceConfig::default()
                },
            );
            // Several rounds so the warm path actually carries state across
            // run_batch calls.
            for round in 0..3 {
                assert_eq!(
                    svc.classify_batch(key, &xs),
                    want,
                    "warm={warm} events={event_driven} round {round}"
                );
            }
            let m = svc.metrics();
            assert_eq!(m.verify_mismatches, 0, "warm={warm} events={event_driven}");
            assert_eq!(m.served, 3 * 96);
            svc.shutdown();
        }
    }

    #[test]
    fn widened_batch_max_serves_one_batch_in_one_sweep() {
        // batch_max beyond 64 used to split into several 64-lane chunks; at
        // an 8-word slab a 300-request batch is a single 512-lane sweep.
        let registry = test_registry();
        let key = cardio_seq();
        let xs = samples(&registry, key, 300);
        let svc = Service::start(
            Arc::clone(&registry),
            ServiceConfig {
                mode: ServeMode::Verify,
                batch_max: 512,
                lane_width: Some(LaneWidth::W8),
                batch_deadline: Duration::from_millis(20),
                ..ServiceConfig::default()
            },
        );
        let results = svc.classify_batch(key, &xs);
        assert!(results.iter().all(Result::is_ok));
        let m = svc.metrics();
        assert_eq!(m.served, 300);
        assert_eq!(m.verify_mismatches, 0);
        assert_eq!(m.lane_width, 8, "stats must surface the slab width");
        assert!(m.batches <= 2, "300 requests at batch_max 512, got {} batches", m.batches);
        assert!(m.sweeps <= 2, "one 512-lane sweep should cover 300 lanes, got {}", m.sweeps);
        assert!(m.lane_fill > 0.5, "lane_fill {} must be against 512, not 64", m.lane_fill);
    }
}
